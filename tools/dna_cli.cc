// dna_cli — differential network analysis from the command line.
//
//   dna_cli show  <topo-file> <config-file>
//       Verify one snapshot: routes, equivalence classes, loops/blackholes.
//
//   dna_cli diff  <base-topo> <base-cfg> <target-topo> <target-cfg>
//                 [--monolithic]
//       Compute the semantic diff between two snapshots.
//
//   dna_cli paths <topo-file> <config-file> <src-node> <dst-ip>
//       Enumerate the forwarding paths a probe takes.
//
// File formats: topo/textio.h (topology) and config/parser.h (configs).
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/engine.h"
#include "core/paths.h"
#include "core/report.h"
#include "topo/textio.h"

using namespace dna;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_show(const std::string& topo_path, const std::string& cfg_path) {
  topo::Snapshot snap =
      topo::load_snapshot(read_file(topo_path), read_file(cfg_path));
  core::DnaEngine engine(snap);
  const dp::Verifier& verifier = engine.verifier();

  std::cout << "snapshot: " << snap.topology.num_nodes() << " nodes, "
            << snap.topology.num_links() << " links, " << verifier.num_ecs()
            << " equivalence classes\n";
  size_t fib_total = 0;
  for (const auto& fib : engine.control_plane().fibs()) {
    fib_total += fib.size();
  }
  std::cout << "fib entries: " << fib_total << "\n";
  auto loops = verifier.all_loop_facts();
  auto blackholes = verifier.all_blackhole_facts();
  std::cout << "loops: " << loops.size() << " fact(s), blackholes: "
            << blackholes.size() << " fact(s)\n";
  for (size_t i = 0; i < std::min<size_t>(loops.size(), 10); ++i) {
    std::cout << "  loop from " << snap.topology.node_name(loops[i].src)
              << " for " << Ipv4Addr(loops[i].lo).str() << "-"
              << Ipv4Addr(loops[i].hi).str() << "\n";
  }
  return 0;
}

int cmd_diff(const std::string& base_topo, const std::string& base_cfg,
             const std::string& target_topo, const std::string& target_cfg,
             bool monolithic) {
  topo::Snapshot base =
      topo::load_snapshot(read_file(base_topo), read_file(base_cfg));
  topo::Snapshot target =
      topo::load_snapshot(read_file(target_topo), read_file(target_cfg));
  core::DnaEngine engine(std::move(base));
  core::NetworkDiff diff = engine.advance(
      std::move(target),
      monolithic ? core::Mode::kMonolithic : core::Mode::kDifferential);
  std::cout << core::render(diff, engine.snapshot().topology, 50);
  return diff.semantically_empty() ? 0 : 1;
}

int cmd_paths(const std::string& topo_path, const std::string& cfg_path,
              const std::string& src, const std::string& dst) {
  topo::Snapshot snap =
      topo::load_snapshot(read_file(topo_path), read_file(cfg_path));
  auto addr = Ipv4Addr::parse(dst);
  if (!addr) throw Error("bad destination address: " + dst);
  core::DnaEngine engine(snap);
  auto paths = core::forwarding_paths(engine.verifier(), engine.snapshot(),
                                      engine.snapshot().topology.node_id(src),
                                      *addr);
  if (paths.empty()) {
    std::cout << "no forwarding paths\n";
    return 1;
  }
  for (const auto& path : paths) {
    std::cout << path.str(engine.snapshot().topology) << "\n";
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage:\n"
      << "  dna_cli show  <topo> <cfg>\n"
      << "  dna_cli diff  <base-topo> <base-cfg> <target-topo> <target-cfg>"
         " [--monolithic]\n"
      << "  dna_cli paths <topo> <cfg> <src-node> <dst-ip>\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 3 && args[0] == "show") {
      return cmd_show(args[1], args[2]);
    }
    if (args.size() >= 5 && args[0] == "diff") {
      const bool monolithic = args.size() == 6 && args[5] == "--monolithic";
      return cmd_diff(args[1], args[2], args[3], args[4], monolithic);
    }
    if (args.size() == 5 && args[0] == "paths") {
      return cmd_paths(args[1], args[2], args[3], args[4]);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
