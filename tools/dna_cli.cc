// dna_cli — differential network analysis from the command line.
//
//   dna_cli show  <topo-file> <config-file>
//       Verify one snapshot: routes, equivalence classes, loops/blackholes.
//
//   dna_cli diff  <base-topo> <base-cfg> <target-topo> <target-cfg>
//                 [--monolithic]
//       Compute the semantic diff between two snapshots.
//
//   dna_cli paths <topo-file> <config-file> <src-node> <dst-ip>
//       Enumerate the forwarding paths a probe takes.
//
//   dna_cli whatif (--gen=<spec> | <topo-file> <config-file>) [options]
//       Batch-evaluate a sweep of candidate changes and rank them by blast
//       radius (see src/scenario/). Options:
//         --gen=fattree:K|ring:N|line:N|grid:RxC|two_tier:E,C
//                              generate the base snapshot instead of files
//         --sweep=links        fail every up link (default)
//         --sweep=costs:C      set every link's cost to C
//         --sweep=node:NAME    shut each interface of NAME
//         --sweep=random:N[:SEED]  N seeded random changes
//         --threads=N          worker threads (default: hardware)
//         --top=K              rows to print (default 10, 0 = all)
//         --json               machine-readable report on stdout
//         --timing             per-worker clone/eval timing diagnostics
//         --monolithic         evaluate scenarios monolithically
//         --host-invariants    add reachability invariants between all
//                              host-network (172.31/16) owners
//
//   dna_cli serve (--gen=<spec> | <topo-file> <config-file>)
//                 (--socket=PATH | --tcp=[HOST:]PORT) [--threads=N]
//                 [--host-invariants] [--journal-dir=PATH] [--no-fsync]
//                 [--queue-depth=N] [--keep-versions=N] [--slow-ms=N]
//       Run the long-lived query service (src/service/) on a unix-domain
//       socket or a TCP port. Clients commit changes and query any number
//       of times; the server prints its metrics after a client sends
//       `shutdown`.
//       --journal-dir enables the write-ahead commit journal: commits are
//       durable before they are acknowledged, and a restart pointed at the
//       same directory recovers the whole version history by differential
//       replay (same version ids). --no-fsync keeps journaling but skips
//       the per-commit fsync (crash may lose the tail, never tear state).
//       --queue-depth bounds the pending-query queue; saturated submits
//       shed after a deadline instead of queueing without limit.
//       --keep-versions pins the N most recent versions so `@<id>`-pinned
//       queries can time-travel into recent history.
//       --slow-ms enables the slow-query log: queries slower than N ms are
//       warned about and their span breakdown lands in the trace log
//       (`trace last N` retrieves it).
//       --http=PORT opens the HTTP observability plane on 127.0.0.1:PORT
//       (0 = ephemeral, printed at startup): GET /metrics (Prometheus
//       0.0.4), /stats.json, /healthz (200 ok / 503 unhealthy), /traces?n=N
//       and /flight?ms=W&max=M. --flight-ms=N attaches a flight recorder
//       that samples the registry every N ms into a bounded delta-
//       compressed ring (--flight-cap=S samples, default 2048), queryable
//       over /flight or the `flight` verb and auto-sampled at slow-query
//       and shard-death moments.
//
//   dna_cli shard-serve (--gen=<spec> | <topo> <cfg>) --tcp=[HOST:]PORT
//                 [serve flags...]
//       Run one shard of a sharded deployment: a full DnaService over TCP
//       (same flags as serve; give each shard its own --journal-dir).
//       Shards are kept in lock-step by the router's commit fan-out; a
//       restarted shard first recovers its own journal, then the router
//       replays whatever it missed.
//
//   dna_cli route --tcp=[HOST:]PORT --shards=HOST:PORT[,HOST:PORT...]
//                 [--replicas=R] [--quorum=Q]
//                 [--http=PORT] [--flight-ms=N] [--flight-cap=S]
//       Run the shard router (src/service/shard/): owns the consistent-
//       hash partition map over the listed shards (R replicas per
//       partition, default 2), routes single-source queries to the
//       replica set with deterministic failover, scatter/gathers global
//       checks, broadcasts commits (succeeding at >= Q identical-version
//       acks, default 1), catches restarted shards up by replay, and
//       warms wiped/new shards by journal-seeded sync. Clients talk to it
//       exactly like a monolithic server.
//
//   All three serving roles (serve, shard-serve, route) drain gracefully
//   on SIGTERM/SIGINT: stop accepting, give in-flight requests a grace
//   period, close the journal, exit 0.
//
//   dna_cli query (--socket=PATH | --tcp=HOST:PORT) [--version=N] [--trace]
//                 <request> [<request> ...]
//       Send request lines to a running server (or router), one response
//       per line printed to stdout. --version pins every request to live
//       version N (prefixes "@N "); --trace asks the server to trace each
//       request and prints the span breakdown (against a router, the trace
//       stitches in every shard's legs). See src/service/query.h for the
//       language, e.g.:
//         dna_cli query --socket=/tmp/dna.sock version \
//             "reach r0 172.31.1.1" "commit fail_link 2" "whatif fail_link 3"
//
//   dna_cli stats (--socket=PATH | --tcp=HOST:PORT) [--json | --prom]
//       One-shot stats scrape of a server or router: the obs registry as
//       human text (default), JSON, or Prometheus 0.0.4 text exposition.
//
//   dna_cli top (--socket=PATH | --tcp=HOST:PORT) [--interval=SECONDS]
//                 [--count=N]
//       Live service dashboard: samples `stats json` every interval
//       (default 2 s) and prints one line per sample — query rate since the
//       last sample plus latency quantiles. --count bounds the samples
//       (default 0 = until interrupted; 1 = a single absolute snapshot).
//       A counter reset (server restart between samples) prints as
//       `(reset)` instead of a bogus negative rate.
//
//   dna_cli dash (--socket=PATH | --tcp=HOST:PORT) [--interval=SECONDS]
//                 [--count=N] [--no-clear]
//       Live terminal dashboard over `stats json`: throughput and commit
//       rates, queue depth, per-leg latency quantiles (queue wait, replica
//       catch-up, eval, total), slow-query and journal-error counters —
//       redrawn in place every interval. Against a router it shows routed/
//       scatter rates and per-shard RTT quantiles instead.
//
//   dna_cli diagnose (--socket=PATH | --tcp=HOST:PORT) [--queries=N]
//                 [--json]
//       Ask a running server (or router) to profile itself: the `diagnose`
//       verb drives N probe queries strictly sequentially, then the same N
//       flooded across its workers, and replies with an Amdahl-style
//       attribution report — per-leg shares of the flood's wall time, the
//       measured speedup, the inferred serial fraction, and a verdict
//       naming the leg that dominates the scaling collapse (ROADMAP #1).
//
//   dna_cli risk (--socket=PATH | --tcp=HOST:PORT) [--sweep=TOKEN] [--top=N]
//                 [--at=V] [--rank] [--json] [--diff V1 V2]
//       Risk analytics over a live service: the ranked keystone table for a
//       sweep (`links` by default; `costs:<c>`, `node:<name>`,
//       `random:<n>[:<seed>]`), with blast-radius and invariant-fragility
//       summaries. --rank asks for the slim ranking body, --at pins a live
//       version, --diff renders the enriched/depleted/stable classification
//       between two committed versions, --json prints the raw body the
//       server memoized (byte-identical on every re-read).
//
// File formats: topo/textio.h (topology) and config/parser.h (configs).
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <thread>

#include "core/engine.h"
#include "obs/httpd.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "core/paths.h"
#include "core/report.h"
#include "scenario/runner.h"
#include "service/net/server.h"
#include "service/net/tcp.h"
#include "service/session.h"
#include "service/shard/router.h"
#include "service/transport.h"
#include "topo/generators.h"
#include "topo/textio.h"
#include "util/json.h"
#include "util/strings.h"

using namespace dna;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_show(const std::string& topo_path, const std::string& cfg_path) {
  topo::Snapshot snap =
      topo::load_snapshot(read_file(topo_path), read_file(cfg_path));
  core::DnaEngine engine(snap);
  const dp::Verifier& verifier = engine.verifier();

  std::cout << "snapshot: " << snap.topology.num_nodes() << " nodes, "
            << snap.topology.num_links() << " links, " << verifier.num_ecs()
            << " equivalence classes\n";
  size_t fib_total = 0;
  for (const auto& fib : engine.control_plane().fibs()) {
    fib_total += fib.size();
  }
  std::cout << "fib entries: " << fib_total << "\n";
  auto loops = verifier.all_loop_facts();
  auto blackholes = verifier.all_blackhole_facts();
  std::cout << "loops: " << loops.size() << " fact(s), blackholes: "
            << blackholes.size() << " fact(s)\n";
  for (size_t i = 0; i < std::min<size_t>(loops.size(), 10); ++i) {
    std::cout << "  loop from " << snap.topology.node_name(loops[i].src)
              << " for " << Ipv4Addr(loops[i].lo).str() << "-"
              << Ipv4Addr(loops[i].hi).str() << "\n";
  }
  return 0;
}

int cmd_diff(const std::string& base_topo, const std::string& base_cfg,
             const std::string& target_topo, const std::string& target_cfg,
             bool monolithic) {
  topo::Snapshot base =
      topo::load_snapshot(read_file(base_topo), read_file(base_cfg));
  topo::Snapshot target =
      topo::load_snapshot(read_file(target_topo), read_file(target_cfg));
  core::DnaEngine engine(std::move(base));
  core::NetworkDiff diff = engine.advance(
      std::move(target),
      monolithic ? core::Mode::kMonolithic : core::Mode::kDifferential);
  std::cout << core::render(diff, engine.snapshot().topology, 50);
  return diff.semantically_empty() ? 0 : 1;
}

int cmd_paths(const std::string& topo_path, const std::string& cfg_path,
              const std::string& src, const std::string& dst) {
  topo::Snapshot snap =
      topo::load_snapshot(read_file(topo_path), read_file(cfg_path));
  auto addr = Ipv4Addr::parse(dst);
  if (!addr) throw Error("bad destination address: " + dst);
  core::DnaEngine engine(snap);
  auto paths = core::forwarding_paths(engine.verifier(), engine.snapshot(),
                                      engine.snapshot().topology.node_id(src),
                                      *addr);
  if (paths.empty()) {
    std::cout << "no forwarding paths\n";
    return 1;
  }
  for (const auto& path : paths) {
    std::cout << path.str(engine.snapshot().topology) << "\n";
  }
  return 0;
}

// ---- whatif ---------------------------------------------------------------

/// Strict integer parse: the whole string must be a number.
int as_int(const std::string& s) {
  try {
    size_t used = 0;
    const int value = std::stoi(s, &used);
    if (used != s.size()) throw Error("bad number: " + s);
    return value;
  } catch (const std::logic_error&) {  // stoi's invalid_argument/out_of_range
    throw Error("bad number: " + s);
  }
}

/// Strict unsigned 64-bit parse, for RNG seeds.
uint64_t as_u64(const std::string& s) {
  try {
    size_t used = 0;
    const uint64_t value = std::stoull(s, &used);
    if (used != s.size()) throw Error("bad number: " + s);
    return value;
  } catch (const std::logic_error&) {
    throw Error("bad number: " + s);
  }
}

/// "fattree:4" -> make_fattree(4), etc. Throws on a malformed spec.
topo::Snapshot generate_snapshot(const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) throw Error("bad --gen spec: " + spec);
  const std::string kind = spec.substr(0, colon);
  const std::string params = spec.substr(colon + 1);
  if (kind == "fattree") return topo::make_fattree(as_int(params));
  if (kind == "ring") return topo::make_ring(as_int(params));
  if (kind == "line") return topo::make_line(as_int(params));
  if (kind == "grid") {
    const size_t x = params.find('x');
    if (x == std::string::npos) throw Error("bad grid spec: " + params);
    return topo::make_grid(as_int(params.substr(0, x)),
                           as_int(params.substr(x + 1)));
  }
  if (kind == "two_tier") {
    const size_t comma = params.find(',');
    if (comma == std::string::npos) throw Error("bad two_tier spec: " + params);
    return topo::make_two_tier_as(as_int(params.substr(0, comma)),
                                  as_int(params.substr(comma + 1)));
  }
  throw Error("unknown --gen kind: " + kind);
}

/// Base snapshot from --gen=<spec> or a <topo> <cfg> file pair.
topo::Snapshot load_base(const std::string& gen,
                         const std::vector<std::string>& files,
                         const std::string& command) {
  if (!gen.empty()) return generate_snapshot(gen);
  if (files.size() == 2) {
    return topo::load_snapshot(read_file(files[0]), read_file(files[1]));
  }
  throw Error(command + " needs --gen=<spec> or <topo> <cfg>");
}

/// The standard intent set: loop freedom, plus host-to-host reachability
/// when requested.
std::vector<core::Invariant> standard_invariants(const topo::Snapshot& base,
                                                 bool want_host_invariants) {
  std::vector<core::Invariant> invariants = {
      {core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()}};
  if (want_host_invariants) {
    auto more = scenario::host_reachability_invariants(base);
    invariants.insert(invariants.end(), more.begin(), more.end());
  }
  return invariants;
}

int cmd_whatif(const std::vector<std::string>& args) {
  std::string gen, sweep = "links";
  std::vector<std::string> files;
  size_t threads = 0, top_k = 10;
  bool monolithic = false, want_host_invariants = false, json = false;
  bool timing = false;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto value_of = [&](const std::string& flag) {
      return arg.substr(flag.size());
    };
    if (starts_with(arg, "--gen=")) {
      gen = value_of("--gen=");
    } else if (starts_with(arg, "--sweep=")) {
      sweep = value_of("--sweep=");
    } else if (starts_with(arg, "--threads=")) {
      const int value = as_int(value_of("--threads="));
      if (value < 0) throw Error("--threads must be >= 0");
      threads = static_cast<size_t>(value);
    } else if (starts_with(arg, "--top=")) {
      const int value = as_int(value_of("--top="));
      if (value < 0) throw Error("--top must be >= 0");
      top_k = static_cast<size_t>(value);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--monolithic") {
      monolithic = true;
    } else if (arg == "--host-invariants") {
      want_host_invariants = true;
    } else if (starts_with(arg, "--")) {
      throw Error("unknown whatif flag: " + arg);
    } else {
      files.push_back(arg);
    }
  }

  topo::Snapshot base = load_base(gen, files, "whatif");
  std::vector<core::Invariant> invariants =
      standard_invariants(base, want_host_invariants);

  std::vector<scenario::ScenarioSpec> specs;
  if (sweep == "links") {
    specs = scenario::link_failure_sweep(base);
  } else if (starts_with(sweep, "costs:")) {
    specs = scenario::link_cost_sweep(base, as_int(sweep.substr(6)));
  } else if (starts_with(sweep, "node:")) {
    specs = scenario::interface_shutdown_sweep(base, sweep.substr(5));
  } else if (starts_with(sweep, "random:")) {
    const std::string params = sweep.substr(7);
    const size_t colon = params.find(':');
    const int count = as_int(params.substr(0, colon));
    if (count < 0) throw Error("random sweep count must be >= 0: " + sweep);
    const uint64_t seed = colon == std::string::npos
                              ? 0x5eed
                              : as_u64(params.substr(colon + 1));
    specs = scenario::random_change_sweep(base, count, seed);
  } else {
    throw Error("unknown sweep: " + sweep);
  }

  if (!json) {
    std::cout << "base: " << base.topology.num_nodes() << " nodes, "
              << base.topology.num_links() << " links | " << specs.size()
              << " scenario(s), " << invariants.size() << " invariant(s)\n";
  }

  scenario::ScenarioRunner runner(std::move(base), std::move(invariants));
  scenario::RunnerOptions options;
  options.num_threads = threads;
  options.mode = monolithic ? core::Mode::kMonolithic : core::Mode::kDifferential;
  scenario::ScenarioReport report = runner.run(specs, options);

  if (json) {
    // Machine-readable: exactly one JSON document on stdout, nothing else;
    // timing diagnostics go to stderr so they cannot corrupt the document.
    std::cout << scenario::to_json(report) << "\n";
    if (timing) std::cerr << report.timing_str();
  } else {
    std::cout << report.str(top_k)
              << "evaluated on " << report.threads << " thread(s) in "
              << report.seconds_total << " s\n";
    if (timing) std::cout << report.timing_str();
  }
  return report.failures == 0 ? 0 : 1;
}

// ---- serve / query --------------------------------------------------------

/// Shared --http= / --flight-ms= / --flight-cap= knobs of the serving
/// commands (serve, shard-serve, route).
struct ObsPlaneOptions {
  int http_port = -1;        // -1 = no HTTP endpoint; 0 = ephemeral
  uint64_t flight_ms = 0;    // 0 = no flight recorder
  size_t flight_cap = 2048;  // retained recorder samples

  /// Consumes the flag if it is one of ours; returns whether it was.
  bool parse_flag(const std::string& arg) {
    if (starts_with(arg, "--http=")) {
      const int value = as_int(arg.substr(7));
      if (value < 0 || value > 65535) throw Error("--http needs a port");
      http_port = value;
      return true;
    }
    if (starts_with(arg, "--flight-ms=")) {
      const int value = as_int(arg.substr(12));
      if (value <= 0) throw Error("--flight-ms must be > 0");
      flight_ms = static_cast<uint64_t>(value);
      return true;
    }
    if (starts_with(arg, "--flight-cap=")) {
      const int value = as_int(arg.substr(13));
      if (value <= 0) throw Error("--flight-cap must be > 0");
      flight_cap = static_cast<size_t>(value);
      return true;
    }
    return false;
  }
};

/// The running observability side-plane of one serving process: an optional
/// flight recorder plus an optional HTTP endpoint over the component's
/// registry, trace log, and health callback. Stop with shutdown() before
/// the component it observes goes away.
struct ObsPlane {
  std::unique_ptr<obs::FlightRecorder> recorder;
  std::unique_ptr<obs::HttpServer> http;

  void shutdown() {
    if (http) http->stop();
    if (recorder) recorder->stop();
  }
};

/// Builds, starts, and announces the side-plane. `health` must be
/// thread-safe; the recorder (when enabled) is started but the caller still
/// attaches it to the component (set_flight_recorder) so events flow.
ObsPlane start_obs_plane(const ObsPlaneOptions& options,
                         const obs::Registry& registry, obs::TraceLog& traces,
                         std::function<std::pair<bool, std::string>()> health) {
  ObsPlane plane;
  if (options.flight_ms > 0) {
    obs::FlightRecorder::Options recorder_options;
    recorder_options.interval_ms = options.flight_ms;
    recorder_options.capacity = options.flight_cap;
    plane.recorder =
        std::make_unique<obs::FlightRecorder>(registry, recorder_options);
    plane.recorder->start();
    std::cout << "flight recorder: every " << options.flight_ms << " ms, "
              << options.flight_cap << " samples retained\n";
  }
  if (options.http_port >= 0) {
    obs::ObsEndpoints endpoints;
    endpoints.prometheus = [&registry] { return registry.prometheus_text(); };
    endpoints.stats_json = [&registry] {
      util::JsonWriter json;
      json.begin_object();
      registry.append_json(json);
      json.end_object();
      return json.str();
    };
    endpoints.health = std::move(health);
    endpoints.traces = [&traces](size_t n) { return traces.json(n); };
    if (plane.recorder) {
      obs::FlightRecorder* recorder = plane.recorder.get();
      endpoints.flight = [recorder](uint64_t window_ms, size_t max_samples) {
        const uint64_t now = obs::now_ns();
        const uint64_t span = window_ms * 1000000ull;
        const uint64_t start = (window_ms == 0 || span > now) ? 0 : now - span;
        return recorder->json(start, ~uint64_t{0}, max_samples);
      };
    }
    plane.http = std::make_unique<obs::HttpServer>(
        static_cast<uint16_t>(options.http_port),
        obs::make_obs_handler(std::move(endpoints)));
    plane.http->start();
    std::cout << "observability on http://" << plane.http->host() << ":"
              << plane.http->port()
              << "/ (metrics, stats.json, healthz, traces, flight)\n";
  }
  return plane;
}

/// The listener SIGTERM/SIGINT close to begin a graceful drain. Closing a
/// listener is ::shutdown(2) on the listening socket — async-signal-safe —
/// which unblocks the accept loop; SessionServer then drains in-flight
/// sessions under its grace period and the serving command unwinds
/// normally (journal closed by the service destructor, exit 0).
std::atomic<service::Listener*> g_drain_listener{nullptr};

void drain_signal_handler(int) {
  if (service::Listener* listener = g_drain_listener.load()) {
    listener->close();
  }
}

/// Points SIGTERM/SIGINT at `listener` (nullptr restores default disposition).
void install_drain_handlers(service::Listener* listener) {
  g_drain_listener.store(listener);
  std::signal(SIGTERM, listener != nullptr ? drain_signal_handler : SIG_DFL);
  std::signal(SIGINT, listener != nullptr ? drain_signal_handler : SIG_DFL);
}

/// How long a draining server waits for in-flight requests before evicting.
constexpr uint64_t kDrainGraceMs = 2000;

/// serve and shard-serve share everything but the banner and the required
/// listener kind: a shard is a full DnaService that must speak TCP so a
/// router (and its peers' operators) can reach it.
int cmd_serve(const std::vector<std::string>& args, bool shard_mode) {
  std::string gen, socket_path, tcp_endpoint;
  std::vector<std::string> files;
  service::ServiceOptions options;
  ObsPlaneOptions obs_options;
  bool want_host_invariants = false;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (obs_options.parse_flag(arg)) {
      continue;
    } else if (starts_with(arg, "--gen=")) {
      gen = arg.substr(6);
    } else if (starts_with(arg, "--socket=")) {
      socket_path = arg.substr(9);
    } else if (starts_with(arg, "--tcp=")) {
      tcp_endpoint = arg.substr(6);
    } else if (starts_with(arg, "--threads=")) {
      const int value = as_int(arg.substr(10));
      if (value < 0) throw Error("--threads must be >= 0");
      options.num_threads = static_cast<size_t>(value);
    } else if (starts_with(arg, "--journal-dir=")) {
      options.journal_dir = arg.substr(14);
      if (options.journal_dir.empty()) {
        throw Error("--journal-dir needs a path");
      }
    } else if (arg == "--no-fsync") {
      options.journal_fsync = service::FsyncPolicy::kNever;
    } else if (starts_with(arg, "--queue-depth=")) {
      const int value = as_int(arg.substr(14));
      if (value < 0) throw Error("--queue-depth must be >= 0");
      options.max_queue_depth = static_cast<size_t>(value);
    } else if (starts_with(arg, "--keep-versions=")) {
      const int value = as_int(arg.substr(16));
      if (value < 0) throw Error("--keep-versions must be >= 0");
      options.keep_versions = static_cast<size_t>(value);
    } else if (starts_with(arg, "--slow-ms=")) {
      const int value = as_int(arg.substr(10));
      if (value < 0) throw Error("--slow-ms must be >= 0");
      options.slow_query_ns = static_cast<uint64_t>(value) * 1000000;
    } else if (arg == "--host-invariants") {
      want_host_invariants = true;
    } else if (starts_with(arg, "--")) {
      throw Error("unknown serve flag: " + arg);
    } else {
      files.push_back(arg);
    }
  }
  const char* role = shard_mode ? "shard-serve" : "serve";
  if (shard_mode && tcp_endpoint.empty()) {
    throw Error("shard-serve needs --tcp=[HOST:]PORT");
  }
  if (socket_path.empty() == tcp_endpoint.empty()) {
    throw Error(std::string(role) +
                " needs exactly one of --socket=PATH or --tcp=[HOST:]PORT");
  }

  topo::Snapshot base = load_base(gen, files, role);
  std::vector<core::Invariant> invariants =
      standard_invariants(base, want_host_invariants);

  std::cout << "base: " << base.topology.num_nodes() << " nodes, "
            << base.topology.num_links() << " links, " << invariants.size()
            << " invariant(s)\n";
  service::DnaService dna_service(std::move(base), std::move(invariants),
                                  options);
  if (dna_service.journaling()) {
    std::cout << "journal: " << options.journal_dir << " (fsync "
              << (options.journal_fsync == service::FsyncPolicy::kAlways
                      ? "on"
                      : "off")
              << "), recovered " << dna_service.recovered_commits()
              << " commit(s), head version " << dna_service.head()->id
              << "\n";
  }

  ObsPlane obs_plane = start_obs_plane(
      obs_options, dna_service.registry(), dna_service.trace_log(),
      [&dna_service] {
        const service::Health health = dna_service.health();
        return std::make_pair(health.ok, health.detail);
      });
  if (obs_plane.recorder) {
    dna_service.set_flight_recorder(obs_plane.recorder.get());
  }

  std::unique_ptr<service::Listener> listener;
  std::string where;
  if (!socket_path.empty()) {
    listener = std::make_unique<service::UnixListener>(socket_path);
    where = socket_path;
  } else {
    const service::HostPort endpoint = service::parse_hostport(tcp_endpoint);
    auto tcp =
        std::make_unique<service::TcpListener>(endpoint.port, endpoint.host);
    where = tcp->host() + ":" + std::to_string(tcp->port());
    listener = std::move(tcp);
  }
  std::cout << (shard_mode ? "shard serving on " : "serving on ") << where
            << " with " << dna_service.num_workers() << " worker(s)\n"
            << std::flush;

  service::SessionServer server(*listener,
                                [&dna_service](service::Transport& transport) {
                                  service::ServerSession session(dna_service,
                                                                 transport);
                                  session.run();
                                  return session.shutdown_requested();
                                });
  // SIGTERM/SIGINT begin a graceful drain: stop accepting, let in-flight
  // requests finish, then unwind (the service destructor closes the
  // journal) and exit 0.
  server.set_drain_grace_ms(kDrainGraceMs);
  install_drain_handlers(listener.get());
  server.run();
  install_drain_handlers(nullptr);
  // The plane reads the service's registry; stop it (and detach the
  // recorder) before the service winds down.
  dna_service.set_flight_recorder(nullptr);
  obs_plane.shutdown();
  dna_service.shutdown();
  std::cout << dna_service.metrics().str();
  return 0;
}

int cmd_route(const std::vector<std::string>& args) {
  std::string tcp_endpoint, shard_list;
  service::shard::RouterOptions router_options;
  ObsPlaneOptions obs_options;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (obs_options.parse_flag(arg)) {
      continue;
    } else if (starts_with(arg, "--tcp=")) {
      tcp_endpoint = arg.substr(6);
    } else if (starts_with(arg, "--shards=")) {
      shard_list = arg.substr(9);
    } else if (starts_with(arg, "--replicas=")) {
      const int value = as_int(arg.substr(11));
      if (value < 1) throw Error("--replicas must be >= 1");
      router_options.replicas = static_cast<uint32_t>(value);
    } else if (starts_with(arg, "--quorum=")) {
      const int value = as_int(arg.substr(9));
      if (value < 1) throw Error("--quorum must be >= 1");
      router_options.quorum = static_cast<uint32_t>(value);
    } else if (starts_with(arg, "--")) {
      throw Error("unknown route flag: " + arg);
    }
  }
  if (tcp_endpoint.empty()) throw Error("route needs --tcp=[HOST:]PORT");
  if (shard_list.empty()) {
    throw Error("route needs --shards=HOST:PORT[,HOST:PORT...]");
  }

  std::vector<service::shard::Dialer> dialers;
  for (const std::string& endpoint_text : split(shard_list, ',')) {
    const service::HostPort endpoint = service::parse_hostport(endpoint_text);
    dialers.push_back([endpoint] {
      return service::connect_tcp(endpoint.host, endpoint.port);
    });
  }
  service::shard::ShardRouter router(std::move(dialers), router_options);
  const size_t reachable = router.connect_all();
  std::cout << "routing over " << router.num_shards() << " shard(s) ("
            << reachable << " reachable), consistent-hash ring ("
            << service::shard::PartitionMap::kVirtualNodes
            << " vnodes/shard), R=" << router.options().replicas
            << " quorum=" << router.options().quorum << "\n";

  ObsPlane obs_plane = start_obs_plane(
      obs_options, router.registry(), router.trace_log(), [&router] {
        const service::Health health = router.health();
        return std::make_pair(health.ok, health.detail);
      });
  if (obs_plane.recorder) {
    router.set_flight_recorder(obs_plane.recorder.get());
  }

  const service::HostPort endpoint = service::parse_hostport(tcp_endpoint);
  service::TcpListener listener(endpoint.port, endpoint.host);
  std::cout << "routing on " << listener.host() << ":" << listener.port()
            << "\n"
            << std::flush;
  service::SessionServer server(
      listener, [&router](service::Transport& transport) {
        service::shard::RouterSession session(router, transport);
        session.run();
        return session.shutdown_requested();
      });
  server.set_drain_grace_ms(kDrainGraceMs);
  install_drain_handlers(&listener);
  server.run();
  install_drain_handlers(nullptr);
  router.set_flight_recorder(nullptr);
  obs_plane.shutdown();
  std::cout << router.metrics().str();
  return 0;
}

/// Dials a server from the shared --socket=/--tcp= flag pair.
std::unique_ptr<service::Transport> dial_server(const std::string& socket_path,
                                               const std::string& tcp_endpoint,
                                               const std::string& command) {
  if (socket_path.empty() == tcp_endpoint.empty()) {
    throw Error(command +
                " needs exactly one of --socket=PATH or --tcp=HOST:PORT");
  }
  if (!socket_path.empty()) return service::connect_unix(socket_path);
  const service::HostPort endpoint = service::parse_hostport(tcp_endpoint);
  return service::connect_tcp(endpoint.host, endpoint.port);
}

int cmd_query(const std::vector<std::string>& args) {
  std::string socket_path, tcp_endpoint, pin_prefix;
  bool trace = false;
  std::vector<std::string> requests;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (starts_with(arg, "--socket=")) {
      socket_path = arg.substr(9);
    } else if (starts_with(arg, "--tcp=")) {
      tcp_endpoint = arg.substr(6);
    } else if (starts_with(arg, "--version=")) {
      const int value = as_int(arg.substr(10));
      if (value <= 0) throw Error("--version must be >= 1");
      pin_prefix = "@" + std::to_string(value) + " ";
    } else if (arg == "--trace") {
      trace = true;
    } else if (starts_with(arg, "--")) {
      throw Error("unknown query flag: " + arg);
    } else {
      requests.push_back(arg);
    }
  }
  if (requests.empty()) throw Error("query needs at least one request");

  std::unique_ptr<service::Transport> transport =
      dial_server(socket_path, tcp_endpoint, "query");
  service::ServiceClient client(*transport);
  bool all_ok = true;
  for (const std::string& request : requests) {
    // Session commands are not queries; pinning them would only confuse the
    // server's command matcher. (Tracing still applies to commits.)
    const std::string verb = request.substr(0, request.find(' '));
    const bool command = verb == "metrics" || verb == "stats" ||
                         verb == "trace" || verb == "shutdown" ||
                         verb == "commit";
    std::string line = command ? request : pin_prefix + request;
    // The trace tag must lead the line, ahead of any @N pin.
    if (trace && verb != "metrics" && verb != "stats" && verb != "trace" &&
        verb != "shutdown") {
      line = "trace:auto " + line;
    }
    const service::QueryResult result = client.request(line);
    if (result.ok) {
      std::cout << "[v" << result.version << "] " << result.body << "\n";
    } else {
      all_ok = false;
      std::cout << "[v" << result.version << "] error: " << result.body
                << "\n";
    }
    if (!result.trace.empty()) {
      if (const auto decoded = obs::Trace::decode(result.trace)) {
        std::cout << decoded->str();
      }
    }
  }
  client.close();
  return all_ok ? 0 : 1;
}

int cmd_stats(const std::vector<std::string>& args) {
  std::string socket_path, tcp_endpoint, form = "stats";
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (starts_with(arg, "--socket=")) {
      socket_path = arg.substr(9);
    } else if (starts_with(arg, "--tcp=")) {
      tcp_endpoint = arg.substr(6);
    } else if (arg == "--json") {
      form = "stats json";
    } else if (arg == "--prom") {
      form = "stats prom";
    } else if (starts_with(arg, "--")) {
      throw Error("unknown stats flag: " + arg);
    } else {
      throw Error("stats takes no positional arguments");
    }
  }
  std::unique_ptr<service::Transport> transport =
      dial_server(socket_path, tcp_endpoint, "stats");
  service::ServiceClient client(*transport);
  const service::QueryResult result = client.request(form);
  client.close();
  if (!result.ok) {
    std::cerr << "error: " << result.body << "\n";
    return 1;
  }
  std::cout << result.body;
  if (!result.body.empty() && result.body.back() != '\n') std::cout << "\n";
  return 0;
}

// ---- top: a minimal live dashboard over `stats json` ----------------------

/// Scans a JSON document for `"key":` and parses the number after it.
/// Targeted key scanning (the bench baseline reader uses the same trick)
/// keeps the CLI free of a JSON parser dependency; our own JsonWriter emits
/// no whitespace, so the pattern is exact. Returns `fallback` if absent.
double scan_json_number(const std::string& json, const std::string& key,
                        double fallback) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return fallback;
  try {
    return std::stod(json.substr(at + needle.size()));
  } catch (const std::logic_error&) {
    return fallback;
  }
}

/// The `{...}` object value following `"key":`, or "" if absent.
std::string scan_json_object(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":{";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  size_t depth = 0;
  for (size_t i = at + needle.size() - 1; i < json.size(); ++i) {
    if (json[i] == '{') ++depth;
    if (json[i] == '}' && --depth == 0) {
      return json.substr(at + needle.size() - 1, i - (at + needle.size() - 1) + 1);
    }
  }
  return "";
}

int cmd_top(const std::vector<std::string>& args) {
  std::string socket_path, tcp_endpoint;
  double interval = 2.0;
  size_t count = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (starts_with(arg, "--socket=")) {
      socket_path = arg.substr(9);
    } else if (starts_with(arg, "--tcp=")) {
      tcp_endpoint = arg.substr(6);
    } else if (starts_with(arg, "--interval=")) {
      interval = std::stod(arg.substr(11));
      if (interval <= 0) throw Error("--interval must be > 0");
    } else if (starts_with(arg, "--count=")) {
      const int value = as_int(arg.substr(8));
      if (value < 0) throw Error("--count must be >= 0");
      count = static_cast<size_t>(value);
    } else if (starts_with(arg, "--")) {
      throw Error("unknown top flag: " + arg);
    } else {
      throw Error("top takes no positional arguments");
    }
  }
  std::unique_ptr<service::Transport> transport =
      dial_server(socket_path, tcp_endpoint, "top");
  service::ServiceClient client(*transport);

  double last_total = -1;
  for (size_t sample = 0; count == 0 || sample < count; ++sample) {
    if (sample > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(interval * 1000)));
    }
    const service::QueryResult result = client.request("stats json");
    if (!result.ok) {
      std::cerr << "error: " << result.body << "\n";
      return 1;
    }
    // A monolithic server exposes service.*; a router exposes router.*.
    const bool router = result.body.find("\"router.") != std::string::npos;
    const double total =
        router ? scan_json_number(result.body, "router.queries_routed", 0) +
                     scan_json_number(result.body, "router.scatters", 0)
               : scan_json_number(result.body, "service.queries_total", 0);
    const std::string latency = scan_json_object(
        result.body,
        router ? "router.s0.rtt_seconds" : "service.query_seconds");
    std::ostringstream line;
    line << "[v" << result.version << "] queries " << total;
    if (last_total >= 0) {
      // Counters are monotone within one server lifetime; a negative delta
      // means the process restarted between samples. Flag the reset
      // instead of printing a nonsense negative rate, and let the next
      // sample re-baseline.
      if (total < last_total) {
        line << " (reset)";
      } else {
        line << " (+" << (total - last_total) / interval << "/s)";
      }
    }
    if (!latency.empty()) {
      line << " | " << (router ? "s0 rtt" : "latency") << " p50 "
           << scan_json_number(latency, "p50", 0) * 1e3 << " ms p95 "
           << scan_json_number(latency, "p95", 0) * 1e3 << " ms p99 "
           << scan_json_number(latency, "p99", 0) * 1e3 << " ms";
    }
    if (!router) {
      line << " | commits " << scan_json_number(result.body,
                                                "service.commits", 0);
    }
    std::cout << line.str() << "\n" << std::flush;
    last_total = total;
  }
  client.close();
  return 0;
}

// ---- dash: a full-screen live view over `stats json` ----------------------

/// One latency-table row: label, p50/p95/p99 in ms, observation count —
/// from the histogram object at `key` in the stats document ("" if absent).
std::string dash_latency_row(const std::string& json, const std::string& key,
                             const std::string& label) {
  const std::string hist = scan_json_object(json, key);
  if (hist.empty()) return "";
  std::ostringstream row;
  row << "  " << std::left << std::setw(20) << label << std::right
      << std::fixed << std::setprecision(2);
  for (const char* quantile : {"p50", "p95", "p99"}) {
    row << std::setw(10) << scan_json_number(hist, quantile, 0) * 1e3;
  }
  row << std::setw(10)
      << static_cast<long long>(scan_json_number(hist, "count", 0)) << "\n";
  return row.str();
}

int cmd_dash(const std::vector<std::string>& args) {
  std::string socket_path, tcp_endpoint;
  double interval = 2.0;
  size_t count = 0;
  bool clear = true;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (starts_with(arg, "--socket=")) {
      socket_path = arg.substr(9);
    } else if (starts_with(arg, "--tcp=")) {
      tcp_endpoint = arg.substr(6);
    } else if (starts_with(arg, "--interval=")) {
      interval = std::stod(arg.substr(11));
      if (interval <= 0) throw Error("--interval must be > 0");
    } else if (starts_with(arg, "--count=")) {
      const int value = as_int(arg.substr(8));
      if (value < 0) throw Error("--count must be >= 0");
      count = static_cast<size_t>(value);
    } else if (arg == "--no-clear") {
      clear = false;
    } else if (starts_with(arg, "--")) {
      throw Error("unknown dash flag: " + arg);
    } else {
      throw Error("dash takes no positional arguments");
    }
  }
  std::unique_ptr<service::Transport> transport =
      dial_server(socket_path, tcp_endpoint, "dash");
  service::ServiceClient client(*transport);

  double last_queries = -1, last_commits = -1, last_scatters = -1;
  for (size_t sample = 0; count == 0 || sample < count; ++sample) {
    if (sample > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(static_cast<long>(interval * 1000)));
    }
    const service::QueryResult result = client.request("stats json");
    if (!result.ok) {
      std::cerr << "error: " << result.body << "\n";
      return 1;
    }
    const std::string& body = result.body;
    const bool router = body.find("\"router.") != std::string::npos;
    auto num = [&body](const std::string& key) {
      return scan_json_number(body, key, 0);
    };
    // Rate since the previous sample, re-baselining after a counter reset
    // (server restart) — same contract as `top`.
    auto rate = [interval](double current, double& last) {
      std::ostringstream out;
      if (last >= 0 && current >= last) {
        out << " (+" << std::fixed << std::setprecision(1)
            << (current - last) / interval << "/s)";
      } else if (last >= 0) {
        out << " (reset)";
      }
      last = current;
      return out.str();
    };

    std::ostringstream screen;
    screen << "dna dash — " << (router ? "router" : "service") << " v"
           << result.version << " · every " << interval << " s · sample "
           << sample + 1 << (count > 0 ? "/" + std::to_string(count) : "")
           << "\n\n";
    if (router) {
      screen << "  routed   "
             << static_cast<long long>(num("router.queries_routed"))
             << rate(num("router.queries_routed"), last_queries)
             << "   scatters "
             << static_cast<long long>(num("router.scatters"))
             << rate(num("router.scatters"), last_scatters) << "\n"
             << "  commits  " << static_cast<long long>(num("router.commits"))
             << rate(num("router.commits"), last_commits) << " (degraded "
             << static_cast<long long>(num("router.degraded_commits")) << ")"
             << "   shard errors "
             << static_cast<long long>(num("router.shard_errors"))
             << "   reconnects "
             << static_cast<long long>(num("router.reconnects")) << "\n"
             << "  healing  failovers "
             << static_cast<long long>(num("router.failovers"))
             << "   syncs " << static_cast<long long>(num("router.syncs"))
             << "   breaker opens "
             << static_cast<long long>(num("router.breaker_opens"))
             << "   replayed "
             << static_cast<long long>(num("router.replayed_commits"))
             << "\n\n";
      screen << "  latency (ms)            p50       p95       p99     count\n"
             << dash_latency_row(body, "router.request_seconds", "request");
      for (size_t shard = 0; shard < 64; ++shard) {
        const std::string row = dash_latency_row(
            body, "router.s" + std::to_string(shard) + ".rtt_seconds",
            "s" + std::to_string(shard) + " rtt");
        if (row.empty()) break;
        screen << row;
      }
    } else {
      screen << "  queries  "
             << static_cast<long long>(num("service.queries_total"))
             << rate(num("service.queries_total"), last_queries)
             << "   failed " << static_cast<long long>(num("service.queries_failed"))
             << "   shed " << static_cast<long long>(num("service.queries_shed"))
             << "   slow " << static_cast<long long>(num("service.slow_queries"))
             << "\n"
             << "  commits  " << static_cast<long long>(num("service.commits"))
             << rate(num("service.commits"), last_commits)
             << "   queue depth "
             << static_cast<long long>(num("service.queue_depth")) << " (max "
             << static_cast<long long>(num("service.max_queue_depth")) << ")"
             << "   journal errors "
             << static_cast<long long>(num("service.journal_errors"))
             << "\n\n";
      screen << "  latency (ms)            p50       p95       p99     count\n"
             << dash_latency_row(body, "service.query_queue_seconds",
                                 "queue wait")
             << dash_latency_row(body, "service.query_fanout_seconds",
                                 "batch fan-out")
             << dash_latency_row(body, "service.replica_catchup_seconds",
                                 "replica catch-up")
             << dash_latency_row(body, "service.query_eval_seconds", "eval")
             << dash_latency_row(body, "service.query_seconds", "total")
             << dash_latency_row(body, "service.commit_seconds", "commit")
             << dash_latency_row(body, "service.risk_sweep_seconds",
                                 "risk sweep");
      screen << "\n  risk     sweeps "
             << static_cast<long long>(num("service.risk_sweeps_total"))
             << "   cache hits "
             << static_cast<long long>(num("service.risk_cache_hits"))
             << "\n";
    }
    // Home + clear-to-end keeps the redraw flicker-free; --no-clear (and
    // single-shot mode) just appends, which is what scripts and CI want.
    if (clear && count != 1) std::cout << "\x1b[H\x1b[J";
    std::cout << screen.str() << std::flush;
  }
  client.close();
  return 0;
}

int cmd_diagnose(const std::vector<std::string>& args) {
  std::string socket_path, tcp_endpoint;
  size_t queries = 0;  // 0 = the server's default phase size
  bool json = false;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (starts_with(arg, "--socket=")) {
      socket_path = arg.substr(9);
    } else if (starts_with(arg, "--tcp=")) {
      tcp_endpoint = arg.substr(6);
    } else if (starts_with(arg, "--queries=")) {
      const int value = as_int(arg.substr(10));
      if (value <= 0) throw Error("--queries must be > 0");
      queries = static_cast<size_t>(value);
    } else if (arg == "--json") {
      json = true;
    } else if (starts_with(arg, "--")) {
      throw Error("unknown diagnose flag: " + arg);
    } else {
      throw Error("diagnose takes no positional arguments");
    }
  }
  std::unique_ptr<service::Transport> transport =
      dial_server(socket_path, tcp_endpoint, "diagnose");
  service::ServiceClient client(*transport);
  std::string request = "diagnose";
  if (queries > 0) request += " " + std::to_string(queries);
  if (json) request += " json";
  const service::QueryResult result = client.request(request);
  client.close();
  if (!result.ok) {
    std::cerr << "error: " << result.body << "\n";
    return 1;
  }
  std::cout << result.body;
  if (!result.body.empty() && result.body.back() != '\n') std::cout << "\n";
  return 0;
}

// ---- risk: ranked keystone analytics over a live service ------------------

/// The string value following `"key":"`, or "" if absent. Element names and
/// sweep tokens never contain escaped quotes, so a plain quote scan is safe
/// against our own JsonWriter output.
std::string scan_json_string(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return "";
  const size_t start = at + needle.size();
  const size_t end = json.find('"', start);
  if (end == std::string::npos) return "";
  return json.substr(start, end - start);
}

/// Splits the `[{...},{...}]` array following `"key":[` into its element
/// objects (same no-parser scanning as scan_json_object).
std::vector<std::string> scan_json_array_objects(const std::string& json,
                                                 const std::string& key) {
  std::vector<std::string> items;
  const std::string needle = "\"" + key + "\":[";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return items;
  size_t depth = 0;
  size_t start = 0;
  for (size_t i = at + needle.size(); i < json.size(); ++i) {
    const char c = json[i];
    if (c == '{') {
      if (depth++ == 0) start = i;
    } else if (c == '}') {
      if (--depth == 0) items.push_back(json.substr(start, i - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return items;
}

int cmd_risk(const std::vector<std::string>& args) {
  std::string socket_path, tcp_endpoint, sweep = "links";
  size_t top = 20;
  bool json = false, rank_only = false;
  uint64_t at = 0, diff_before = 0, diff_after = 0;
  for (size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (starts_with(arg, "--socket=")) {
      socket_path = arg.substr(9);
    } else if (starts_with(arg, "--tcp=")) {
      tcp_endpoint = arg.substr(6);
    } else if (starts_with(arg, "--sweep=")) {
      sweep = arg.substr(8);
    } else if (starts_with(arg, "--top=")) {
      const int value = as_int(arg.substr(6));
      if (value <= 0) throw Error("--top must be > 0");
      top = static_cast<size_t>(value);
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--rank") {
      rank_only = true;
    } else if (starts_with(arg, "--at=")) {
      const int value = as_int(arg.substr(5));
      if (value <= 0) throw Error("--at must be >= 1");
      at = static_cast<uint64_t>(value);
    } else if (arg == "--diff") {
      if (i + 2 >= args.size()) {
        throw Error("--diff needs two versions: --diff <before> <after>");
      }
      const int before = as_int(args[i + 1]);
      const int after = as_int(args[i + 2]);
      if (before <= 0 || after <= 0) throw Error("--diff versions are >= 1");
      diff_before = static_cast<uint64_t>(before);
      diff_after = static_cast<uint64_t>(after);
      i += 2;
    } else if (starts_with(arg, "--")) {
      throw Error("unknown risk flag: " + arg);
    } else {
      throw Error("risk takes no positional arguments (see --diff, --sweep)");
    }
  }

  const bool diff = diff_before > 0;
  std::string request;
  if (diff) {
    request = "risk diff " + std::to_string(diff_before) + " " +
              std::to_string(diff_after) + " " + sweep;
  } else {
    request = (rank_only ? "rank " : "risk ") + sweep;
  }
  if (at > 0) request = "@" + std::to_string(at) + " " + request;

  std::unique_ptr<service::Transport> transport =
      dial_server(socket_path, tcp_endpoint, "risk");
  service::ServiceClient client(*transport);
  const service::QueryResult result = client.request(request);
  client.close();
  if (!result.ok) {
    std::cerr << "error: " << result.body << "\n";
    return 1;
  }
  if (json) {
    std::cout << result.body << "\n";
    return 0;
  }

  const std::string& body = result.body;
  const std::vector<std::string> elements =
      scan_json_array_objects(body, "elements");
  if (diff) {
    std::cout << "risk diff — sweep " << scan_json_string(body, "sweep")
              << " · v" << diff_before << " -> v" << diff_after << " · "
              << (long long)scan_json_number(body, "enriched", 0)
              << " enriched, "
              << (long long)scan_json_number(body, "depleted", 0)
              << " depleted, " << (long long)scan_json_number(body, "stable", 0)
              << " stable\n";
    std::printf("  %-9s %9s  %9s -> %-9s  %-6s %s\n", "status", "log2fc",
                "before", "after", "kind", "element");
    for (size_t i = 0; i < elements.size() && i < top; ++i) {
      const std::string& e = elements[i];
      std::printf("  %-9s %+9.4f  %9.6f -> %-9.6f  %-6s %s\n",
                  scan_json_string(e, "status").c_str(),
                  scan_json_number(e, "log2_fc", 0),
                  scan_json_number(e, "keystone_before", 0),
                  scan_json_number(e, "keystone_after", 0),
                  scan_json_string(e, "kind").c_str(),
                  scan_json_string(e, "element").c_str());
    }
    return 0;
  }

  std::cout << (rank_only ? "rank" : "risk") << " — sweep "
            << scan_json_string(body, "sweep") << " · v" << result.version
            << " · " << (long long)scan_json_number(body, "scenarios", 0)
            << " scenarios · total mass "
            << (long long)scan_json_number(body, "total_mass", 0) << "\n";
  std::printf("  %3s  %-9s %8s  %5s  %-6s %s\n", "#", "keystone", "mass",
              "scen", "kind", "element");
  for (size_t i = 0; i < elements.size() && i < top; ++i) {
    const std::string& e = elements[i];
    std::printf("  %3zu  %.6f %8lld  %5lld  %-6s %s\n", i + 1,
                scan_json_number(e, "keystone", 0),
                (long long)scan_json_number(e, "mass", 0),
                (long long)scan_json_number(e, "scenarios", 0),
                scan_json_string(e, "kind").c_str(),
                scan_json_string(e, "element").c_str());
  }
  if (!rank_only) {
    const std::string blast = scan_json_object(body, "blast");
    const std::string invariants = scan_json_object(body, "invariants");
    if (!blast.empty()) {
      std::cout << "blast radius: "
                << (long long)scan_json_number(blast, "zero", 0)
                << " of " << (long long)scan_json_number(body, "scenarios", 0)
                << " scenarios lost no reach facts\n";
    }
    if (!invariants.empty()) {
      std::cout << "invariants: "
                << (long long)scan_json_number(invariants, "robust", 0)
                << " robust, "
                << (long long)scan_json_number(invariants, "fragile_total", 0)
                << " fragile\n";
    }
  }
  return 0;
}

int usage() {
  std::cerr
      << "usage:\n"
      << "  dna_cli show  <topo> <cfg>\n"
      << "  dna_cli diff  <base-topo> <base-cfg> <target-topo> <target-cfg>"
         " [--monolithic]\n"
      << "  dna_cli paths <topo> <cfg> <src-node> <dst-ip>\n"
      << "  dna_cli whatif (--gen=<spec> | <topo> <cfg>) [--sweep=...]"
         " [--threads=N] [--top=K] [--json] [--monolithic]"
         " [--host-invariants]\n"
      << "  dna_cli serve (--gen=<spec> | <topo> <cfg>)"
         " (--socket=PATH | --tcp=[HOST:]PORT) [--threads=N]"
         " [--host-invariants] [--journal-dir=PATH] [--no-fsync]"
         " [--queue-depth=N] [--keep-versions=N] [--slow-ms=N]"
         " [--http=PORT] [--flight-ms=N] [--flight-cap=S]\n"
      << "  dna_cli shard-serve (--gen=<spec> | <topo> <cfg>)"
         " --tcp=[HOST:]PORT [serve flags...]\n"
      << "  dna_cli route --tcp=[HOST:]PORT"
         " --shards=HOST:PORT[,HOST:PORT...]"
         " [--http=PORT] [--flight-ms=N] [--flight-cap=S]\n"
      << "  dna_cli query (--socket=PATH | --tcp=HOST:PORT) [--version=N]"
         " [--trace] <request> [<request> ...]\n"
      << "  dna_cli stats (--socket=PATH | --tcp=HOST:PORT)"
         " [--json | --prom]\n"
      << "  dna_cli top   (--socket=PATH | --tcp=HOST:PORT)"
         " [--interval=SECS] [--count=N]\n"
      << "  dna_cli dash  (--socket=PATH | --tcp=HOST:PORT)"
         " [--interval=SECS] [--count=N] [--no-clear]\n"
      << "  dna_cli diagnose (--socket=PATH | --tcp=HOST:PORT)"
         " [--queries=N] [--json]\n"
      << "  dna_cli risk  (--socket=PATH | --tcp=HOST:PORT)"
         " [--sweep=TOKEN] [--top=N] [--at=V] [--rank] [--json]"
         " [--diff V1 V2]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 3 && args[0] == "show") {
      return cmd_show(args[1], args[2]);
    }
    if (args.size() >= 5 && args[0] == "diff") {
      const bool monolithic = args.size() == 6 && args[5] == "--monolithic";
      return cmd_diff(args[1], args[2], args[3], args[4], monolithic);
    }
    if (args.size() == 5 && args[0] == "paths") {
      return cmd_paths(args[1], args[2], args[3], args[4]);
    }
    if (!args.empty() && args[0] == "whatif") {
      return cmd_whatif(args);
    }
    if (!args.empty() && args[0] == "serve") {
      return cmd_serve(args, /*shard_mode=*/false);
    }
    if (!args.empty() && args[0] == "shard-serve") {
      return cmd_serve(args, /*shard_mode=*/true);
    }
    if (!args.empty() && args[0] == "route") {
      return cmd_route(args);
    }
    if (!args.empty() && args[0] == "query") {
      return cmd_query(args);
    }
    if (!args.empty() && args[0] == "stats") {
      return cmd_stats(args);
    }
    if (!args.empty() && args[0] == "top") {
      return cmd_top(args);
    }
    if (!args.empty() && args[0] == "dash") {
      return cmd_dash(args);
    }
    if (!args.empty() && args[0] == "diagnose") {
      return cmd_diagnose(args);
    }
    if (!args.empty() && args[0] == "risk") {
      return cmd_risk(args);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
