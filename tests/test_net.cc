// The TCP transport's contract: it is byte-indistinguishable from the
// loopback reference — the same session script produces byte-identical
// framed responses over both — and its listener/teardown semantics match
// the unix-domain path (close() unblocks accept, abort() evicts sessions).
// Plus the SessionServer serving loop all process roles share.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "service/flaky.h"
#include "service/net/server.h"
#include "service/net/tcp.h"
#include "service/protocol.h"
#include "service/service.h"
#include "service/session.h"
#include "service/transport.h"
#include "topo/generators.h"
#include "util/error.h"

namespace dna::service {
namespace {

// ---------------------------------------------------------------------------
// Endpoint parsing
// ---------------------------------------------------------------------------

TEST(HostPort, ParsesTheThreeForms) {
  EXPECT_EQ(parse_hostport("10.1.2.3:4711").host, "10.1.2.3");
  EXPECT_EQ(parse_hostport("10.1.2.3:4711").port, 4711);
  EXPECT_EQ(parse_hostport(":4711").host, "127.0.0.1");
  EXPECT_EQ(parse_hostport(":4711").port, 4711);
  EXPECT_EQ(parse_hostport("4711").host, "127.0.0.1");
  EXPECT_EQ(parse_hostport("4711").port, 4711);
}

TEST(HostPort, RejectsGarbage) {
  EXPECT_THROW(parse_hostport("host:notaport"), Error);
  EXPECT_THROW(parse_hostport("host:70000"), Error);
  EXPECT_THROW(parse_hostport(""), Error);
}

// ---------------------------------------------------------------------------
// Raw TCP transport semantics
// ---------------------------------------------------------------------------

TEST(TcpTransport, EphemeralPortRoundTrip) {
  TcpListener listener(0);
  ASSERT_GT(listener.port(), 0);

  std::thread server([&listener] {
    auto transport = listener.accept();
    ASSERT_NE(transport, nullptr);
    char buffer[64];
    std::string got;
    for (;;) {
      const size_t n = transport->recv(buffer, sizeof(buffer));
      if (n == 0) break;
      got.append(buffer, n);
    }
    transport->send("echo:" + got);
    transport->close_send();
  });

  auto client = connect_tcp("127.0.0.1", listener.port());
  client->send("hello over tcp");
  client->close_send();
  std::string answer;
  char buffer[64];
  for (;;) {
    const size_t n = client->recv(buffer, sizeof(buffer));
    if (n == 0) break;
    answer.append(buffer, n);
  }
  EXPECT_EQ(answer, "echo:hello over tcp");
  server.join();
}

TEST(TcpTransport, CloseUnblocksAccept) {
  TcpListener listener(0);
  std::thread acceptor([&listener] {
    EXPECT_EQ(listener.accept(), nullptr);  // woken by close, no client
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  listener.close();
  acceptor.join();
}

TEST(TcpTransport, ConnectToClosedPortThrows) {
  uint16_t dead_port;
  {
    TcpListener listener(0);  // reserve a port, then free it
    dead_port = listener.port();
  }
  EXPECT_THROW(connect_tcp("127.0.0.1", dead_port), Error);
}

TEST(TcpTransport, AbortUnblocksAPeerMidRecv) {
  TcpListener listener(0);
  std::unique_ptr<Transport> server_side;
  std::thread acceptor([&] { server_side = listener.accept(); });
  auto client = connect_tcp("127.0.0.1", listener.port());
  acceptor.join();
  ASSERT_NE(server_side, nullptr);

  std::atomic<bool> unblocked{false};
  std::thread reader([&] {
    char buffer[16];
    // recv reports end-of-stream (or an error) once the peer aborts; either
    // way the thread must come back.
    try {
      while (server_side->recv(buffer, sizeof(buffer)) != 0) {
      }
    } catch (const Error&) {
    }
    unblocked.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  client->abort();
  reader.join();
  EXPECT_TRUE(unblocked.load());
}

// ---------------------------------------------------------------------------
// Protocol equivalence: the same session script over TCP and loopback
// ---------------------------------------------------------------------------

/// Runs `script` against `service` over `transport` (client side), with a
/// ServerSession pumping `server_side`, and returns the raw response
/// payloads in order.
std::vector<std::string> run_script(DnaService& service,
                                    Transport& client_side,
                                    Transport& server_side,
                                    const std::vector<std::string>& script) {
  ServerSession session(service, server_side);
  std::thread server([&session] { session.run(); });
  std::vector<std::string> payloads;
  {
    FrameDecoder decoder;
    char buffer[4096];
    for (const std::string& line : script) {
      client_side.send(encode_frame(line));
      for (;;) {
        if (auto payload = decoder.next()) {
          payloads.push_back(*payload);
          break;
        }
        const size_t n = client_side.recv(buffer, sizeof(buffer));
        if (n == 0) throw Error("connection closed before response");
        decoder.feed(std::string_view(buffer, n));
      }
    }
  }
  client_side.close_send();
  server.join();
  return payloads;
}

TEST(TcpTransport, ByteIdenticalToLoopbackForTheSameScript) {
  // One script, two models (so version histories diverge between runs of
  // the same service — each transport gets a fresh service), reader and
  // writer requests mixed, including an error response.
  const std::vector<std::string> script = {
      "version",
      "reach r0 172.31.1.1",
      "check loopfree",
      "commit fail_link 1",
      "reach r0 172.31.1.1",
      "paths r0 172.31.3.1",
      "whatif fail_link 2",
      "not a query at all",
      "hash",
  };
  auto invariants = std::vector<core::Invariant>{
      {core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()}};

  std::vector<std::string> over_loopback;
  {
    DnaService service(topo::make_ring(6), invariants, {.num_threads = 2});
    LoopbackChannel channel;
    over_loopback =
        run_script(service, channel.client(), channel.server(), script);
  }

  std::vector<std::string> over_tcp;
  {
    DnaService service(topo::make_ring(6), invariants, {.num_threads = 2});
    TcpListener listener(0);
    std::unique_ptr<Transport> server_side;
    std::thread acceptor([&] { server_side = listener.accept(); });
    auto client_side = connect_tcp("127.0.0.1", listener.port());
    acceptor.join();
    ASSERT_NE(server_side, nullptr);
    over_tcp = run_script(service, *client_side, *server_side, script);
  }

  ASSERT_EQ(over_loopback.size(), script.size());
  EXPECT_EQ(over_loopback, over_tcp)
      << "the wire format must be transport-independent";
}

// ---------------------------------------------------------------------------
// SessionServer
// ---------------------------------------------------------------------------

TEST(SessionServer, ServesManyClientsAndStopsOnShutdownRequest) {
  DnaService service(topo::make_ring(6), {}, {.num_threads = 2});
  TcpListener listener(0);
  SessionServer server(listener, [&service](Transport& transport) {
    ServerSession session(service, transport);
    session.run();
    return session.shutdown_requested();
  });
  server.start();

  constexpr int kClients = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&listener, &failures] {
      auto transport = connect_tcp("127.0.0.1", listener.port());
      ServiceClient client(*transport);
      for (int i = 0; i < 5; ++i) {
        const QueryResult result = client.request("reach r0 172.31.1.1");
        if (!result.ok || result.body != "reachable true owner r3") {
          failures.fetch_add(1);
        }
      }
      client.close();
    });
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);

  // A client-requested shutdown stops the accept loop and the server.
  {
    auto transport = connect_tcp("127.0.0.1", listener.port());
    ServiceClient client(*transport);
    EXPECT_EQ(client.request("shutdown").body, "shutting down");
  }
  server.join();
  EXPECT_TRUE(server.shutdown_requested());
}

TEST(SessionServer, StopEvictsAnIdleClient) {
  DnaService service(topo::make_line(3), {}, {.num_threads = 1});
  TcpListener listener(0);
  SessionServer server(listener, [&service](Transport& transport) {
    ServerSession session(service, transport);
    session.run();
    return session.shutdown_requested();
  });
  server.start();

  // Connect and go silent: the session blocks in recv.
  auto idle = connect_tcp("127.0.0.1", listener.port());
  ServiceClient client(*idle);
  EXPECT_TRUE(client.request("version").ok);

  server.stop();  // must not hang on the idle session
  EXPECT_FALSE(server.shutdown_requested());
}

// ---------------------------------------------------------------------------
// FlakyTransport: seeded fault injection over a real TCP link
// ---------------------------------------------------------------------------

TEST(FlakyTransport, FailAfterBytesTearsTheLinkMidStream) {
  TcpListener listener(0);
  std::string received;
  std::thread server([&listener, &received] {
    auto transport = listener.accept();
    ASSERT_NE(transport, nullptr);
    char buffer[64];
    try {
      for (;;) {
        const size_t n = transport->recv(buffer, sizeof(buffer));
        if (n == 0) break;
        received.append(buffer, n);
      }
    } catch (const Error&) {
      // A reset instead of a clean FIN is acceptable; the byte count below
      // is the real assertion.
    }
  });

  auto flaky = make_flaky(connect_tcp("127.0.0.1", listener.port()),
                          {.fail_after_bytes = 10});
  auto* probe = static_cast<FlakyTransport*>(flaky.get());
  flaky->send("abcdef");  // 6 bytes, under the threshold
  EXPECT_FALSE(probe->fault_fired());
  // The 7th..14th bytes cross the threshold: exactly 4 more are delivered,
  // then the link dies mid-write.
  EXPECT_THROW(flaky->send("ghijklmn"), Error);
  EXPECT_TRUE(probe->fault_fired());
  EXPECT_EQ(probe->bytes_sent(), 10u);

  server.join();
  EXPECT_EQ(received, "abcdefghij") << "the peer must see exactly the prefix";

  // The link stays dead: sends throw, recv reads as end-of-stream.
  EXPECT_THROW(flaky->send("x"), Error);
  char buffer[8];
  EXPECT_EQ(flaky->recv(buffer, sizeof(buffer)), 0u);
}

TEST(FlakyTransport, SeededScheduleIsReplayable) {
  // Two flaky links with the same seed die on exactly the same send index
  // — whatever failure a test run finds, the seed reproduces it.
  const auto sends_until_death = [](uint64_t seed) {
    TcpListener listener(0);
    std::thread server([&listener] {
      auto transport = listener.accept();
      char buffer[64];
      try {
        while (transport->recv(buffer, sizeof(buffer)) != 0) {
        }
      } catch (const Error&) {
      }
    });
    auto flaky = make_flaky(connect_tcp("127.0.0.1", listener.port()),
                            {.seed = seed, .send_drop_chance = 0.2});
    size_t sends = 0;
    try {
      for (; sends < 1000; ++sends) flaky->send("x");
    } catch (const Error&) {
    }
    server.join();
    return sends;
  };
  const size_t first = sends_until_death(42);
  EXPECT_LT(first, 1000u) << "a 20% drop chance must fire within 1000 sends";
  EXPECT_EQ(first, sends_until_death(42));
  EXPECT_NE(first, sends_until_death(43)) << "different seed, different run";
}

}  // namespace
}  // namespace dna::service
