// Allocation discipline of the dataflow hot path: once warm, an epoch moving
// inline-arity (<= 4 column) rows through a map -> filter -> join chain must
// perform ZERO heap allocations — delta buffers, operator state, and output
// records are all recycled.
//
// This file instruments global operator new/delete; it must stay its own
// test binary so the counters see only this test's activity.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "dataflow/graph.h"

namespace {

std::atomic<size_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};

void* count_and_alloc(size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(size_t size) { return count_and_alloc(size); }
void* operator new[](size_t size) { return count_and_alloc(size); }
void* operator new(size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size);
}
void* operator new[](size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace dna::dataflow {
namespace {

TEST(DataflowAlloc, SteadyStateEpochsAreAllocationFree) {
  Graph g;
  auto left = g.add_input("left");
  auto right = g.add_input("right");
  auto mapped = g.add_map(
      "map", left, [](const Row& r) { return Row{r[0], r[1] + 1}; });
  auto filtered =
      g.add_filter("filter", mapped, [](const Row& r) { return r[0] >= 0; });
  auto joined = g.add_join(
      "join", filtered, {0}, right, {0},
      [](const Row& l, const Row& r) { return Row{l[0], l[1], r[1]}; });
  auto out = g.add_output("out", joined);
  (void)out;

  // Resident state: 8 keys with one row per side, so churn below reuses
  // existing runs instead of creating and destroying keys.
  DeltaVec batch;
  for (int64_t k = 0; k < 8; ++k) {
    batch.push_back({{k, 100 + k}, +1});
  }
  g.push(right, batch);
  batch.clear();
  for (int64_t k = 0; k < 8; ++k) {
    batch.push_back({{k, 500}, +1});
  }
  g.push(left, batch);
  g.step();

  // Warm-up churn: lets every buffer (pending queues, emit vectors, join
  // runs, output records) reach its steady-state capacity.
  auto churn_epoch = [&](int64_t k, int64_t mult) {
    batch.clear();
    batch.push_back({{k, 900 + k}, mult});
    g.push(left, batch);
    g.step();
  };
  for (int round = 0; round < 4; ++round) {
    for (int64_t k = 0; k < 8; ++k) {
      churn_epoch(k, +1);
      churn_epoch(k, -1);
    }
  }

  // Measured run: identical churn, now counted.
  g_alloc_count.store(0);
  g_counting.store(true);
  for (int round = 0; round < 4; ++round) {
    for (int64_t k = 0; k < 8; ++k) {
      churn_epoch(k, +1);
      churn_epoch(k, -1);
    }
  }
  g_counting.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "the warm map->filter->join hot path must not touch the allocator";
}

}  // namespace
}  // namespace dna::dataflow
