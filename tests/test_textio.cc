// Topology/snapshot text IO: parsing, canonical printing, round-trips, and
// load_snapshot consistency checks.
#include <gtest/gtest.h>

#include "topo/generators.h"
#include "topo/textio.h"
#include "util/error.h"
#include "util/rng.h"

namespace dna::topo {
namespace {

TEST(TopologyText, ParsesNodesAndLinks) {
  Topology topo = parse_topology(R"(
    topology
      node a
      node b
      link a eth0 b eth0
      link a eth1 b eth1 down
  )");
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_links(), 2u);
  EXPECT_TRUE(topo.link(0).up);
  EXPECT_FALSE(topo.link(1).up);
}

TEST(TopologyText, NodesImplicitFromLinks) {
  Topology topo = parse_topology("topology\nlink x e0 y e0\n");
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_TRUE(topo.has_node("x"));
}

TEST(TopologyText, RejectsMalformed) {
  EXPECT_THROW(parse_topology("link a e0 b e0\n"), ParseError);  // no header
  EXPECT_THROW(parse_topology("topology\nlink a e0\n"), ParseError);
  EXPECT_THROW(parse_topology("topology\nfrobnicate\n"), ParseError);
  EXPECT_THROW(parse_topology(""), ParseError);
  // Duplicate interface attachment surfaces with a line number.
  EXPECT_THROW(
      parse_topology("topology\nlink a e0 b e0\nlink a e0 c e0\n"),
      ParseError);
}

class TextRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(TextRoundTrip, SnapshotSurvivesPrintAndLoad) {
  std::string which = GetParam();
  Rng rng(11);
  Snapshot snap;
  if (which == "fattree") snap = make_fattree(4);
  if (which == "two_tier") snap = make_two_tier_as(3, 2);
  if (which == "random") snap = make_random(8, 12, rng);
  if (which == "failed_link") {
    snap = make_ring(5);
    snap.topology.set_link_up(2, false);
  }
  SnapshotText text = print_snapshot(snap);
  Snapshot reloaded = load_snapshot(text.topology, text.configs);
  EXPECT_EQ(snap, reloaded);
}

INSTANTIATE_TEST_SUITE_P(Generators, TextRoundTrip,
                         ::testing::Values("fattree", "two_tier", "random",
                                           "failed_link"),
                         [](const auto& info) { return info.param; });

TEST(LoadSnapshot, RejectsMissingOrExtraConfigs) {
  Snapshot snap = make_line(3);
  SnapshotText text = print_snapshot(snap);
  // Drop r2's config block.
  auto pos = text.configs.rfind("node r2");
  std::string truncated = text.configs.substr(0, pos);
  EXPECT_THROW(load_snapshot(text.topology, truncated), Error);
  // A config for an unknown node is also rejected.
  std::string extra = text.configs + "node ghost\n";
  EXPECT_THROW(load_snapshot(text.topology, extra), Error);
}

TEST(LoadSnapshot, RejectsSubnetMismatch) {
  Snapshot snap = make_line(2);
  SnapshotText text = print_snapshot(snap);
  // Corrupt one endpoint address.
  auto pos = text.configs.find("10.0.0.1/30");
  ASSERT_NE(pos, std::string::npos);
  text.configs.replace(pos, 11, "10.9.0.1/30");
  EXPECT_THROW(load_snapshot(text.topology, text.configs), Error);
}

}  // namespace
}  // namespace dna::topo
