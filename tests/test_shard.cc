// The shard tier's contract: a sharded TCP deployment is observationally
// identical to one monolithic DnaService — the same session script answers
// byte-identically through a ShardRouter over 2 shards as against a single
// service — and partial failure is clean: with replication (R >= 2) a dead
// shard's queries fail over byte-identically to a healthy replica; with
// R=1 they fail with a typed error (never a hang); a restarted shard is
// caught up exactly-once by reconnect-and-replay; a wiped or brand-new
// shard warms up by journal-seeded sync; commits succeed at quorum and
// report under-replication as a typed failure; and partition-scoped global
// checks AND together to exactly the monolithic verdict.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/flaky.h"
#include "service/net/server.h"
#include "service/net/tcp.h"
#include "service/service.h"
#include "service/session.h"
#include "service/shard/host.h"
#include "service/shard/partition.h"
#include "service/shard/router.h"
#include "service/transport.h"
#include "topo/generators.h"
#include "util/error.h"

namespace dna::service::shard {
namespace {

namespace fs = std::filesystem;

/// A unique directory removed (with contents) when the test scope ends.
struct TempDir {
  std::string path;

  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "dna_shard_XXXXXX");
    const char* created = ::mkdtemp(tmpl.data());
    if (created == nullptr) throw Error("mkdtemp failed for " + tmpl);
    path = created;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string sub(const std::string& name) const { return path + "/" + name; }
};

std::vector<core::Invariant> ring_invariants() {
  return {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()},
          {core::Invariant::Kind::kReachable, "r0", "r3", "",
           Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}};
}

/// (ok, version, body) triples returned by a sequence of requests — the
/// response payload is a bijection of this triple, so equality here is
/// byte-equality of the framed responses.
struct Answer {
  bool ok;
  uint64_t version;
  std::string body;

  bool operator==(const Answer&) const = default;
};

std::ostream& operator<<(std::ostream& out, const Answer& answer) {
  return out << (answer.ok ? "ok " : "err ") << answer.version << " \""
             << answer.body << "\"";
}

Answer to_answer(const QueryResult& result) {
  return {result.ok, result.version, result.body};
}

/// Runs `script` against a monolithic service over a loopback session —
/// the reference every sharded deployment must match byte for byte.
std::vector<Answer> monolithic_answers(const std::vector<std::string>& script,
                                       size_t num_threads = 2) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = num_threads, .keep_versions = 6});
  LoopbackChannel channel;
  ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });
  std::vector<Answer> answers;
  {
    ServiceClient client(channel.client());
    for (const std::string& line : script) {
      answers.push_back(to_answer(client.request(line)));
    }
    client.close();
  }
  server.join();
  return answers;
}

/// The session script both deployments run: reader and writer requests
/// mixed, global checks, a forced forwarding loop (statics pointing at
/// each other), and a malformed line.
std::vector<std::string> equivalence_script(const topo::Snapshot& base) {
  // Discover the two interface addresses of link r1-r2 so the script can
  // commit a two-node static-route loop for an un-announced prefix.
  const topo::Topology& topology = base.topology;
  const topo::NodeId r1 = topology.node_id("r1");
  const topo::NodeId r2 = topology.node_id("r2");
  std::string addr_r1, addr_r2;
  for (const uint32_t link_index : topology.links_of(r1)) {
    const topo::Link& link = topology.link(link_index);
    if (link.peer_of(r1) != r2) continue;
    addr_r1 =
        base.config_of(r1).find_interface(link.if_of(r1))->address.str();
    addr_r2 =
        base.config_of(r2).find_interface(link.if_of(r2))->address.str();
    break;
  }
  EXPECT_FALSE(addr_r1.empty());
  std::vector<std::string> script = {
      "version",
      "hash",
      "check loopfree",
      "commit fail_link 1",
      "version",
      "whatif fail_link 0",
      "check reachable r0 r3 172.31.1.0/24",
      "check blackholefree r2",
      "commit link_cost 0 7; announce r4 203.0.100.0/24",
      "hash",
      "definitely not a query",
      // A forwarding loop: r1 and r2 forward 203.0.113/24 at each other.
      "commit static_route r1 203.0.113.0/24 " + addr_r2 +
          "; static_route r2 203.0.113.0/24 " + addr_r1,
      "check loopfree",
      "whatif recover_link 1",
      // Risk analytics: pure read-only aggregates, so the router spreads
      // them like any query and every deployment must render the same
      // bytes — including the diff across two committed versions and the
      // typed errors for a dead version and a malformed sweep.
      "rank",
      "risk links",
      "@2 rank costs:20",
      "risk node:r2",
      "risk diff 2 3",
      "risk diff 1 99",
      "risk bogus:sweep",
  };
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    script.push_back("reach " + topology.node_name(node) + " 172.31.1.1");
    script.push_back("paths " + topology.node_name(node) + " 172.31.0.1");
  }
  return script;
}

// ---------------------------------------------------------------------------
// Partition map
// ---------------------------------------------------------------------------

TEST(Partition, StableAndTotal) {
  // The hash is a pure function of the name: every process computes the
  // same map, across runs and restarts.
  EXPECT_EQ(shard_of("r0", 4), shard_of("r0", 4));
  EXPECT_EQ(stable_name_hash("r0"), stable_name_hash(std::string("r0")));

  const topo::Snapshot base = topo::make_fattree(4);
  const PartitionMap map(3);
  std::vector<int> owners(base.topology.num_nodes(), 0);
  for (uint32_t index = 0; index < 3; ++index) {
    const std::vector<bool> owned = map.owned_nodes(base.topology, index);
    for (size_t node = 0; node < owned.size(); ++node) {
      owners[node] += owned[node] ? 1 : 0;
      EXPECT_EQ(owned[node], map.owns(index, base.topology.node_name(
                                                 static_cast<topo::NodeId>(
                                                     node))));
    }
  }
  // Every node owned by exactly one shard; the histogram accounts for all.
  for (const int count : owners) EXPECT_EQ(count, 1);
  size_t total = 0;
  for (const size_t count : map.histogram(base.topology)) total += count;
  EXPECT_EQ(total, base.topology.num_nodes());
}

TEST(Partition, SingleShardOwnsEverything) {
  const PartitionMap map(1);
  EXPECT_EQ(map.owner_of("anything"), 0u);
}

TEST(Partition, ReplicaSetsAreDistinctAndLedByTheOwner) {
  const PartitionMap map(4, 2);
  EXPECT_EQ(map.replicas(), 2u);
  const topo::Snapshot base = topo::make_fattree(4);
  for (topo::NodeId node = 0; node < base.topology.num_nodes(); ++node) {
    const std::string name = base.topology.node_name(node);
    const std::vector<uint32_t> replicas = map.replicas_of(name);
    ASSERT_EQ(replicas.size(), 2u) << name;
    EXPECT_NE(replicas[0], replicas[1]) << name;
    EXPECT_EQ(replicas[0], map.owner_of(name)) << name;
    for (const uint32_t shard : replicas) EXPECT_LT(shard, 4u);
  }
  // The replica count clamps to what exists: never more than the shard
  // count, never less than one.
  EXPECT_EQ(PartitionMap(2, 5).replicas(), 2u);
  EXPECT_EQ(PartitionMap(3, 0).replicas(), 1u);
}

TEST(Partition, ReplicationDoesNotMovePrimaryOwnership) {
  // The ring is a pure function of the shard count; the replica count only
  // sizes preference lists. Critical: shards compute PartitionMap(n) for
  // scoped checks while the router runs PartitionMap(n, R) — the two must
  // agree on every owner.
  const PartitionMap plain(4), replicated(4, 3);
  for (int i = 0; i < 500; ++i) {
    const std::string name = "node-" + std::to_string(i);
    EXPECT_EQ(plain.owner_of(name), replicated.owner_of(name)) << name;
  }
}

TEST(Partition, GrowthRemapsABoundedFraction) {
  // Consistent hashing's point: adding a shard to 3 should move about 1/4
  // of the keys — not the ~3/4 a modulo partition reshuffles.
  const PartitionMap before(3), after(4);
  size_t moved = 0;
  const size_t names = 1000;
  for (size_t i = 0; i < names; ++i) {
    const std::string name = "node-" + std::to_string(i);
    if (before.owner_of(name) != after.owner_of(name)) ++moved;
  }
  EXPECT_GT(moved, 0u) << "the new shard must take some load";
  EXPECT_LT(moved, names * 45 / 100)
      << "growth 3->4 moved " << moved << "/" << names
      << " names — far above the ~25% consistent hashing promises";
  // And whatever moved, moved *to the new shard*: an old key never hops
  // between surviving shards.
  for (size_t i = 0; i < names; ++i) {
    const std::string name = "node-" + std::to_string(i);
    if (before.owner_of(name) != after.owner_of(name)) {
      EXPECT_EQ(after.owner_of(name), 3u) << name;
    }
  }
}

// ---------------------------------------------------------------------------
// Partition-scoped checks decompose the monolithic verdict
// ---------------------------------------------------------------------------

TEST(ScopedCheck, LoopfreePartitionsAndTogether) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = 1});
  // Loop-free base: every partition scope must concur with the whole.
  const QueryResult whole = service.query("check loopfree");
  ASSERT_TRUE(whole.ok);
  EXPECT_EQ(whole.body.find("holds true"), 0u);
  for (int i = 0; i < 3; ++i) {
    const QueryResult part =
        service.query("part " + std::to_string(i) + "/3 check loopfree");
    ASSERT_TRUE(part.ok);
    EXPECT_EQ(part.body, whole.body) << "scope must not change the rendering";
  }

  // Introduce a loop; the partitions owning the looping sources flip to
  // false, and the AND over all partitions equals the monolithic verdict.
  const std::vector<std::string> script =
      equivalence_script(*service.head()->snapshot);
  for (const std::string& line : script) {
    if (line.rfind("commit static_route", 0) == 0) {
      const CommitResult commit = service.commit_text(line.substr(7));
      EXPECT_GT(commit.version, 1u);
    }
  }
  const QueryResult looped = service.query("check loopfree");
  ASSERT_TRUE(looped.ok);
  EXPECT_EQ(looped.body.find("holds false"), 0u);
  bool any_false = false;
  for (int i = 0; i < 3; ++i) {
    const QueryResult part =
        service.query("part " + std::to_string(i) + "/3 check loopfree");
    ASSERT_TRUE(part.ok);
    any_false = any_false || part.body.find("holds false") == 0;
  }
  EXPECT_TRUE(any_false) << "some partition must own a looping source";
}

// ---------------------------------------------------------------------------
// Router equivalence: sharded == monolithic, byte for byte
// ---------------------------------------------------------------------------

TEST(Router, TwoLoopbackShardsAnswerLikeAMonolith) {
  const std::vector<std::string> script =
      equivalence_script(topo::make_ring(6));
  const std::vector<Answer> expected = monolithic_answers(script);

  DnaService shard0(topo::make_ring(6), ring_invariants(),
                    {.num_threads = 1, .keep_versions = 6});
  DnaService shard1(topo::make_ring(6), ring_invariants(),
                    {.num_threads = 1, .keep_versions = 6});
  ShardRouter router({loopback_dial(shard0), loopback_dial(shard1)});
  EXPECT_EQ(router.connect_all(), 2u);

  std::vector<Answer> actual;
  for (const std::string& line : script) {
    actual.push_back(to_answer(router.handle(line)));
  }
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "request: " << script[i];
  }

  const RouterMetrics metrics = router.metrics();
  EXPECT_GT(metrics.queries_routed, 0u);
  EXPECT_EQ(metrics.scatters, 2u);  // the two `check loopfree` lines
  EXPECT_EQ(metrics.commits, 3u);
  EXPECT_EQ(metrics.head_version, 4u);
}

TEST(Router, TwoTcpShardsAnswerLikeAMonolith) {
  // The acceptance-criterion deployment: two shard processes-worth of
  // DnaServices behind real TCP listeners, a router in front, clients on
  // the same framed protocol — answers byte-identical to one service.
  const std::vector<std::string> script =
      equivalence_script(topo::make_ring(6));
  const std::vector<Answer> expected = monolithic_answers(script);

  std::vector<std::unique_ptr<ShardHost>> hosts;
  std::vector<Dialer> dialers;
  for (int i = 0; i < 2; ++i) {
    ShardHostOptions options;
    options.service.num_threads = 1;
    options.service.keep_versions = 6;
    hosts.push_back(std::make_unique<ShardHost>(topo::make_ring(6),
                                                ring_invariants(), options));
    dialers.push_back(hosts.back()->dialer());
  }
  ShardRouter router(std::move(dialers));
  EXPECT_EQ(router.connect_all(), 2u);

  // Serve the router itself over TCP and talk to it like any server.
  TcpListener listener(0);
  SessionServer server(listener, [&router](Transport& transport) {
    RouterSession session(router, transport);
    session.run();
    return session.shutdown_requested();
  });
  server.start();

  std::vector<Answer> actual;
  {
    auto transport = connect_tcp("127.0.0.1", listener.port());
    ServiceClient client(*transport);
    for (const std::string& line : script) {
      actual.push_back(to_answer(client.request(line)));
    }
    client.close();
  }
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "request: " << script[i];
  }

  // A client-requested shutdown cascades: router acks, shards stop.
  {
    auto transport = connect_tcp("127.0.0.1", listener.port());
    ServiceClient client(*transport);
    EXPECT_EQ(client.request("shutdown").body, "shutting down");
  }
  server.join();
  EXPECT_TRUE(server.shutdown_requested());
  for (const auto& host : hosts) {
    host->wait();
    EXPECT_TRUE(host->shutdown_requested());
  }
}

// ---------------------------------------------------------------------------
// Partial failure: typed errors, reconnect, replay
// ---------------------------------------------------------------------------

/// A query the partition map routes to `target` first — found by scanning
/// node names, so the test holds for any hash function. Empty when the
/// ring gave `target` none of the topology's names (legitimate for small
/// name sets under consistent hashing).
std::string query_owned_by(const topo::Topology& topology, uint32_t target,
                           uint32_t count) {
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    if (shard_of(topology.node_name(node), count) == target) {
      return "reach " + topology.node_name(node) + " 172.31.1.1";
    }
  }
  return "";
}

TEST(Router, ShardDownIsATypedErrorAndRecoveryReplaysWithoutReplicas) {
  // R=1 is the unreplicated (pre-failover) deployment: a dead shard's
  // queries fail typed, and the restarted shard is healed by replay.
  const topo::Snapshot base = topo::make_ring(6);
  TempDir dirs;

  ShardHostOptions options0;
  options0.service.num_threads = 1;
  options0.service.journal_dir = dirs.sub("j0");
  auto host0 =
      std::make_unique<ShardHost>(base, ring_invariants(), options0);

  ShardHostOptions options1;
  options1.service.num_threads = 1;
  options1.service.journal_dir = dirs.sub("j1");
  auto host1 =
      std::make_unique<ShardHost>(base, ring_invariants(), options1);

  // Dialers read the current port through an indirection so a restarted
  // shard (fresh ephemeral port) is reachable without rebuilding the
  // router — the moral equivalent of a service VIP.
  auto port0 = std::make_shared<std::atomic<uint16_t>>(host0->port());
  auto port1 = std::make_shared<std::atomic<uint16_t>>(host1->port());
  auto dial = [](std::shared_ptr<std::atomic<uint16_t>> port) -> Dialer {
    return [port] { return connect_tcp("127.0.0.1", port->load()); };
  };
  // The hosts are interchangeable, so kill whichever shard the ring made
  // primary for r0 — it provably owns at least one query.
  const uint32_t victim = PartitionMap(2).owner_of("r0");
  const uint32_t survivor = 1 - victim;
  std::vector<Dialer> dialers = {dial(port0), dial(port1)};
  if (victim == 0) {
    // The dialers above already captured the port cells by value, so
    // re-binding the *names* host1/port1/options1 to shard 0's objects is
    // enough: shard index `victim` keeps dialing the cell now named port1.
    std::swap(host0, host1);
    std::swap(options0, options1);
    std::swap(port0, port1);
  }
  // From here: host1/port1/options1 is the victim (shard index `victim`),
  // host0 the survivor.
  ShardRouter router(std::move(dialers), {.replicas = 1});
  EXPECT_EQ(router.connect_all(), 2u);

  const std::string to_victim = query_owned_by(base.topology, victim, 2);
  ASSERT_FALSE(to_victim.empty());
  const std::string to_survivor = query_owned_by(base.topology, survivor, 2);
  EXPECT_TRUE(router.handle(to_victim).ok);
  if (!to_survivor.empty()) EXPECT_TRUE(router.handle(to_survivor).ok);
  EXPECT_TRUE(router.handle("commit fail_link 1").ok);

  // Kill the victim (listener down, sessions evicted, service gone).
  host1.reset();

  // Its queries fail *typed* — ok=false naming the shard — and fast; the
  // other shard keeps answering; a global scatter also fails typed.
  const std::string unavailable =
      "shard " + std::to_string(victim) + " unavailable";
  const QueryResult down = router.handle(to_victim);
  EXPECT_FALSE(down.ok);
  EXPECT_NE(down.body.find(unavailable), std::string::npos) << down.body;
  if (!to_survivor.empty()) EXPECT_TRUE(router.handle(to_survivor).ok);
  const QueryResult scatter = router.handle("check loopfree");
  EXPECT_FALSE(scatter.ok);
  EXPECT_NE(scatter.body.find(unavailable), std::string::npos);

  // With R=1 a dead shard is a hole in the deployment: health says so.
  const Health health = router.health();
  EXPECT_FALSE(health.ok);
  EXPECT_NE(health.detail.find("unhealthy"), std::string::npos);

  // A commit while the shard is down is acked by the survivors and
  // recorded for replay.
  const QueryResult commit = router.handle("commit link_cost 0 9");
  EXPECT_TRUE(commit.ok);
  EXPECT_EQ(commit.version, 3u);

  // Restart the victim from its journal: it recovers version 2 on its
  // own, and the router's catch-up replays version 3 before the next
  // answer. The breaker opened while it was down; wait out the backoff so
  // the next routed query actually re-dials.
  host1 = std::make_unique<ShardHost>(base, ring_invariants(), options1);
  port1->store(host1->port());
  EXPECT_EQ(host1->service().recovered_commits(), 1u);
  EXPECT_EQ(host1->service().head()->id, 2u);
  std::this_thread::sleep_for(std::chrono::milliseconds(350));

  const QueryResult recovered = router.handle(to_victim);
  EXPECT_TRUE(recovered.ok) << recovered.body;
  EXPECT_EQ(recovered.version, 3u);
  EXPECT_EQ(host1->service().head()->id, 3u);

  // And the healed deployment again answers exactly like a monolith.
  DnaService monolith(base, ring_invariants(), {.num_threads = 1});
  monolith.commit_text("fail_link 1");
  monolith.commit_text("link_cost 0 9");
  for (topo::NodeId node = 0; node < base.topology.num_nodes(); ++node) {
    const std::string line =
        "reach " + base.topology.node_name(node) + " 172.31.1.1";
    EXPECT_EQ(to_answer(router.handle(line)), to_answer(monolith.query(line)))
        << line;
  }
  const QueryResult scatter_again = router.handle("check loopfree");
  EXPECT_EQ(to_answer(scatter_again),
            to_answer(monolith.query("check loopfree")));

  const RouterMetrics metrics = router.metrics();
  EXPECT_GE(metrics.reconnects, 1u);
  EXPECT_EQ(metrics.replayed_commits, 1u);
  EXPECT_GE(metrics.shard_errors, 2u);
  EXPECT_GE(metrics.breaker_opens, 1u);
  EXPECT_EQ(metrics.head_version, 3u);
}

TEST(Router, AllShardsDownFailsCommitTyped) {
  ShardRouter router({[]() -> std::unique_ptr<Transport> {
    throw Error("nothing listening");
  }});
  const QueryResult commit = router.handle("commit fail_link 0");
  EXPECT_FALSE(commit.ok);
  EXPECT_NE(commit.body.find("no shard reachable"), std::string::npos);
  const QueryResult query = router.handle("version");
  EXPECT_FALSE(query.ok);
  EXPECT_NE(query.body.find("shard 0 unavailable"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Replication: failover, quorum, journal-seeded sync
// ---------------------------------------------------------------------------

TEST(Router, FailoverCoversAKilledShardByteIdentically) {
  // The acceptance drill, in-process: R=2, kill one shard, run the whole
  // equivalence script — zero failed requests, answers byte-identical to
  // a monolith, health degraded but still ok.
  const std::vector<std::string> script =
      equivalence_script(topo::make_ring(6));
  const std::vector<Answer> expected = monolithic_answers(script);

  std::vector<std::unique_ptr<ShardHost>> hosts;
  std::vector<Dialer> dialers;
  for (int i = 0; i < 2; ++i) {
    ShardHostOptions options;
    options.service.num_threads = 1;
    options.service.keep_versions = 6;
    hosts.push_back(std::make_unique<ShardHost>(topo::make_ring(6),
                                                ring_invariants(), options));
    dialers.push_back(hosts.back()->dialer());
  }
  ShardRouter router(std::move(dialers), {.replicas = 2, .quorum = 1});
  EXPECT_EQ(router.connect_all(), 2u);

  // kill -9, morally: the shard's listener and sessions vanish mid-tier.
  hosts[1]->stop();

  std::vector<Answer> actual;
  for (const std::string& line : script) {
    actual.push_back(to_answer(router.handle(line)));
  }
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "request: " << script[i];
  }

  const Health health = router.health();
  EXPECT_TRUE(health.ok) << health.detail;
  EXPECT_NE(health.detail.find("degraded"), std::string::npos)
      << health.detail;

  const RouterMetrics metrics = router.metrics();
  EXPECT_GT(metrics.failovers, 0u);
  EXPECT_EQ(metrics.commits, 3u);
  EXPECT_EQ(metrics.degraded_commits, 3u);
  EXPECT_EQ(metrics.head_version, 4u);
  EXPECT_EQ(metrics.replicas, 2u);
  EXPECT_EQ(metrics.quorum, 1u);
}

TEST(Router, QuorumShortfallIsATypedFailureButVersionsStayMonotonic) {
  // quorum=2 with one shard permanently dead: every commit lands on the
  // survivor (versions keep increasing, queries see the new state) but the
  // router refuses to call it replicated.
  DnaService alive(topo::make_ring(6), ring_invariants(), {.num_threads = 1});
  ShardRouter router(
      {loopback_dial(alive),
       []() -> std::unique_ptr<Transport> { throw Error("dead"); }},
      {.replicas = 2, .quorum = 2});

  const QueryResult first = router.handle("commit fail_link 1");
  EXPECT_FALSE(first.ok);
  EXPECT_NE(first.body.find("under-replicated: 1/2"), std::string::npos)
      << first.body;
  EXPECT_EQ(first.version, 2u);
  EXPECT_EQ(alive.head()->id, 2u);

  const QueryResult second = router.handle("commit link_cost 0 9");
  EXPECT_FALSE(second.ok);
  EXPECT_EQ(second.version, 3u) << "version ids must stay monotonic";
  EXPECT_EQ(alive.head()->id, 3u);

  // Queries still answer — failover covers the dead shard — and reflect
  // the committed state.
  const QueryResult version = router.handle("version");
  EXPECT_TRUE(version.ok) << version.body;
  EXPECT_EQ(version.version, 3u);

  const RouterMetrics metrics = router.metrics();
  EXPECT_EQ(metrics.commits, 0u);
  EXPECT_EQ(metrics.head_version, 3u);
}

TEST(Router, WipedShardAndFreshRouterWarmUpByJournalSeededSync) {
  // The scale-out / disaster path: shard 1 loses its journal entirely and
  // the router restarts with it (no in-memory history). Catch-up cannot
  // replay — the history is gone — so the new router clones shard 0's
  // compacted snapshot into shard 1 (`sync` + `seed`) and the deployment
  // converges at the head version.
  const topo::Snapshot base = topo::make_ring(6);
  TempDir dirs;

  ShardHostOptions options0;
  options0.service.num_threads = 1;
  options0.service.journal_dir = dirs.sub("j0");
  auto host0 = std::make_unique<ShardHost>(base, ring_invariants(), options0);

  ShardHostOptions options1;
  options1.service.num_threads = 1;
  options1.service.journal_dir = dirs.sub("j1");
  auto host1 = std::make_unique<ShardHost>(base, ring_invariants(), options1);

  auto port0 = std::make_shared<std::atomic<uint16_t>>(host0->port());
  auto port1 = std::make_shared<std::atomic<uint16_t>>(host1->port());
  auto dial = [](std::shared_ptr<std::atomic<uint16_t>> port) -> Dialer {
    return [port] { return connect_tcp("127.0.0.1", port->load()); };
  };

  {
    ShardRouter router({dial(port0), dial(port1)}, {.replicas = 2});
    EXPECT_EQ(router.connect_all(), 2u);
    EXPECT_TRUE(router.handle("commit fail_link 1").ok);
    EXPECT_TRUE(router.handle("commit link_cost 0 9").ok);
  }  // the router (and its commit history) is gone

  // Wipe shard 1: journal deleted, process restarted from the base model.
  host1.reset();
  std::filesystem::remove_all(dirs.sub("j1"));
  host1 = std::make_unique<ShardHost>(base, ring_invariants(), options1);
  port1->store(host1->port());
  EXPECT_EQ(host1->service().recovered_commits(), 0u);
  EXPECT_EQ(host1->service().head()->id, 1u);

  // A brand-new router probes shard 0 (head v3), finds shard 1 at v1 with
  // an unbridgeable history gap, and heals it by cloning.
  ShardRouter router({dial(port0), dial(port1)}, {.replicas = 2});
  EXPECT_EQ(router.connect_all(), 2u);

  EXPECT_EQ(host1->service().head()->id, 3u);
  const RouterMetrics metrics = router.metrics();
  EXPECT_GE(metrics.syncs, 1u);
  EXPECT_EQ(metrics.head_version, 3u);
  EXPECT_EQ(metrics.shard_versions[0], 3u);
  EXPECT_EQ(metrics.shard_versions[1], 3u);

  // The clone is the state, not an approximation: both shards hash the
  // same model, and the deployment answers exactly like a monolith that
  // took the same commits.
  const QueryResult hash0 = host0->service().query("hash");
  const QueryResult hash1 = host1->service().query("hash");
  EXPECT_EQ(hash0.body, hash1.body);

  DnaService monolith(base, ring_invariants(), {.num_threads = 1});
  monolith.commit_text("fail_link 1");
  monolith.commit_text("link_cost 0 9");
  for (topo::NodeId node = 0; node < base.topology.num_nodes(); ++node) {
    const std::string line =
        "reach " + base.topology.node_name(node) + " 172.31.1.1";
    EXPECT_EQ(to_answer(router.handle(line)), to_answer(monolith.query(line)))
        << line;
  }
  EXPECT_EQ(to_answer(router.handle("check loopfree")),
            to_answer(monolith.query("check loopfree")));

  // The seeded shard serves from its *own* journal on the next restart —
  // the seed was compacted into it, not just installed in memory.
  host1.reset();
  host1 = std::make_unique<ShardHost>(base, ring_invariants(), options1);
  EXPECT_EQ(host1->service().head()->id, 3u);
}

TEST(Router, TornMidFrameCommitIsAppliedExactlyOnce) {
  // FlakyTransport kills shard 1's link after 20 bytes — past the version
  // probe ("7\nversion", 9 bytes framed), mid-way through the first commit
  // frame ("18\ncommit fail_link 1", 21 bytes). The
  // shard receives a torn frame (never applies), the router records the
  // commit (quorum 1 met by shard 0), and the reconnect replays it exactly
  // once: no lost commit, no double-apply.
  DnaService shard0(topo::make_ring(6), ring_invariants(), {.num_threads = 1});
  DnaService shard1(topo::make_ring(6), ring_invariants(), {.num_threads = 1});
  const Dialer inner1 = loopback_dial(shard1);
  auto first_dial = std::make_shared<std::atomic<bool>>(true);
  Dialer flaky1 = [inner1, first_dial]() -> std::unique_ptr<Transport> {
    if (first_dial->exchange(false)) {
      return make_flaky(inner1(), {.seed = 7, .fail_after_bytes = 20});
    }
    return inner1();
  };
  ShardRouter router({loopback_dial(shard0), flaky1},
                     {.replicas = 2, .quorum = 1});
  EXPECT_EQ(router.connect_all(), 2u);

  const QueryResult commit = router.handle("commit fail_link 1");
  EXPECT_TRUE(commit.ok) << commit.body;
  EXPECT_EQ(commit.version, 2u);
  EXPECT_EQ(shard0.head()->id, 2u);
  EXPECT_EQ(shard1.head()->id, 1u) << "the torn frame must not apply";

  // Wait out the breaker, then scatter: scope 1 prefers shard 1, so the
  // reconnect catch-up replays version 2 — once — before it answers.
  std::this_thread::sleep_for(std::chrono::milliseconds(350));
  const QueryResult scatter = router.handle("check loopfree");
  EXPECT_TRUE(scatter.ok) << scatter.body;
  EXPECT_EQ(shard1.head()->id, 2u);
  const RouterMetrics metrics = router.metrics();
  EXPECT_EQ(metrics.replayed_commits, 1u);
  EXPECT_EQ(metrics.degraded_commits, 1u);
  EXPECT_EQ(metrics.head_version, 2u);
}

}  // namespace
}  // namespace dna::service::shard
