// The shard tier's contract: a sharded TCP deployment is observationally
// identical to one monolithic DnaService — the same session script answers
// byte-identically through a ShardRouter over 2 shards as against a single
// service — and partial failure is clean: a dead shard fails its queries
// with a typed error (never a hang), a restarted shard is caught up by
// reconnect-and-replay, and partition-scoped global checks AND together to
// exactly the monolithic verdict.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/net/server.h"
#include "service/net/tcp.h"
#include "service/service.h"
#include "service/session.h"
#include "service/shard/host.h"
#include "service/shard/partition.h"
#include "service/shard/router.h"
#include "service/transport.h"
#include "topo/generators.h"
#include "util/error.h"

namespace dna::service::shard {
namespace {

namespace fs = std::filesystem;

/// A unique directory removed (with contents) when the test scope ends.
struct TempDir {
  std::string path;

  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "dna_shard_XXXXXX");
    const char* created = ::mkdtemp(tmpl.data());
    if (created == nullptr) throw Error("mkdtemp failed for " + tmpl);
    path = created;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string sub(const std::string& name) const { return path + "/" + name; }
};

std::vector<core::Invariant> ring_invariants() {
  return {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()},
          {core::Invariant::Kind::kReachable, "r0", "r3", "",
           Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}};
}

/// (ok, version, body) triples returned by a sequence of requests — the
/// response payload is a bijection of this triple, so equality here is
/// byte-equality of the framed responses.
struct Answer {
  bool ok;
  uint64_t version;
  std::string body;

  bool operator==(const Answer&) const = default;
};

std::ostream& operator<<(std::ostream& out, const Answer& answer) {
  return out << (answer.ok ? "ok " : "err ") << answer.version << " \""
             << answer.body << "\"";
}

Answer to_answer(const QueryResult& result) {
  return {result.ok, result.version, result.body};
}

/// Runs `script` against a monolithic service over a loopback session —
/// the reference every sharded deployment must match byte for byte.
std::vector<Answer> monolithic_answers(const std::vector<std::string>& script,
                                       size_t num_threads = 2) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = num_threads});
  LoopbackChannel channel;
  ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });
  std::vector<Answer> answers;
  {
    ServiceClient client(channel.client());
    for (const std::string& line : script) {
      answers.push_back(to_answer(client.request(line)));
    }
    client.close();
  }
  server.join();
  return answers;
}

/// The session script both deployments run: reader and writer requests
/// mixed, global checks, a forced forwarding loop (statics pointing at
/// each other), and a malformed line.
std::vector<std::string> equivalence_script(const topo::Snapshot& base) {
  // Discover the two interface addresses of link r1-r2 so the script can
  // commit a two-node static-route loop for an un-announced prefix.
  const topo::Topology& topology = base.topology;
  const topo::NodeId r1 = topology.node_id("r1");
  const topo::NodeId r2 = topology.node_id("r2");
  std::string addr_r1, addr_r2;
  for (const uint32_t link_index : topology.links_of(r1)) {
    const topo::Link& link = topology.link(link_index);
    if (link.peer_of(r1) != r2) continue;
    addr_r1 =
        base.config_of(r1).find_interface(link.if_of(r1))->address.str();
    addr_r2 =
        base.config_of(r2).find_interface(link.if_of(r2))->address.str();
    break;
  }
  EXPECT_FALSE(addr_r1.empty());
  std::vector<std::string> script = {
      "version",
      "hash",
      "check loopfree",
      "commit fail_link 1",
      "version",
      "whatif fail_link 0",
      "check reachable r0 r3 172.31.1.0/24",
      "check blackholefree r2",
      "commit link_cost 0 7; announce r4 203.0.100.0/24",
      "hash",
      "definitely not a query",
      // A forwarding loop: r1 and r2 forward 203.0.113/24 at each other.
      "commit static_route r1 203.0.113.0/24 " + addr_r2 +
          "; static_route r2 203.0.113.0/24 " + addr_r1,
      "check loopfree",
      "whatif recover_link 1",
  };
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    script.push_back("reach " + topology.node_name(node) + " 172.31.1.1");
    script.push_back("paths " + topology.node_name(node) + " 172.31.0.1");
  }
  return script;
}

// ---------------------------------------------------------------------------
// Partition map
// ---------------------------------------------------------------------------

TEST(Partition, StableAndTotal) {
  // The hash is a pure function of the name: every process computes the
  // same map, across runs and restarts.
  EXPECT_EQ(shard_of("r0", 4), shard_of("r0", 4));
  EXPECT_EQ(stable_name_hash("r0"), stable_name_hash(std::string("r0")));

  const topo::Snapshot base = topo::make_fattree(4);
  const PartitionMap map(3);
  std::vector<int> owners(base.topology.num_nodes(), 0);
  for (uint32_t index = 0; index < 3; ++index) {
    const std::vector<bool> owned = map.owned_nodes(base.topology, index);
    for (size_t node = 0; node < owned.size(); ++node) {
      owners[node] += owned[node] ? 1 : 0;
      EXPECT_EQ(owned[node], map.owns(index, base.topology.node_name(
                                                 static_cast<topo::NodeId>(
                                                     node))));
    }
  }
  // Every node owned by exactly one shard; the histogram accounts for all.
  for (const int count : owners) EXPECT_EQ(count, 1);
  size_t total = 0;
  for (const size_t count : map.histogram(base.topology)) total += count;
  EXPECT_EQ(total, base.topology.num_nodes());
}

TEST(Partition, SingleShardOwnsEverything) {
  const PartitionMap map(1);
  EXPECT_EQ(map.owner_of("anything"), 0u);
}

// ---------------------------------------------------------------------------
// Partition-scoped checks decompose the monolithic verdict
// ---------------------------------------------------------------------------

TEST(ScopedCheck, LoopfreePartitionsAndTogether) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = 1});
  // Loop-free base: every partition scope must concur with the whole.
  const QueryResult whole = service.query("check loopfree");
  ASSERT_TRUE(whole.ok);
  EXPECT_EQ(whole.body.find("holds true"), 0u);
  for (int i = 0; i < 3; ++i) {
    const QueryResult part =
        service.query("part " + std::to_string(i) + "/3 check loopfree");
    ASSERT_TRUE(part.ok);
    EXPECT_EQ(part.body, whole.body) << "scope must not change the rendering";
  }

  // Introduce a loop; the partitions owning the looping sources flip to
  // false, and the AND over all partitions equals the monolithic verdict.
  const std::vector<std::string> script =
      equivalence_script(*service.head()->snapshot);
  for (const std::string& line : script) {
    if (line.rfind("commit static_route", 0) == 0) {
      const CommitResult commit = service.commit_text(line.substr(7));
      EXPECT_GT(commit.version, 1u);
    }
  }
  const QueryResult looped = service.query("check loopfree");
  ASSERT_TRUE(looped.ok);
  EXPECT_EQ(looped.body.find("holds false"), 0u);
  bool any_false = false;
  for (int i = 0; i < 3; ++i) {
    const QueryResult part =
        service.query("part " + std::to_string(i) + "/3 check loopfree");
    ASSERT_TRUE(part.ok);
    any_false = any_false || part.body.find("holds false") == 0;
  }
  EXPECT_TRUE(any_false) << "some partition must own a looping source";
}

// ---------------------------------------------------------------------------
// Router equivalence: sharded == monolithic, byte for byte
// ---------------------------------------------------------------------------

TEST(Router, TwoLoopbackShardsAnswerLikeAMonolith) {
  const std::vector<std::string> script =
      equivalence_script(topo::make_ring(6));
  const std::vector<Answer> expected = monolithic_answers(script);

  DnaService shard0(topo::make_ring(6), ring_invariants(), {.num_threads = 1});
  DnaService shard1(topo::make_ring(6), ring_invariants(), {.num_threads = 1});
  ShardRouter router({loopback_dial(shard0), loopback_dial(shard1)});
  EXPECT_EQ(router.connect_all(), 2u);

  std::vector<Answer> actual;
  for (const std::string& line : script) {
    actual.push_back(to_answer(router.handle(line)));
  }
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "request: " << script[i];
  }

  const RouterMetrics metrics = router.metrics();
  EXPECT_GT(metrics.queries_routed, 0u);
  EXPECT_EQ(metrics.scatters, 2u);  // the two `check loopfree` lines
  EXPECT_EQ(metrics.commits, 3u);
  EXPECT_EQ(metrics.head_version, 4u);
}

TEST(Router, TwoTcpShardsAnswerLikeAMonolith) {
  // The acceptance-criterion deployment: two shard processes-worth of
  // DnaServices behind real TCP listeners, a router in front, clients on
  // the same framed protocol — answers byte-identical to one service.
  const std::vector<std::string> script =
      equivalence_script(topo::make_ring(6));
  const std::vector<Answer> expected = monolithic_answers(script);

  std::vector<std::unique_ptr<ShardHost>> hosts;
  std::vector<Dialer> dialers;
  for (int i = 0; i < 2; ++i) {
    ShardHostOptions options;
    options.service.num_threads = 1;
    hosts.push_back(std::make_unique<ShardHost>(topo::make_ring(6),
                                                ring_invariants(), options));
    dialers.push_back(hosts.back()->dialer());
  }
  ShardRouter router(std::move(dialers));
  EXPECT_EQ(router.connect_all(), 2u);

  // Serve the router itself over TCP and talk to it like any server.
  TcpListener listener(0);
  SessionServer server(listener, [&router](Transport& transport) {
    RouterSession session(router, transport);
    session.run();
    return session.shutdown_requested();
  });
  server.start();

  std::vector<Answer> actual;
  {
    auto transport = connect_tcp("127.0.0.1", listener.port());
    ServiceClient client(*transport);
    for (const std::string& line : script) {
      actual.push_back(to_answer(client.request(line)));
    }
    client.close();
  }
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i], expected[i]) << "request: " << script[i];
  }

  // A client-requested shutdown cascades: router acks, shards stop.
  {
    auto transport = connect_tcp("127.0.0.1", listener.port());
    ServiceClient client(*transport);
    EXPECT_EQ(client.request("shutdown").body, "shutting down");
  }
  server.join();
  EXPECT_TRUE(server.shutdown_requested());
  for (const auto& host : hosts) {
    host->wait();
    EXPECT_TRUE(host->shutdown_requested());
  }
}

// ---------------------------------------------------------------------------
// Partial failure: typed errors, reconnect, replay
// ---------------------------------------------------------------------------

/// A query the partition map routes to `target` — found by scanning node
/// names, so the test holds for any hash function.
std::string query_owned_by(const topo::Topology& topology, uint32_t target,
                           uint32_t count) {
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    if (shard_of(topology.node_name(node), count) == target) {
      return "reach " + topology.node_name(node) + " 172.31.1.1";
    }
  }
  ADD_FAILURE() << "no node owned by shard " << target;
  return "version";
}

TEST(Router, ShardDownIsATypedErrorAndRecoveryReplays) {
  const topo::Snapshot base = topo::make_ring(6);
  TempDir dirs;

  ShardHostOptions options0;
  options0.service.num_threads = 1;
  options0.service.journal_dir = dirs.sub("j0");
  auto host0 =
      std::make_unique<ShardHost>(base, ring_invariants(), options0);

  ShardHostOptions options1;
  options1.service.num_threads = 1;
  options1.service.journal_dir = dirs.sub("j1");
  auto host1 =
      std::make_unique<ShardHost>(base, ring_invariants(), options1);

  // Dialers read the current port through an indirection so a restarted
  // shard (fresh ephemeral port) is reachable without rebuilding the
  // router — the moral equivalent of a service VIP.
  auto port0 = std::make_shared<std::atomic<uint16_t>>(host0->port());
  auto port1 = std::make_shared<std::atomic<uint16_t>>(host1->port());
  auto dial = [](std::shared_ptr<std::atomic<uint16_t>> port) -> Dialer {
    return [port] { return connect_tcp("127.0.0.1", port->load()); };
  };
  ShardRouter router({dial(port0), dial(port1)});
  EXPECT_EQ(router.connect_all(), 2u);

  const std::string to_shard0 = query_owned_by(base.topology, 0, 2);
  const std::string to_shard1 = query_owned_by(base.topology, 1, 2);
  EXPECT_TRUE(router.handle(to_shard0).ok);
  EXPECT_TRUE(router.handle(to_shard1).ok);
  EXPECT_TRUE(router.handle("commit fail_link 1").ok);

  // Kill shard 1 (listener down, sessions evicted, service gone).
  host1.reset();

  // Its queries fail *typed* — ok=false naming the shard — and fast; the
  // other shard keeps answering; a global scatter also fails typed.
  const QueryResult down = router.handle(to_shard1);
  EXPECT_FALSE(down.ok);
  EXPECT_NE(down.body.find("shard 1 unavailable"), std::string::npos)
      << down.body;
  EXPECT_TRUE(router.handle(to_shard0).ok);
  const QueryResult scatter = router.handle("check loopfree");
  EXPECT_FALSE(scatter.ok);
  EXPECT_NE(scatter.body.find("shard 1 unavailable"), std::string::npos);

  // A commit while the shard is down is acked by the survivors and
  // recorded for replay.
  const QueryResult commit = router.handle("commit link_cost 0 9");
  EXPECT_TRUE(commit.ok);
  EXPECT_EQ(commit.version, 3u);

  // Restart shard 1 from its journal: it recovers version 2 on its own,
  // and the router's catch-up replays version 3 before the next answer.
  host1 = std::make_unique<ShardHost>(base, ring_invariants(), options1);
  port1->store(host1->port());
  EXPECT_EQ(host1->service().recovered_commits(), 1u);
  EXPECT_EQ(host1->service().head()->id, 2u);

  const QueryResult recovered = router.handle(to_shard1);
  EXPECT_TRUE(recovered.ok) << recovered.body;
  EXPECT_EQ(recovered.version, 3u);
  EXPECT_EQ(host1->service().head()->id, 3u);

  // And the healed deployment again answers exactly like a monolith.
  DnaService monolith(base, ring_invariants(), {.num_threads = 1});
  monolith.commit_text("fail_link 1");
  monolith.commit_text("link_cost 0 9");
  for (topo::NodeId node = 0; node < base.topology.num_nodes(); ++node) {
    const std::string line =
        "reach " + base.topology.node_name(node) + " 172.31.1.1";
    EXPECT_EQ(to_answer(router.handle(line)), to_answer(monolith.query(line)))
        << line;
  }
  const QueryResult scatter_again = router.handle("check loopfree");
  EXPECT_EQ(to_answer(scatter_again),
            to_answer(monolith.query("check loopfree")));

  const RouterMetrics metrics = router.metrics();
  EXPECT_GE(metrics.reconnects, 1u);
  EXPECT_EQ(metrics.replayed_commits, 1u);
  EXPECT_GE(metrics.shard_errors, 2u);
  EXPECT_EQ(metrics.head_version, 3u);
}

TEST(Router, AllShardsDownFailsCommitTyped) {
  ShardRouter router({[]() -> std::unique_ptr<Transport> {
    throw Error("nothing listening");
  }});
  const QueryResult commit = router.handle("commit fail_link 0");
  EXPECT_FALSE(commit.ok);
  EXPECT_NE(commit.body.find("no shard reachable"), std::string::npos);
  const QueryResult query = router.handle("version");
  EXPECT_FALSE(query.ok);
  EXPECT_NE(query.body.find("shard 0 unavailable"), std::string::npos);
}

}  // namespace
}  // namespace dna::service::shard
