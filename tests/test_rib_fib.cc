// RIB assembly, admin-distance merge, static resolution, FIB diffing, and
// the full control-plane engine's incremental equivalence property.
#include <gtest/gtest.h>

#include "controlplane/engine.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::cp {
namespace {

using topo::NodeId;
using topo::Snapshot;

TEST(Rib, ConnectedRoutesForEnabledInterfacesOnly) {
  Snapshot snap = topo::make_line(2);
  // r0 carries lo + eth0 + host0; shutting eth0 must drop only its subnet.
  const size_t total = snap.config_of("r0").interfaces.size();
  snap.config_of("r0").find_interface("eth0")->enabled = false;
  RibCandidates out;
  add_connected_routes(snap, snap.topology.node_id("r0"), out);
  EXPECT_EQ(out.size(), total - 1);
}

TEST(Rib, StaticResolvesToAdjacentNode) {
  Snapshot snap = topo::make_line(2);
  const topo::Link& link = snap.topology.link(0);
  Ipv4Addr peer_addr =
      snap.configs[link.b].find_interface(link.b_if)->address;
  snap.config_of("r0").static_routes.push_back(
      {Ipv4Prefix(Ipv4Addr(203, 0, 113, 0), 24), peer_addr});
  RibCandidates out;
  add_static_routes(snap, snap.topology.node_id("r0"), out);
  ASSERT_EQ(out.size(), 1u);
  const FibEntry& entry = out.begin()->second[0];
  EXPECT_EQ(entry.protocol, Protocol::kStatic);
  ASSERT_EQ(entry.hops.size(), 1u);
  EXPECT_EQ(entry.hops[0].next, link.b);
}

TEST(Rib, StaticWithUnresolvableNextHopIsDropped) {
  Snapshot snap = topo::make_line(2);
  snap.config_of("r0").static_routes.push_back(
      {Ipv4Prefix(Ipv4Addr(203, 0, 113, 0), 24), Ipv4Addr(9, 9, 9, 9)});
  RibCandidates out;
  add_static_routes(snap, snap.topology.node_id("r0"), out);
  EXPECT_TRUE(out.empty());
}

TEST(Rib, StaticLosesResolutionWhenLinkDown) {
  Snapshot snap = topo::make_line(2);
  const topo::Link& link = snap.topology.link(0);
  Ipv4Addr peer_addr =
      snap.configs[link.b].find_interface(link.b_if)->address;
  snap.config_of("r0").static_routes.push_back(
      {Ipv4Prefix(Ipv4Addr(203, 0, 113, 0), 24), peer_addr});
  snap.topology.set_link_up(0, false);
  RibCandidates out;
  add_static_routes(snap, snap.topology.node_id("r0"), out);
  EXPECT_TRUE(out.empty());
}

TEST(Rib, MergePrefersLowerAdminDistance) {
  RibCandidates candidates;
  Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 24);
  FibEntry ospf_entry{p, FibEntry::Action::kForward, Protocol::kOspf, 30,
                      {{2, 7}}};
  FibEntry static_entry{p, FibEntry::Action::kForward, Protocol::kStatic, 0,
                        {{1, 3}}};
  candidates[p] = {ospf_entry, static_entry};
  Fib fib = merge_to_fib(std::move(candidates));
  ASSERT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib[0].protocol, Protocol::kStatic);
}

TEST(Rib, MergeCombinesEcmpHopsOfEqualCandidates) {
  RibCandidates candidates;
  Ipv4Prefix p(Ipv4Addr(10, 0, 0, 0), 24);
  candidates[p].push_back(
      {p, FibEntry::Action::kForward, Protocol::kStatic, 0, {{1, 3}}});
  candidates[p].push_back(
      {p, FibEntry::Action::kForward, Protocol::kStatic, 0, {{2, 4}}});
  Fib fib = merge_to_fib(std::move(candidates));
  ASSERT_EQ(fib.size(), 1u);
  EXPECT_EQ(fib[0].hops.size(), 2u);
}

TEST(Rib, AdminDistanceOrdering) {
  EXPECT_LT(admin_distance(Protocol::kConnected),
            admin_distance(Protocol::kStatic));
  EXPECT_LT(admin_distance(Protocol::kStatic),
            admin_distance(Protocol::kEbgp));
  EXPECT_LT(admin_distance(Protocol::kEbgp), admin_distance(Protocol::kOspf));
  EXPECT_LT(admin_distance(Protocol::kOspf), admin_distance(Protocol::kIbgp));
}

TEST(FibDiff, SymmetricDifference) {
  Ipv4Prefix p1(Ipv4Addr(10, 0, 0, 0), 24);
  Ipv4Prefix p2(Ipv4Addr(10, 0, 1, 0), 24);
  Fib before = {{p1, FibEntry::Action::kLocal, Protocol::kConnected, 0, {}}};
  Fib after = {{p1, FibEntry::Action::kLocal, Protocol::kConnected, 0, {}},
               {p2, FibEntry::Action::kForward, Protocol::kOspf, 10, {{1, 0}}}};
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  NodeFibDelta delta = diff_fib(before, after);
  EXPECT_EQ(delta.added.size(), 1u);
  EXPECT_TRUE(delta.removed.empty());
  EXPECT_EQ(delta.added[0].prefix, p2);

  NodeFibDelta reverse = diff_fib(after, before);
  EXPECT_EQ(reverse.removed.size(), 1u);
  EXPECT_TRUE(reverse.added.empty());
}

TEST(Engine, FullBuildProducesFibs) {
  Snapshot snap = topo::make_fattree(4);
  ControlPlaneEngine engine(snap);
  EXPECT_EQ(engine.fibs().size(), snap.topology.num_nodes());
  for (const Fib& fib : engine.fibs()) {
    EXPECT_FALSE(fib.empty());
    EXPECT_TRUE(std::is_sorted(fib.begin(), fib.end()));
  }
}

TEST(Engine, AdvanceReportsFibDeltaForCostChange) {
  Snapshot snap = topo::make_ring(6);
  ControlPlaneEngine engine(snap);
  Snapshot changed = topo::with_link_cost(snap, 0, 100);
  AdvanceResult result = engine.advance(changed);
  EXPECT_FALSE(result.config_changes.empty());
  EXPECT_FALSE(result.fib_delta.empty());
  EXPECT_FALSE(result.rebuilt);
  EXPECT_EQ(engine.fibs(), ControlPlaneEngine::compute_fibs(changed));
}

TEST(Engine, NoopAdvanceIsEmpty) {
  Snapshot snap = topo::make_ring(4);
  ControlPlaneEngine engine(snap);
  AdvanceResult result = engine.advance(snap);
  EXPECT_TRUE(result.config_changes.empty());
  EXPECT_TRUE(result.link_changes.empty());
  EXPECT_TRUE(result.fib_delta.empty());
}

class EngineChurn : public ::testing::TestWithParam<const char*> {};

TEST_P(EngineChurn, IncrementalFibsEqualMonolithic) {
  std::string which = GetParam();
  Rng rng(0xF1B + which.size());
  Snapshot snap;
  if (which == "ring") snap = topo::make_ring(8);
  if (which == "fattree") snap = topo::make_fattree(4);
  if (which == "two_tier") snap = topo::make_two_tier_as(4, 2);
  if (which == "random") snap = topo::make_random(10, 16, rng);

  ControlPlaneEngine engine(snap);
  for (int step = 0; step < 25; ++step) {
    topo::RandomChange change = topo::random_change(snap, rng);
    snap = std::move(change.snapshot);
    AdvanceResult result = engine.advance(snap);
    (void)result;
    ASSERT_EQ(engine.fibs(), ControlPlaneEngine::compute_fibs(snap))
        << which << " step " << step << ": " << change.description;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, EngineChurn,
                         ::testing::Values("ring", "fattree", "two_tier",
                                           "random"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dna::cp
