// Datalog bridge: reachability computed by recursive datalog over the
// verifier's forwarding graphs must match the specialized verifier, both at
// full load and across incremental syncs.
#include <gtest/gtest.h>

#include "controlplane/engine.h"
#include "core/datalog_bridge.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::core {
namespace {

using topo::Snapshot;

TEST(DatalogBridge, MatchesVerifierOnFullLoad) {
  Snapshot snap = topo::make_fattree(4);
  cp::ControlPlaneEngine engine(snap);
  dp::Verifier verifier(&engine.snapshot(), &engine.fibs());

  DatalogBridge bridge;
  bridge.sync(verifier);
  EXPECT_EQ(bridge.mismatches(verifier), 0u);
}

TEST(DatalogBridge, IncrementalSyncTracksChanges) {
  Snapshot snap = topo::make_ring(6);
  cp::ControlPlaneEngine engine(snap);
  dp::Verifier verifier(&engine.snapshot(), &engine.fibs());
  DatalogBridge bridge;
  bridge.sync(verifier);
  ASSERT_EQ(bridge.mismatches(verifier), 0u);

  // Fail a link, advance both layers, re-sync only deltas.
  Snapshot broken = topo::with_link_state(snap, 0, false);
  cp::AdvanceResult result = engine.advance(broken);
  verifier.apply(&engine.snapshot(), &engine.fibs(), result.fib_delta,
                 result.config_changes);
  bridge.sync(verifier);
  EXPECT_EQ(bridge.mismatches(verifier), 0u);

  // And back up.
  result = engine.advance(snap);
  verifier.apply(&engine.snapshot(), &engine.fibs(), result.fib_delta,
                 result.config_changes);
  bridge.sync(verifier);
  EXPECT_EQ(bridge.mismatches(verifier), 0u);
}

TEST(DatalogBridge, AllStrategiesAgree) {
  Snapshot snap = topo::make_grid(2, 3);
  cp::ControlPlaneEngine engine(snap);
  dp::Verifier verifier(&engine.snapshot(), &engine.fibs());

  DatalogBridge counting(datalog::DatalogEngine::Strategy::kIncremental);
  DatalogBridge dred(datalog::DatalogEngine::Strategy::kIncrementalForceDRed);
  DatalogBridge recompute(datalog::DatalogEngine::Strategy::kRecompute);
  for (DatalogBridge* bridge : {&counting, &dred, &recompute}) {
    bridge->sync(verifier);
    EXPECT_EQ(bridge->mismatches(verifier), 0u);
  }

  Snapshot changed = topo::with_link_cost(snap, 1, 60);
  cp::AdvanceResult result = engine.advance(changed);
  verifier.apply(&engine.snapshot(), &engine.fibs(), result.fib_delta,
                 result.config_changes);
  for (DatalogBridge* bridge : {&counting, &dred, &recompute}) {
    bridge->sync(verifier);
    EXPECT_EQ(bridge->mismatches(verifier), 0u);
  }
}

TEST(DatalogBridge, ChurnStaysConsistent) {
  Rng rng(0xB41D);
  Snapshot snap = topo::make_ring(5);
  cp::ControlPlaneEngine engine(snap);
  dp::Verifier verifier(&engine.snapshot(), &engine.fibs());
  DatalogBridge bridge;
  bridge.sync(verifier);

  for (int step = 0; step < 8; ++step) {
    // Restrict to routing-only changes: the bridge models FIB-level
    // reachability without ACLs (see header).
    uint32_t link = static_cast<uint32_t>(rng.below(snap.topology.num_links()));
    Snapshot next = rng.chance(0.5)
                        ? topo::with_link_cost(snap, link,
                                               static_cast<int>(rng.range(1, 40)))
                        : topo::with_link_state(
                              snap, link, !snap.topology.link(link).up);
    snap = std::move(next);
    cp::AdvanceResult result = engine.advance(snap);
    verifier.apply(&engine.snapshot(), &engine.fibs(), result.fib_delta,
                   result.config_changes);
    bridge.sync(verifier);
    ASSERT_EQ(bridge.mismatches(verifier), 0u) << "step " << step;
  }
}

}  // namespace
}  // namespace dna::core
