// Tests for the lock-free MPSC submission machinery (util/mpsc_queue.h):
// the queue's delivery contract under producer contention — FIFO per
// producer, no loss, no double delivery — plus the park/wake handshakes
// and the CreditGate's bounded-depth semantics. The stress tests are the
// TSan job's main course: every handshake in the queue is exercised under
// real contention here.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/mpsc_queue.h"

namespace dna {
namespace {

using util::CreditGate;
using util::MpscQueue;

/// One produced item: which producer sent it and its per-producer
/// sequence number — enough to check FIFO-per-producer, loss, and
/// double delivery on the consumer side.
struct Item {
  uint32_t producer = 0;
  uint32_t sequence = 0;
};

TEST(MpscQueue, SingleThreadPushPopInOrder) {
  MpscQueue<Item> queue;
  EXPECT_EQ(queue.size(), 0u);
  Item out;
  EXPECT_FALSE(queue.try_pop(out));
  for (uint32_t i = 0; i < 100; ++i) queue.push(Item{0, i});
  EXPECT_EQ(queue.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.try_pop(out));
    EXPECT_EQ(out.sequence, i);
  }
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(queue.size(), 0u);
}

TEST(MpscQueue, StressManyProducersLosesAndDuplicatesNothing) {
  // N producers x M items against one consumer popping as fast as it can.
  // The consumer checks the full contract: every (producer, sequence)
  // pair arrives exactly once, and each producer's stream arrives in
  // sequence order (streams may interleave arbitrarily).
  constexpr uint32_t kProducers = 8;
  constexpr uint32_t kItems = 5000;
  MpscQueue<Item> queue;

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (uint32_t i = 0; i < kItems; ++i) queue.push(Item{p, i});
    });
  }

  std::vector<uint32_t> next_expected(kProducers, 0);
  uint64_t received = 0;
  while (received < uint64_t{kProducers} * kItems) {
    Item out;
    if (!queue.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_LT(out.producer, kProducers);
    // FIFO per producer + exactly-once: the only sequence this producer
    // may deliver next is the one after its last. A duplicate or a skip
    // both trip this.
    ASSERT_EQ(out.sequence, next_expected[out.producer])
        << "producer " << out.producer << " delivered out of order";
    ++next_expected[out.producer];
    ++received;
  }
  for (std::thread& producer : producers) producer.join();
  Item out;
  EXPECT_FALSE(queue.try_pop(out));
  EXPECT_EQ(queue.size(), 0u);
  for (uint32_t p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kItems);
  }
}

TEST(MpscQueue, ParkedConsumerNeverSleepsThroughAPush) {
  // The Dekker handshake under contention: the consumer parks between
  // every pop while producers push flat out. A lost wake-up deadlocks
  // this test (the consumer sleeps forever with items in the queue), so
  // finishing at all is the assertion.
  constexpr uint32_t kProducers = 4;
  constexpr uint32_t kItems = 2000;
  MpscQueue<Item> queue;

  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (uint32_t i = 0; i < kItems; ++i) queue.push(Item{p, i});
    });
  }

  uint64_t received = 0;
  while (received < uint64_t{kProducers} * kItems) {
    queue.wait_nonempty();
    Item out;
    while (queue.try_pop(out)) ++received;
  }
  for (std::thread& producer : producers) producer.join();
  EXPECT_EQ(received, uint64_t{kProducers} * kItems);
}

TEST(MpscQueue, CloseUnblocksAParkedConsumer) {
  MpscQueue<Item> queue;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    queue.wait_nonempty();  // nothing will ever be pushed
    woke.store(true);
  });
  // Give the consumer time to actually park, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke.load());
  EXPECT_TRUE(queue.closed());
}

TEST(MpscQueue, DrainAfterCloseDeliversEverything) {
  // Shutdown semantics: push is legal after close; the consumer drains.
  MpscQueue<Item> queue;
  for (uint32_t i = 0; i < 10; ++i) queue.push(Item{0, i});
  queue.close();
  for (uint32_t i = 0; i < 10; ++i) queue.push(Item{1, i});
  Item out;
  uint32_t received = 0;
  while (queue.try_pop(out)) ++received;
  EXPECT_EQ(received, 20u);
}

TEST(CreditGate, BoundsOutstandingAcquisitions) {
  CreditGate gate(3);
  EXPECT_FALSE(gate.unlimited());
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());  // at the bound
  gate.release(1);
  EXPECT_TRUE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());
}

TEST(CreditGate, ZeroCreditsMeansUnlimited) {
  CreditGate gate(0);
  EXPECT_TRUE(gate.unlimited());
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(gate.try_acquire());
}

TEST(CreditGate, AcquireForTimesOutAtTheBound) {
  CreditGate gate(1);
  ASSERT_TRUE(gate.try_acquire());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(gate.acquire_for(std::chrono::milliseconds(30)));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, std::chrono::milliseconds(25));
  // A zero deadline never parks — the shed path for submit_deadline=0.
  EXPECT_FALSE(gate.acquire_for(std::chrono::milliseconds(0)));
}

TEST(CreditGate, ReleaseWakesParkedAcquirers) {
  // All parked producers must make progress off one batched release(n):
  // the gate wakes everyone, not just one.
  constexpr size_t kWaiters = 4;
  CreditGate gate(kWaiters);
  for (size_t i = 0; i < kWaiters; ++i) ASSERT_TRUE(gate.try_acquire());

  std::atomic<size_t> acquired{0};
  std::vector<std::thread> waiters;
  for (size_t i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      if (gate.acquire_for(std::chrono::seconds(30))) {
        acquired.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.release(kWaiters);
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(acquired.load(), kWaiters);
  // All credits were re-acquired by the waiters.
  EXPECT_FALSE(gate.try_acquire());
}

TEST(CreditGate, StressProducersAgainstABatchingConsumer) {
  // The service's actual shape: many producers acquire one credit per
  // item; a consumer releases a batch at a time. The invariant is the
  // bound — outstanding (acquired - released) credits never exceed the
  // gate's depth — checked by counting successful acquisitions against
  // a model of the consumer's releases.
  constexpr size_t kDepth = 16;
  constexpr uint32_t kProducers = 4;
  constexpr uint32_t kItems = 2000;
  CreditGate gate(kDepth);
  std::atomic<long long> in_flight{0};
  std::atomic<bool> over_bound{false};
  std::atomic<uint64_t> served{0};

  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (uint32_t i = 0; i < kItems; ++i) {
        while (!gate.acquire_for(std::chrono::milliseconds(100))) {
        }
        const long long now = in_flight.fetch_add(1) + 1;
        if (now > static_cast<long long>(kDepth)) over_bound.store(true);
      }
    });
  }
  std::thread consumer([&] {
    while (served.load() < uint64_t{kProducers} * kItems) {
      const long long batch = in_flight.exchange(0);
      if (batch == 0) {
        std::this_thread::yield();
        continue;
      }
      served.fetch_add(static_cast<uint64_t>(batch));
      gate.release(static_cast<size_t>(batch));
    }
  });
  for (std::thread& producer : producers) producer.join();
  consumer.join();
  EXPECT_FALSE(over_bound.load());
  EXPECT_EQ(served.load(), uint64_t{kProducers} * kItems);
  // Quiescent: every credit is back.
  for (size_t i = 0; i < kDepth; ++i) EXPECT_TRUE(gate.try_acquire());
  EXPECT_FALSE(gate.try_acquire());
}

}  // namespace
}  // namespace dna
