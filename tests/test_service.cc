// The service layer's contract: versions are immutable and retire exactly
// when the last reader lets go; every query is answered against one
// fully-committed version (no torn reads, however many writers race);
// the framed protocol round-trips through any chunking; and the loopback
// transport end-to-end path behaves like direct DnaService calls.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <map>
#include <thread>
#include <vector>

#include "core/change.h"
#include "core/paths.h"
#include "dataplane/properties.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "service/protocol.h"
#include "service/query.h"
#include "service/service.h"
#include "service/session.h"
#include "service/transport.h"
#include "service/version.h"
#include "topo/generators.h"
#include "util/error.h"

namespace dna::service {
namespace {

std::vector<core::Invariant> ring_invariants() {
  return {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()},
          {core::Invariant::Kind::kReachable, "r0", "r3", "",
           Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}};
}

// ---------------------------------------------------------------------------
// SnapshotStore
// ---------------------------------------------------------------------------

TEST(SnapshotStore, PublishesMonotonicVersions) {
  SnapshotStore store(topo::make_ring(4));
  EXPECT_EQ(store.head()->id, 1u);
  EXPECT_EQ(store.head()->change_description, "base");

  Version provenance;
  provenance.change_description = "tweak";
  VersionHandle v2 = store.publish(*store.head()->snapshot, provenance);
  EXPECT_EQ(v2->id, 2u);
  EXPECT_EQ(store.head()->id, 2u);
  EXPECT_EQ(store.head()->change_description, "tweak");
  EXPECT_EQ(store.versions_published(), 2u);
}

TEST(SnapshotStore, RetiresOnlyWhenLastHandleDrops) {
  SnapshotStore store(topo::make_ring(4));
  VersionHandle reader = store.head();  // a reader leases version 1

  Version provenance;
  store.publish(*store.head()->snapshot, provenance);  // supersede it
  EXPECT_EQ(store.versions_published(), 2u);
  EXPECT_EQ(store.versions_retired(), 0u) << "reader still holds v1";
  EXPECT_EQ(store.versions_live(), 2u);

  EXPECT_EQ(reader->id, 1u);  // the lease still sees its version
  reader.reset();             // last reader lets go -> retirement
  EXPECT_EQ(store.versions_retired(), 1u);
  EXPECT_EQ(store.versions_live(), 1u);
}

TEST(SnapshotStore, VersionsOutliveTheStore) {
  VersionHandle survivor;
  {
    SnapshotStore store(topo::make_ring(4));
    survivor = store.head();
  }
  EXPECT_EQ(survivor->id, 1u);
  EXPECT_EQ(survivor->snapshot->topology.num_nodes(), 4u);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(Protocol, FrameRoundTripsThroughAnyChunking) {
  const std::string payloads[] = {"", "x", "reach r0 172.31.1.1",
                                  std::string(1000, 'a') + "\n\nmulti line"};
  std::string stream;
  for (const std::string& payload : payloads) {
    stream += encode_frame(payload);
  }
  for (size_t chunk = 1; chunk <= 7; ++chunk) {
    FrameDecoder decoder;
    std::vector<std::string> decoded;
    for (size_t at = 0; at < stream.size(); at += chunk) {
      decoder.feed(std::string_view(stream).substr(at, chunk));
      while (auto payload = decoder.next()) decoded.push_back(*payload);
    }
    ASSERT_EQ(decoded.size(), 4u) << "chunk size " << chunk;
    for (size_t i = 0; i < 4; ++i) EXPECT_EQ(decoded[i], payloads[i]);
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(Protocol, RejectsMalformedAndOversizedFrames) {
  {
    FrameDecoder decoder;
    decoder.feed("12a\npayload");
    EXPECT_THROW(decoder.next(), Error);
  }
  {
    FrameDecoder decoder;
    decoder.feed(std::to_string(kMaxFramePayload + 1) + "\n");
    EXPECT_THROW(decoder.next(), Error);
  }
  {
    FrameDecoder decoder;
    decoder.feed(std::string(30, '1'));  // length line never terminates
    EXPECT_THROW(decoder.next(), Error);
  }
}

TEST(Protocol, ResponseRoundTrip) {
  QueryResult result;
  result.ok = false;
  result.version = 42;
  result.body = "line one\nline two";
  const QueryResult back = decode_response(encode_response(result));
  EXPECT_EQ(back.ok, false);
  EXPECT_EQ(back.version, 42u);
  EXPECT_EQ(back.body, result.body);
  EXPECT_THROW(decode_response("what 3\nbody"), Error);
}

// ---------------------------------------------------------------------------
// Query language
// ---------------------------------------------------------------------------

TEST(QueryLanguage, ParsesEveryKind) {
  EXPECT_EQ(parse_query("version").kind, QueryKind::kVersion);
  EXPECT_EQ(parse_query("hash").kind, QueryKind::kHash);
  const Query reach = parse_query("reach r0 172.31.1.9");
  EXPECT_EQ(reach.kind, QueryKind::kReach);
  EXPECT_EQ(reach.src, "r0");
  EXPECT_EQ(reach.dst, Ipv4Addr(172, 31, 1, 9));
  EXPECT_EQ(parse_query("paths r2 10.0.0.1").kind, QueryKind::kPaths);
  const Query check = parse_query("check waypoint r0 r3 r1 10.0.0.0/8");
  EXPECT_EQ(check.invariant.kind, core::Invariant::Kind::kWaypoint);
  EXPECT_EQ(check.invariant.waypoint, "r1");
  const Query whatif = parse_query("whatif fail_link 2; link_cost 1 50");
  EXPECT_EQ(whatif.kind, QueryKind::kWhatIf);
  EXPECT_EQ(whatif.plan.size(), 2u);

  EXPECT_THROW(parse_query(""), Error);
  EXPECT_THROW(parse_query("reach r0"), Error);
  EXPECT_THROW(parse_query("reach r0 not-an-ip"), Error);
  EXPECT_THROW(parse_query("check bogus r0"), Error);
  EXPECT_THROW(parse_query("whatif"), Error);
  EXPECT_THROW(parse_query("whatif explode_link 2"), Error);
  EXPECT_THROW(parse_query("frobnicate"), Error);
}

TEST(QueryLanguage, ChangePlanAppliesLikeTheNativePlan) {
  const topo::Snapshot base = topo::make_ring(5);
  const topo::Snapshot parsed =
      parse_change_plan("fail_link 1; link_cost 2 77").apply(base);
  topo::Snapshot native = core::ChangePlan::link_cost(2, 77).apply(
      core::ChangePlan::link_failure(1).apply(base));
  EXPECT_EQ(parsed, native);
}

// Journal replay re-runs a commit from its recorded text, so the round
// trip text -> plan -> description -> plan must be the identity: same
// text back, and a re-parsed plan that transforms any snapshot exactly
// like the first parse did. Fuzzed across every step kind the generator
// emits, on two topology shapes.
TEST(QueryLanguage, RandomChangeTextRoundTripsThroughItsDescription) {
  const topo::Snapshot bases[] = {topo::make_ring(6), topo::make_grid(3, 3)};
  for (const topo::Snapshot& base : bases) {
    Rng rng(0xF022 + base.topology.num_links());
    for (int i = 0; i < 150; ++i) {
      const std::string text = random_change_text(base, rng);
      const core::ChangePlan plan = parse_change_plan(text);
      ASSERT_EQ(plan.description(), text);
      const core::ChangePlan reparsed = parse_change_plan(plan.description());
      ASSERT_EQ(reparsed.description(), text);
      ASSERT_EQ(plan.apply(base), reparsed.apply(base)) << text;
    }
  }
}

TEST(QueryLanguage, SnapshotDigestDetectsAnyDifference) {
  const topo::Snapshot a = topo::make_ring(5);
  EXPECT_EQ(snapshot_digest(a), snapshot_digest(topo::make_ring(5)));
  const topo::Snapshot b = core::ChangePlan::link_cost(0, 99).apply(a);
  EXPECT_NE(snapshot_digest(a), snapshot_digest(b));
}

// ---------------------------------------------------------------------------
// DnaService
// ---------------------------------------------------------------------------

TEST(DnaService, AnswersMatchADirectEngine) {
  const topo::Snapshot base = topo::make_ring(6);
  DnaService service(base, ring_invariants(), {.num_threads = 2});

  QueryResult reach = service.query("reach r0 172.31.1.1");
  EXPECT_TRUE(reach.ok) << reach.body;
  EXPECT_EQ(reach.version, 1u);
  EXPECT_EQ(reach.body, "reachable true owner r3");

  QueryResult check = service.query("check reachable r0 r3 172.31.1.0/24");
  EXPECT_TRUE(check.ok);
  EXPECT_EQ(check.body.find("holds true"), 0u) << check.body;

  QueryResult paths = service.query("paths r0 172.31.1.1");
  core::DnaEngine engine(base);
  const auto expected = core::forwarding_paths(
      engine.verifier(), engine.snapshot(), 0, Ipv4Addr(172, 31, 1, 1));
  size_t found = 0;
  for (const auto& path : expected) {
    if (paths.body.find(path.str(base.topology)) != std::string::npos) {
      ++found;
    }
  }
  EXPECT_EQ(found, expected.size()) << paths.body;

  QueryResult bad = service.query("reach nonexistent 10.0.0.1");
  EXPECT_FALSE(bad.ok);
  QueryResult malformed = service.query("gibberish");
  EXPECT_FALSE(malformed.ok);

  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.queries_total, 5u);
  EXPECT_EQ(metrics.queries_failed, 2u);
  EXPECT_EQ(metrics.versions_published, 1u);
}

TEST(DnaService, CommitPublishesAndQueriesFollowTheHead) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = 2});

  // A ring survives one link failure: still reachable, at a new version.
  const CommitResult commit =
      service.commit(core::ChangePlan::link_failure(1));
  EXPECT_EQ(commit.version, 2u);
  EXPECT_FALSE(commit.semantically_empty);

  const QueryResult reach = service.query("reach r0 172.31.1.1");
  EXPECT_TRUE(reach.ok);
  EXPECT_EQ(reach.version, 2u);
  EXPECT_EQ(reach.body, "reachable true owner r3");

  // whatif never commits.
  const QueryResult whatif = service.query("whatif fail_link 0");
  EXPECT_TRUE(whatif.ok) << whatif.body;
  EXPECT_EQ(service.head()->id, 2u);
  EXPECT_NE(whatif.body.find("\"ok\":true"), std::string::npos);

  // A what-if whose plan cannot apply fails alone; the worker replica
  // survives and the next query still answers.
  const QueryResult bad_whatif = service.query("whatif fail_link 999999");
  EXPECT_FALSE(bad_whatif.ok);
  EXPECT_TRUE(service.query("reach r0 172.31.1.1").ok);

  // A failing commit publishes nothing and leaves the service healthy.
  core::ChangePlan bad("throws on apply");
  bad.add([](topo::Snapshot) -> topo::Snapshot {
    throw Error("deliberate failure");
  });
  EXPECT_THROW(service.commit(bad), Error);
  EXPECT_EQ(service.head()->id, 2u);
  EXPECT_TRUE(service.query("reach r0 172.31.1.1").ok);
  EXPECT_EQ(service.metrics().commits, 1u);
}

// The backpressure contract: at the configured queue bound, submit()
// sheds — visibly, with a resolved future and a counted metric — instead
// of growing the queue without limit or blocking forever.
TEST(DnaService, SaturatedQueueShedsInsteadOfDeadlocking) {
  ServiceOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 1;
  options.submit_deadline = std::chrono::milliseconds(0);
  // A fat-tree keeps the first-ever dispatched query busy for a while
  // (the worker replica pays its base verification), so the queue
  // saturates deterministically underneath it.
  DnaService service(topo::make_fattree(4), {}, options);

  std::vector<QueryResult> results;
  bool saw_saturation = false;
  for (int attempt = 0; attempt < 5 && !saw_saturation; ++attempt) {
    // Occupy the dispatcher with a query that takes real work even on a
    // warmed replica...
    auto busy = service.submit("whatif fail_link 0");
    while (service.queue_depth() > 0) std::this_thread::yield();
    // ...then fill the queue to the bound and push one past it.
    auto queued = service.submit("version");
    auto overflow = service.submit("version");
    results.push_back(overflow.get());
    if (!results.back().ok &&
        results.back().body.find("shed") != std::string::npos) {
      saw_saturation = true;
    }
    results.push_back(queued.get());
    results.push_back(busy.get());
  }
  EXPECT_TRUE(saw_saturation);

  // Nothing deadlocked: every future resolved, and sheds are reported.
  size_t ok_count = 0;
  for (const QueryResult& result : results) {
    if (result.ok) ++ok_count;
  }
  EXPECT_GT(ok_count, 0u);
  const ServiceMetrics metrics = service.metrics();
  EXPECT_GE(metrics.queries_shed, 1u);
  EXPECT_EQ(metrics.queries_total, results.size());
  EXPECT_NE(metrics.str().find("shed"), std::string::npos);

  // Exact shed-vs-served accounting: a shed query never acquires a queue
  // slot, so it can never also appear in the queue-wait histogram. Every
  // query in this test parses and resolves its version, so the histogram
  // count (served) and the shed counter must partition the total with
  // nothing dropped and nothing double-counted.
  const uint64_t served = service.registry()
                              .histogram("service.query_queue_seconds")
                              .snapshot()
                              .count;
  EXPECT_EQ(metrics.queries_shed + served, metrics.queries_total);
}

TEST(DnaService, SubmitAfterShutdownFailsCleanly) {
  DnaService service(topo::make_line(3), {}, {.num_threads = 1});
  service.shutdown();
  QueryResult late = service.query("version");
  EXPECT_FALSE(late.ok);
  EXPECT_NE(late.body.find("shutting down"), std::string::npos);
}

// The shutdown race: submitters still in submit() while shutdown() runs.
// The old double-notify path could let a submitter that had already
// passed its stop check enqueue into a queue nobody would drain again —
// a future that never resolves. The contract now: every future resolves,
// either with a real answer (the submit won the race and the dispatcher's
// final drain served it) or with the typed shutting-down error.
TEST(DnaService, ShutdownRacingSubmittersLeavesNoHungFutures) {
  constexpr int kRounds = 8;
  constexpr int kSubmitters = 4;
  for (int round = 0; round < kRounds; ++round) {
    DnaService service(topo::make_line(3), {}, {.num_threads = 2});
    std::atomic<bool> stop{false};
    std::vector<std::vector<std::future<QueryResult>>> futures(kSubmitters);
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
      submitters.emplace_back([&service, &stop, &futures, s] {
        while (!stop.load(std::memory_order_relaxed)) {
          futures[s].push_back(service.submit("version"));
        }
        // One more after the stop is certainly published — the pure
        // submit-after-shutdown path must also resolve.
        futures[s].push_back(service.submit("version"));
      });
    }
    // Let the submitters build up steam, then yank the service from
    // under them.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    service.shutdown();
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& submitter : submitters) submitter.join();

    size_t answered = 0, refused = 0;
    for (auto& per_submitter : futures) {
      for (auto& future : per_submitter) {
        // A hung future is the bug this test exists for: fail with a
        // diagnosis instead of wedging the suite.
        ASSERT_EQ(future.wait_for(std::chrono::seconds(10)),
                  std::future_status::ready)
            << "round " << round << ": a submit raced shutdown and its "
            << "future never resolved";
        const QueryResult result = future.get();
        if (result.ok) {
          ++answered;
        } else {
          EXPECT_NE(result.body.find("shutting down"), std::string::npos)
              << result.body;
          ++refused;
        }
      }
    }
    // Both outcomes are legal per race; the last-after-stop submits
    // guarantee at least one typed refusal per round.
    EXPECT_GE(refused, static_cast<size_t>(kSubmitters));
    (void)answered;
  }
}

// The headline concurrency property: N writers race M readers, and every
// reader-observed (version, digest) pair must equal the digest a serial
// replay of the commit log produces for that version — a torn or
// half-committed snapshot would hash differently.
TEST(DnaService, WritersRacingReadersProduceNoTornReads) {
  const topo::Snapshot base = topo::make_ring(6);
  DnaService service(base, ring_invariants(), {.num_threads = 2});

  constexpr int kWriters = 3;
  constexpr int kCommitsPerWriter = 5;
  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 25;

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  // Writers: each flips its own link's cost through a private sequence.
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&service, &go, w] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kCommitsPerWriter; ++i) {
        service.commit(
            core::ChangePlan::link_cost(w, 10 + (w + 1) * 10 + i));
      }
    });
  }
  // Readers: interleave hash and reach queries while versions churn.
  std::vector<std::vector<QueryResult>> observed(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&service, &go, &observed, r] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < kQueriesPerReader; ++i) {
        observed[r].push_back(
            service.query(i % 2 == 0 ? "hash" : "reach r0 172.31.1.1"));
      }
    });
  }
  go.store(true);
  for (std::thread& thread : threads) thread.join();

  const uint64_t last = service.head()->id;
  ASSERT_EQ(last, 1u + kWriters * kCommitsPerWriter);

  uint64_t max_seen = 0;
  for (int r = 0; r < kReaders; ++r) {
    uint64_t previous = 0;
    for (const QueryResult& result : observed[r]) {
      ASSERT_TRUE(result.ok) << result.body;
      // Versions a single client observes never go backwards.
      EXPECT_GE(result.version, previous);
      previous = result.version;
      max_seen = std::max(max_seen, result.version);
      // Reachability must hold at every version: only link costs changed,
      // so a false answer can only come from a torn snapshot.
      if (result.body.find("reachable") == 0) {
        EXPECT_EQ(result.body, "reachable true owner r3") << result.body;
      }
    }
  }
  EXPECT_LE(max_seen, last);

  // No version may ever have been observed with two different digests, and
  // the final head digest must match a from-scratch application of the
  // final state (queried after quiescence, so it is deterministic).
  std::map<uint64_t, std::string> digest_at;
  for (const auto& reader : observed) {
    for (const QueryResult& result : reader) {
      if (result.body.find("hash ") != 0) continue;
      auto [it, inserted] = digest_at.emplace(result.version, result.body);
      EXPECT_EQ(it->second, result.body)
          << "version " << result.version << " observed with two digests";
    }
  }
  const QueryResult head_hash = service.query("hash");
  EXPECT_EQ(head_hash.version, last);
  char expected_hex[32];
  std::snprintf(expected_hex, sizeof(expected_hex), "hash %016llx",
                static_cast<unsigned long long>(
                    snapshot_digest(*service.head()->snapshot)));
  EXPECT_EQ(head_hash.body, expected_hex);

  // Version accounting stayed consistent under the race.
  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.versions_published, last);
  EXPECT_EQ(metrics.commits, size_t{kWriters * kCommitsPerWriter});
  EXPECT_EQ(metrics.queries_total,
            size_t{kReaders * kQueriesPerReader} + 1);
}

// ---------------------------------------------------------------------------
// Loopback transport end-to-end
// ---------------------------------------------------------------------------

TEST(Session, LoopbackEndToEnd) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = 2});
  LoopbackChannel channel;
  ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });

  ServiceClient client(channel.client());
  const QueryResult version = client.request("version");
  EXPECT_TRUE(version.ok);
  EXPECT_EQ(version.version, 1u);
  EXPECT_EQ(version.body.find("version 1"), 0u) << version.body;

  const QueryResult commit = client.request("commit link_cost 0 42");
  EXPECT_TRUE(commit.ok);
  EXPECT_EQ(commit.version, 2u);
  EXPECT_EQ(commit.body.find("committed version 2"), 0u) << commit.body;

  const QueryResult reach = client.request("reach r0 172.31.1.1");
  EXPECT_TRUE(reach.ok);
  EXPECT_EQ(reach.version, 2u);

  const QueryResult bad = client.request("commit fail_link 999999");
  EXPECT_FALSE(bad.ok);

  const QueryResult metrics = client.request("metrics");
  EXPECT_TRUE(metrics.ok);
  EXPECT_NE(metrics.body.find("service metrics"), std::string::npos);

  client.close();
  server.join();
  EXPECT_FALSE(session.shutdown_requested());
}

TEST(Session, ManyClientsOneService) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = 2});
  constexpr int kClients = 4;
  constexpr int kRequests = 10;

  std::vector<std::unique_ptr<LoopbackChannel>> channels;
  std::vector<std::unique_ptr<ServerSession>> sessions;
  std::vector<std::thread> servers;
  for (int c = 0; c < kClients; ++c) {
    channels.push_back(std::make_unique<LoopbackChannel>());
    sessions.push_back(
        std::make_unique<ServerSession>(service, channels[c]->server()));
    servers.emplace_back([&session = *sessions[c]] { session.run(); });
  }

  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&channel = *channels[c], &failures] {
      ServiceClient client(channel.client());
      for (int i = 0; i < kRequests; ++i) {
        const QueryResult result = client.request("reach r0 172.31.1.1");
        if (!result.ok || result.body != "reachable true owner r3") {
          failures.fetch_add(1);
        }
      }
      client.close();
    });
  }
  for (std::thread& thread : clients) thread.join();
  for (std::thread& thread : servers) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(service.metrics().queries_total, size_t{kClients * kRequests});
}

TEST(Session, AbortEvictsAnIdleSession) {
  // A server shutting down must be able to unblock a session whose client
  // is connected but silent (the serve loop aborts before joining).
  DnaService service(topo::make_line(3), {}, {.num_threads = 1});
  LoopbackChannel channel;
  ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });

  ServiceClient client(channel.client());
  EXPECT_TRUE(client.request("version").ok);  // session is live...
  channel.server().abort();                   // ...evict it anyway
  server.join();
  EXPECT_FALSE(session.shutdown_requested());
}

// ---------------------------------------------------------------------------
// Version-pinned queries
// ---------------------------------------------------------------------------

TEST(Query, ParsesPinAndScopeModifiersInAnyOrder) {
  const Query pinned = parse_query("@7 reach r0 172.31.1.1");
  EXPECT_EQ(pinned.pinned_version, 7u);
  EXPECT_EQ(pinned.kind, QueryKind::kReach);
  EXPECT_EQ(pinned.src, "r0");

  const Query scoped = parse_query("part 1/4 check loopfree");
  EXPECT_EQ(scoped.scope_index, 1u);
  EXPECT_EQ(scoped.scope_count, 4u);
  EXPECT_EQ(scoped.kind, QueryKind::kCheck);

  const Query both = parse_query("part 0/2 @3 hash");
  EXPECT_EQ(both.pinned_version, 3u);
  EXPECT_EQ(both.scope_count, 2u);
  EXPECT_EQ(both.kind, QueryKind::kHash);

  EXPECT_THROW(parse_query("@0 version"), Error);
  EXPECT_THROW(parse_query("@x version"), Error);
  EXPECT_THROW(parse_query("part 2/2 version"), Error);
  EXPECT_THROW(parse_query("part nonsense version"), Error);
  EXPECT_THROW(parse_query("@3"), Error);  // modifiers alone are no query
}

TEST(Service, PinnedQueryAnswersAgainstALeasedOldVersion) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = 2});
  const VersionHandle lease = service.head();  // keep version 1 alive
  const QueryResult old_hash = service.query("hash");

  service.commit(core::ChangePlan::link_failure(1));
  const QueryResult head_hash = service.query("hash");
  ASSERT_NE(head_hash.body, old_hash.body);

  // Pinned to the leased version: old answer, old version id — time travel.
  const QueryResult pinned = service.query("@1 hash");
  EXPECT_TRUE(pinned.ok);
  EXPECT_EQ(pinned.version, 1u);
  EXPECT_EQ(pinned.body, old_hash.body);

  // Unpinned queries still read the head.
  EXPECT_EQ(service.query("hash").body, head_hash.body);

  // Pinning works for reads that need an engine at the old snapshot too.
  const QueryResult pinned_reach = service.query("@1 reach r0 172.31.1.1");
  EXPECT_TRUE(pinned_reach.ok);
  EXPECT_EQ(pinned_reach.version, 1u);
}

TEST(Service, PinToARetiredOrUnknownVersionFailsTyped) {
  DnaService service(topo::make_ring(6), {}, {.num_threads = 1});
  service.commit(core::ChangePlan::link_failure(1));  // retires version 1

  const QueryResult retired = service.query("@1 version");
  EXPECT_FALSE(retired.ok);
  EXPECT_NE(retired.body.find("version 1 is not live"), std::string::npos);

  const QueryResult unknown = service.query("@99 version");
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.body.find("not live"), std::string::npos);

  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.queries_failed, 2u);
}

TEST(Service, KeepVersionsPinsRecentHistoryWithoutReaders) {
  ServiceOptions options;
  options.num_threads = 1;
  options.keep_versions = 3;
  DnaService service(topo::make_ring(6), ring_invariants(), options);
  // The base version counts as history too: it must survive the first
  // commit without any reader leasing it.
  service.commit(core::ChangePlan::link_cost(0, 2));
  EXPECT_TRUE(service.query("@1 version").ok);
  for (int cost = 3; cost <= 5; ++cost) {
    service.commit(core::ChangePlan::link_cost(0, cost));
  }
  // Head is 5; the ring holds {3, 4, 5}; 1 and 2 fell out.
  EXPECT_EQ(service.head()->id, 5u);
  for (uint64_t id = 3; id <= 5; ++id) {
    const QueryResult pinned =
        service.query("@" + std::to_string(id) + " version");
    EXPECT_TRUE(pinned.ok) << pinned.body;
    EXPECT_EQ(pinned.version, id);
  }
  EXPECT_FALSE(service.query("@2 version").ok);
}

// ---------------------------------------------------------------------------
// Observability plane: health, worker stats, diagnose
// ---------------------------------------------------------------------------

struct ObsTempDir {
  std::string path;
  ObsTempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "dna_obs_XXXXXX");
    const char* created = ::mkdtemp(tmpl.data());
    if (created == nullptr) throw Error("mkdtemp failed for " + tmpl);
    path = created;
  }
  ~ObsTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

TEST(Observability, HealthFlipsWhenTheJournalFailsAnAppend) {
  ObsTempDir dir;
  ServiceOptions options;
  options.num_threads = 1;
  options.journal_dir = dir.path;
  DnaService service(topo::make_ring(4), ring_invariants(), options);

  Health healthy = service.health();
  EXPECT_TRUE(healthy.ok);
  EXPECT_NE(healthy.detail.find("ok"), std::string::npos);
  EXPECT_NE(healthy.detail.find("journal"), std::string::npos);

  // Inject a journal fault: the commit throws, publishes nothing, and
  // health flips — durability is gone, stop sending writes here.
  ASSERT_NE(service.journal(), nullptr);
  service.journal()->set_fail_appends(true);
  EXPECT_THROW(service.commit_text("link_cost 0 7"), Error);
  EXPECT_EQ(service.head()->id, 1u);
  const Health unhealthy = service.health();
  EXPECT_FALSE(unhealthy.ok);
  EXPECT_NE(unhealthy.detail.find("journal append failed"), std::string::npos);
  // Queries still answer (the service is degraded, not dead).
  EXPECT_TRUE(service.query("version").ok);
}

TEST(Observability, HealthReportsShutdown) {
  DnaService service(topo::make_line(3), {}, {.num_threads = 1});
  EXPECT_TRUE(service.health().ok);
  service.shutdown();
  const Health health = service.health();
  EXPECT_FALSE(health.ok);
  EXPECT_NE(health.detail.find("shutting down"), std::string::npos);
}

TEST(Observability, HealthzVerbMirrorsHealthOverTheWire) {
  DnaService service(topo::make_ring(4), ring_invariants(),
                     {.num_threads = 1});
  LoopbackChannel channel;
  ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });
  ServiceClient client(channel.client());
  const QueryResult result = client.request("healthz");
  EXPECT_TRUE(result.ok);
  EXPECT_NE(result.body.find("ok"), std::string::npos);
  client.request("shutdown");
  server.join();
}

TEST(Observability, WorkerStatsPartitionBusyTime) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = 2});
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(service.query("check loopfree").ok);
  }
  const auto stats = service.worker_stats();
  // Pool workers plus the dispatcher's inline-serve slot.
  ASSERT_EQ(stats.size(), service.num_workers() + 1);
  uint64_t tasks = 0;
  for (const auto& worker : stats) {
    tasks += worker.tasks;
    // catch-up and eval partition busy: their sum cannot exceed it (both
    // are measured inside the busy span).
    EXPECT_LE(worker.catchup_seconds + worker.eval_seconds,
              worker.busy_seconds + 1e-6);
    if (worker.tasks > 0) EXPECT_GT(worker.busy_seconds, 0.0);
  }
  EXPECT_GE(tasks, 20u);
  EXPECT_GT(service.uptime_seconds(), 0.0);
}

TEST(Observability, DiagnoseAttributesTheCollapseWithHighCoverage) {
  DnaService service(topo::make_fattree(4), {}, {.num_threads = 2});
  const obs::DiagnosisReport report = service.diagnose(/*queries_per_phase=*/40);

  EXPECT_EQ(report.component, "service");
  EXPECT_GE(report.threads, 2u);
  EXPECT_EQ(report.queries_seq, 40u);
  EXPECT_EQ(report.queries_flood, 40u);
  EXPECT_GT(report.seconds_seq, 0.0);
  EXPECT_GT(report.seconds_flood, 0.0);
  EXPECT_GT(report.qps_seq, 0.0);
  EXPECT_GT(report.qps_flood, 0.0);
  EXPECT_GT(report.speedup, 0.0);
  EXPECT_GE(report.serial_fraction, 0.0);
  EXPECT_LE(report.serial_fraction, 1.0);

  // The acceptance bar: the queue/fanout/catchup/eval legs partition
  // submit→done exactly, so attribution must cover >= 90% of measured
  // wall time.
  ASSERT_GE(report.legs.size(), 4u);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GE(report.coverage, 0.9);
  // The flood went through the batching dispatcher, and the report says
  // what shape the fan-out took.
  EXPECT_GE(report.batches, 1u);
  EXPECT_GT(report.mean_batch, 0.0);
  EXPECT_FALSE(report.dominant.empty());
  EXPECT_EQ(report.dominant, report.legs.front().name);
  // Legs are sorted descending and shares are sane.
  for (size_t i = 1; i < report.legs.size(); ++i) {
    EXPECT_GE(report.legs[i - 1].seconds, report.legs[i].seconds);
  }
  for (const auto& leg : report.legs) {
    EXPECT_GE(leg.share, 0.0);
  }
  // The human rendering names the verdict and the dominant leg.
  const std::string text = report.str();
  EXPECT_NE(text.find(report.dominant), std::string::npos);
  EXPECT_FALSE(report.verdict.empty());
  // And the JSON form is a well-formed object carrying the same verdict.
  util::JsonWriter json;
  report.append_json(json);
  EXPECT_NE(json.str().find("\"dominant\""), std::string::npos);
}

TEST(Observability, DiagnoseVerbAnswersOverTheWire) {
  DnaService service(topo::make_ring(6), ring_invariants(),
                     {.num_threads = 2});
  LoopbackChannel channel;
  ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });
  ServiceClient client(channel.client());
  const QueryResult human = client.request("diagnose 10");
  EXPECT_TRUE(human.ok) << human.body;
  EXPECT_NE(human.body.find("verdict"), std::string::npos);
  const QueryResult json = client.request("diagnose 10 json");
  EXPECT_TRUE(json.ok) << json.body;
  EXPECT_NE(json.body.find("\"dominant\""), std::string::npos);
  client.request("shutdown");
  server.join();
}

TEST(Observability, SlowQueriesMarkEventsIntoTheFlightRecorder) {
  ServiceOptions options;
  options.num_threads = 1;
  options.slow_query_ns = 1;  // everything is slow
  DnaService service(topo::make_ring(4), ring_invariants(), options);
  obs::FlightRecorder recorder(service.registry());
  service.set_flight_recorder(&recorder);
  ASSERT_TRUE(service.query("check loopfree").ok);
  service.set_flight_recorder(nullptr);
  const auto events = recorder.events();
  ASSERT_GE(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "slow_query");
  EXPECT_GE(recorder.size(), 1u);  // the auto-dumped sample
}

TEST(Session, ShutdownRequestStopsTheSession) {
  DnaService service(topo::make_line(3), {}, {.num_threads = 1});
  LoopbackChannel channel;
  ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });

  ServiceClient client(channel.client());
  const QueryResult result = client.request("shutdown");
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.body, "shutting down");
  server.join();
  EXPECT_TRUE(session.shutdown_requested());
}

}  // namespace
}  // namespace dna::service
