// Mode-equivalence regression sweep: for a batch of seeded random mutations,
// Mode::kMonolithic and Mode::kDifferential must agree on every semantic
// layer of the NetworkDiff (config/link, fib, reach, invariant flips).
//
// This complements test_core_engine.cc's churn sequences: here every
// mutation is evaluated one-shot from a pristine base with fresh engines,
// so a failure pins the disagreement to a single (base, change) pair whose
// seed is printed in the test name.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::core {
namespace {

using topo::Snapshot;

void expect_same_semantic_diff(const NetworkDiff& differential,
                               const NetworkDiff& monolithic,
                               const std::string& context) {
  EXPECT_EQ(differential.config_changes, monolithic.config_changes) << context;
  EXPECT_EQ(differential.link_changes, monolithic.link_changes) << context;
  ASSERT_EQ(differential.fib_delta.by_node.size(),
            monolithic.fib_delta.by_node.size())
      << context;
  for (const auto& [node, delta] : differential.fib_delta.by_node) {
    auto it = monolithic.fib_delta.by_node.find(node);
    ASSERT_NE(it, monolithic.fib_delta.by_node.end()) << context;
    auto sorted = [](std::vector<cp::FibEntry> entries) {
      std::sort(entries.begin(), entries.end());
      return entries;
    };
    EXPECT_EQ(sorted(delta.added), sorted(it->second.added)) << context;
    EXPECT_EQ(sorted(delta.removed), sorted(it->second.removed)) << context;
  }
  EXPECT_EQ(differential.reach_delta, monolithic.reach_delta) << context;
  EXPECT_EQ(differential.invariant_flips, monolithic.invariant_flips)
      << context;
}

struct SeededCase {
  const char* topology;
  uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SeededCase>& info) {
  return std::string(info.param.topology) + "_seed" +
         std::to_string(info.param.seed);
}

class SeededModeEquivalence : public ::testing::TestWithParam<SeededCase> {};

TEST_P(SeededModeEquivalence, OneShotRandomChangeAgrees) {
  const SeededCase& test_case = GetParam();
  Snapshot base;
  std::string which = test_case.topology;
  if (which == "ring") base = topo::make_ring(6);
  if (which == "fattree") base = topo::make_fattree(4);
  if (which == "two_tier") base = topo::make_two_tier_as(3, 2);
  if (which == "grid") base = topo::make_grid(3, 4);
  ASSERT_GT(base.topology.num_nodes(), 0u);

  Rng rng(0xE905eedULL + test_case.seed);
  topo::RandomChange change = topo::random_change(base, rng);

  DnaEngine differential(base);
  DnaEngine monolithic(base);
  for (DnaEngine* engine : {&differential, &monolithic}) {
    engine->add_invariant(
        {Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()});
    engine->add_invariant({Invariant::Kind::kReachable,
                           base.topology.node_name(0),
                           base.topology.node_name(1), "",
                           Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)});
  }

  NetworkDiff diff_d =
      differential.advance(change.snapshot, Mode::kDifferential);
  NetworkDiff diff_m = monolithic.advance(change.snapshot, Mode::kMonolithic);
  expect_same_semantic_diff(diff_d, diff_m, change.description);
}

std::vector<SeededCase> seeded_cases() {
  std::vector<SeededCase> cases;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    cases.push_back({"ring", seed});
    cases.push_back({"fattree", seed});
    cases.push_back({"two_tier", seed});
    cases.push_back({"grid", seed});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededModeEquivalence,
                         ::testing::ValuesIn(seeded_cases()), case_name);

}  // namespace
}  // namespace dna::core
