// Datalog engine: parsing, stratification, and from-scratch evaluation
// semantics (recursion, negation, comparisons, symbolic constants).
#include <gtest/gtest.h>

#include "datalog/engine.h"
#include "util/error.h"

namespace dna::datalog {
namespace {

TEST(Parser, ParsesDeclsRulesAndFacts) {
  Interner interner;
  ParsedProgram parsed = parse_program(R"(
    // transitive closure
    .decl edge(2) input
    .decl reach(2)
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    edge(1, 2).
    edge(2, 3).
  )",
                                       interner);
  EXPECT_EQ(parsed.program.relations().size(), 2u);
  EXPECT_EQ(parsed.program.rules().size(), 2u);
  EXPECT_EQ(parsed.facts.size(), 2u);
}

TEST(Parser, RejectsUndeclaredRelation) {
  Interner interner;
  EXPECT_THROW(parse_program("foo(1, 2).", interner), ParseError);
}

TEST(Parser, RejectsArityMismatch) {
  Interner interner;
  EXPECT_THROW(parse_program(R"(
    .decl edge(2) input
    .decl one(1)
    one(X) :- edge(X).
  )",
                             interner),
               Error);
}

TEST(Parser, RejectsFactIntoIdb) {
  Interner interner;
  EXPECT_THROW(parse_program(R"(
    .decl derived(1)
    derived(1).
  )",
                             interner),
               ParseError);
}

TEST(Parser, RejectsUnsafeNegation) {
  Interner interner;
  // Y appears only in the negated atom.
  EXPECT_THROW(parse_program(R"(
    .decl a(1) input
    .decl b(2) input
    .decl bad(1)
    bad(X) :- a(X), !b(X, Y).
  )",
                             interner),
               Error);
}

TEST(Parser, RejectsUnboundHeadVariable) {
  Interner interner;
  EXPECT_THROW(parse_program(R"(
    .decl a(1) input
    .decl bad(2)
    bad(X, Y) :- a(X).
  )",
                             interner),
               Error);
}

TEST(Stratify, RejectsNegationInCycle) {
  Interner interner;
  EXPECT_THROW(DatalogEngine(R"(
    .decl base(1) input
    .decl p(1)
    .decl q(1)
    p(X) :- base(X), !q(X).
    q(X) :- base(X), !p(X).
  )"),
               Error);
}

TEST(Eval, TransitiveClosure) {
  DatalogEngine eng(R"(
    .decl edge(2) input
    .decl reach(2)
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    edge(1, 2).
    edge(2, 3).
    edge(3, 4).
  )");
  EXPECT_TRUE(eng.contains("reach", {1, 4}));
  EXPECT_TRUE(eng.contains("reach", {2, 4}));
  EXPECT_FALSE(eng.contains("reach", {4, 1}));
  EXPECT_EQ(eng.size("reach"), 6u);
}

TEST(Eval, CyclicGraphTerminates) {
  DatalogEngine eng(R"(
    .decl edge(2) input
    .decl reach(2)
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    edge(1, 2).
    edge(2, 1).
  )");
  EXPECT_TRUE(eng.contains("reach", {1, 1}));
  EXPECT_TRUE(eng.contains("reach", {2, 2}));
  EXPECT_EQ(eng.size("reach"), 4u);
}

TEST(Eval, StratifiedNegation) {
  DatalogEngine eng(R"(
    .decl node(1) input
    .decl edge(2) input
    .decl reach(2)
    .decl unreach(2)
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    unreach(X, Y) :- node(X), node(Y), !reach(X, Y).
    node(1). node(2). node(3).
    edge(1, 2).
  )");
  EXPECT_TRUE(eng.contains("unreach", {2, 1}));
  EXPECT_TRUE(eng.contains("unreach", {1, 3}));
  EXPECT_FALSE(eng.contains("unreach", {1, 2}));
  // unreach counts every pair not in reach, including self-pairs.
  EXPECT_EQ(eng.size("unreach"), 9u - eng.size("reach"));
}

TEST(Eval, Comparisons) {
  DatalogEngine eng(R"(
    .decl val(2) input
    .decl big(1)
    .decl pair(2)
    big(X) :- val(X, V), V > 10.
    pair(X, Y) :- val(X, V), val(Y, W), X != Y, V <= W.
    val(1, 5).
    val(2, 15).
    val(3, 20).
  )");
  EXPECT_FALSE(eng.contains("big", {1}));
  EXPECT_TRUE(eng.contains("big", {2}));
  EXPECT_TRUE(eng.contains("big", {3}));
  EXPECT_TRUE(eng.contains("pair", {1, 2}));
  EXPECT_TRUE(eng.contains("pair", {2, 3}));
  EXPECT_FALSE(eng.contains("pair", {3, 2}));
  EXPECT_FALSE(eng.contains("pair", {1, 1}));
}

TEST(Eval, SymbolicConstants) {
  DatalogEngine eng(R"(
    .decl role(2) input
    .decl admin(1)
    admin(X) :- role(X, "admin").
  )");
  Value admin = eng.sym("admin");
  eng.insert("role", {1, admin});
  eng.insert("role", {2, eng.sym("user")});
  eng.flush();
  EXPECT_TRUE(eng.contains("admin", {1}));
  EXPECT_FALSE(eng.contains("admin", {2}));
}

TEST(Eval, AnonymousVariables) {
  DatalogEngine eng(R"(
    .decl edge(2) input
    .decl has_out(1)
    has_out(X) :- edge(X, _).
    edge(1, 2).
    edge(1, 3).
    edge(2, 3).
  )");
  EXPECT_EQ(eng.size("has_out"), 2u);
}

TEST(Eval, MutualRecursion) {
  // even/odd distance from node 0 along a path.
  DatalogEngine eng(R"(
    .decl edge(2) input
    .decl even(1)
    .decl odd(1)
    even(0) :- edge(0, _).
    odd(Y) :- even(X), edge(X, Y).
    even(Y) :- odd(X), edge(X, Y).
    edge(0, 1). edge(1, 2). edge(2, 3).
  )");
  EXPECT_TRUE(eng.contains("even", {0}));
  EXPECT_TRUE(eng.contains("odd", {1}));
  EXPECT_TRUE(eng.contains("even", {2}));
  EXPECT_TRUE(eng.contains("odd", {3}));
}

TEST(Eval, ConstantInRuleBody) {
  DatalogEngine eng(R"(
    .decl edge(2) input
    .decl from_one(1)
    from_one(Y) :- edge(1, Y).
    edge(1, 2). edge(2, 3). edge(1, 4).
  )");
  EXPECT_EQ(eng.size("from_one"), 2u);
  EXPECT_TRUE(eng.contains("from_one", {2}));
  EXPECT_TRUE(eng.contains("from_one", {4}));
}

TEST(Eval, DuplicateVariableInAtom) {
  DatalogEngine eng(R"(
    .decl edge(2) input
    .decl selfloop(1)
    selfloop(X) :- edge(X, X).
    edge(1, 1). edge(1, 2). edge(3, 3).
  )");
  EXPECT_EQ(eng.size("selfloop"), 2u);
}

TEST(Engine, RowsAreSortedAndDeterministic) {
  DatalogEngine eng(R"(
    .decl edge(2) input
    .decl reach(2)
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
    edge(3, 1). edge(1, 2).
  )");
  std::vector<Tuple> rows = eng.rows("reach");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

TEST(Engine, InsertRemoveCancelWithinBatch) {
  DatalogEngine eng(R"(
    .decl edge(2) input
    .decl reach(2)
    reach(X, Y) :- edge(X, Y).
  )");
  eng.insert("edge", {1, 2});
  eng.remove("edge", {1, 2});
  eng.flush();
  EXPECT_EQ(eng.size("reach"), 0u);
  EXPECT_EQ(eng.size("edge"), 0u);
}

}  // namespace
}  // namespace dna::datalog
