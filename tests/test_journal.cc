// The journal's contract, enforced by fault injection: recovery of a
// journal cut short at *any* byte (the kill -9 model — a crash can only
// truncate the sequential append stream) yields a clean prefix of the
// committed versions, never a torn model; corruption with more journal
// after it fails cleanly instead of silently dropping acknowledged
// commits; and a service restarted from its journal answers queries
// byte-identically to the uninterrupted run, at the same version ids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/change.h"
#include "service/journal.h"
#include "service/query.h"
#include "service/service.h"
#include "topo/generators.h"
#include "util/error.h"
#include "util/rng.h"

namespace dna::service {
namespace {

namespace fs = std::filesystem;

/// A unique directory removed (with contents) when the test scope ends.
struct TempDir {
  std::string path;

  TempDir() {
    std::string tmpl = (fs::temp_directory_path() / "dna_journal_XXXXXX");
    const char* created = ::mkdtemp(tmpl.data());
    if (created == nullptr) throw Error("mkdtemp failed for " + tmpl);
    path = created;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The journal directory's segment files, sorted by name (= by sequence).
std::vector<std::string> segment_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".dnaj") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

ServiceOptions journaled(const std::string& dir,
                         FsyncPolicy fsync = FsyncPolicy::kNever) {
  ServiceOptions options;
  options.num_threads = 1;
  options.journal_dir = dir;
  options.journal_fsync = fsync;
  return options;
}

// ---------------------------------------------------------------------------
// Record codecs
// ---------------------------------------------------------------------------

TEST(JournalRecord, CommitRoundTrip) {
  const std::string payload =
      encode_commit_record(42, "fail_link 1; link_cost 2 77");
  const JournalRecord record = decode_record(payload);
  EXPECT_EQ(record.kind, JournalRecord::Kind::kCommit);
  EXPECT_EQ(record.version, 42u);
  EXPECT_EQ(record.change_text, "fail_link 1; link_cost 2 77");

  EXPECT_THROW(encode_commit_record(1, "two\nlines"), Error);
  EXPECT_THROW(decode_record("no header newline"), Error);
  EXPECT_THROW(decode_record("frobnicate 3\nbody"), Error);
  EXPECT_THROW(decode_record("commit notanumber\nbody"), Error);
}

TEST(JournalRecord, SnapshotRoundTrip) {
  const topo::Snapshot base = topo::make_ring(5);
  const std::string payload = encode_snapshot_record(7, base);
  const JournalRecord record = decode_record(payload);
  EXPECT_EQ(record.kind, JournalRecord::Kind::kSnapshot);
  EXPECT_EQ(record.version, 7u);
  EXPECT_EQ(record.snapshot, base);
}

// ---------------------------------------------------------------------------
// Append / recover / compact
// ---------------------------------------------------------------------------

TEST(Journal, AppendThenRecover) {
  TempDir dir;
  {
    Journal journal(dir.path, FsyncPolicy::kAlways);
    EXPECT_TRUE(journal.recovered().empty());
    journal.append_commit(2, "fail_link 0");
    journal.append_commit(3, "link_cost 1 9");
  }
  Journal reopened(dir.path, FsyncPolicy::kAlways);
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_FALSE(reopened.recovered_torn_tail());
  EXPECT_EQ(reopened.recovered()[0].version, 2u);
  EXPECT_EQ(reopened.recovered()[0].change_text, "fail_link 0");
  EXPECT_EQ(reopened.recovered()[1].version, 3u);
  EXPECT_EQ(reopened.recovered()[1].change_text, "link_cost 1 9");
}

TEST(Journal, CompactSupersedesHistory) {
  TempDir dir;
  const topo::Snapshot head = topo::make_line(3);
  {
    Journal journal(dir.path, FsyncPolicy::kNever);
    journal.append_commit(2, "fail_link 0");
    journal.append_commit(3, "recover_link 0");
    journal.compact(3, head);
    journal.append_commit(4, "link_cost 0 5");
    EXPECT_EQ(journal.segment_count(), 1u);
  }
  EXPECT_EQ(segment_files(dir.path).size(), 1u);
  Journal reopened(dir.path, FsyncPolicy::kNever);
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.recovered()[0].kind, JournalRecord::Kind::kSnapshot);
  EXPECT_EQ(reopened.recovered()[0].version, 3u);
  EXPECT_EQ(reopened.recovered()[0].snapshot, head);
  EXPECT_EQ(reopened.recovered()[1].version, 4u);
}

// ---------------------------------------------------------------------------
// Fault injection at the journal layer
// ---------------------------------------------------------------------------

/// A recorded run: one snapshot record plus four commits in one segment.
struct RecordedRun {
  TempDir dir;
  std::string segment;          // the single segment file's path
  std::string bytes;            // its full contents
  std::vector<uint64_t> versions;  // record versions, in order

  RecordedRun() {
    Journal journal(dir.path, FsyncPolicy::kNever);
    journal.compact(1, topo::make_line(3));
    journal.append_commit(2, "fail_link 0");
    journal.append_commit(3, "recover_link 0");
    journal.append_commit(4, "link_cost 1 7");
    journal.append_commit(5, "link_cost 1 9");
    versions = {1, 2, 3, 4, 5};
    const std::vector<std::string> files = segment_files(dir.path);
    EXPECT_EQ(files.size(), 1u);
    segment = files[0];
    bytes = read_file(segment);
  }
};

TEST(Journal, TruncationAtEveryOffsetRecoversACleanPrefix) {
  RecordedRun run;
  const std::string name = fs::path(run.segment).filename().string();

  // Byte offsets at which the segment is whole: the end of the magic
  // header and of every complete record. A cut exactly there is a clean
  // (if early) shutdown; anywhere else is a torn tail.
  std::vector<size_t> clean_cuts = {8};
  auto frame_length = [&](size_t at) {
    return 8 + (static_cast<size_t>(
                    static_cast<unsigned char>(run.bytes[at])) |
                static_cast<size_t>(
                    static_cast<unsigned char>(run.bytes[at + 1]))
                    << 8 |
                static_cast<size_t>(
                    static_cast<unsigned char>(run.bytes[at + 2]))
                    << 16 |
                static_cast<size_t>(
                    static_cast<unsigned char>(run.bytes[at + 3]))
                    << 24);
  };
  while (clean_cuts.back() < run.bytes.size()) {
    clean_cuts.push_back(clean_cuts.back() + frame_length(clean_cuts.back()));
  }
  ASSERT_EQ(clean_cuts.back(), run.bytes.size());

  for (size_t cut = 0; cut <= run.bytes.size(); ++cut) {
    TempDir trial;
    write_file(trial.path + "/" + name, run.bytes.substr(0, cut));
    Journal journal(trial.path, FsyncPolicy::kNever);

    // Whatever survived must be an exact prefix of the recorded run.
    const std::vector<JournalRecord>& records = journal.recovered();
    ASSERT_LE(records.size(), run.versions.size()) << "cut at " << cut;
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].version, run.versions[i]) << "cut at " << cut;
    }
    const bool clean = std::find(clean_cuts.begin(), clean_cuts.end(),
                                 cut) != clean_cuts.end();
    EXPECT_EQ(journal.recovered_torn_tail(), !clean) << "cut at " << cut;

    // The journal stays appendable after truncation: the torn bytes are
    // gone and a new record lands cleanly on the recovered prefix.
    journal.append_commit(records.empty() ? 2 : records.back().version + 1,
                          "fail_link 1");
    Journal reopened(trial.path, FsyncPolicy::kNever);
    EXPECT_EQ(reopened.recovered().size(), records.size() + 1)
        << "cut at " << cut;
    EXPECT_FALSE(reopened.recovered_torn_tail()) << "cut at " << cut;
  }
}

TEST(Journal, CorruptChecksumDropsTheSuffixOfTheTailSegment) {
  RecordedRun run;
  const std::string name = fs::path(run.segment).filename().string();
  // Flip one payload byte somewhere after the (large) snapshot record so a
  // strict prefix survives: the snapshot plus possibly some commits.
  std::string corrupted = run.bytes;
  corrupted[corrupted.size() - 3] ^= 0x40;

  TempDir trial;
  write_file(trial.path + "/" + name, corrupted);
  Journal journal(trial.path, FsyncPolicy::kNever);
  EXPECT_TRUE(journal.recovered_torn_tail());
  ASSERT_EQ(journal.recovered().size(), run.versions.size() - 1);
  EXPECT_EQ(journal.recovered().back().version, 4u);
}

TEST(Journal, PartialRecordHeaderIsATornTail) {
  RecordedRun run;
  const std::string name = fs::path(run.segment).filename().string();
  // A lone length byte after the last full record: the u32+u32 frame
  // header itself is incomplete.
  TempDir trial;
  write_file(trial.path + "/" + name, run.bytes + "\x07");
  Journal journal(trial.path, FsyncPolicy::kNever);
  EXPECT_TRUE(journal.recovered_torn_tail());
  EXPECT_EQ(journal.recovered().size(), run.versions.size());
}

TEST(Journal, CorruptionBeforeLaterSegmentsFailsCleanly) {
  // Two segments, built by hand from the public codecs: corruption in the
  // *first* cannot be a crash artifact (appends after it were acknowledged
  // from the second), so recovery must refuse rather than drop commits.
  TempDir dir;
  const std::string magic = "DNAJSEG1";
  std::string seg1 = magic + encode_record_frame(encode_commit_record(
                                 2, "fail_link 0"));
  const std::string seg2 = magic + encode_record_frame(encode_commit_record(
                                       3, "recover_link 0"));
  seg1[seg1.size() - 2] ^= 0x01;  // corrupt segment 1's payload
  write_file(dir.path + "/journal-00000001.dnaj", seg1);
  write_file(dir.path + "/journal-00000002.dnaj", seg2);
  EXPECT_THROW(Journal(dir.path, FsyncPolicy::kNever), Error);
}

// ---------------------------------------------------------------------------
// Fault injection at the service layer: kill -9 during a commit storm
// ---------------------------------------------------------------------------

// Truncating the journal at every byte offset simulates every possible
// kill -9 instant of a recorded commit storm. Recovery must come up at
// *some* prefix of the committed versions — with the exact model those
// commits produced (digest-identical), never a torn hybrid — because
// every version whose record made it to disk was, or could have been,
// acknowledged.
TEST(ServiceJournal, RecoveryAtEveryTruncationOffsetIsNeverTorn) {
  const topo::Snapshot base = topo::make_line(3);
  TempDir recorded;
  std::map<uint64_t, uint64_t> digest_at;  // version id -> model digest
  {
    DnaService service(base, {}, journaled(recorded.path));
    digest_at[1] = snapshot_digest(*service.head()->snapshot);
    int cost = 5;
    for (int i = 0; i < 4; ++i) {
      const CommitResult commit =
          service.commit_text("link_cost 0 " + std::to_string(cost++));
      digest_at[commit.version] =
          snapshot_digest(*service.head()->snapshot);
    }
  }
  const std::vector<std::string> files = segment_files(recorded.path);
  ASSERT_EQ(files.size(), 1u);
  const std::string name = fs::path(files[0]).filename().string();
  const std::string bytes = read_file(files[0]);

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    TempDir trial;
    write_file(trial.path + "/" + name, bytes.substr(0, cut));
    DnaService service(base, {}, journaled(trial.path));
    const VersionHandle head = service.head();
    ASSERT_GE(head->id, 1u) << "cut at " << cut;
    ASSERT_LE(head->id, 5u) << "cut at " << cut;
    EXPECT_EQ(head->id, 1u + service.recovered_commits())
        << "cut at " << cut;
    // The recovered model is byte-for-byte the one that version had.
    EXPECT_EQ(snapshot_digest(*head->snapshot), digest_at[head->id])
        << "cut at " << cut;
  }
}

// ---------------------------------------------------------------------------
// Replay equivalence: restart == never having stopped
// ---------------------------------------------------------------------------

std::vector<core::Invariant> ring_invariants() {
  return {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()},
          {core::Invariant::Kind::kReachable, "r0", "r3", "",
           Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}};
}

const char* const kProbeQueries[] = {
    "hash",
    "reach r0 172.31.1.1",
    "paths r0 172.31.1.1",
    "check reachable r0 r3 172.31.1.0/24",
    "check loopfree",
};

TEST(ServiceJournal, ReplayAnswersQueriesIdentically) {
  const topo::Snapshot base = topo::make_ring(6);
  TempDir dir;
  Rng rng(0x10ADED);
  std::vector<QueryResult> before;
  uint64_t live_head = 0;
  {
    DnaService service(base, ring_invariants(), journaled(dir.path));
    for (int i = 0; i < 8; ++i) {
      service.commit_text(random_change_text(base, rng));
    }
    live_head = service.head()->id;
    for (const char* probe : kProbeQueries) {
      before.push_back(service.query(probe));
    }
  }

  DnaService recovered(base, ring_invariants(), journaled(dir.path));
  EXPECT_EQ(recovered.recovered_commits(), 8u);
  EXPECT_EQ(recovered.head()->id, live_head);
  for (size_t i = 0; i < before.size(); ++i) {
    const QueryResult after = recovered.query(kProbeQueries[i]);
    EXPECT_EQ(after.ok, before[i].ok) << kProbeQueries[i];
    EXPECT_EQ(after.version, before[i].version) << kProbeQueries[i];
    EXPECT_EQ(after.body, before[i].body) << kProbeQueries[i];
  }
  // Version ids keep counting from where the pre-restart service stopped.
  const CommitResult next = recovered.commit_text("fail_link 0");
  EXPECT_EQ(next.version, live_head + 1);
}

TEST(ServiceJournal, JournalSnapshotOverridesTheCallerBase) {
  TempDir dir;
  uint64_t head_digest = 0;
  {
    DnaService service(topo::make_ring(6), {}, journaled(dir.path));
    service.commit_text("fail_link 1");
    head_digest = snapshot_digest(*service.head()->snapshot);
  }
  // Restart with a *different* base: the journal's snapshot record is the
  // durable state and must win.
  DnaService recovered(topo::make_ring(8), {}, journaled(dir.path));
  EXPECT_EQ(recovered.head()->id, 2u);
  EXPECT_EQ(snapshot_digest(*recovered.head()->snapshot), head_digest);
}

TEST(ServiceJournal, CommitRequiresAJournalableDescription) {
  TempDir dir;
  DnaService service(topo::make_ring(6), {},
                     journaled(dir.path, FsyncPolicy::kAlways));
  // A native plan's prose description is not mini-language; with a journal
  // it must be rejected before any side effect.
  EXPECT_THROW(service.commit(core::ChangePlan::link_failure(0)), Error);
  EXPECT_EQ(service.head()->id, 1u);
  const CommitResult commit = service.commit_text("fail_link 0");
  EXPECT_EQ(commit.version, 2u);
  EXPECT_EQ(commit.description, "fail_link 0");
}

}  // namespace
}  // namespace dna::service
