// The telemetry layer's contract: histogram buckets partition the value
// space exactly and snapshots merge under a commutative, associative
// algebra (so shard aggregation and cross-process rollup are exact for
// counts, sums, and maxima); N racing writers lose no increments; the
// Prometheus exposition is well-formed 0.0.4 text; traces round-trip the
// wire encoding, stitch across the router→shard hop with child spans
// nested inside the RTT legs that carried them, and account for (almost)
// all of the measured wall time; and the slow-query log captures exactly
// the queries over the threshold, traced or not.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/query.h"
#include "service/service.h"
#include "service/session.h"
#include "service/shard/host.h"
#include "service/shard/router.h"
#include "service/transport.h"
#include "topo/generators.h"
#include "util/error.h"

namespace dna::obs {
namespace {

// ---------------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------------

TEST(Histogram, BucketBoundariesPartitionTheValueSpace) {
  // Bucket b holds values of bit width b: 0 | 1 | 2..3 | 4..7 | ...
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(~uint64_t{0}), 64u - 0u);

  // Upper bounds are inclusive and adjacent buckets tile with no gap:
  // bucket_of(upper) == b and bucket_of(upper + 1) == b + 1.
  for (size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
    const uint64_t upper = Histogram::bucket_upper(b);
    EXPECT_EQ(Histogram::bucket_of(upper), b) << "bucket " << b;
    EXPECT_EQ(Histogram::bucket_of(upper + 1), b + 1) << "bucket " << b;
  }
}

TEST(Histogram, QuantileIsBoundedByTheCoveringOctave) {
  Histogram::Snapshot snap;
  for (uint64_t v = 0; v < 1000; ++v) snap.add(1000);  // all in [512,1024)
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.max, 1000u);
  // Every quantile of a point mass lands inside its bucket.
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    const double est = snap.quantile(q);
    EXPECT_GE(est, 511.0) << "q=" << q;
    EXPECT_LE(est, 1024.0) << "q=" << q;
  }
  EXPECT_EQ(Histogram::Snapshot{}.quantile(0.5), 0.0);
}

TEST(Histogram, QuantileInterpolatesWithinTheBucket) {
  // A uniform mass across one octave: higher quantiles must land
  // strictly deeper into the bucket, not all at the same bound.
  Histogram::Snapshot snap;
  for (uint64_t v = 512; v < 1024; ++v) snap.add(v);
  const double p50 = snap.quantile(0.50);
  const double p95 = snap.quantile(0.95);
  const double p99 = snap.quantile(0.99);
  EXPECT_LT(p50, p95);
  EXPECT_LT(p95, p99);
  // Linear interpolation of a uniform octave puts p50 near the middle.
  EXPECT_NEAR(p50, 768.0, 64.0);
}

TEST(Histogram, QuantilesTripleIsClampedMonotone) {
  // quantiles() must satisfy p50 <= p95 <= p99 on any snapshot — including
  // adversarial ones a concurrent shard merge could briefly expose.
  const auto check = [](const Histogram::Snapshot& snap, const char* what) {
    const Histogram::Snapshot::Quantiles q = snap.quantiles();
    EXPECT_LE(q.p50, q.p95) << what;
    EXPECT_LE(q.p95, q.p99) << what;
    // And each matches its single-quantile counterpart or the clamp.
    EXPECT_GE(q.p50, 0.0) << what;
  };
  check(Histogram::Snapshot{}, "empty");
  Histogram::Snapshot point;
  for (int i = 0; i < 100; ++i) point.add(1000);
  check(point, "point mass");
  Histogram::Snapshot uniform;
  for (uint64_t v = 0; v < 100000; v += 7) uniform.add(v);
  check(uniform, "uniform");
  // A torn snapshot: bucket counts that disagree with `count` (as a racing
  // merge can produce) must still come out ordered.
  Histogram::Snapshot torn = uniform;
  torn.count = uniform.count / 2;
  check(torn, "torn");
}

TEST(Histogram, ExpositionsUseTheClampedQuantiles) {
  // str() and the JSON/Prometheus expositions all report quantiles from
  // the same clamped triple, so p50 <= p95 <= p99 holds everywhere.
  Registry registry;
  Histogram& hist = registry.histogram("x.seconds");
  for (uint64_t v = 1; v < 5000; v *= 3) hist.observe(v);
  const Histogram::Snapshot::Quantiles q = hist.snapshot().quantiles();
  EXPECT_LE(q.p50, q.p95);
  EXPECT_LE(q.p95, q.p99);
  const std::string text = registry.str();
  EXPECT_NE(text.find("p50"), std::string::npos);
}

TEST(Histogram, SnapshotMergeIsCommutativeAssociativeWithIdentity) {
  // Three deterministic value streams (LCG), merged in every order.
  const auto stream = [](uint64_t seed, size_t n) {
    Histogram::Snapshot snap;
    for (size_t i = 0; i < n; ++i) {
      seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
      snap.add(seed >> 40);
    }
    return snap;
  };
  const Histogram::Snapshot a = stream(1, 100);
  const Histogram::Snapshot b = stream(2, 57);
  const Histogram::Snapshot c = stream(3, 211);

  const auto merged = [](Histogram::Snapshot lhs,
                         const Histogram::Snapshot& rhs) {
    lhs.merge(rhs);
    return lhs;
  };
  const auto equal = [](const Histogram::Snapshot& x,
                        const Histogram::Snapshot& y) {
    return x.buckets == y.buckets && x.count == y.count && x.sum == y.sum &&
           x.max == y.max;
  };

  // (a+b)+c == a+(b+c), a+b == b+a, a+0 == a.
  EXPECT_TRUE(equal(merged(merged(a, b), c), merged(a, merged(b, c))));
  EXPECT_TRUE(equal(merged(a, b), merged(b, a)));
  EXPECT_TRUE(equal(merged(a, Histogram::Snapshot{}), a));
  EXPECT_EQ(merged(merged(a, b), c).count, 100u + 57u + 211u);
}

// ---------------------------------------------------------------------------
// Concurrent writers
// ---------------------------------------------------------------------------

TEST(Registry, ConcurrentWritersLoseNothing) {
  Registry registry;
  Counter& counter = registry.counter("test.total");
  Histogram& histogram = registry.histogram("test.lat_seconds");

  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter, &histogram, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.observe(t * 1000 + i);
      }
    });
  }
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  const Histogram::Snapshot snap = histogram.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.max, (kThreads - 1) * 1000 + kPerThread - 1);
  uint64_t expected_sum = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < kPerThread; ++i) expected_sum += t * 1000 + i;
  }
  EXPECT_EQ(snap.sum, expected_sum);
}

TEST(Registry, HandlesAreStableAndGaugesTrackMaxima) {
  Registry registry;
  EXPECT_EQ(&registry.counter("a"), &registry.counter("a"));
  EXPECT_EQ(&registry.histogram("h"), &registry.histogram("h"));

  Gauge& gauge = registry.gauge("g");
  gauge.set_max(5);
  gauge.set_max(3);  // no-op: below the running max
  EXPECT_EQ(gauge.value(), 5);
  gauge.set_max(9);
  EXPECT_EQ(gauge.value(), 9);
}

// ---------------------------------------------------------------------------
// Expositions
// ---------------------------------------------------------------------------

TEST(Registry, PrometheusTextIsWellFormed) {
  Registry registry;
  registry.counter("svc.queries_total").add(3);
  registry.gauge("svc.depth").set(7);
  Histogram& lat = registry.histogram("svc.query_seconds");
  lat.observe(1500);  // 1.5us
  lat.observe(3000000000ULL);  // 3s

  const std::string text = registry.prometheus_text();

  // Names: dna_ prefix, dots flattened.
  EXPECT_NE(text.find("# TYPE dna_svc_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dna_svc_queries_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dna_svc_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("dna_svc_depth 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dna_svc_query_seconds histogram"),
            std::string::npos);
  // Histogram families carry cumulative buckets, +Inf, _sum and _count.
  EXPECT_NE(text.find("dna_svc_query_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("dna_svc_query_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("dna_svc_query_seconds_sum"), std::string::npos);

  // Structural 0.0.4 checks: every non-comment line is "name[{labels}] value"
  // with a parseable finite value, and bucket counts are non-decreasing.
  uint64_t last_bucket = 0;
  size_t lines = 0;
  for (size_t at = 0; at < text.size();) {
    const size_t end = text.find('\n', at);
    ASSERT_NE(end, std::string::npos) << "exposition must end in newline";
    const std::string line = text.substr(at, end - at);
    at = end + 1;
    ++lines;
    if (line.rfind("# ", 0) == 0) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
    EXPECT_EQ(line.rfind("dna_", 0), 0u) << line;
    if (line.find("_bucket{le=") != std::string::npos) {
      const uint64_t n = std::stoull(line.substr(space + 1));
      EXPECT_GE(n, last_bucket) << "buckets must be cumulative: " << line;
      last_bucket = line.find("+Inf") != std::string::npos ? 0 : n;
    }
  }
  EXPECT_GT(lines, 8u);
}

TEST(Registry, JsonAndTextExposeEveryMetric) {
  Registry registry;
  registry.counter("x.count").add(11);
  registry.histogram("x.lat_seconds").observe(2000000);  // 2ms

  util::JsonWriter json;
  json.begin_object();
  registry.append_json(json);
  json.end_object();
  const std::string out = json.str();
  EXPECT_NE(out.find("\"x.count\":11"), std::string::npos);
  EXPECT_NE(out.find("\"x.lat_seconds\""), std::string::npos);
  EXPECT_NE(out.find("\"p95\""), std::string::npos);
  EXPECT_NE(out.find("\"buckets\""), std::string::npos);

  const std::string text = registry.str();
  EXPECT_NE(text.find("x.count"), std::string::npos);
  EXPECT_NE(text.find("x.lat_seconds"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Traces: encoding, stitching, coverage
// ---------------------------------------------------------------------------

TEST(Trace, EncodeDecodeRoundTrips) {
  Trace trace(0xdeadbeefULL);
  trace.add("queue", 0, 120);
  trace.add("eval", 120, 880);
  trace.add("s1.eval", 200, 300);

  const std::string wire = trace.encode();
  EXPECT_EQ(wire.find(' '), std::string::npos) << "must be one token";

  const std::optional<Trace> decoded = Trace::decode(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id(), 0xdeadbeefULL);
  ASSERT_EQ(decoded->spans().size(), 3u);
  EXPECT_EQ(decoded->spans()[0].name, "queue");
  EXPECT_EQ(decoded->spans()[1].start_ns, 120u);
  EXPECT_EQ(decoded->spans()[2].name, "s1.eval");
  EXPECT_EQ(decoded->end_ns(), 1000u);

  EXPECT_EQ(Trace().encode(), "");  // no spans -> nothing on the wire
  EXPECT_FALSE(Trace::decode("nonsense").has_value());
  EXPECT_FALSE(Trace::decode("t=xyz;a:b:c").has_value());
}

TEST(Trace, AddChildRebasesAndPrefixes) {
  Trace child(7);
  child.add("queue", 0, 10);
  child.add("eval", 10, 50);

  Trace parent(7);
  parent.add("s0", 100, 90);
  parent.add_child("s0.", 100, child);
  parent.add("total", 0, 200);

  ASSERT_EQ(parent.spans().size(), 4u);
  EXPECT_EQ(parent.spans()[1].name, "s0.queue");
  EXPECT_EQ(parent.spans()[1].start_ns, 100u);
  EXPECT_EQ(parent.spans()[2].name, "s0.eval");
  EXPECT_EQ(parent.spans()[2].start_ns, 110u);
  // The child's whole timeline fits inside the RTT leg that carried it.
  EXPECT_LE(parent.spans()[2].start_ns + parent.spans()[2].dur_ns,
            parent.spans()[0].start_ns + parent.spans()[0].dur_ns);
}

TEST(Trace, CoveredFractionUnionsAndClips) {
  Trace trace(1);
  trace.add("total", 0, 100);
  trace.add("a", 0, 40);
  trace.add("b", 40, 40);
  trace.add("b.inner", 50, 10);     // nested: adds no new coverage
  trace.add("c", 90, 1000);         // clipped to the root's end
  EXPECT_DOUBLE_EQ(covered_fraction(trace, "total"), 0.9);

  Trace gap(2);
  gap.add("total", 0, 100);
  gap.add("a", 0, 25);
  EXPECT_DOUBLE_EQ(covered_fraction(gap, "total"), 0.25);
  EXPECT_EQ(covered_fraction(gap, "missing"), 0.0);
}

TEST(Trace, TraceLogIsABoundedRing) {
  TraceLog log(3);
  for (uint64_t id = 1; id <= 5; ++id) log.record(Trace(id));
  EXPECT_EQ(log.size(), 3u);
  const std::vector<Trace> last = log.last(10);
  ASSERT_EQ(last.size(), 3u);
  EXPECT_EQ(last.front().id(), 3u);  // oldest retained
  EXPECT_EQ(last.back().id(), 5u);
  EXPECT_NE(log.json(2).find("\"traces\":["), std::string::npos);
}

TEST(Trace, IdsAreUniqueAndNonZero) {
  uint64_t a = next_trace_id();
  uint64_t b = next_trace_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dna::obs

namespace dna::service {
namespace {

std::vector<core::Invariant> ring_invariants() {
  return {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()},
          {core::Invariant::Kind::kReachable, "r0", "r3", "",
           Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}};
}

// ---------------------------------------------------------------------------
// Trace tags on the query language
// ---------------------------------------------------------------------------

TEST(TraceTag, SplitsTheLeadingToken) {
  std::string rest;
  TraceTag tag = split_trace_tag("trace:1f reach r0 10.0.0.1", &rest);
  EXPECT_TRUE(tag.traced);
  EXPECT_EQ(tag.id, 0x1fu);
  EXPECT_EQ(rest, "reach r0 10.0.0.1");

  tag = split_trace_tag("trace:auto version", &rest);
  EXPECT_TRUE(tag.traced);
  EXPECT_EQ(tag.id, 0u);  // receiver picks
  EXPECT_EQ(rest, "version");

  tag = split_trace_tag("reach r0 10.0.0.1", &rest);
  EXPECT_FALSE(tag.traced);
  EXPECT_EQ(rest, "reach r0 10.0.0.1");

  EXPECT_THROW(split_trace_tag("trace:zz version", &rest), Error);
}

// ---------------------------------------------------------------------------
// Service-level tracing and the slow-query log
// ---------------------------------------------------------------------------

TEST(ServiceTrace, TracedQueryReturnsQueueAndEvalSpans) {
  DnaService service(topo::make_ring(4), ring_invariants());
  const QueryResult result = service.query("trace:auto reach r0 172.31.1.1");
  ASSERT_TRUE(result.ok) << result.body;
  ASSERT_FALSE(result.trace.empty());

  const std::optional<obs::Trace> trace = obs::Trace::decode(result.trace);
  ASSERT_TRUE(trace.has_value());
  const auto has = [&](const std::string& name) {
    return std::any_of(trace->spans().begin(), trace->spans().end(),
                       [&](const obs::Span& s) { return s.name == name; });
  };
  EXPECT_TRUE(has("queue"));
  EXPECT_TRUE(has("eval"));
  EXPECT_EQ(service.trace_log().size(), 1u);

  // An untraced query returns no trace and records nothing.
  const QueryResult plain = service.query("reach r0 172.31.1.1");
  ASSERT_TRUE(plain.ok);
  EXPECT_TRUE(plain.trace.empty());
  EXPECT_EQ(service.trace_log().size(), 1u);
  // The traced/untraced answers are byte-identical.
  EXPECT_EQ(plain.body, result.body);
}

TEST(ServiceTrace, SlowQueryLogCapturesOverThresholdOnly) {
  // Threshold 0 disables the log entirely.
  DnaService quiet(topo::make_ring(4), ring_invariants());
  ASSERT_TRUE(quiet.query("reach r0 172.31.1.1").ok);
  EXPECT_EQ(quiet.trace_log().size(), 0u);
  EXPECT_EQ(quiet.metrics().slow_queries, 0u);

  // Threshold 1ns: every query is slow — traced into the log untagged.
  ServiceOptions options;
  options.slow_query_ns = 1;
  DnaService noisy(topo::make_ring(4), ring_invariants(), options);
  const QueryResult result = noisy.query("reach r0 172.31.1.1");
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.trace.empty());  // untagged: nothing on the wire
  EXPECT_EQ(noisy.trace_log().size(), 1u);
  EXPECT_EQ(noisy.metrics().slow_queries, 1u);

  // Threshold 1h: nothing qualifies.
  options.slow_query_ns = 3600ULL * 1000000000ULL;
  DnaService calm(topo::make_ring(4), ring_invariants(), options);
  ASSERT_TRUE(calm.query("reach r0 172.31.1.1").ok);
  EXPECT_EQ(calm.trace_log().size(), 0u);
  EXPECT_EQ(calm.metrics().slow_queries, 0u);
}

TEST(ServiceTrace, TraceAllRecordsEveryQuery) {
  DnaService service(topo::make_ring(4), ring_invariants());
  service.set_trace_all(true);
  ASSERT_TRUE(service.query("version").ok);
  ASSERT_TRUE(service.query("reach r0 172.31.1.1").ok);
  EXPECT_EQ(service.trace_log().size(), 2u);
  service.set_trace_all(false);
  ASSERT_TRUE(service.query("version").ok);
  EXPECT_EQ(service.trace_log().size(), 2u);
}

TEST(ServiceTrace, MetricsViewMatchesRegistryCounters) {
  DnaService service(topo::make_ring(4), ring_invariants());
  ASSERT_TRUE(service.query("version").ok);
  ASSERT_TRUE(service.query("reach r0 172.31.1.1").ok);
  ASSERT_FALSE(service.query("definitely not a query").ok);
  ASSERT_GT(service.commit_text("fail_link 0").version, 1u);

  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.queries_total, 3u);
  EXPECT_EQ(metrics.queries_failed, 1u);
  EXPECT_EQ(metrics.commits, 1u);
  EXPECT_EQ(metrics.queries_total,
            service.registry().counter("service.queries_total").value());
  // The query latency histogram saw every dispatched query (the parse
  // failure is rejected at submit, before it is ever timed).
  EXPECT_EQ(
      service.registry().histogram("service.query_seconds").snapshot().count,
      2u);
  // Commits landed in the commit histogram (seconds, sum > 0).
  EXPECT_GT(metrics.commit_seconds_total, 0.0);
}

// ---------------------------------------------------------------------------
// Session verbs: stats / trace / metrics json
// ---------------------------------------------------------------------------

/// One request against a fresh loopback session.
QueryResult session_request(DnaService& service, const std::string& line) {
  LoopbackChannel channel;
  ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });
  QueryResult result;
  {
    ServiceClient client(channel.client());
    result = client.request(line);
    client.close();
  }
  server.join();
  return result;
}

TEST(SessionVerbs, StatsJsonAndPromRoundTheRegistry) {
  DnaService service(topo::make_ring(4), ring_invariants());
  ASSERT_TRUE(service.query("reach r0 172.31.1.1").ok);

  const QueryResult text = session_request(service, "stats");
  ASSERT_TRUE(text.ok);
  EXPECT_NE(text.body.find("service.queries_total"), std::string::npos);

  const QueryResult json = session_request(service, "stats json");
  ASSERT_TRUE(json.ok);
  EXPECT_NE(json.body.find("\"stats\":{"), std::string::npos);
  EXPECT_NE(json.body.find("\"service.query_seconds\""), std::string::npos);

  const QueryResult prom = session_request(service, "stats prom");
  ASSERT_TRUE(prom.ok);
  EXPECT_NE(prom.body.find("# TYPE dna_service_queries_total counter"),
            std::string::npos);

  const QueryResult metrics_json = session_request(service, "metrics json");
  ASSERT_TRUE(metrics_json.ok);
  EXPECT_NE(metrics_json.body.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(metrics_json.body.find("\"queries_total\":"), std::string::npos);
}

TEST(SessionVerbs, TraceVerbsToggleAndFetch) {
  DnaService service(topo::make_ring(4), ring_invariants());
  ASSERT_TRUE(session_request(service, "trace on").ok);
  EXPECT_TRUE(service.trace_all());
  ASSERT_TRUE(service.query("version").ok);
  ASSERT_TRUE(session_request(service, "trace off").ok);
  EXPECT_FALSE(service.trace_all());

  const QueryResult last = session_request(service, "trace last 5");
  ASSERT_TRUE(last.ok);
  EXPECT_NE(last.body.find("\"traces\":["), std::string::npos);
  EXPECT_NE(last.body.find("\"spans\":["), std::string::npos);
}

TEST(SessionVerbs, TracedCommitSpansTheJournalLegs) {
  DnaService service(topo::make_ring(4), ring_invariants());
  const QueryResult result = session_request(service, "trace:auto commit fail_link 0");
  ASSERT_TRUE(result.ok) << result.body;
  ASSERT_FALSE(result.trace.empty());
  const std::optional<obs::Trace> trace = obs::Trace::decode(result.trace);
  ASSERT_TRUE(trace.has_value());
  const auto has = [&](const std::string& name) {
    return std::any_of(trace->spans().begin(), trace->spans().end(),
                       [&](const obs::Span& s) { return s.name == name; });
  };
  EXPECT_TRUE(has("apply"));
  EXPECT_TRUE(has("publish"));
}

}  // namespace
}  // namespace dna::service

namespace dna::service::shard {
namespace {

std::vector<core::Invariant> ring_invariants() {
  return {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()}};
}

// ---------------------------------------------------------------------------
// Router → shard trace propagation
// ---------------------------------------------------------------------------

struct Deployment {
  std::unique_ptr<DnaService> s0, s1;
  std::unique_ptr<ShardRouter> router;
};

Deployment make_deployment() {
  Deployment d;
  d.s0 = std::make_unique<DnaService>(topo::make_ring(6), ring_invariants());
  d.s1 = std::make_unique<DnaService>(topo::make_ring(6), ring_invariants());
  std::vector<Dialer> dialers;
  dialers.push_back(loopback_dial(*d.s0));
  dialers.push_back(loopback_dial(*d.s1));
  d.router = std::make_unique<ShardRouter>(std::move(dialers));
  d.router->connect_all();
  return d;
}

TEST(RouterTrace, RoutedQueryStitchesTheShardLegs) {
  Deployment d = make_deployment();
  const QueryResult result = d.router->handle("trace:auto reach r0 172.31.1.1");
  ASSERT_TRUE(result.ok) << result.body;
  ASSERT_FALSE(result.trace.empty());

  const std::optional<obs::Trace> trace = obs::Trace::decode(result.trace);
  ASSERT_TRUE(trace.has_value());

  // One root, one RTT leg, and the shard's own legs nested under it.
  const obs::Span* total = nullptr;
  const obs::Span* rtt = nullptr;
  size_t children = 0;
  for (const obs::Span& span : trace->spans()) {
    if (span.name == "total") total = &span;
    if (span.name.size() == 2 && span.name[0] == 's') rtt = &span;
    if (span.name.find('.') != std::string::npos) ++children;
  }
  ASSERT_NE(total, nullptr);
  ASSERT_NE(rtt, nullptr);
  EXPECT_GE(children, 2u) << "expected queue+eval legs from the shard";
  // Child spans nest inside the RTT leg that carried them, which itself
  // nests inside the router's total.
  for (const obs::Span& span : trace->spans()) {
    if (span.name.find('.') == std::string::npos) continue;
    EXPECT_EQ(span.name.rfind(rtt->name + ".", 0), 0u) << span.name;
    EXPECT_GE(span.start_ns, rtt->start_ns) << span.name;
    EXPECT_LE(span.start_ns + span.dur_ns, rtt->start_ns + rtt->dur_ns)
        << span.name;
  }
  EXPECT_LE(rtt->start_ns + rtt->dur_ns, total->start_ns + total->dur_ns);

  // The stitched trace accounts for (almost) all of the measured wall
  // time: "route" tiles the gap up to each dispatch, the RTT legs swallow
  // connection handling, and "reply" covers the tail — contiguous by
  // construction.
  EXPECT_GE(obs::covered_fraction(*trace, "total"), 0.95);

  // The shard RTT histogram saw the request.
  EXPECT_GE(d.router->registry()
                .histogram("router." + rtt->name + ".rtt_seconds")
                .snapshot()
                .count,
            1u);
}

TEST(RouterTrace, TracedCommitFansOutToEveryShard) {
  Deployment d = make_deployment();
  const QueryResult result = d.router->handle("trace:auto commit fail_link 0");
  ASSERT_TRUE(result.ok) << result.body;
  ASSERT_FALSE(result.trace.empty());

  const std::optional<obs::Trace> trace = obs::Trace::decode(result.trace);
  ASSERT_TRUE(trace.has_value());
  const auto has_prefix = [&](const std::string& prefix) {
    return std::any_of(
        trace->spans().begin(), trace->spans().end(),
        [&](const obs::Span& s) { return s.name.rfind(prefix, 0) == 0; });
  };
  // Both shards appear: their RTT legs and their own commit legs.
  EXPECT_TRUE(has_prefix("s0"));
  EXPECT_TRUE(has_prefix("s1"));
  EXPECT_TRUE(has_prefix("s0.apply") || has_prefix("s1.apply"));
  EXPECT_EQ(d.router->metrics().commits, 1u);
}

TEST(RouterTrace, UntracedRequestsCarryNoTraceButTraceAllLogs) {
  Deployment d = make_deployment();
  const QueryResult plain = d.router->handle("reach r0 172.31.1.1");
  ASSERT_TRUE(plain.ok);
  EXPECT_TRUE(plain.trace.empty());
  EXPECT_EQ(d.router->trace_log().size(), 0u);

  ASSERT_TRUE(d.router->handle("trace on").ok);
  const QueryResult logged = d.router->handle("reach r0 172.31.1.1");
  ASSERT_TRUE(logged.ok);
  EXPECT_TRUE(logged.trace.empty());  // untagged: log-only
  EXPECT_EQ(d.router->trace_log().size(), 1u);

  // Traced and untraced bodies are byte-identical.
  const QueryResult traced = d.router->handle("trace:auto reach r0 172.31.1.1");
  ASSERT_TRUE(traced.ok);
  EXPECT_EQ(traced.body, plain.body);
}

TEST(RouterTrace, RouterStatsVerbsExposeTheRegistry) {
  Deployment d = make_deployment();
  ASSERT_TRUE(d.router->handle("reach r0 172.31.1.1").ok);

  const QueryResult stats = d.router->handle("stats");
  ASSERT_TRUE(stats.ok);
  EXPECT_NE(stats.body.find("router.queries_routed"), std::string::npos);

  const QueryResult prom = d.router->handle("stats prom");
  ASSERT_TRUE(prom.ok);
  EXPECT_NE(prom.body.find("# TYPE dna_router_queries_routed counter"),
            std::string::npos);

  const QueryResult json = d.router->handle("metrics json");
  ASSERT_TRUE(json.ok);
  EXPECT_NE(json.body.find("\"queries_routed\":1"), std::string::npos);
  EXPECT_NE(json.body.find("\"shards\":["), std::string::npos);
}

}  // namespace
}  // namespace dna::service::shard
