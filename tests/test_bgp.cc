// BGP: session derivation, the decision process, policies, and equivalence
// of incremental convergence with a from-scratch build.
#include <gtest/gtest.h>

#include "controlplane/bgp.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::cp {
namespace {

using topo::NodeId;
using topo::Snapshot;

std::vector<std::map<Ipv4Prefix, BgpSim::Best>> fresh_best(
    const Snapshot& snap) {
  BgpSim sim;
  sim.build(snap);
  std::vector<std::map<Ipv4Prefix, BgpSim::Best>> out;
  for (NodeId node = 0; node < snap.topology.num_nodes(); ++node) {
    out.push_back(sim.best(node));
  }
  return out;
}

TEST(Bgp, RoutesPropagateAcrossFabric) {
  Snapshot snap = topo::make_two_tier_as(3, 2);
  BgpSim sim;
  sim.build(snap);

  // Every edge's host /24 must be known everywhere (cores learn it directly,
  // other edges via a core).
  for (int target = 0; target < 3; ++target) {
    Ipv4Prefix host(Ipv4Addr(172, 31, static_cast<uint8_t>(target), 0), 24);
    for (NodeId node = 0; node < snap.topology.num_nodes(); ++node) {
      ASSERT_TRUE(sim.best(node).count(host))
          << snap.topology.node_name(node) << " missing " << host.str();
    }
  }
  // At the originator the route is local; elsewhere it has a via.
  const NodeId as0 = snap.topology.node_id("as0");
  Ipv4Prefix host0(Ipv4Addr(172, 31, 0, 0), 24);
  EXPECT_TRUE(sim.best(as0).at(host0).local);
  const NodeId as1 = snap.topology.node_id("as1");
  const BgpSim::Best& at_as1 = sim.best(as1).at(host0);
  EXPECT_FALSE(at_as1.local);
  // AS path from as1: core AS, then as0's AS.
  EXPECT_EQ(at_as1.route.as_path.size(), 2u);
  EXPECT_EQ(at_as1.route.as_path[0], 65000u);
  EXPECT_EQ(at_as1.route.as_path[1], 65001u);
}

TEST(Bgp, AsLoopPreventionStopsReAdvertisement) {
  // Triangle of distinct ASes: routes circulate but never loop.
  Snapshot snap = topo::make_two_tier_as(2, 1);
  BgpSim sim;
  sim.build(snap);
  // The core must not accept its own AS back: its path to host0 is direct.
  const NodeId core = snap.topology.node_id("as2");
  Ipv4Prefix host0(Ipv4Addr(172, 31, 0, 0), 24);
  EXPECT_EQ(sim.best(core).at(host0).route.as_path.size(), 1u);
}

TEST(Bgp, LocalPrefOverridesPathLength) {
  // as0 (edge) has two cores; prefer the longer path via local-pref.
  Snapshot snap = topo::make_two_tier_as(2, 2);
  BgpSim sim;
  sim.build(snap);

  const NodeId as1 = snap.topology.node_id("as1");
  Ipv4Prefix host0(Ipv4Addr(172, 31, 0, 0), 24);
  const BgpSim::Best before = sim.best(as1).at(host0);

  // Raise local-pref for routes from the *other* core.
  const topo::NodeId other_core =
      before.via == snap.topology.node_id("as2")
          ? snap.topology.node_id("as3")
          : snap.topology.node_id("as2");
  // Find as1's interface address facing other_core.
  Ipv4Addr neighbor_ip;
  for (uint32_t li : snap.topology.links_of(as1)) {
    const topo::Link& link = snap.topology.link(li);
    if (link.peer_of(as1) == other_core) {
      neighbor_ip = snap.configs[other_core]
                        .find_interface(link.if_of(other_core))
                        ->address;
    }
  }
  Snapshot changed =
      topo::with_bgp_local_pref(snap, "as1", neighbor_ip, 200);
  std::set<NodeId> dirty = sim.update(changed, config::diff_configs(
                                                   snap.configs,
                                                   changed.configs),
                                      {});
  EXPECT_TRUE(dirty.count(as1));
  const BgpSim::Best after = sim.best(as1).at(host0);
  EXPECT_EQ(after.via, other_core);
  EXPECT_EQ(after.route.local_pref, 200);
}

TEST(Bgp, WithdrawRemovesEverywhere) {
  Snapshot snap = topo::make_two_tier_as(3, 2);
  BgpSim sim;
  sim.build(snap);
  Ipv4Prefix host0(Ipv4Addr(172, 31, 0, 0), 24);

  Snapshot changed = topo::with_bgp_withdraw(snap, "as0", host0);
  sim.update(changed,
             config::diff_configs(snap.configs, changed.configs), {});
  for (NodeId node = 0; node < snap.topology.num_nodes(); ++node) {
    EXPECT_EQ(sim.best(node).count(host0), 0u)
        << snap.topology.node_name(node);
  }
}

TEST(Bgp, SessionLossWithdrawsLearnedRoutes) {
  Snapshot snap = topo::make_two_tier_as(2, 1);  // as0, as1 edges; as2 core
  BgpSim sim;
  sim.build(snap);
  Ipv4Prefix host0(Ipv4Addr(172, 31, 0, 0), 24);
  const NodeId as1 = snap.topology.node_id("as1");
  ASSERT_TRUE(sim.best(as1).count(host0));

  // Fail the as0-core link: as1 must lose the route.
  uint32_t link_as0_core = 0;
  for (uint32_t li : snap.topology.links_of(snap.topology.node_id("as0"))) {
    link_as0_core = li;
  }
  Snapshot broken = topo::with_link_state(snap, link_as0_core, false);
  sim.update(broken, {}, {});
  EXPECT_EQ(sim.best(as1).count(host0), 0u);

  // Restore: the route comes back.
  sim.update(snap, {}, {});
  EXPECT_TRUE(sim.best(as1).count(host0));
}

TEST(Bgp, ExportDenyFiltersPrefix) {
  Snapshot snap = topo::make_two_tier_as(2, 1);
  // as0 denies exporting host0 to the core via an export map.
  config::NodeConfig& cfg = snap.config_of("as0");
  config::PrefixListConfig pl;
  pl.name = "NOHOST";
  pl.entries.push_back({config::FilterAction::kDeny,
                        Ipv4Prefix(Ipv4Addr(172, 31, 0, 0), 24), -1, -1});
  pl.entries.push_back(
      {config::FilterAction::kPermit, Ipv4Prefix(), -1, 32});
  cfg.prefix_lists.push_back(pl);
  config::RouteMapConfig rm;
  rm.name = "EXP";
  config::RouteMapClause clause;
  clause.seq = 10;
  clause.match_prefix_list = "NOHOST";
  rm.clauses.push_back(clause);
  cfg.route_maps.push_back(rm);
  for (auto& neighbor : cfg.bgp.neighbors) neighbor.export_map = "EXP";

  BgpSim sim;
  sim.build(snap);
  Ipv4Prefix host0(Ipv4Addr(172, 31, 0, 0), 24);
  const NodeId core = snap.topology.node_id("as2");
  // NOHOST denies host0, so route-map clause 10 never matches it and the
  // implicit deny filters it; every other prefix passes via the prefix
  // list's permit-all entry.
  EXPECT_EQ(sim.best(core).count(host0), 0u);
  Ipv4Prefix host1(Ipv4Addr(172, 31, 1, 0), 24);
  EXPECT_TRUE(sim.best(core).count(host1));
}

TEST(Bgp, PrependLengthensPath) {
  Snapshot snap = topo::make_two_tier_as(2, 2);
  // as0 prepends 3 extra copies toward core as2, steering traffic via as3.
  config::NodeConfig& cfg = snap.config_of("as0");
  config::RouteMapConfig rm;
  rm.name = "PREP";
  config::RouteMapClause clause;
  clause.seq = 10;
  clause.prepend_count = 3;
  rm.clauses.push_back(clause);
  cfg.route_maps.push_back(rm);
  const NodeId as2 = snap.topology.node_id("as2");
  for (auto& neighbor : cfg.bgp.neighbors) {
    if (find_address_owner(snap, neighbor.peer_ip) == as2) {
      neighbor.export_map = "PREP";
    }
  }
  BgpSim sim;
  sim.build(snap);
  Ipv4Prefix host0(Ipv4Addr(172, 31, 0, 0), 24);
  EXPECT_EQ(sim.best(as2).at(host0).route.as_path.size(), 4u);
  const NodeId as3 = snap.topology.node_id("as3");
  EXPECT_EQ(sim.best(as3).at(host0).route.as_path.size(), 1u);
}

TEST(Bgp, EffectiveRouterIdFallsBackToHighestAddress) {
  Snapshot snap = topo::make_two_tier_as(2, 1);
  config::NodeConfig cfg = snap.config_of("as0");
  EXPECT_EQ(effective_router_id(cfg), cfg.bgp.router_id);
  cfg.bgp.router_id = Ipv4Addr();
  Ipv4Addr highest;
  for (const auto& iface : cfg.interfaces) {
    highest = std::max(highest, iface.address);
  }
  EXPECT_EQ(effective_router_id(cfg), highest);
}

class BgpChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BgpChurn, IncrementalEqualsFreshBuild) {
  Rng rng(GetParam());
  Snapshot snap = topo::make_two_tier_as(4, 2);
  BgpSim sim;
  sim.build(snap);

  for (int step = 0; step < 30; ++step) {
    Snapshot next = snap;
    switch (rng.below(4)) {
      case 0: {  // announce a fresh prefix at a random edge
        Ipv4Prefix p(Ipv4Addr(192, 168, static_cast<uint8_t>(rng.below(10)), 0),
                     24);
        next = topo::with_bgp_announce(
            snap, "as" + std::to_string(rng.below(4)), p);
        break;
      }
      case 1: {  // withdraw one (possibly absent) prefix
        Ipv4Prefix p(Ipv4Addr(192, 168, static_cast<uint8_t>(rng.below(10)), 0),
                     24);
        next = topo::with_bgp_withdraw(
            snap, "as" + std::to_string(rng.below(4)), p);
        break;
      }
      case 2: {  // toggle a random link
        uint32_t link =
            static_cast<uint32_t>(rng.below(snap.topology.num_links()));
        next = topo::with_link_state(snap, link,
                                     !snap.topology.link(link).up);
        break;
      }
      default: {  // local-pref tweak on a random edge node's first neighbor
        int edge = static_cast<int>(rng.below(4));
        const auto& neighbors =
            snap.config_of("as" + std::to_string(edge)).bgp.neighbors;
        if (neighbors.empty()) continue;
        next = topo::with_bgp_local_pref(
            snap, "as" + std::to_string(edge),
            neighbors[rng.below(neighbors.size())].peer_ip,
            static_cast<int>(rng.range(50, 300)));
        break;
      }
    }
    sim.update(next, config::diff_configs(snap.configs, next.configs),
               {});
    snap = std::move(next);

    auto expected = fresh_best(snap);
    for (NodeId node = 0; node < snap.topology.num_nodes(); ++node) {
      ASSERT_EQ(sim.best(node), expected[node])
          << "step " << step << " node " << snap.topology.node_name(node);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpChurn, ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace dna::cp
