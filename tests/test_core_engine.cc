// The headline property of the whole system: Mode::kDifferential and
// Mode::kMonolithic produce identical NetworkDiffs, across topologies,
// change types, and randomized sequences. Plus invariant-flip reporting
// and the interval-difference helper.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/report.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::core {
namespace {

using topo::Snapshot;

Ipv4Prefix host(int i) {
  return Ipv4Prefix(Ipv4Addr(172, 31, static_cast<uint8_t>(i), 0), 24);
}

void expect_same_semantic_diff(const NetworkDiff& a, const NetworkDiff& b,
                               const std::string& context) {
  EXPECT_EQ(a.config_changes, b.config_changes) << context;
  EXPECT_EQ(a.link_changes, b.link_changes) << context;
  // FIB deltas: same per-node added/removed sets.
  ASSERT_EQ(a.fib_delta.by_node.size(), b.fib_delta.by_node.size()) << context;
  for (const auto& [node, delta] : a.fib_delta.by_node) {
    auto it = b.fib_delta.by_node.find(node);
    ASSERT_NE(it, b.fib_delta.by_node.end()) << context;
    auto sorted = [](std::vector<cp::FibEntry> v) {
      std::sort(v.begin(), v.end());
      return v;
    };
    EXPECT_EQ(sorted(delta.added), sorted(it->second.added)) << context;
    EXPECT_EQ(sorted(delta.removed), sorted(it->second.removed)) << context;
  }
  EXPECT_EQ(a.reach_delta, b.reach_delta) << context;
  EXPECT_EQ(a.invariant_flips, b.invariant_flips) << context;
}

TEST(FactsMinus, IntervalDifference) {
  std::vector<dp::ReachFact> a = {{1, 2, 0, 100}, {1, 2, 200, 300}};
  std::vector<dp::ReachFact> b = {{1, 2, 50, 250}};
  auto diff = facts_minus(a, b);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0].lo, 0u);
  EXPECT_EQ(diff[0].hi, 49u);
  EXPECT_EQ(diff[1].lo, 251u);
  EXPECT_EQ(diff[1].hi, 300u);
}

TEST(FactsMinus, DisjointKeysPassThrough) {
  std::vector<dp::ReachFact> a = {{1, 2, 0, 10}, {3, 4, 0, 10}};
  std::vector<dp::ReachFact> b = {{1, 9, 0, 10}};
  EXPECT_EQ(facts_minus(a, b), a);
  EXPECT_TRUE(facts_minus({}, a).empty());
}

TEST(DnaEngine, NoopChangeIsSemanticallyEmpty) {
  Snapshot snap = topo::make_ring(5);
  DnaEngine engine(snap);
  NetworkDiff diff = engine.advance(snap, Mode::kDifferential);
  EXPECT_TRUE(diff.semantically_empty());
  EXPECT_TRUE(diff.config_changes.empty());
}

TEST(DnaEngine, CostChangeKeepsHostReachability) {
  // Raising one ring link's cost reroutes traffic. Deliveries for *link
  // subnets* may legitimately flip endpoints (a /30 behaves like anycast:
  // the first subnet owner on the path delivers), but every *host network*
  // (172.31.0.0/16) must stay reachable exactly as before.
  Snapshot snap = topo::make_ring(6);
  DnaEngine engine(snap);
  NetworkDiff diff =
      engine.advance(topo::with_link_cost(snap, 0, 80), Mode::kDifferential);
  EXPECT_FALSE(diff.fib_delta.empty());
  const Ipv4Prefix hosts(Ipv4Addr(172, 31, 0, 0), 16);
  const Ipv4Prefix loopbacks(Ipv4Addr(172, 16, 0, 0), 16);
  auto in_stable_space = [&](const dp::ReachFact& fact) {
    return hosts.contains(Ipv4Addr(fact.lo)) ||
           loopbacks.contains(Ipv4Addr(fact.lo));
  };
  for (const auto& fact : diff.reach_delta.gained) {
    EXPECT_FALSE(in_stable_space(fact)) << Ipv4Addr(fact.lo).str();
  }
  for (const auto& fact : diff.reach_delta.lost) {
    EXPECT_FALSE(in_stable_space(fact)) << Ipv4Addr(fact.lo).str();
  }
  EXPECT_TRUE(diff.reach_delta.loops_gained.empty());
  EXPECT_TRUE(diff.reach_delta.blackholes_gained.empty());
}

TEST(DnaEngine, LinkFailureOnLineLosesReachability) {
  Snapshot snap = topo::make_line(3);
  DnaEngine engine(snap);
  NetworkDiff diff =
      engine.advance(topo::with_link_state(snap, 1, false),
                     Mode::kDifferential);
  EXPECT_FALSE(diff.reach_delta.lost.empty());
  EXPECT_TRUE(diff.reach_delta.gained.empty());
  EXPECT_FALSE(diff.reach_delta.blackholes_gained.empty());
}

TEST(DnaEngine, InvariantFlipReported) {
  Snapshot snap = topo::make_line(3);
  DnaEngine engine(snap);
  engine.add_invariant(
      {Invariant::Kind::kReachable, "r0", "r2", "", host(1)});
  NetworkDiff diff = engine.advance(
      topo::with_acl_block(snap, "r1", host(1)), Mode::kDifferential);
  ASSERT_EQ(diff.invariant_flips.size(), 1u);
  EXPECT_TRUE(diff.invariant_flips[0].before_holds);
  EXPECT_FALSE(diff.invariant_flips[0].after_holds);

  // Reverting fixes it.
  NetworkDiff revert = engine.advance(snap, Mode::kDifferential);
  ASSERT_EQ(revert.invariant_flips.size(), 1u);
  EXPECT_FALSE(revert.invariant_flips[0].before_holds);
  EXPECT_TRUE(revert.invariant_flips[0].after_holds);
}

TEST(DnaEngine, RenderProducesReadableReport) {
  Snapshot snap = topo::make_line(3);
  DnaEngine engine(snap);
  NetworkDiff diff = engine.advance(
      topo::with_link_state(snap, 1, false), Mode::kDifferential);
  std::string report = render(diff, engine.snapshot().topology);
  EXPECT_NE(report.find("reachability lost"), std::string::npos);
  EXPECT_NE(report.find("r1"), std::string::npos);
  EXPECT_FALSE(summarize(diff).empty());
}

// ---------------------------------------------------------------------------
// Equivalence: differential == monolithic, on directed single changes...
// ---------------------------------------------------------------------------

struct ChangeCase {
  const char* name;
  Snapshot (*make)();
  Snapshot (*change)(Snapshot);
};

ChangeCase cases[] = {
    {"ring_cost",
     [] { return topo::make_ring(6); },
     [](Snapshot s) { return topo::with_link_cost(s, 2, 99); }},
    {"ring_fail",
     [] { return topo::make_ring(6); },
     [](Snapshot s) { return topo::with_link_state(s, 2, false); }},
    {"fattree_fail",
     [] { return topo::make_fattree(4); },
     [](Snapshot s) { return topo::with_link_state(s, 5, false); }},
    {"fattree_acl",
     [] { return topo::make_fattree(4); },
     [](Snapshot s) { return topo::with_acl_block(s, "sw2", host(3)); }},
    {"line_static",
     [] { return topo::make_line(4); },
     [](Snapshot s) {
       const topo::Link& link = s.topology.link(0);
       Ipv4Addr via = s.configs[link.b].find_interface(link.b_if)->address;
       return topo::with_static_route(s, "r0",
                                      Ipv4Prefix(Ipv4Addr(198, 18, 0, 0), 24),
                                      via);
     }},
    {"bgp_withdraw",
     [] { return topo::make_two_tier_as(3, 2); },
     [](Snapshot s) { return topo::with_bgp_withdraw(s, "as0", host(0)); }},
    {"bgp_announce",
     [] { return topo::make_two_tier_as(3, 2); },
     [](Snapshot s) {
       return topo::with_bgp_announce(s, "as1",
                                      Ipv4Prefix(Ipv4Addr(198, 19, 0, 0), 24));
     }},
};

class ModeEquivalence : public ::testing::TestWithParam<ChangeCase> {};

TEST_P(ModeEquivalence, DifferentialEqualsMonolithic) {
  const ChangeCase& test_case = GetParam();
  Snapshot base = test_case.make();
  Snapshot target = test_case.change(base);

  DnaEngine differential(base);
  DnaEngine monolithic(base);
  NetworkDiff diff_d = differential.advance(target, Mode::kDifferential);
  NetworkDiff diff_m = monolithic.advance(target, Mode::kMonolithic);
  expect_same_semantic_diff(diff_d, diff_m, test_case.name);
}

INSTANTIATE_TEST_SUITE_P(Cases, ModeEquivalence, ::testing::ValuesIn(cases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ---------------------------------------------------------------------------
// ... and on randomized change sequences per topology.
// ---------------------------------------------------------------------------

class ModeEquivalenceChurn : public ::testing::TestWithParam<const char*> {};

TEST_P(ModeEquivalenceChurn, SequencesAgree) {
  std::string which = GetParam();
  Rng rng(0xD1FF + which.size());
  Snapshot snap;
  if (which == "ring") snap = topo::make_ring(6);
  if (which == "fattree") snap = topo::make_fattree(4);
  if (which == "two_tier") snap = topo::make_two_tier_as(3, 2);

  DnaEngine differential(snap);
  DnaEngine monolithic(snap);
  differential.add_invariant(
      {Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()});
  monolithic.add_invariant(
      {Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()});

  for (int step = 0; step < 10; ++step) {
    topo::RandomChange change = topo::random_change(snap, rng);
    snap = std::move(change.snapshot);
    NetworkDiff diff_d = differential.advance(snap, Mode::kDifferential);
    NetworkDiff diff_m = monolithic.advance(snap, Mode::kMonolithic);
    expect_same_semantic_diff(
        diff_d, diff_m,
        which + " step " + std::to_string(step) + ": " + change.description);
    if (HasNonfatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, ModeEquivalenceChurn,
                         ::testing::Values("ring", "fattree", "two_tier"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dna::core
