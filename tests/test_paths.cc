// Forwarding-path extraction and differential path analysis.
#include <gtest/gtest.h>

#include "controlplane/engine.h"
#include "core/paths.h"
#include "topo/generators.h"
#include "topo/mutators.h"

namespace dna::core {
namespace {

using topo::Snapshot;

struct Fixture {
  Snapshot snap;
  std::unique_ptr<cp::ControlPlaneEngine> engine;
  std::unique_ptr<dp::Verifier> verifier;

  explicit Fixture(Snapshot s) : snap(std::move(s)) {
    engine = std::make_unique<cp::ControlPlaneEngine>(snap);
    verifier =
        std::make_unique<dp::Verifier>(&engine->snapshot(), &engine->fibs());
  }
};

TEST(Paths, LineHasExactlyOnePath) {
  Fixture fx(topo::make_line(4));
  auto paths = forwarding_paths(*fx.verifier, fx.engine->snapshot(),
                                fx.snap.topology.node_id("r0"),
                                Ipv4Addr(172, 31, 1, 5));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].outcome, ForwardingPath::Outcome::kDelivered);
  ASSERT_EQ(paths[0].nodes.size(), 4u);
  EXPECT_EQ(paths[0].nodes.front(), fx.snap.topology.node_id("r0"));
  EXPECT_EQ(paths[0].nodes.back(), fx.snap.topology.node_id("r3"));
  EXPECT_NE(paths[0].str(fx.snap.topology).find("delivered"),
            std::string::npos);
}

TEST(Paths, RingEcmpYieldsTwoPaths) {
  Fixture fx(topo::make_ring(4));
  auto paths = forwarding_paths(*fx.verifier, fx.engine->snapshot(),
                                fx.snap.topology.node_id("r0"),
                                Ipv4Addr(172, 31, 1, 9));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].nodes, paths[1].nodes);
  for (const auto& path : paths) {
    EXPECT_EQ(path.outcome, ForwardingPath::Outcome::kDelivered);
  }
}

TEST(Paths, NoRouteReportsDrop) {
  Fixture fx(topo::make_line(2));
  auto paths = forwarding_paths(*fx.verifier, fx.engine->snapshot(),
                                fx.snap.topology.node_id("r0"),
                                Ipv4Addr(8, 8, 8, 8));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].outcome, ForwardingPath::Outcome::kDropped);
}

TEST(Paths, StaticLoopReportsLoop) {
  Snapshot snap = topo::make_line(2);
  const topo::Link& link = snap.topology.link(0);
  Ipv4Addr a_addr = snap.configs[link.a].find_interface(link.a_if)->address;
  Ipv4Addr b_addr = snap.configs[link.b].find_interface(link.b_if)->address;
  Ipv4Prefix bogus(Ipv4Addr(198, 18, 0, 0), 15);
  snap = topo::with_static_route(snap, "r0", bogus, b_addr);
  snap = topo::with_static_route(snap, "r1", bogus, a_addr);
  Fixture fx(std::move(snap));
  auto paths = forwarding_paths(*fx.verifier, fx.engine->snapshot(),
                                fx.snap.topology.node_id("r0"),
                                Ipv4Addr(198, 18, 0, 1));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].outcome, ForwardingPath::Outcome::kLooped);
}

TEST(Paths, DiffShowsReroute) {
  Snapshot base = topo::make_ring(6);
  Fixture before(base);
  auto src = base.topology.node_id("r0");
  Ipv4Addr dst(172, 31, 1, 7);  // hosted at r3
  auto paths_before = forwarding_paths(*before.verifier,
                                       before.engine->snapshot(), src, dst);

  Fixture after(topo::with_link_cost(base, 0, 90));
  auto paths_after =
      forwarding_paths(*after.verifier, after.engine->snapshot(), src, dst);

  PathDiff diff = diff_paths(paths_before, paths_after);
  EXPECT_FALSE(diff.empty());
  // The rerouted path avoids the expensive r0-r1 link.
  for (const auto& path : diff.added) {
    ASSERT_GE(path.nodes.size(), 2u);
    EXPECT_EQ(path.nodes[1], base.topology.node_id("r5"));
  }
  EXPECT_TRUE(diff_paths(paths_before, paths_before).empty());
}

TEST(Paths, MaxPathsTruncatesEnumeration) {
  Fixture fx(topo::make_fattree(4));
  // Edge-to-edge across pods: 2 aggs x 2 cores x ... several ECMP paths.
  auto all = forwarding_paths(*fx.verifier, fx.engine->snapshot(),
                              fx.snap.topology.node_id("sw0"),
                              Ipv4Addr(172, 31, 7, 1), 64);
  auto capped = forwarding_paths(*fx.verifier, fx.engine->snapshot(),
                                 fx.snap.topology.node_id("sw0"),
                                 Ipv4Addr(172, 31, 7, 1), 2);
  EXPECT_GT(all.size(), 2u);
  EXPECT_EQ(capped.size(), 2u);
}

}  // namespace
}  // namespace dna::core
