// Unit tests for the foundation utilities.
#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/interner.h"
#include "util/ip.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dna {
namespace {

TEST(Ipv4Addr, ParseAndFormatRoundTrip) {
  auto addr = Ipv4Addr::parse("10.1.2.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->str(), "10.1.2.3");
  EXPECT_EQ(addr->bits(), 0x0a010203u);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.3x").has_value());
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr(9, 255, 255, 255), Ipv4Addr(10, 0, 0, 0));
}

TEST(Ipv4Prefix, MasksHostBits) {
  Ipv4Prefix p(Ipv4Addr(10, 1, 2, 3), 24);
  EXPECT_EQ(p.addr(), Ipv4Addr(10, 1, 2, 0));
  EXPECT_EQ(p.str(), "10.1.2.0/24");
  EXPECT_EQ(p.first(), Ipv4Addr(10, 1, 2, 0));
  EXPECT_EQ(p.last(), Ipv4Addr(10, 1, 2, 255));
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  auto p = Ipv4Prefix::parse("192.168.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->str(), "192.168.0.0/16");
  EXPECT_FALSE(Ipv4Prefix::parse("192.168.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("192.168.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("192.168.0.0/x").has_value());
}

TEST(Ipv4Prefix, DefaultRouteCoversEverything) {
  Ipv4Prefix def = Ipv4Prefix::default_route();
  EXPECT_EQ(def.length(), 0);
  EXPECT_TRUE(def.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_TRUE(def.contains(Ipv4Addr(255, 255, 255, 255)));
}

TEST(Ipv4Prefix, Containment) {
  Ipv4Prefix wide(Ipv4Addr(10, 0, 0, 0), 8);
  Ipv4Prefix narrow(Ipv4Addr(10, 1, 0, 0), 16);
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.overlaps(narrow));
  EXPECT_TRUE(narrow.overlaps(wide));
  Ipv4Prefix other(Ipv4Addr(11, 0, 0, 0), 8);
  EXPECT_FALSE(wide.overlaps(other));
}

TEST(Ipv4Prefix, EqualityIgnoresHostBits) {
  Ipv4Prefix a(Ipv4Addr(10, 1, 2, 3), 24);
  Ipv4Prefix b(Ipv4Addr(10, 1, 2, 200), 24);
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<Ipv4Prefix>{}(a), std::hash<Ipv4Prefix>{}(b));
}

TEST(Ipv4Prefix, SlashThirtyTwo) {
  Ipv4Prefix host(Ipv4Addr(172, 16, 0, 5), 32);
  EXPECT_EQ(host.first(), host.last());
  EXPECT_TRUE(host.contains(Ipv4Addr(172, 16, 0, 5)));
  EXPECT_FALSE(host.contains(Ipv4Addr(172, 16, 0, 6)));
}

TEST(Interner, BidirectionalMapping) {
  Interner interner;
  Symbol a = interner.intern("alpha");
  Symbol b = interner.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.str(a), "alpha");
  EXPECT_EQ(interner.str(b), "beta");
  EXPECT_EQ(interner.find("alpha"), a);
  EXPECT_EQ(interner.find("gamma"), Interner::kNoSymbol);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Strings, SplitAndTrim) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_ws("  a\t b  "), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\r\n"), "");
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("12345"), 12345);
  EXPECT_EQ(parse_int(""), -1);
  EXPECT_EQ(parse_int("12x"), -1);
  EXPECT_EQ(parse_int("-3"), -1);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen[v]++;
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Bitset, SetResetTestCount) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.count(), 0u);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, MinusAndIndices) {
  DynamicBitset a(70), b(70);
  a.set(1);
  a.set(65);
  a.set(69);
  b.set(65);
  EXPECT_EQ(a.minus(b), (std::vector<uint32_t>{1, 69}));
  EXPECT_EQ(b.minus(a), (std::vector<uint32_t>{}));
  EXPECT_EQ(a.to_indices(), (std::vector<uint32_t>{1, 65, 69}));
}

TEST(Bitset, UnionIntersection) {
  DynamicBitset a(10), b(10);
  a.set(1);
  b.set(2);
  DynamicBitset u = a;
  u |= b;
  EXPECT_TRUE(u.test(1));
  EXPECT_TRUE(u.test(2));
  u &= b;
  EXPECT_FALSE(u.test(1));
  EXPECT_TRUE(u.test(2));
}

TEST(Bitset, EqualityAndHash) {
  DynamicBitset a(10), b(10);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(4);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace dna
