// Unit tests for the foundation utilities.
#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "util/bitset.h"
#include "util/flat_map.h"
#include "util/interner.h"
#include "util/ip.h"
#include "util/rng.h"
#include "util/strings.h"

namespace dna {
namespace {

TEST(Ipv4Addr, ParseAndFormatRoundTrip) {
  auto addr = Ipv4Addr::parse("10.1.2.3");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->str(), "10.1.2.3");
  EXPECT_EQ(addr->bits(), 0x0a010203u);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.3.4").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("a.b.c.d").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("10.1.2.3x").has_value());
}

TEST(Ipv4Addr, Ordering) {
  EXPECT_LT(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2));
  EXPECT_LT(Ipv4Addr(9, 255, 255, 255), Ipv4Addr(10, 0, 0, 0));
}

TEST(Ipv4Prefix, MasksHostBits) {
  Ipv4Prefix p(Ipv4Addr(10, 1, 2, 3), 24);
  EXPECT_EQ(p.addr(), Ipv4Addr(10, 1, 2, 0));
  EXPECT_EQ(p.str(), "10.1.2.0/24");
  EXPECT_EQ(p.first(), Ipv4Addr(10, 1, 2, 0));
  EXPECT_EQ(p.last(), Ipv4Addr(10, 1, 2, 255));
}

TEST(Ipv4Prefix, ParseRoundTrip) {
  auto p = Ipv4Prefix::parse("192.168.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->str(), "192.168.0.0/16");
  EXPECT_FALSE(Ipv4Prefix::parse("192.168.0.0").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("192.168.0.0/33").has_value());
  EXPECT_FALSE(Ipv4Prefix::parse("192.168.0.0/x").has_value());
}

TEST(Ipv4Prefix, DefaultRouteCoversEverything) {
  Ipv4Prefix def = Ipv4Prefix::default_route();
  EXPECT_EQ(def.length(), 0);
  EXPECT_TRUE(def.contains(Ipv4Addr(1, 2, 3, 4)));
  EXPECT_TRUE(def.contains(Ipv4Addr(255, 255, 255, 255)));
}

TEST(Ipv4Prefix, Containment) {
  Ipv4Prefix wide(Ipv4Addr(10, 0, 0, 0), 8);
  Ipv4Prefix narrow(Ipv4Addr(10, 1, 0, 0), 16);
  EXPECT_TRUE(wide.contains(narrow));
  EXPECT_FALSE(narrow.contains(wide));
  EXPECT_TRUE(wide.overlaps(narrow));
  EXPECT_TRUE(narrow.overlaps(wide));
  Ipv4Prefix other(Ipv4Addr(11, 0, 0, 0), 8);
  EXPECT_FALSE(wide.overlaps(other));
}

TEST(Ipv4Prefix, EqualityIgnoresHostBits) {
  Ipv4Prefix a(Ipv4Addr(10, 1, 2, 3), 24);
  Ipv4Prefix b(Ipv4Addr(10, 1, 2, 200), 24);
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::hash<Ipv4Prefix>{}(a), std::hash<Ipv4Prefix>{}(b));
}

TEST(Ipv4Prefix, SlashThirtyTwo) {
  Ipv4Prefix host(Ipv4Addr(172, 16, 0, 5), 32);
  EXPECT_EQ(host.first(), host.last());
  EXPECT_TRUE(host.contains(Ipv4Addr(172, 16, 0, 5)));
  EXPECT_FALSE(host.contains(Ipv4Addr(172, 16, 0, 6)));
}

TEST(Interner, BidirectionalMapping) {
  Interner interner;
  Symbol a = interner.intern("alpha");
  Symbol b = interner.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.intern("alpha"), a);
  EXPECT_EQ(interner.str(a), "alpha");
  EXPECT_EQ(interner.str(b), "beta");
  EXPECT_EQ(interner.find("alpha"), a);
  EXPECT_EQ(interner.find("gamma"), Interner::kNoSymbol);
  EXPECT_EQ(interner.size(), 2u);
}

TEST(Strings, SplitAndTrim) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_ws("  a\t b  "), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\r\n"), "");
  EXPECT_EQ(join({"a", "b"}, "-"), "a-b");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_EQ(parse_int("12345"), 12345);
  EXPECT_EQ(parse_int(""), -1);
  EXPECT_EQ(parse_int("12x"), -1);
  EXPECT_EQ(parse_int("-3"), -1);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen[v]++;
  }
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.range(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Bitset, SetResetTestCount) {
  DynamicBitset bits(130);
  EXPECT_EQ(bits.count(), 0u);
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(Bitset, MinusAndIndices) {
  DynamicBitset a(70), b(70);
  a.set(1);
  a.set(65);
  a.set(69);
  b.set(65);
  EXPECT_EQ(a.minus(b), (std::vector<uint32_t>{1, 69}));
  EXPECT_EQ(b.minus(a), (std::vector<uint32_t>{}));
  EXPECT_EQ(a.to_indices(), (std::vector<uint32_t>{1, 65, 69}));
}

TEST(Bitset, UnionIntersection) {
  DynamicBitset a(10), b(10);
  a.set(1);
  b.set(2);
  DynamicBitset u = a;
  u |= b;
  EXPECT_TRUE(u.test(1));
  EXPECT_TRUE(u.test(2));
  u &= b;
  EXPECT_FALSE(u.test(1));
  EXPECT_TRUE(u.test(2));
}

TEST(Bitset, EqualityAndHash) {
  DynamicBitset a(10), b(10);
  a.set(3);
  b.set(3);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  b.set(4);
  EXPECT_NE(a, b);
}

TEST(FlatMap, InsertFindEraseBasics) {
  util::FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), m.end());

  m[1] = "one";
  auto [it, inserted] = m.try_emplace(2, "two");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->second, "two");
  auto [it2, inserted2] = m.try_emplace(2, "TWO");
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, "two");

  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.at(1), "one");
  EXPECT_EQ(m.count(3), 0u);
  EXPECT_EQ(m.erase(1), 1u);
  EXPECT_EQ(m.erase(1), 0u);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(2));
}

TEST(FlatMap, IterationVisitsEveryEntryOnce) {
  util::FlatMap<int, int> m;
  for (int i = 0; i < 100; ++i) m[i] = i * 10;
  size_t seen = 0;
  int64_t sum = 0;
  for (const auto& [k, v] : m) {
    EXPECT_EQ(v, k * 10);
    ++seen;
    sum += k;
  }
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sum, 99 * 100 / 2);
}

// All keys collide into the same probe chain: exercises robin-hood
// displacement on insert and backward-shift on erase.
struct ConstantHash {
  size_t operator()(int) const { return 42; }
};

TEST(FlatMap, SurvivesForcedHashCollisions) {
  util::FlatMap<int, int, ConstantHash> m;
  for (int i = 0; i < 12; ++i) m[i] = i;
  EXPECT_EQ(m.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(m.at(i), i);

  // Erase from the middle of the chain; the tail must shift back.
  for (int i = 3; i < 9; ++i) EXPECT_EQ(m.erase(i), 1u);
  EXPECT_EQ(m.size(), 6u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(m.at(i), i);
  for (int i = 9; i < 12; ++i) EXPECT_EQ(m.at(i), i);
  for (int i = 3; i < 9; ++i) EXPECT_EQ(m.find(i), m.end());

  // Reinsert into the holes.
  for (int i = 3; i < 9; ++i) m[i] = 100 + i;
  for (int i = 3; i < 9; ++i) EXPECT_EQ(m.at(i), 100 + i);
  EXPECT_EQ(m.size(), 12u);
}

TEST(FlatMap, HashedProbesMatchPlainOnes) {
  util::FlatMap<int, int> m;
  m[7] = 70;
  const size_t h = std::hash<int>{}(7);
  auto it = m.find_hashed(h, [](int k) { return k == 7; });
  ASSERT_NE(it, m.end());
  EXPECT_EQ(it->second, 70);

  auto [it2, inserted] = m.try_emplace_hashed(
      std::hash<int>{}(8), [](int k) { return k == 8; }, [] { return 8; }, 80);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(m.at(8), 80);
  EXPECT_EQ(m.erase_hashed(h, [](int k) { return k == 7; }), 1u);
  EXPECT_EQ(m.find(7), m.end());
}

TEST(FlatMap, EqualityIsOrderIndependent) {
  util::FlatMap<int, int> a, b;
  for (int i = 0; i < 50; ++i) a[i] = i;
  for (int i = 49; i >= 0; --i) b[i] = i;
  EXPECT_EQ(a, b);
  b[50] = 50;
  EXPECT_NE(a, b);
  b.erase(50);
  EXPECT_EQ(a, b);
  b[0] = 999;
  EXPECT_NE(a, b);
}

// Randomized churn against std::unordered_map as the oracle, with a weak
// hash so probe chains overlap constantly.
struct LowBitsHash {
  size_t operator()(int k) const { return static_cast<size_t>(k) & 3; }
};

TEST(FlatMapProperty, ChurnMatchesUnorderedMap) {
  util::FlatMap<int, int, LowBitsHash> flat;
  std::unordered_map<int, int> ref;
  Rng rng(0xF1A7);
  for (int step = 0; step < 20000; ++step) {
    const int key = static_cast<int>(rng.below(200));
    const int op = static_cast<int>(rng.below(3));
    if (op == 0) {
      flat[key] = step;
      ref[key] = step;
    } else if (op == 1) {
      EXPECT_EQ(flat.erase(key), ref.erase(key));
    } else {
      auto fit = flat.find(key);
      auto rit = ref.find(key);
      ASSERT_EQ(fit == flat.end(), rit == ref.end());
      if (rit != ref.end()) EXPECT_EQ(fit->second, rit->second);
    }
    ASSERT_EQ(flat.size(), ref.size());
  }
  // Full sweep at the end: identical contents.
  for (const auto& [k, v] : ref) EXPECT_EQ(flat.at(k), v);
  size_t n = 0;
  for (const auto& kv : flat) {
    EXPECT_EQ(ref.at(kv.first), kv.second);
    ++n;
  }
  EXPECT_EQ(n, ref.size());
}

}  // namespace
}  // namespace dna
