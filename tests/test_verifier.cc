// Verifier: full verification semantics plus the incremental-equals-fresh
// property under randomized change sequences.
#include <gtest/gtest.h>

#include "controlplane/engine.h"
#include "dataplane/verifier.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::dp {
namespace {

using topo::Snapshot;

TEST(Verifier, FullBuildCoversAllAtoms) {
  Snapshot snap = topo::make_fattree(4);
  auto fibs = cp::ControlPlaneEngine::compute_fibs(snap);
  Verifier verifier(&snap, &fibs);
  EXPECT_GT(verifier.num_ecs(), 10u);
  // Every atom has a graph and a reach record.
  for (EcId ec = 0; ec < verifier.num_ecs(); ++ec) {
    EXPECT_EQ(verifier.graph(ec).verdicts.size(), snap.topology.num_nodes());
  }
}

TEST(Verifier, ReachFactsCanonicalFormIsSortedAndCoalesced) {
  Snapshot snap = topo::make_line(3);
  auto fibs = cp::ControlPlaneEngine::compute_fibs(snap);
  Verifier verifier(&snap, &fibs);
  auto facts = verifier.all_reach_facts();
  ASSERT_FALSE(facts.empty());
  EXPECT_TRUE(std::is_sorted(facts.begin(), facts.end()));
  for (size_t i = 0; i + 1 < facts.size(); ++i) {
    if (facts[i].src == facts[i + 1].src &&
        facts[i].dst == facts[i + 1].dst) {
      // Coalesced: no two adjacent facts of the same pair touch.
      EXPECT_LT(static_cast<uint64_t>(facts[i].hi) + 1, facts[i + 1].lo);
    }
  }
}

TEST(CanonicalFacts, MergesAdjacentRanges) {
  std::vector<ReachFact> facts = {
      {1, 2, 100, 199}, {1, 2, 200, 300}, {1, 2, 500, 600}, {1, 3, 301, 400}};
  canonicalize_facts(facts);
  ASSERT_EQ(facts.size(), 3u);
  EXPECT_EQ(facts[0].lo, 100u);
  EXPECT_EQ(facts[0].hi, 300u);
  EXPECT_EQ(facts[1].lo, 500u);
  EXPECT_EQ(facts[2].dst, 3u);
}

/// The incremental verifier's state after a change must match a verifier
/// built fresh against the new inputs (compared via canonical facts).
void expect_verifier_matches_fresh(const Verifier& incremental,
                                   const Snapshot& snap,
                                   const std::vector<cp::Fib>& fibs,
                                   const std::string& context) {
  Verifier fresh(&snap, &fibs);
  EXPECT_EQ(incremental.all_reach_facts(), fresh.all_reach_facts()) << context;
  EXPECT_EQ(incremental.all_loop_facts(), fresh.all_loop_facts()) << context;
  EXPECT_EQ(incremental.all_blackhole_facts(), fresh.all_blackhole_facts())
      << context;
}

TEST(Verifier, IncrementalLinkCostChange) {
  Snapshot snap = topo::make_ring(6);
  cp::ControlPlaneEngine engine(snap);
  Verifier verifier(&engine.snapshot(), &engine.fibs());

  Snapshot changed = topo::with_link_cost(snap, 1, 77);
  cp::AdvanceResult result = engine.advance(changed);
  ReachDelta delta = verifier.apply(&engine.snapshot(), &engine.fibs(),
                                    result.fib_delta, result.config_changes);
  (void)delta;
  expect_verifier_matches_fresh(verifier, engine.snapshot(), engine.fibs(),
                                "cost change");
}

TEST(Verifier, AclChangeTouchesOnlyCoveredAtoms) {
  Snapshot snap = topo::make_fattree(4);
  cp::ControlPlaneEngine engine(snap);
  Verifier verifier(&engine.snapshot(), &engine.fibs());
  const size_t total = verifier.num_ecs();

  // Block 172.31.3.0/24 at its own edge switch (sw3 hosts it), so transit
  // traffic entering sw3 is dropped by the inbound ACL.
  Snapshot changed =
      topo::with_acl_block(snap, "sw3", Ipv4Prefix(Ipv4Addr(172, 31, 3, 0), 24));
  cp::AdvanceResult result = engine.advance(changed);
  EXPECT_TRUE(result.fib_delta.empty());  // control plane untouched
  ReachDelta delta = verifier.apply(&engine.snapshot(), &engine.fibs(),
                                    result.fib_delta, result.config_changes);
  EXPECT_FALSE(delta.empty());
  EXPECT_FALSE(delta.lost.empty());
  // Only the atoms of the blocked /24 (plus splits) are re-verified.
  EXPECT_LT(verifier.last_affected_ecs(), total / 4);
  expect_verifier_matches_fresh(verifier, engine.snapshot(), engine.fibs(),
                                "acl change");
}

TEST(Verifier, ReachDeltaReportsLostDelivery) {
  Snapshot snap = topo::make_line(3);
  cp::ControlPlaneEngine engine(snap);
  Verifier verifier(&engine.snapshot(), &engine.fibs());

  // Fail the r1-r2 link: r0 loses the 172.31.1.0/24 host net at r2.
  Snapshot broken = topo::with_link_state(snap, 1, false);
  cp::AdvanceResult result = engine.advance(broken);
  ReachDelta delta = verifier.apply(&engine.snapshot(), &engine.fibs(),
                                    result.fib_delta, result.config_changes);
  const auto r0 = snap.topology.node_id("r0");
  const auto r2 = snap.topology.node_id("r2");
  bool lost_host = false;
  for (const ReachFact& fact : delta.lost) {
    if (fact.src == r0 && fact.dst == r2 &&
        fact.lo <= Ipv4Addr(172, 31, 1, 5).bits() &&
        fact.hi >= Ipv4Addr(172, 31, 1, 5).bits()) {
      lost_host = true;
    }
  }
  EXPECT_TRUE(lost_host);
  EXPECT_TRUE(delta.gained.empty());
}

class VerifierChurn : public ::testing::TestWithParam<const char*> {};

TEST_P(VerifierChurn, IncrementalEqualsFreshUnderRandomChanges) {
  std::string which = GetParam();
  Rng rng(0x5E + which.size());
  Snapshot snap;
  if (which == "ring") snap = topo::make_ring(6);
  if (which == "fattree") snap = topo::make_fattree(4);
  if (which == "two_tier") snap = topo::make_two_tier_as(3, 2);
  if (which == "grid") snap = topo::make_grid(3, 3);

  cp::ControlPlaneEngine engine(snap);
  Verifier verifier(&engine.snapshot(), &engine.fibs());

  for (int step = 0; step < 15; ++step) {
    topo::RandomChange change = topo::random_change(snap, rng);
    snap = std::move(change.snapshot);
    cp::AdvanceResult result = engine.advance(snap);
    verifier.apply(&engine.snapshot(), &engine.fibs(), result.fib_delta,
                   result.config_changes);
    expect_verifier_matches_fresh(
        verifier, engine.snapshot(), engine.fibs(),
        which + " step " + std::to_string(step) + ": " + change.description);
    if (HasNonfatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, VerifierChurn,
                         ::testing::Values("ring", "fattree", "two_tier",
                                           "grid"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dna::dp
