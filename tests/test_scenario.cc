// The scenario subsystem's contract: the thread pool runs every task exactly
// once, batch evaluation is deterministic for any thread count, every
// scenario's verdict equals a sequential DnaEngine::advance from the same
// base, and bad plans fail their own scenario without poisoning the batch.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>

#include "core/engine.h"
#include "scenario/runner.h"
#include "topo/generators.h"
#include "util/error.h"
#include "util/threadpool.h"

namespace dna::scenario {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&](size_t worker, size_t index) {
    ASSERT_LT(worker, pool.num_workers());
    hits[index].fetch_add(1);
  });
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SubmitFromInsideATask) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.submit([&](size_t) {
    ++count;
    for (int i = 0; i < 10; ++i) {
      pool.submit([&](size_t) { ++count; });
    }
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 11);
}

TEST(ThreadPool, RepeatedSingleSubmitBatchesDoNotDeadlock) {
  // Regression for a lost-wakeup race: one submit against a pool whose
  // workers are (about to be) asleep, repeated so the submit keeps landing
  // inside the workers' scan-then-sleep window.
  util::ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 500; ++round) {
    pool.submit([&](size_t) { ++count; });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, SingleWorkerStillDrains) {
  util::ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&](size_t) { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadConstructionClampsToAtLeastOneWorker) {
  // 0 = hardware concurrency, which may itself report 0; either way the
  // pool must come up able to run tasks.
  util::ThreadPool pool(0);
  EXPECT_GE(pool.num_workers(), 1u);
  std::atomic<int> count{0};
  pool.parallel_for(10, [&](size_t, size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, TaskExceptionPropagatesToTheWaiter) {
  util::ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.submit([&](size_t) { ++completed; });
  pool.submit([](size_t) { throw Error("task failed"); });
  pool.submit([&](size_t) { ++completed; });
  // The failing task must not kill its worker or the healthy tasks, and
  // the waiter must see the failure.
  EXPECT_THROW(pool.wait_idle(), Error);
  EXPECT_EQ(completed.load(), 2);

  // The failure was collected: the pool is reusable and idle again.
  std::atomic<int> after{0};
  pool.parallel_for(8, [&](size_t, size_t) { ++after; });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, FirstOfManyFailuresWins) {
  util::ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.submit([](size_t) { throw Error("boom"); });
  }
  try {
    pool.wait_idle();
    FAIL() << "expected wait_idle to rethrow";
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  pool.wait_idle();  // collected: a second wait is clean
}

// ---------------------------------------------------------------------------
// Sweep generators
// ---------------------------------------------------------------------------

TEST(Sweeps, LinkFailureCoversEveryUpLink) {
  topo::Snapshot snap = topo::make_fattree(4);
  auto specs = link_failure_sweep(snap);
  EXPECT_EQ(specs.size(), snap.topology.num_links());

  snap.topology.set_link_up(3, false);
  EXPECT_EQ(link_failure_sweep(snap).size(), snap.topology.num_links() - 1);
}

TEST(Sweeps, InterfaceShutdownSkipsLoopback) {
  // r1 has exactly its two ring links (r0 and r2 host networks live
  // elsewhere); the loopback must be skipped.
  topo::Snapshot snap = topo::make_ring(5);
  auto specs = interface_shutdown_sweep(snap, "r1");
  EXPECT_EQ(specs.size(), 2u);
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.name.find("shut r1:"), 0u) << spec.name;
  }
  EXPECT_THROW(interface_shutdown_sweep(snap, "nonexistent"), Error);
}

TEST(Sweeps, RandomChangeSweepIsSeedDeterministic) {
  topo::Snapshot snap = topo::make_ring(6);
  auto a = random_change_sweep(snap, 10, 42);
  auto b = random_change_sweep(snap, 10, 42);
  auto c = random_change_sweep(snap, 10, 43);
  ASSERT_EQ(a.size(), 10u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].plan.apply(snap), b[i].plan.apply(snap));
  }
  bool any_differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_differs = any_differs || a[i].name != c[i].name;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Sweeps, HostReachabilityInvariantsDerivedFromSnapshot) {
  // ring(6): r0 and r3 each own a host /24 -> both ordered pairs.
  auto ring = host_reachability_invariants(topo::make_ring(6));
  ASSERT_EQ(ring.size(), 2u);
  for (const core::Invariant& invariant : ring) {
    EXPECT_EQ(invariant.kind, core::Invariant::Kind::kReachable);
    EXPECT_TRUE((invariant.src == "r0" && invariant.dst == "r3") ||
                (invariant.src == "r3" && invariant.dst == "r0"));
  }
  // fat-tree k=4: 8 edge switches with one /24 each -> 8*7 pairs.
  EXPECT_EQ(host_reachability_invariants(topo::make_fattree(4)).size(), 56u);
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

std::vector<core::Invariant> ring_invariants() {
  return {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()},
          {core::Invariant::Kind::kReachable, "r0", "r3", "",
           Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}};
}

void expect_same_semantics(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.fib_changes, b.fib_changes);
  EXPECT_EQ(a.reach_lost, b.reach_lost);
  EXPECT_EQ(a.reach_gained, b.reach_gained);
  EXPECT_EQ(a.loops_gained, b.loops_gained);
  EXPECT_EQ(a.blackholes_gained, b.blackholes_gained);
  EXPECT_EQ(a.invariants_broken, b.invariants_broken);
  EXPECT_EQ(a.invariants_fixed, b.invariants_fixed);
  EXPECT_EQ(a.broken_invariants, b.broken_invariants);
  EXPECT_EQ(a.semantically_empty, b.semantically_empty);
}

TEST(ScenarioRunner, DeterministicAcrossThreadCounts) {
  topo::Snapshot base = topo::make_fattree(4);
  std::vector<ScenarioSpec> specs = link_failure_sweep(base);
  auto more = random_change_sweep(base, 8, 0xD00D);
  for (auto& spec : more) specs.push_back(std::move(spec));

  ScenarioRunner runner(base, {{core::Invariant::Kind::kLoopFree, "", "", "",
                                Ipv4Prefix()}});
  ScenarioReport one = runner.run(specs, {.num_threads = 1});
  ScenarioReport eight = runner.run(specs, {.num_threads = 8});

  ASSERT_EQ(one.results.size(), specs.size());
  ASSERT_EQ(eight.results.size(), specs.size());
  EXPECT_EQ(one.ranking, eight.ranking);
  EXPECT_EQ(one.str(), eight.str());
  EXPECT_EQ(one.str(5), eight.str(5));
  for (size_t i = 0; i < specs.size(); ++i) {
    expect_same_semantics(one.results[i], eight.results[i]);
  }
}

TEST(ScenarioRunner, MatchesSequentialAdvance) {
  topo::Snapshot base = topo::make_ring(6);
  std::vector<ScenarioSpec> specs = link_failure_sweep(base);

  ScenarioRunner runner(base, ring_invariants());
  RunnerOptions options;
  options.num_threads = 4;
  options.keep_diffs = true;
  ScenarioReport report = runner.run(specs, options);

  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE(specs[i].name);
    core::DnaEngine engine(base);
    for (const core::Invariant& invariant : ring_invariants()) {
      engine.add_invariant(invariant);
    }
    core::NetworkDiff expected =
        engine.advance(specs[i].plan.apply(base), core::Mode::kDifferential);

    const ScenarioResult& got = report.results[i];
    ASSERT_TRUE(got.ok) << got.error;
    EXPECT_EQ(got.fib_changes, expected.fib_delta.total_changes());
    EXPECT_EQ(got.reach_lost, expected.reach_delta.lost.size());
    EXPECT_EQ(got.reach_gained, expected.reach_delta.gained.size());
    EXPECT_EQ(got.diff.reach_delta, expected.reach_delta);
    EXPECT_EQ(got.diff.invariant_flips, expected.invariant_flips);
    EXPECT_EQ(got.diff.link_changes, expected.link_changes);
    EXPECT_EQ(got.semantically_empty, expected.semantically_empty());
  }
}

TEST(ScenarioRunner, EmptyBatch) {
  ScenarioRunner runner(topo::make_line(3), {});
  ScenarioReport report = runner.run({});
  EXPECT_TRUE(report.results.empty());
  EXPECT_TRUE(report.ranking.empty());
  EXPECT_EQ(report.failures, 0u);
  EXPECT_NE(report.str().find("0 scenario(s)"), std::string::npos);
}

TEST(ScenarioRunner, FailingPlanDoesNotPoisonTheBatch) {
  topo::Snapshot base = topo::make_ring(5);
  std::vector<ScenarioSpec> specs = link_failure_sweep(base);
  const size_t good = specs.size();

  core::ChangePlan bad("throws on apply");
  bad.add([](topo::Snapshot) -> topo::Snapshot {
    throw Error("deliberate failure");
  });
  // Front-load the failure so workers hit it before the healthy scenarios.
  specs.emplace(specs.begin(), ScenarioSpec("bad plan", std::move(bad)));

  ScenarioRunner runner(base, ring_invariants());
  ScenarioReport report = runner.run(specs, {.num_threads = 2});

  ASSERT_EQ(report.results.size(), good + 1);
  EXPECT_EQ(report.failures, 1u);
  EXPECT_FALSE(report.results[0].ok);
  EXPECT_NE(report.results[0].error.find("deliberate failure"),
            std::string::npos);
  for (size_t i = 1; i < report.results.size(); ++i) {
    EXPECT_TRUE(report.results[i].ok) << report.results[i].error;
  }
  // Failures rank last and are reported.
  EXPECT_EQ(report.ranking.back(), 0u);
  EXPECT_NE(report.str().find("FAILED bad plan"), std::string::npos);
}

TEST(ScenarioRunner, RankingPutsIntentBreakageFirst) {
  // On a line, failing the middle link severs r0 from r3's host network;
  // an ACL that blocks an unused prefix churns nothing important.
  topo::Snapshot base = topo::make_line(4);
  std::vector<ScenarioSpec> specs;
  core::ChangePlan benign("noop cost change");
  benign.add([](topo::Snapshot s) { return s; });
  specs.emplace_back("noop", std::move(benign));
  specs.emplace_back("sever", core::ChangePlan::link_failure(1));

  ScenarioRunner runner(
      base, {{core::Invariant::Kind::kReachable, "r0", "r3", "",
              Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}});
  ScenarioReport report = runner.run(specs, {.num_threads = 2});

  ASSERT_EQ(report.ranking.size(), 2u);
  EXPECT_EQ(report.ranked(0).name, "sever");
  EXPECT_GE(report.ranked(0).invariants_broken, 1u);
  EXPECT_TRUE(report.ranked(1).semantically_empty);
}

}  // namespace
}  // namespace dna::scenario
