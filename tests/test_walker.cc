// Ground-truth cross-check: a brute-force per-packet walker that knows
// nothing about equivalence classes must agree with the EC-based verifier
// for randomly sampled concrete destination addresses.
#include <gtest/gtest.h>

#include <set>

#include "controlplane/engine.h"
#include "dataplane/acl_eval.h"
#include "dataplane/verifier.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::dp {
namespace {

using topo::Snapshot;

/// Follows one concrete packet through the network, multipath, collecting
/// the set of nodes that deliver it. Pure re-implementation from first
/// principles (LPM by linear scan, no ECs, no caches).
struct BruteWalker {
  const Snapshot& snap;
  const std::vector<cp::Fib>& fibs;
  Ipv4Addr dst;

  const cp::FibEntry* lpm(topo::NodeId node) const {
    const cp::FibEntry* best = nullptr;
    for (const cp::FibEntry& entry : fibs[node]) {
      if (!entry.prefix.contains(dst)) continue;
      if (!best || entry.prefix.length() > best->prefix.length()) {
        best = &entry;
      }
    }
    return best;
  }

  std::set<topo::NodeId> delivered_from(topo::NodeId src) const {
    std::set<topo::NodeId> delivered;
    std::set<topo::NodeId> visited;
    const Probe probe{probe_source_address(snap.configs[src]), dst};
    std::vector<topo::NodeId> stack{src};
    visited.insert(src);
    while (!stack.empty()) {
      topo::NodeId node = stack.back();
      stack.pop_back();
      const cp::FibEntry* entry = lpm(node);
      if (!entry) continue;
      if (entry->action == cp::FibEntry::Action::kLocal) {
        delivered.insert(node);
        continue;
      }
      for (const cp::Hop& hop : entry->hops) {
        const topo::Link& link = snap.topology.link(hop.link);
        if (!link.up) continue;
        const auto* out_if =
            snap.configs[node].find_interface(link.if_of(node));
        const auto* in_if =
            snap.configs[hop.next].find_interface(link.if_of(hop.next));
        if (!out_if || !in_if || !out_if->enabled || !in_if->enabled) continue;
        if (!acl_permits(snap.configs[node], out_if->acl_out, probe)) continue;
        if (!acl_permits(snap.configs[hop.next], in_if->acl_in, probe)) {
          continue;
        }
        if (visited.insert(hop.next).second) stack.push_back(hop.next);
      }
    }
    return delivered;
  }
};

class WalkerCrossCheck : public ::testing::TestWithParam<const char*> {};

TEST_P(WalkerCrossCheck, VerifierAgreesWithBruteForce) {
  std::string which = GetParam();
  Rng rng(0xA11 + which.size());
  Snapshot snap;
  if (which == "fattree") snap = topo::make_fattree(4);
  if (which == "ring") snap = topo::make_ring(8);
  if (which == "two_tier") snap = topo::make_two_tier_as(3, 2);
  if (which == "acl") {
    snap = topo::make_fattree(4);
    snap = topo::with_acl_block(snap, "sw3",
                                Ipv4Prefix(Ipv4Addr(172, 31, 3, 0), 24));
  }

  cp::ControlPlaneEngine engine(snap);
  Verifier verifier(&engine.snapshot(), &engine.fibs());
  BruteWalker walker{engine.snapshot(), engine.fibs(), Ipv4Addr()};

  // Sample addresses: EC representatives (exact coverage of every class)
  // plus uniform random addresses.
  std::vector<Ipv4Addr> samples;
  for (EcId ec = 0; ec < verifier.num_ecs(); ++ec) {
    samples.push_back(verifier.ec_index().representative(ec));
  }
  for (int i = 0; i < 64; ++i) {
    samples.push_back(Ipv4Addr(static_cast<uint32_t>(rng.next())));
  }

  const size_t n = snap.topology.num_nodes();
  for (const Ipv4Addr dst : samples) {
    walker.dst = dst;
    const EcId ec = verifier.ec_index().covering(Ipv4Prefix(dst, 32))[0];
    const EcReach& reach = verifier.reach(ec);
    for (topo::NodeId src = 0; src < n; ++src) {
      std::set<topo::NodeId> expected = walker.delivered_from(src);
      std::set<topo::NodeId> actual;
      for (uint32_t d : reach.delivered[src].to_indices()) actual.insert(d);
      ASSERT_EQ(actual, expected)
          << which << " dst=" << dst.str() << " src="
          << snap.topology.node_name(src);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, WalkerCrossCheck,
                         ::testing::Values("fattree", "ring", "two_tier",
                                           "acl"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dna::dp
