// Topology, snapshots, generators, and mutators.
#include <gtest/gtest.h>

#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/error.h"

namespace dna::topo {
namespace {

TEST(Topology, NodesAndLinks) {
  Topology topo;
  NodeId a = topo.add_node("a");
  NodeId b = topo.add_node("b");
  uint32_t link = topo.add_link(a, "eth0", b, "eth0");
  EXPECT_EQ(topo.num_nodes(), 2u);
  EXPECT_EQ(topo.num_links(), 1u);
  EXPECT_EQ(topo.node_id("b"), b);
  EXPECT_EQ(topo.link(link).peer_of(a), b);
  EXPECT_EQ(topo.link(link).if_of(b), "eth0");
  EXPECT_EQ(topo.link_at(a, "eth0"), 0);
  EXPECT_EQ(topo.link_at(a, "eth9"), -1);
  EXPECT_EQ(topo.links_of(a).size(), 1u);
}

TEST(Topology, RejectsDuplicates) {
  Topology topo;
  topo.add_node("a");
  EXPECT_THROW(topo.add_node("a"), Error);
  NodeId a = topo.node_id("a");
  NodeId b = topo.add_node("b");
  topo.add_link(a, "eth0", b, "eth0");
  EXPECT_THROW(topo.add_link(a, "eth0", b, "eth1"), Error);
}

TEST(Topology, DiffLinkStates) {
  Snapshot snap = make_ring(4);
  Snapshot down = with_link_state(snap, 1, false);
  auto changes = diff_link_states(snap.topology, down.topology);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].link, 1u);
  EXPECT_FALSE(changes[0].now_up);
}

class GeneratorValidity : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratorValidity, ProducesValidSnapshots) {
  std::string which = GetParam();
  Rng rng(1);
  Snapshot snap;
  if (which == "line") snap = make_line(5);
  if (which == "ring") snap = make_ring(6);
  if (which == "grid") snap = make_grid(3, 4);
  if (which == "star") snap = make_star(5);
  if (which == "random") snap = make_random(12, 20, rng);
  if (which == "fattree") snap = make_fattree(4);
  if (which == "two_tier") snap = make_two_tier_as(4, 2);
  ASSERT_GT(snap.topology.num_nodes(), 0u);
  EXPECT_NO_THROW(snap.validate());
}

INSTANTIATE_TEST_SUITE_P(All, GeneratorValidity,
                         ::testing::Values("line", "ring", "grid", "star",
                                           "random", "fattree", "two_tier"),
                         [](const auto& info) { return info.param; });

TEST(Generators, FattreeShape) {
  Snapshot snap = make_fattree(4);
  // k=4: 8 edge + 8 agg + 4 core = 20 switches.
  EXPECT_EQ(snap.topology.num_nodes(), 20u);
  // Links: 8 edge x 2 agg + 8 agg x 2 core = 16 + 16 = 32.
  EXPECT_EQ(snap.topology.num_links(), 32u);
  // Every node runs OSPF.
  for (const auto& cfg : snap.configs) EXPECT_TRUE(cfg.ospf.enabled);
}

TEST(Generators, TwoTierBgpSessionsConfigured) {
  Snapshot snap = make_two_tier_as(3, 2);
  EXPECT_EQ(snap.topology.num_nodes(), 5u);
  EXPECT_EQ(snap.topology.num_links(), 6u);
  for (const auto& cfg : snap.configs) {
    EXPECT_TRUE(cfg.bgp.enabled);
    EXPECT_FALSE(cfg.ospf.enabled);
  }
  // Edge ASes are distinct; cores share one.
  EXPECT_NE(snap.config_of("as0").bgp.as_number,
            snap.config_of("as1").bgp.as_number);
  EXPECT_EQ(snap.config_of("as3").bgp.as_number,
            snap.config_of("as4").bgp.as_number);
  // Every link has symmetric neighbor statements.
  EXPECT_EQ(snap.config_of("as0").bgp.neighbors.size(), 2u);
}

TEST(Generators, RandomIsDeterministicPerSeed) {
  Rng rng_a(99), rng_b(99);
  Snapshot a = make_random(10, 15, rng_a);
  Snapshot b = make_random(10, 15, rng_b);
  EXPECT_EQ(a, b);
}

TEST(Mutators, LinkCostChangesBothEnds) {
  Snapshot snap = make_line(3);
  Snapshot changed = with_link_cost(snap, 0, 42);
  const Link& link = changed.topology.link(0);
  EXPECT_EQ(changed.configs[link.a].find_interface(link.a_if)->ospf_cost, 42);
  EXPECT_EQ(changed.configs[link.b].find_interface(link.b_if)->ospf_cost, 42);
  EXPECT_NE(snap, changed);
}

TEST(Mutators, AclBlockInstallsAndBinds) {
  Snapshot snap = make_line(3);
  Ipv4Prefix dst(Ipv4Addr(172, 31, 1, 0), 24);
  Snapshot changed = with_acl_block(snap, "r1", dst);
  const auto& cfg = changed.config_of("r1");
  ASSERT_NE(cfg.find_acl("BLOCK"), nullptr);
  for (const auto& iface : cfg.interfaces) {
    EXPECT_EQ(iface.acl_in, "BLOCK");
  }
  // Idempotent re-application replaces rather than duplicates.
  Snapshot again = with_acl_block(changed, "r1", dst);
  EXPECT_EQ(again.config_of("r1").acls.size(), 1u);
}

TEST(Mutators, BgpAnnounceWithdrawRoundTrip) {
  Snapshot snap = make_two_tier_as(2, 1);
  Ipv4Prefix p(Ipv4Addr(192, 168, 7, 0), 24);
  Snapshot announced = with_bgp_announce(snap, "as0", p);
  const auto& networks = announced.config_of("as0").bgp.networks;
  EXPECT_NE(std::find(networks.begin(), networks.end(), p), networks.end());
  Snapshot withdrawn = with_bgp_withdraw(announced, "as0", p);
  EXPECT_EQ(withdrawn, snap);
}

TEST(Mutators, RandomChangeAlwaysValid) {
  Snapshot snap = make_fattree(4);
  Rng rng(5);
  for (int i = 0; i < 30; ++i) {
    RandomChange change = random_change(snap, rng);
    EXPECT_NO_THROW(change.snapshot.validate()) << change.description;
    EXPECT_FALSE(change.description.empty());
    snap = std::move(change.snapshot);
  }
}

TEST(Snapshot, ValidateCatchesMismatchedSubnets) {
  Snapshot snap = make_line(2);
  const Link& link = snap.topology.link(0);
  snap.configs[link.a].find_interface(link.a_if)->address =
      Ipv4Addr(10, 99, 0, 1);
  EXPECT_THROW(snap.validate(), Error);
}

TEST(Snapshot, FindAddressOwner) {
  Snapshot snap = make_line(3);
  const auto& cfg = snap.config_of("r1");
  EXPECT_EQ(find_address_owner(snap, cfg.interfaces[0].address),
            snap.topology.node_id("r1"));
  EXPECT_EQ(find_address_owner(snap, Ipv4Addr(9, 9, 9, 9)), kNoNode);
}

}  // namespace
}  // namespace dna::topo
