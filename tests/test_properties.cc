// Property queries and invariants: reachability, isolation, loop/blackhole
// freedom, and waypoint enforcement.
#include <gtest/gtest.h>

#include "controlplane/engine.h"
#include "core/invariants.h"
#include "topo/generators.h"
#include "topo/mutators.h"

namespace dna::core {
namespace {

using topo::Snapshot;

struct Fixture {
  Snapshot snap;
  std::unique_ptr<cp::ControlPlaneEngine> engine;
  std::unique_ptr<dp::Verifier> verifier;

  explicit Fixture(Snapshot s) : snap(std::move(s)) {
    engine = std::make_unique<cp::ControlPlaneEngine>(snap);
    verifier =
        std::make_unique<dp::Verifier>(&engine->snapshot(), &engine->fibs());
  }
  const topo::Snapshot& current() const { return engine->snapshot(); }
};

Ipv4Prefix host(int i) {
  return Ipv4Prefix(Ipv4Addr(172, 31, static_cast<uint8_t>(i), 0), 24);
}

TEST(Properties, ReachAndIsolationOnLine) {
  Fixture fx(topo::make_line(4));  // host(0) at r0, host(1) at r3
  auto id = [&](const char* name) {
    return fx.current().topology.node_id(name);
  };
  EXPECT_TRUE(dp::all_reach(*fx.verifier, id("r0"), id("r3"), host(1)));
  EXPECT_TRUE(dp::any_reach(*fx.verifier, id("r0"), id("r3"), host(1)));
  EXPECT_FALSE(dp::isolated(*fx.verifier, id("r0"), id("r3"), host(1)));
  // r0 does not deliver host(1) locally.
  EXPECT_FALSE(dp::any_reach(*fx.verifier, id("r3"), id("r0"), host(1)));
  EXPECT_TRUE(dp::loop_free(*fx.verifier, Ipv4Prefix()));
  EXPECT_TRUE(dp::blackhole_free(*fx.verifier, id("r0"), host(1)));
}

TEST(Properties, WaypointOnLineHoldsAndBreaksWithDetour) {
  Fixture fx(topo::make_line(4));
  auto id = [&](const char* name) {
    return fx.current().topology.node_id(name);
  };
  // All r0 -> r3 traffic passes r1 and r2 on a line.
  EXPECT_TRUE(dp::waypoint_enforced(*fx.verifier, fx.current(), id("r0"),
                                    id("r3"), id("r1"), host(1)));
  EXPECT_TRUE(dp::waypoint_enforced(*fx.verifier, fx.current(), id("r0"),
                                    id("r3"), id("r2"), host(1)));
}

TEST(Properties, WaypointNotEnforcedWithEcmpDetour) {
  Fixture fx(topo::make_ring(4));  // r0 -> r2 via r1 or r3
  auto id = [&](const char* name) {
    return fx.current().topology.node_id(name);
  };
  EXPECT_FALSE(dp::waypoint_enforced(*fx.verifier, fx.current(), id("r0"),
                                     id("r2"), id("r1"), host(1)));
}

TEST(Invariants, DescribeAndEvaluate) {
  Fixture fx(topo::make_line(3));
  Invariant reach{Invariant::Kind::kReachable, "r0", "r2", "", host(1)};
  EXPECT_NE(reach.describe().find("r0"), std::string::npos);
  EXPECT_TRUE(eval_invariant(reach, fx.current(), *fx.verifier));

  Invariant iso{Invariant::Kind::kIsolated, "r0", "r2", "", host(1)};
  EXPECT_FALSE(eval_invariant(iso, fx.current(), *fx.verifier));

  Invariant loops{Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()};
  EXPECT_TRUE(eval_invariant(loops, fx.current(), *fx.verifier));

  Invariant bh{Invariant::Kind::kBlackholeFree, "r0", "", "", host(1)};
  EXPECT_TRUE(eval_invariant(bh, fx.current(), *fx.verifier));

  Invariant way{Invariant::Kind::kWaypoint, "r0", "r2", "r1", host(1)};
  EXPECT_TRUE(eval_invariant(way, fx.current(), *fx.verifier));

  // Unknown node names fail closed.
  Invariant bogus{Invariant::Kind::kReachable, "nope", "r2", "", host(1)};
  EXPECT_FALSE(eval_invariant(bogus, fx.current(), *fx.verifier));
}

TEST(Invariants, AclBreaksReachability) {
  Fixture fx(topo::with_acl_block(topo::make_line(3), "r1", host(1)));
  auto id = [&](const char* name) {
    return fx.current().topology.node_id(name);
  };
  EXPECT_FALSE(dp::any_reach(*fx.verifier, id("r0"), id("r2"), host(1)));
  EXPECT_FALSE(dp::blackhole_free(*fx.verifier, id("r0"), host(1)));
}

}  // namespace
}  // namespace dna::core
