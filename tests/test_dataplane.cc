// Data-plane primitives: LPM, equivalence classes, ACL evaluation, and
// reachability semantics (delivery, ECMP, loops, blackholes).
#include <gtest/gtest.h>

#include "controlplane/engine.h"
#include "dataplane/acl_eval.h"
#include "dataplane/ectrie.h"
#include "dataplane/reach.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::dp {
namespace {

using topo::Snapshot;

TEST(Lpm, PrefersLongestMatch) {
  cp::Fib fib = {
      {Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), cp::FibEntry::Action::kForward,
       cp::Protocol::kStatic, 0, {{1, 0}}},
      {Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16), cp::FibEntry::Action::kForward,
       cp::Protocol::kStatic, 0, {{2, 1}}},
      {Ipv4Prefix(), cp::FibEntry::Action::kForward, cp::Protocol::kStatic, 0,
       {{3, 2}}},
  };
  std::sort(fib.begin(), fib.end());
  LpmTable lpm(fib);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 1, 2, 3))->hops[0].next, 2u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(10, 2, 0, 0))->hops[0].next, 1u);
  EXPECT_EQ(lpm.lookup(Ipv4Addr(8, 8, 8, 8))->hops[0].next, 3u);
}

TEST(Lpm, MatchesLinearScanOnRandomTables) {
  Rng rng(0x17a);
  cp::Fib fib;
  for (int i = 0; i < 60; ++i) {
    Ipv4Prefix prefix(
        Ipv4Addr(static_cast<uint32_t>(rng.next())),
        static_cast<uint8_t>(rng.range(8, 30)));
    fib.push_back({prefix, cp::FibEntry::Action::kForward,
                   cp::Protocol::kStatic, 0,
                   {{static_cast<topo::NodeId>(i), 0}}});
  }
  std::sort(fib.begin(), fib.end());
  fib.erase(std::unique(fib.begin(), fib.end(),
                        [](const auto& a, const auto& b) {
                          return a.prefix == b.prefix;
                        }),
            fib.end());
  LpmTable lpm(fib);
  for (int i = 0; i < 500; ++i) {
    Ipv4Addr addr(static_cast<uint32_t>(rng.next()));
    const cp::FibEntry* expected = nullptr;
    for (const auto& entry : fib) {
      if (!entry.prefix.contains(addr)) continue;
      if (!expected || entry.prefix.length() > expected->prefix.length()) {
        expected = &entry;
      }
    }
    const cp::FibEntry* actual = lpm.lookup(addr);
    if (expected == nullptr) {
      EXPECT_EQ(actual, nullptr);
    } else {
      ASSERT_NE(actual, nullptr);
      EXPECT_EQ(actual->prefix, expected->prefix);
    }
  }
}

TEST(EcIndex, StartsWithOneAtomAndSplits) {
  EcIndex index;
  EXPECT_EQ(index.num_atoms(), 1u);
  auto created = index.insert_prefix(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8));
  EXPECT_EQ(created.size(), 2u);  // both boundaries are fresh
  EXPECT_EQ(index.num_atoms(), 3u);
  // Re-inserting is a no-op.
  EXPECT_TRUE(index.insert_prefix(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8)).empty());
}

TEST(EcIndex, AtomsPartitionTheSpace) {
  EcIndex index;
  Rng rng(0xec);
  for (int i = 0; i < 50; ++i) {
    Ipv4Prefix p(Ipv4Addr(static_cast<uint32_t>(rng.next())),
                 static_cast<uint8_t>(rng.range(4, 32)));
    (void)index.insert_prefix(p);
  }
  // Ranges must tile [0, 2^32) without gaps or overlaps.
  std::vector<EcIndex::Range> ranges;
  for (EcId ec = 0; ec < index.num_atoms(); ++ec) {
    ranges.push_back(index.range(ec));
  }
  std::sort(ranges.begin(), ranges.end(),
            [](const auto& a, const auto& b) { return a.lo < b.lo; });
  EXPECT_EQ(ranges.front().lo, 0u);
  EXPECT_EQ(ranges.back().hi, ~0u);
  for (size_t i = 0; i + 1 < ranges.size(); ++i) {
    ASSERT_EQ(static_cast<uint64_t>(ranges[i].hi) + 1, ranges[i + 1].lo);
  }
}

TEST(EcIndex, CoveringReturnsOverlaps) {
  EcIndex index;
  (void)index.insert_prefix(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8));
  (void)index.insert_prefix(Ipv4Prefix(Ipv4Addr(10, 128, 0, 0), 9));
  auto ecs = index.covering(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8));
  EXPECT_EQ(ecs.size(), 2u);  // the /8 is split by the /9
  auto all = index.covering(Ipv4Prefix());
  EXPECT_EQ(all.size(), index.num_atoms());
}

TEST(Acl, FirstMatchWithImplicitDeny) {
  config::NodeConfig cfg;
  config::AclConfig acl;
  acl.name = "A";
  acl.rules.push_back({config::FilterAction::kDeny,
                       Ipv4Prefix(Ipv4Addr(192, 168, 0, 0), 16),
                       Ipv4Prefix(), -1, -1, -1});
  acl.rules.push_back({config::FilterAction::kPermit, Ipv4Prefix(),
                       Ipv4Prefix(Ipv4Addr(172, 31, 0, 0), 16), -1, -1, -1});
  cfg.acls.push_back(acl);

  // Denied source.
  EXPECT_FALSE(acl_permits(cfg, "A",
                           {Ipv4Addr(192, 168, 1, 1), Ipv4Addr(172, 31, 1, 1)}));
  // Permitted dst from other source.
  EXPECT_TRUE(acl_permits(cfg, "A",
                          {Ipv4Addr(10, 0, 0, 1), Ipv4Addr(172, 31, 1, 1)}));
  // Implicit deny: dst outside the permit rule.
  EXPECT_FALSE(acl_permits(cfg, "A",
                           {Ipv4Addr(10, 0, 0, 1), Ipv4Addr(8, 8, 8, 8)}));
  // No ACL bound or dangling name: permit.
  EXPECT_TRUE(acl_permits(cfg, "", {Ipv4Addr(), Ipv4Addr()}));
  EXPECT_TRUE(acl_permits(cfg, "MISSING", {Ipv4Addr(), Ipv4Addr()}));
}

TEST(Acl, L4RulesNeverMatchProbes) {
  config::NodeConfig cfg;
  config::AclConfig acl;
  acl.name = "A";
  acl.rules.push_back({config::FilterAction::kDeny, Ipv4Prefix(), Ipv4Prefix(),
                       6, -1, -1});  // deny all tcp
  acl.rules.push_back(
      {config::FilterAction::kPermit, Ipv4Prefix(), Ipv4Prefix(), -1, -1, -1});
  cfg.acls.push_back(acl);
  // The probe carries wildcard L4 fields, so only the permit matches.
  EXPECT_TRUE(acl_permits(cfg, "A", {Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2)}));
}

// ---------------------------------------------------------------------------
// Reachability semantics on small networks.
// ---------------------------------------------------------------------------

struct Plane {
  Snapshot snap;
  std::vector<cp::Fib> fibs;
  std::vector<LpmTable> lpm;

  explicit Plane(Snapshot s) : snap(std::move(s)) {
    fibs = cp::ControlPlaneEngine::compute_fibs(snap);
    lpm.resize(fibs.size());
    for (size_t i = 0; i < fibs.size(); ++i) lpm[i].rebuild(fibs[i]);
  }

  EcReach reach_for(Ipv4Addr dst) const {
    EcGraph graph = build_ec_graph(snap, lpm, dst);
    return compute_reach(snap, graph, dst);
  }
};

TEST(Reach, LineDeliversEndToEnd) {
  Plane plane(topo::make_line(3));
  Ipv4Addr host_b(172, 31, 1, 5);  // attached to r2
  EcReach reach = plane.reach_for(host_b);
  const auto r0 = plane.snap.topology.node_id("r0");
  const auto r2 = plane.snap.topology.node_id("r2");
  EXPECT_TRUE(reach.delivered[r0].test(r2));
  EXPECT_FALSE(reach.loop.test(r0));
  EXPECT_FALSE(reach.blackhole.test(r0));
}

TEST(Reach, MissingRouteIsBlackhole) {
  Plane plane(topo::make_line(3));
  EcReach reach = plane.reach_for(Ipv4Addr(8, 8, 8, 8));  // no route anywhere
  const auto r0 = plane.snap.topology.node_id("r0");
  EXPECT_TRUE(reach.blackhole.test(r0));
  EXPECT_FALSE(reach.delivered[r0].any());
}

TEST(Reach, StaticRoutePairCreatesLoop) {
  // r0 and r1 point a bogus prefix at each other: forwarding loop.
  Snapshot snap = topo::make_line(2);
  const topo::Link& link = snap.topology.link(0);
  Ipv4Addr a_addr = snap.configs[link.a].find_interface(link.a_if)->address;
  Ipv4Addr b_addr = snap.configs[link.b].find_interface(link.b_if)->address;
  Ipv4Prefix bogus(Ipv4Addr(198, 18, 0, 0), 15);
  snap = topo::with_static_route(snap, "r0", bogus, b_addr);
  snap = topo::with_static_route(snap, "r1", bogus, a_addr);
  Plane plane(std::move(snap));
  EcReach reach = plane.reach_for(Ipv4Addr(198, 18, 1, 1));
  EXPECT_TRUE(reach.loop.test(plane.snap.topology.node_id("r0")));
  EXPECT_TRUE(reach.loop.test(plane.snap.topology.node_id("r1")));
}

TEST(Reach, AclInBlocksDelivery) {
  Snapshot snap = topo::make_line(3);
  snap = topo::with_acl_block(snap, "r1", Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24));
  Plane plane(std::move(snap));
  EcReach reach = plane.reach_for(Ipv4Addr(172, 31, 1, 5));
  const auto r0 = plane.snap.topology.node_id("r0");
  const auto r2 = plane.snap.topology.node_id("r2");
  // r1's inbound ACL drops the probe on its way from r0.
  EXPECT_FALSE(reach.delivered[r0].test(r2));
  EXPECT_TRUE(reach.blackhole.test(r0));
  // r2 delivers its own subnet locally regardless.
  EXPECT_TRUE(reach.delivered[r2].test(r2));
}

TEST(Reach, EcmpExploresAllPaths) {
  Plane plane(topo::make_ring(4));
  // r0 -> r2 has two equal paths; delivery must hold and no loop flagged.
  Ipv4Addr host(172, 31, 1, 9);  // attached at r2 by the generator
  EcReach reach = plane.reach_for(host);
  const auto r0 = plane.snap.topology.node_id("r0");
  const auto r2 = plane.snap.topology.node_id("r2");
  EXPECT_TRUE(reach.delivered[r0].test(r2));
  EXPECT_FALSE(reach.loop.test(r0));
}

}  // namespace
}  // namespace dna::dp
