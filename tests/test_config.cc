// Configuration model: parser semantics, printer round-trips, and the
// structural differ's event classification.
#include <gtest/gtest.h>

#include "config/diff.h"
#include "config/parser.h"
#include "config/printer.h"
#include "topo/generators.h"
#include "util/error.h"
#include "util/rng.h"

namespace dna::config {
namespace {

const char* kFullConfig = R"(
node r1
  interface eth0
    address 10.0.1.1/24
    cost 5
    acl-in GUARD
  interface lo
    address 172.16.0.1/32
    passive
  interface eth1
    address 10.0.2.1/30
    shutdown
  static 0.0.0.0/0 via 10.0.1.2
  ospf
    network 10.0.0.0/8
    redistribute static
  bgp 65001
    router-id 1.1.1.1
    network 172.31.1.0/24
    redistribute connected
    neighbor 10.0.1.2 remote-as 65002
      import-map IMP
      export-map EXP
  acl GUARD
    deny src 10.9.0.0/16 dst 0.0.0.0/0
    permit src 0.0.0.0/0 dst 0.0.0.0/0 proto 6 port 80 443
    permit src 0.0.0.0/0 dst 0.0.0.0/0
  prefix-list PL
    permit 172.16.0.0/12 le 24
    deny 0.0.0.0/0 le 32
  route-map IMP
    clause 10 permit
      match prefix-list PL
      set local-pref 200
      set community 100 200
      prepend 2
    clause 20 deny
)";

TEST(Parser, ParsesFullConfig) {
  auto nodes = parse_configs(kFullConfig);
  ASSERT_EQ(nodes.size(), 1u);
  const NodeConfig& r1 = nodes[0];
  EXPECT_EQ(r1.name, "r1");
  ASSERT_EQ(r1.interfaces.size(), 3u);
  EXPECT_EQ(r1.interfaces[0].address.str(), "10.0.1.1");
  EXPECT_EQ(r1.interfaces[0].prefix_len, 24);
  EXPECT_EQ(r1.interfaces[0].ospf_cost, 5);
  EXPECT_EQ(r1.interfaces[0].acl_in, "GUARD");
  EXPECT_TRUE(r1.interfaces[1].ospf_passive);
  EXPECT_FALSE(r1.interfaces[2].enabled);

  ASSERT_EQ(r1.static_routes.size(), 1u);
  EXPECT_EQ(r1.static_routes[0].prefix.str(), "0.0.0.0/0");

  EXPECT_TRUE(r1.ospf.enabled);
  EXPECT_TRUE(r1.ospf.redistribute_static);
  EXPECT_FALSE(r1.ospf.redistribute_connected);

  EXPECT_TRUE(r1.bgp.enabled);
  EXPECT_EQ(r1.bgp.as_number, 65001u);
  ASSERT_EQ(r1.bgp.neighbors.size(), 1u);
  EXPECT_EQ(r1.bgp.neighbors[0].remote_as, 65002u);
  EXPECT_EQ(r1.bgp.neighbors[0].import_map, "IMP");

  ASSERT_EQ(r1.acls.size(), 1u);
  ASSERT_EQ(r1.acls[0].rules.size(), 3u);
  EXPECT_EQ(r1.acls[0].rules[0].action, FilterAction::kDeny);
  EXPECT_EQ(r1.acls[0].rules[1].proto, 6);
  EXPECT_EQ(r1.acls[0].rules[1].dst_port_lo, 80);
  EXPECT_EQ(r1.acls[0].rules[1].dst_port_hi, 443);

  ASSERT_EQ(r1.route_maps.size(), 1u);
  ASSERT_EQ(r1.route_maps[0].clauses.size(), 2u);
  const RouteMapClause& clause = r1.route_maps[0].clauses[0];
  EXPECT_EQ(clause.match_prefix_list, "PL");
  EXPECT_EQ(clause.set_local_pref, 200);
  EXPECT_EQ(clause.set_communities, (std::vector<uint32_t>{100, 200}));
  EXPECT_EQ(clause.prepend_count, 2);
}

TEST(Parser, RoundTripsThroughPrinter) {
  auto nodes = parse_configs(kFullConfig);
  std::string printed = print_configs(nodes);
  auto reparsed = parse_configs(printed);
  EXPECT_EQ(nodes, reparsed) << printed;
}

TEST(Parser, MultipleNodes) {
  auto nodes = parse_configs(R"(
    node a
      interface eth0
        address 10.0.0.1/30
    node b
      interface eth0
        address 10.0.0.2/30
  )");
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0].name, "a");
  EXPECT_EQ(nodes[1].name, "b");
}

TEST(Parser, CommentsAndBlankLines) {
  auto nodes = parse_configs(R"(
    # leading comment
    node a            // trailing comment

      interface eth0  # another
        address 10.0.0.1/24
  )");
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0].interfaces.size(), 1u);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  try {
    parse_configs("node a\n  interface eth0\n    address notanip\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
  }
}

TEST(Parser, RejectsDirectiveBeforeNode) {
  EXPECT_THROW(parse_configs("interface eth0\n"), ParseError);
}

TEST(Parser, RejectsBadStatic) {
  EXPECT_THROW(parse_configs("node a\n  static 10.0.0.0/8 10.0.0.1\n"),
               ParseError);
}

TEST(PrefixList, MatchSemantics) {
  PrefixListEntry exact{FilterAction::kPermit,
                        Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), -1, -1};
  EXPECT_TRUE(exact.matches(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8)));
  EXPECT_FALSE(exact.matches(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16)));

  PrefixListEntry le24{FilterAction::kPermit,
                       Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), -1, 24};
  EXPECT_TRUE(le24.matches(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16)));
  EXPECT_TRUE(le24.matches(Ipv4Prefix(Ipv4Addr(10, 1, 2, 0), 24)));
  EXPECT_FALSE(le24.matches(Ipv4Prefix(Ipv4Addr(10, 1, 2, 0), 25)));

  PrefixListEntry ge16le24{FilterAction::kPermit,
                           Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8), 16, 24};
  EXPECT_FALSE(ge16le24.matches(Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8)));
  EXPECT_TRUE(ge16le24.matches(Ipv4Prefix(Ipv4Addr(10, 1, 0, 0), 16)));
}

TEST(Diff, EmptyForIdenticalConfigs) {
  auto nodes = parse_configs(kFullConfig);
  EXPECT_TRUE(diff_configs(nodes, nodes).empty());
}

TEST(Diff, DetectsInterfaceModification) {
  auto before = parse_configs(kFullConfig);
  auto after = before;
  after[0].find_interface("eth0")->ospf_cost = 99;
  auto changes = diff_configs(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kInterfaceModified);
  EXPECT_EQ(changes[0].detail, "eth0");
}

TEST(Diff, DetectsAclEditWithoutTouchingAnythingElse) {
  auto before = parse_configs(kFullConfig);
  auto after = before;
  after[0].acls[0].rules.pop_back();
  auto changes = diff_configs(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kAclChanged);
  EXPECT_EQ(changes[0].detail, "GUARD");
}

TEST(Diff, DetectsBgpNeighborChanges) {
  auto before = parse_configs(kFullConfig);
  auto after = before;
  after[0].bgp.neighbors[0].import_map = "OTHER";
  auto changes = diff_configs(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kBgpNeighborModified);

  after = before;
  after[0].bgp.neighbors.push_back(
      {Ipv4Addr(10, 0, 9, 9), 65009, "", ""});
  changes = diff_configs(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kBgpNeighborAdded);

  after = before;
  after[0].bgp.neighbors.clear();
  changes = diff_configs(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kBgpNeighborRemoved);
}

TEST(Diff, DetectsNodeAddRemove) {
  auto before = parse_configs(kFullConfig);
  auto changes = diff_configs(before, {});
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kNodeRemoved);

  changes = diff_configs({}, before);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kNodeAdded);
}

class GeneratedRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(GeneratedRoundTrip, PrinterParserIsIdentity) {
  std::string which = GetParam();
  dna::Rng rng(3);
  dna::topo::Snapshot snap;
  if (which == "fattree") snap = dna::topo::make_fattree(4);
  if (which == "two_tier") snap = dna::topo::make_two_tier_as(4, 2);
  if (which == "random") snap = dna::topo::make_random(10, 16, rng);
  std::string text = print_configs(snap.configs);
  EXPECT_EQ(parse_configs(text), snap.configs);
}

INSTANTIATE_TEST_SUITE_P(Generators, GeneratedRoundTrip,
                         ::testing::Values("fattree", "two_tier", "random"),
                         [](const auto& info) { return info.param; });

TEST(Parser, GarbageInputThrowsButNeverCrashes) {
  dna::Rng rng(0xBAD);
  const std::string alphabet =
      "node interface address 10.0.0.1/24 acl permit deny \n\t()#/";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const size_t len = rng.below(120);
    for (size_t i = 0; i < len; ++i) {
      text += alphabet[rng.below(alphabet.size())];
    }
    try {
      auto nodes = parse_configs(text);
      (void)nodes;  // accepted inputs are fine too
    } catch (const dna::Error&) {
      // Expected for malformed inputs; anything else would escape the test.
    }
  }
}

TEST(Diff, InterfaceAclBindingIsDistinguished) {
  auto before = parse_configs(kFullConfig);
  auto after = before;
  after[0].find_interface("eth0")->acl_in = "OTHER";
  auto changes = diff_configs(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kInterfaceAclBinding);

  // Mixed edits (binding + cost) classify as a full modification.
  after[0].find_interface("eth0")->ospf_cost = 42;
  changes = diff_configs(before, after);
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_EQ(changes[0].kind, ChangeKind::kInterfaceModified);
}

TEST(Diff, DetectsStaticOspfProcessChanges) {
  auto before = parse_configs(kFullConfig);
  auto after = before;
  after[0].static_routes.clear();
  after[0].ospf.networks.push_back(Ipv4Prefix(Ipv4Addr(172, 31, 0, 0), 16));
  after[0].bgp.networks.clear();
  auto changes = diff_configs(before, after);
  ASSERT_EQ(changes.size(), 3u);
  std::set<ChangeKind> kinds;
  for (const auto& change : changes) kinds.insert(change.kind);
  EXPECT_TRUE(kinds.count(ChangeKind::kStaticRoutesChanged));
  EXPECT_TRUE(kinds.count(ChangeKind::kOspfChanged));
  EXPECT_TRUE(kinds.count(ChangeKind::kBgpProcessChanged));
}

}  // namespace
}  // namespace dna::config
