// Incremental maintenance (counting + DRed) must agree with from-scratch
// re-evaluation on every relation after every batch — checked on hand-made
// deletion scenarios and with randomized churn over three program shapes,
// for both the mixed strategy and the force-DRed ablation.
#include <gtest/gtest.h>

#include "datalog/engine.h"
#include "util/rng.h"

namespace dna::datalog {
namespace {

const char* kTcProgram = R"(
  .decl edge(2) input
  .decl reach(2)
  reach(X, Y) :- edge(X, Y).
  reach(X, Z) :- reach(X, Y), edge(Y, Z).
)";

const char* kNegationProgram = R"(
  .decl node(1) input
  .decl edge(2) input
  .decl reach(2)
  .decl island(2)
  reach(X, Y) :- edge(X, Y).
  reach(X, Z) :- reach(X, Y), edge(Y, Z).
  island(X, Y) :- node(X), node(Y), !reach(X, Y), X != Y.
)";

const char* kNonRecursiveProgram = R"(
  .decl a(2) input
  .decl b(2) input
  .decl joined(2)
  .decl missing(2)
  joined(X, Z) :- a(X, Y), b(Y, Z).
  missing(X, Y) :- a(X, Y), !b(X, Y).
)";

/// All IDB relations of `engine` must match `reference` (same program,
/// re-evaluated from scratch via the kRecompute strategy).
void expect_same_idb(DatalogEngine& engine, DatalogEngine& reference,
                     const std::string& context) {
  const Program& program = engine.program();
  for (size_t rel = 0; rel < program.relations().size(); ++rel) {
    SCOPED_TRACE(context + " relation=" + program.relations()[rel].name);
    EXPECT_EQ(engine.rows(static_cast<int>(rel)),
              reference.rows(static_cast<int>(rel)));
  }
}

TEST(Incremental, InsertThenDeleteEdgeTc) {
  DatalogEngine eng(kTcProgram);
  eng.insert("edge", {1, 2});
  eng.insert("edge", {2, 3});
  eng.insert("edge", {3, 4});
  eng.flush();
  EXPECT_TRUE(eng.contains("reach", {1, 4}));

  eng.remove("edge", {2, 3});
  eng.flush();
  EXPECT_FALSE(eng.contains("reach", {1, 4}));
  EXPECT_FALSE(eng.contains("reach", {1, 3}));
  EXPECT_TRUE(eng.contains("reach", {1, 2}));
  EXPECT_TRUE(eng.contains("reach", {3, 4}));
}

TEST(Incremental, DeletionWithAlternativePathRederives) {
  DatalogEngine eng(kTcProgram);
  // Two disjoint paths 1->4.
  eng.insert("edge", {1, 2});
  eng.insert("edge", {2, 4});
  eng.insert("edge", {1, 3});
  eng.insert("edge", {3, 4});
  eng.flush();
  EXPECT_TRUE(eng.contains("reach", {1, 4}));

  eng.remove("edge", {2, 4});
  eng.flush();
  // DRed over-deletes (1,4) and must re-derive it through 3.
  EXPECT_TRUE(eng.contains("reach", {1, 4}));
  EXPECT_FALSE(eng.contains("reach", {2, 4}));
}

TEST(Incremental, DeletionInCycle) {
  DatalogEngine eng(kTcProgram);
  eng.insert("edge", {1, 2});
  eng.insert("edge", {2, 3});
  eng.insert("edge", {3, 1});
  eng.flush();
  EXPECT_TRUE(eng.contains("reach", {1, 1}));

  // Breaking the cycle removes all self-reachability — the classic case
  // where counting is unsound (tuples "support themselves") and DRed works.
  eng.remove("edge", {3, 1});
  eng.flush();
  EXPECT_FALSE(eng.contains("reach", {1, 1}));
  EXPECT_FALSE(eng.contains("reach", {3, 2}));
  EXPECT_TRUE(eng.contains("reach", {1, 3}));
}

TEST(Incremental, ChangesReportAddedAndRemoved) {
  DatalogEngine eng(kTcProgram);
  eng.insert("edge", {1, 2});
  eng.flush();
  eng.insert("edge", {2, 3});
  eng.flush();
  const auto& changes = eng.changes("reach");
  // (2,3) and (1,3) appeared.
  EXPECT_EQ(changes.added.size(), 2u);
  EXPECT_TRUE(changes.removed.empty());

  eng.remove("edge", {2, 3});
  eng.flush();
  EXPECT_EQ(eng.changes("reach").removed.size(), 2u);
}

TEST(Incremental, NegationReactsToAdditionsAndDeletions) {
  DatalogEngine eng(kNonRecursiveProgram);
  eng.insert("a", {1, 2});
  eng.flush();
  EXPECT_TRUE(eng.contains("missing", {1, 2}));

  // Adding b(1,2) retracts missing(1,2) through the negated literal.
  eng.insert("b", {1, 2});
  eng.flush();
  EXPECT_FALSE(eng.contains("missing", {1, 2}));

  eng.remove("b", {1, 2});
  eng.flush();
  EXPECT_TRUE(eng.contains("missing", {1, 2}));
}

struct ChurnCase {
  const char* name;
  const char* program;
  bool has_nodes;       // program uses a unary node() relation
  const char* rel1;     // primary binary EDB relation
  const char* rel2;     // optional second binary EDB relation
};

class IncrementalChurn
    : public ::testing::TestWithParam<std::tuple<ChurnCase, int>> {};

TEST_P(IncrementalChurn, MatchesRecompute) {
  const auto& [churn_case, strategy_int] = GetParam();
  const auto strategy =
      static_cast<DatalogEngine::Strategy>(strategy_int);
  DatalogEngine incremental(churn_case.program, strategy);
  DatalogEngine reference(churn_case.program,
                          DatalogEngine::Strategy::kRecompute);

  constexpr int kNodes = 8;
  if (churn_case.has_nodes) {
    for (int64_t i = 0; i < kNodes; ++i) {
      incremental.insert("node", {i});
      reference.insert("node", {i});
    }
  }

  Rng rng(0xC0FFEE ^ static_cast<uint64_t>(strategy_int));
  std::set<std::pair<int64_t, int64_t>> edges;

  for (int step = 0; step < 120; ++step) {
    // Batch of 1-3 random edge flips.
    const int batch = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < batch; ++i) {
      int64_t u = static_cast<int64_t>(rng.below(kNodes));
      int64_t v = static_cast<int64_t>(rng.below(kNodes));
      const bool second = churn_case.rel2 != nullptr && rng.chance(0.5);
      const char* rel = second ? churn_case.rel2 : churn_case.rel1;
      auto key = std::make_pair(u * 100 + (second ? 1 : 0), v);
      if (edges.count(key)) {
        edges.erase(key);
        incremental.remove(rel, {u, v});
        reference.remove(rel, {u, v});
      } else {
        edges.insert(key);
        incremental.insert(rel, {u, v});
        reference.insert(rel, {u, v});
      }
    }
    incremental.flush();
    reference.flush();
    expect_same_idb(incremental, reference,
                    std::string(churn_case.name) + " step " +
                        std::to_string(step));
    if (HasFatalFailure() || HasNonfatalFailure()) return;
  }
}

std::string churn_name(
    const ::testing::TestParamInfo<std::tuple<ChurnCase, int>>& info) {
  const ChurnCase& churn_case = std::get<0>(info.param);
  const int strategy_int = std::get<1>(info.param);
  return std::string(churn_case.name) +
         (strategy_int == 0 ? "_counting" : "_dred");
}

INSTANTIATE_TEST_SUITE_P(
    Programs, IncrementalChurn,
    ::testing::Combine(
        ::testing::Values(
            ChurnCase{"tc", kTcProgram, false, "edge", nullptr},
            ChurnCase{"negation", kNegationProgram, true, "edge", nullptr},
            ChurnCase{"nonrecursive", kNonRecursiveProgram, false, "a", "b"}),
        ::testing::Values(
            static_cast<int>(DatalogEngine::Strategy::kIncremental),
            static_cast<int>(
                DatalogEngine::Strategy::kIncrementalForceDRed))),
    churn_name);

}  // namespace
}  // namespace dna::datalog
