// The observability plane's contract: the flight recorder's
// delta-compressed ring reconstructs every retained sample exactly (even
// after eviction folds history into the base), window queries select by
// time, and mark_event() pins an out-of-cadence sample at the moment of
// the event; the HTTP parser accepts exactly the read-only GET/HEAD
// grammar (partial reads resume, bodies and garbage are refused);
// a live HttpServer serves /metrics byte-identical to the registry's own
// Prometheus exposition, flips /healthz between 200 and 503 with the
// component, and survives concurrent scrapes; and TimedMutex's contention
// accounting observes what actually happened under racing threads.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/httpd.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/recorder.h"
#include "service/net/tcp.h"
#include "service/transport.h"

namespace dna::obs {
namespace {

// ---------------------------------------------------------------------------
// FlightRecorder: delta ring
// ---------------------------------------------------------------------------

double value_of(const FlightRecorder::Sample& sample, const std::string& name) {
  for (const auto& [key, value] : sample.values) {
    if (key == name) return value;
  }
  ADD_FAILURE() << "sample has no metric " << name;
  return -1;
}

TEST(FlightRecorder, SamplesReconstructExactlyAcrossDeltas) {
  Registry registry;
  Counter& counter = registry.counter("test.counter");
  Gauge& gauge = registry.gauge("test.gauge");
  FlightRecorder recorder(registry);

  counter.add(1);
  gauge.set(5);
  recorder.sample_now();
  counter.add(1);  // gauge unchanged: second delta omits it
  recorder.sample_now();
  gauge.set(7);  // counter unchanged this time
  recorder.sample_now();

  const auto samples = recorder.window(0, ~uint64_t{0});
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(value_of(samples[0], "test.counter"), 1);
  EXPECT_EQ(value_of(samples[0], "test.gauge"), 5);
  EXPECT_EQ(value_of(samples[1], "test.counter"), 2);
  EXPECT_EQ(value_of(samples[1], "test.gauge"), 5);
  EXPECT_EQ(value_of(samples[2], "test.counter"), 2);
  EXPECT_EQ(value_of(samples[2], "test.gauge"), 7);
  // Timeline is monotone and values are sorted by name like
  // Registry::sample().
  EXPECT_LE(samples[0].t_ns, samples[1].t_ns);
  EXPECT_LE(samples[1].t_ns, samples[2].t_ns);
  for (const auto& sample : samples) {
    EXPECT_TRUE(std::is_sorted(sample.values.begin(), sample.values.end()));
  }
}

TEST(FlightRecorder, EvictionFoldsIntoBaseAndKeepsReconstructionExact) {
  Registry registry;
  Counter& counter = registry.counter("test.counter");
  FlightRecorder::Options options;
  options.capacity = 4;
  FlightRecorder recorder(registry, options);

  for (int i = 1; i <= 10; ++i) {
    counter.add(1);  // counter value is i at sample i
    recorder.sample_now();
  }
  EXPECT_EQ(recorder.size(), 4u);
  const auto samples = recorder.window(0, ~uint64_t{0});
  ASSERT_EQ(samples.size(), 4u);
  // The retained window is samples 7..10; each reconstructs its exact
  // value even though 1..6 now only exist folded into the base.
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(value_of(samples[i], "test.counter"), 7.0 + double(i));
  }
}

TEST(FlightRecorder, WindowSelectsByTimestamp) {
  Registry registry;
  Counter& counter = registry.counter("test.counter");
  FlightRecorder recorder(registry);
  for (int i = 0; i < 5; ++i) {
    counter.add(1);
    recorder.sample_now();
  }
  const auto all = recorder.window(0, ~uint64_t{0});
  ASSERT_EQ(all.size(), 5u);
  const uint64_t mid = all[2].t_ns;
  // [mid, mid] keeps exactly the samples stamped at mid (at least the one
  // we picked; equal stamps can only come from the monotonicity clamp).
  const auto exact = recorder.window(mid, mid);
  ASSERT_GE(exact.size(), 1u);
  for (const auto& sample : exact) EXPECT_EQ(sample.t_ns, mid);
  // Everything after mid excludes the first samples.
  const auto tail = recorder.window(mid + 1, ~uint64_t{0});
  for (const auto& sample : tail) EXPECT_GT(sample.t_ns, mid);
  EXPECT_LT(tail.size(), all.size());
}

TEST(FlightRecorder, MarkEventRecordsAndForcesASample) {
  Registry registry;
  Counter& counter = registry.counter("test.counter");
  FlightRecorder recorder(registry);
  counter.add(42);
  EXPECT_EQ(recorder.size(), 0u);
  recorder.mark_event("slow_query", "check loopfree");
  const auto events = recorder.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, "slow_query");
  EXPECT_EQ(events[0].detail, "check loopfree");
  // The forced sample captured the registry at the moment of the event.
  const auto samples = recorder.window(0, ~uint64_t{0});
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(value_of(samples[0], "test.counter"), 42);
  // And the JSON payload carries both.
  const std::string json = recorder.json(0, ~uint64_t{0});
  EXPECT_NE(json.find("\"slow_query\""), std::string::npos);
  EXPECT_NE(json.find("\"test.counter\":42"), std::string::npos);
}

TEST(FlightRecorder, JsonCapsToTheMostRecentSamples) {
  Registry registry;
  Counter& counter = registry.counter("test.counter");
  FlightRecorder recorder(registry);
  for (int i = 0; i < 6; ++i) {
    counter.add(1);
    recorder.sample_now();
  }
  const std::string capped = recorder.json(0, ~uint64_t{0}, 2);
  // Only the newest two samples survive the cap: values 5 and 6.
  EXPECT_EQ(capped.find("\"test.counter\":4"), std::string::npos);
  EXPECT_NE(capped.find("\"test.counter\":5"), std::string::npos);
  EXPECT_NE(capped.find("\"test.counter\":6"), std::string::npos);
}

TEST(FlightRecorder, BackgroundThreadSamplesOnItsOwn) {
  Registry registry;
  registry.counter("test.counter").add(1);
  FlightRecorder::Options options;
  options.interval_ms = 5;
  FlightRecorder recorder(registry, options);
  recorder.start();
  // The sampler takes one sample immediately, then every 5 ms.
  for (int spin = 0; spin < 200 && recorder.size() < 3; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  recorder.stop();
  EXPECT_GE(recorder.size(), 3u);
  recorder.start();  // restart after stop works
  recorder.stop();
}

// ---------------------------------------------------------------------------
// HTTP request parsing
// ---------------------------------------------------------------------------

TEST(HttpParser, ParsesMethodPathAndQueryParameters) {
  HttpRequest request;
  size_t consumed = 0;
  const std::string wire =
      "GET /traces?n=5&json=1&flag HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(parse_http_request(wire, request, consumed), HttpParse::kOk);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/traces");
  EXPECT_EQ(request.param("n"), "5");
  EXPECT_EQ(request.param("json"), "1");
  EXPECT_EQ(request.param("flag"), "");
  EXPECT_EQ(request.param("absent", "fallback"), "fallback");
}

TEST(HttpParser, PartialRequestNeedsMoreUntilTheBlankLine) {
  HttpRequest request;
  size_t consumed = 0;
  const std::string wire = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  // Every proper prefix (short of the full terminator) asks for more.
  for (size_t n = 0; n < wire.size(); ++n) {
    EXPECT_EQ(parse_http_request(wire.substr(0, n), request, consumed),
              HttpParse::kNeedMore)
        << "prefix length " << n;
  }
  EXPECT_EQ(parse_http_request(wire, request, consumed), HttpParse::kOk);
  // Pipelined bytes after the request are not consumed.
  EXPECT_EQ(parse_http_request(wire + "GET /x", request, consumed),
            HttpParse::kOk);
  EXPECT_EQ(consumed, wire.size());
}

TEST(HttpParser, RejectsMalformedRequestLines) {
  HttpRequest request;
  size_t consumed = 0;
  const std::vector<std::string> bad = {
      "garbage\r\n\r\n",                      // no method/target split
      " GET /metrics HTTP/1.1\r\n\r\n",       // empty method
      "GET  HTTP/1.1\r\n\r\n",                // empty target
      "G@T /metrics HTTP/1.1\r\n\r\n",        // method with a non-tchar
      "GET metrics HTTP/1.1\r\n\r\n",         // target not starting at /
      "GET /metrics HTTP/2.0\r\n\r\n",        // unsupported version
      "GET /metrics\r\n\r\n",                 // missing version
  };
  for (const std::string& wire : bad) {
    EXPECT_EQ(parse_http_request(wire, request, consumed), HttpParse::kBad)
        << wire;
  }
}

TEST(HttpParser, RejectsBodiesAndOversizedRequests) {
  HttpRequest request;
  size_t consumed = 0;
  EXPECT_EQ(parse_http_request(
                "POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc", request,
                consumed),
            HttpParse::kBad);
  EXPECT_EQ(parse_http_request(
                "GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                request, consumed),
            HttpParse::kBad);
  // An unterminated header block larger than the cap is refused, not
  // buffered forever.
  const std::string oversized =
      "GET /x HTTP/1.1\r\nX: " + std::string(kMaxHttpRequestBytes, 'a');
  EXPECT_EQ(parse_http_request(oversized, request, consumed), HttpParse::kBad);
  // So is a terminated one whose block exceeds the cap.
  const std::string big_terminated = "GET /x HTTP/1.1\r\nX: " +
                                     std::string(kMaxHttpRequestBytes, 'a') +
                                     "\r\n\r\n";
  EXPECT_EQ(parse_http_request(big_terminated, request, consumed),
            HttpParse::kBad);
}

TEST(HttpParser, RenderedResponsesCarryLengthAndClose) {
  HttpResponse response;
  response.status = 503;
  response.body = "unhealthy\n";
  const std::string wire = render_http_response(response);
  EXPECT_EQ(wire.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u);
  EXPECT_NE(wire.find("Content-Length: 10\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 10), "unhealthy\n");
}

// ---------------------------------------------------------------------------
// Live HttpServer
// ---------------------------------------------------------------------------

/// A one-shot raw HTTP client over the repo's own TCP transport: sends
/// `wire` and drains until the server closes (Connection: close).
std::string http_exchange(uint16_t port, const std::string& wire) {
  auto transport = service::connect_tcp("127.0.0.1", port);
  transport->send(wire);
  transport->close_send();
  std::string response;
  char chunk[2048];
  while (const size_t n = transport->recv(chunk, sizeof(chunk))) {
    response.append(chunk, n);
  }
  return response;
}

std::string http_get(uint16_t port, const std::string& target,
                     const std::string& method = "GET") {
  return http_exchange(
      port, method + " " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? "" : response.substr(at + 4);
}

struct PlaneFixture {
  Registry registry;
  std::atomic<bool> healthy{true};
  FlightRecorder recorder{registry};
  HttpServer server;

  PlaneFixture()
      : server(0, make_obs_handler(make_endpoints())) {
    registry.counter("plane.requests").add(3);
    registry.histogram("plane.latency_seconds").observe(1500);
    server.start();
  }

  ObsEndpoints make_endpoints() {
    ObsEndpoints endpoints;
    endpoints.prometheus = [this] { return registry.prometheus_text(); };
    endpoints.health = [this] {
      return std::make_pair(healthy.load(),
                            std::string(healthy.load() ? "ok" : "degraded"));
    };
    endpoints.flight = [this](uint64_t, size_t max) {
      return recorder.json(0, ~uint64_t{0}, max);
    };
    // stats_json and traces left unset: those endpoints must 404.
    return endpoints;
  }
};

TEST(HttpServer, MetricsMatchesThePrometheusExpositionExactly) {
  PlaneFixture plane;
  const std::string response = http_get(plane.server.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_EQ(body_of(response), plane.registry.prometheus_text());
}

TEST(HttpServer, HealthzFlipsBetween200And503) {
  PlaneFixture plane;
  const std::string up = http_get(plane.server.port(), "/healthz");
  EXPECT_EQ(up.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_EQ(body_of(up), "ok\n");
  plane.healthy.store(false);
  const std::string down = http_get(plane.server.port(), "/healthz");
  EXPECT_EQ(down.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u);
  EXPECT_EQ(body_of(down), "degraded\n");
  plane.healthy.store(true);
  EXPECT_EQ(http_get(plane.server.port(), "/healthz")
                .rfind("HTTP/1.1 200 OK\r\n", 0),
            0u);
}

TEST(HttpServer, RoutesStatusesAndMissingEndpoints) {
  PlaneFixture plane;
  const uint16_t port = plane.server.port();
  // The index lists the endpoints.
  EXPECT_NE(body_of(http_get(port, "/")).find("/metrics"), std::string::npos);
  // Unknown path and unconfigured endpoints are 404.
  EXPECT_EQ(http_get(port, "/nope").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(http_get(port, "/stats.json").rfind("HTTP/1.1 404", 0), 0u);
  EXPECT_EQ(http_get(port, "/traces").rfind("HTTP/1.1 404", 0), 0u);
  // Writes are refused: POST carrying no body is still not GET/HEAD.
  EXPECT_EQ(http_get(port, "/metrics", "POST").rfind("HTTP/1.1 405", 0), 0u);
  // Garbage is a clean 400, not a hang.
  EXPECT_EQ(http_exchange(port, "garbage\r\n\r\n").rfind("HTTP/1.1 400", 0),
            0u);
  // Bad query parameters on /flight are 400.
  EXPECT_EQ(http_get(port, "/flight?ms=soon").rfind("HTTP/1.1 400", 0), 0u);
  // HEAD answers the header block with an empty body.
  const std::string head = http_get(port, "/metrics", "HEAD");
  EXPECT_EQ(head.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_EQ(body_of(head), "");
}

TEST(HttpServer, FlightEndpointServesTheRecorderWindow) {
  PlaneFixture plane;
  plane.recorder.mark_event("slow_query", "probe");
  const std::string response = http_get(plane.server.port(), "/flight?max=1");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("\"samples\""), std::string::npos);
  EXPECT_NE(body.find("\"slow_query\""), std::string::npos);
  EXPECT_NE(body.find("\"plane.requests\":3"), std::string::npos);
}

TEST(HttpServer, SurvivesConcurrentScrapes) {
  PlaneFixture plane;
  const uint16_t port = plane.server.port();
  const std::string expected = plane.registry.prometheus_text();
  std::atomic<int> ok{0};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 8; ++t) {
    scrapers.emplace_back([&] {
      for (int i = 0; i < 5; ++i) {
        const std::string response = http_get(port, "/metrics");
        if (response.rfind("HTTP/1.1 200 OK\r\n", 0) == 0 &&
            body_of(response) == expected) {
          ok.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : scrapers) thread.join();
  EXPECT_EQ(ok.load(), 40);
}

// ---------------------------------------------------------------------------
// TimedMutex contention accounting
// ---------------------------------------------------------------------------

TEST(TimedMutex, UncontendedLocksAreCountedWithoutWait) {
  TimedMutex mutex;
  for (int i = 0; i < 10; ++i) {
    std::lock_guard<TimedMutex> guard(mutex);
  }
  EXPECT_EQ(mutex.locks(), 10u);
  EXPECT_EQ(mutex.contended(), 0u);
  EXPECT_EQ(mutex.wait_ns(), 0u);
}

TEST(TimedMutex, ContendedLocksAccumulateWaitTime) {
  TimedMutex mutex;
  std::atomic<bool> holder_ready{false};
  std::thread holder([&] {
    std::lock_guard<TimedMutex> guard(mutex);
    holder_ready.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  while (!holder_ready.load()) std::this_thread::yield();
  {
    std::lock_guard<TimedMutex> guard(mutex);  // must wait out the holder
  }
  holder.join();
  EXPECT_EQ(mutex.locks(), 2u);
  EXPECT_GE(mutex.contended(), 1u);
  // The waiter slept most of the holder's 50 ms nap; allow wide margin
  // for scheduling, but the wait must be visible.
  EXPECT_GE(mutex.wait_ns(), 1000000u);  // >= 1 ms
}

TEST(TimedMutex, ManyThreadsAgreeOnTheLockCount) {
  TimedMutex mutex;
  uint64_t shared = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        std::lock_guard<TimedMutex> guard(mutex);
        ++shared;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(shared, 4000u);
  EXPECT_EQ(mutex.locks(), 4000u);
}

}  // namespace
}  // namespace dna::obs
