// OSPF model: route semantics on known topologies, ECMP, and the headline
// property that incremental updates equal a fresh build.
#include <gtest/gtest.h>

#include "controlplane/ospf.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/rng.h"

namespace dna::cp {
namespace {

using topo::NodeId;
using topo::Snapshot;

/// Fresh build for comparison.
std::vector<std::map<Ipv4Prefix, OspfRoute>> all_routes(
    const Snapshot& snap) {
  OspfModel model;
  model.build(snap);
  std::vector<std::map<Ipv4Prefix, OspfRoute>> out;
  for (NodeId node = 0; node < snap.topology.num_nodes(); ++node) {
    out.push_back(model.routes(node));
  }
  return out;
}

TEST(Ospf, LineTopologyMetrics) {
  Snapshot snap = topo::make_line(3);  // r0 - r1 - r2, cost 10 per hop
  OspfModel model;
  model.build(snap);

  // r0 reaches r2's loopback with metric 10 (to r1) + 10 (to r2) ... the
  // advertised loopback cost is the interface cost (10 by default).
  const NodeId r0 = snap.topology.node_id("r0");
  const NodeId r2 = snap.topology.node_id("r2");
  Ipv4Prefix lo2(snap.config_of(r2).interfaces[0].address, 32);
  auto it = model.routes(r0).find(lo2);
  ASSERT_NE(it, model.routes(r0).end());
  // dist(r0,r2)=20, advertised at loopback cost 10 -> 30.
  EXPECT_EQ(it->second.metric, 30);
  ASSERT_EQ(it->second.hops.size(), 1u);
  EXPECT_EQ(it->second.hops[0].next, snap.topology.node_id("r1"));

  // A node never installs an OSPF route for a prefix it advertises.
  Ipv4Prefix lo0(snap.config_of(r0).interfaces[0].address, 32);
  EXPECT_EQ(model.routes(r0).count(lo0), 0u);
}

TEST(Ospf, RingEcmp) {
  Snapshot snap = topo::make_ring(4);  // equal costs: two paths to opposite
  OspfModel model;
  model.build(snap);
  const NodeId r0 = snap.topology.node_id("r0");
  const NodeId r2 = snap.topology.node_id("r2");
  Ipv4Prefix lo2(snap.config_of(r2).interfaces[0].address, 32);
  auto it = model.routes(r0).find(lo2);
  ASSERT_NE(it, model.routes(r0).end());
  EXPECT_EQ(it->second.hops.size(), 2u);  // ECMP via both neighbors
}

TEST(Ospf, PassiveInterfaceFormsNoAdjacencyButAdvertises) {
  Snapshot snap = topo::make_line(2);
  // Make r0's link interface passive: adjacency breaks entirely.
  for (auto& iface : snap.config_of("r0").interfaces) {
    if (iface.name != "lo") iface.ospf_passive = true;
  }
  OspfModel model;
  model.build(snap);
  const NodeId r1 = snap.topology.node_id("r1");
  EXPECT_TRUE(model.routes(r1).empty());
}

TEST(Ospf, LinkDownRemovesRoutes) {
  Snapshot snap = topo::make_line(3);
  Snapshot broken = topo::with_link_state(snap, 0, false);
  OspfModel model;
  model.build(broken);
  const NodeId r0 = snap.topology.node_id("r0");
  EXPECT_TRUE(model.routes(r0).empty());
  // r1 and r2 still see each other.
  const NodeId r1 = snap.topology.node_id("r1");
  EXPECT_FALSE(model.routes(r1).empty());
}

TEST(Ospf, RedistributeStatic) {
  Snapshot snap = topo::make_line(2);
  Ipv4Prefix external(Ipv4Addr(203, 0, 113, 0), 24);
  snap.config_of("r0").static_routes.push_back(
      {external, Ipv4Addr(10, 0, 0, 2)});
  snap.config_of("r0").ospf.redistribute_static = true;
  OspfModel model;
  model.build(snap);
  const NodeId r1 = snap.topology.node_id("r1");
  auto it = model.routes(r1).find(external);
  ASSERT_NE(it, model.routes(r1).end());
  EXPECT_EQ(it->second.metric, 10 + 20);  // dist + redistribution cost
}

TEST(Ospf, IncrementalCostChangeMatchesFreshBuild) {
  Snapshot snap = topo::make_ring(6);
  OspfModel model;
  model.build(snap);
  Snapshot changed = topo::with_link_cost(snap, 2, 55);
  std::set<NodeId> dirty = model.update(changed);
  EXPECT_FALSE(dirty.empty());
  auto expected = all_routes(changed);
  for (NodeId node = 0; node < changed.topology.num_nodes(); ++node) {
    EXPECT_EQ(model.routes(node), expected[node]) << "node " << node;
  }
}

TEST(Ospf, IncrementalReportsNoDirtForIrrelevantChange) {
  Snapshot snap = topo::make_ring(6);
  OspfModel model;
  model.build(snap);
  // An ACL change does not touch OSPF inputs at all.
  Snapshot changed =
      topo::with_acl_block(snap, "r0", Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24));
  std::set<NodeId> dirty = model.update(changed);
  EXPECT_TRUE(dirty.empty());
}

class OspfChurn : public ::testing::TestWithParam<const char*> {};

TEST_P(OspfChurn, IncrementalEqualsFreshBuildUnderRandomChanges) {
  std::string which = GetParam();
  Rng rng(0x05bf + which.size());
  Snapshot snap;
  if (which == "ring") snap = topo::make_ring(8);
  if (which == "grid") snap = topo::make_grid(3, 3);
  if (which == "fattree") snap = topo::make_fattree(4);
  if (which == "random") snap = topo::make_random(10, 18, rng);

  OspfModel model;
  model.build(snap);

  for (int step = 0; step < 40; ++step) {
    topo::RandomChange change = topo::random_change(snap, rng);
    snap = std::move(change.snapshot);
    model.update(snap);
    auto expected = all_routes(snap);
    for (NodeId node = 0; node < snap.topology.num_nodes(); ++node) {
      ASSERT_EQ(model.routes(node), expected[node])
          << which << " step " << step << " (" << change.description
          << ") node " << snap.topology.node_name(node);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, OspfChurn,
                         ::testing::Values("ring", "grid", "fattree",
                                           "random"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dna::cp
