// Tests for the differential dataflow engine: every operator is checked
// both on hand-written cases and with a randomized property test comparing
// incremental state against a from-scratch recomputation.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "dataflow/graph.h"
#include "util/rng.h"

namespace dna::dataflow {
namespace {

Multiset to_multiset(const DeltaVec& deltas) {
  Multiset m;
  for (const Delta& d : deltas) {
    m[d.row] += d.mult;
    if (m[d.row] == 0) m.erase(d.row);
  }
  return m;
}

TEST(SmallRow, InlineAndSpilledStorage) {
  Row inline_row{1, 2, 3, 4};
  EXPECT_TRUE(inline_row.is_inline());
  EXPECT_EQ(inline_row.size(), 4u);

  Row spilled{1, 2, 3, 4, 5, 6};
  EXPECT_FALSE(spilled.is_inline());
  EXPECT_EQ(spilled.size(), 6u);
  EXPECT_EQ(spilled[5], 6);

  // push_back across the spill boundary preserves contents.
  Row grown;
  for (int64_t i = 0; i < 10; ++i) {
    grown.push_back(i);
    EXPECT_EQ(grown.back(), i);
  }
  EXPECT_FALSE(grown.is_inline());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(grown[static_cast<size_t>(i)], i);
}

TEST(SmallRow, CopyMoveAndCompareMatchVectorSemantics) {
  Row a{5, 6, 7};
  Row b = a;  // copy
  EXPECT_EQ(a, b);
  Row c = std::move(b);
  EXPECT_EQ(a, c);

  // Lexicographic ordering, shorter prefix first — like std::vector.
  EXPECT_LT((Row{1, 2}), (Row{1, 3}));
  EXPECT_LT((Row{1, 2}), (Row{1, 2, 0}));
  EXPECT_LT((Row{}), (Row{0}));
  EXPECT_LT((Row{-1}), (Row{0}));

  // Spilled vs inline rows with equal contents compare equal and hash equal.
  Row wide_a{1, 2, 3, 4, 5};
  Row wide_b;
  wide_b.reserve(32);
  for (int64_t v : {1, 2, 3, 4, 5}) wide_b.push_back(v);
  EXPECT_EQ(wide_a, wide_b);
  EXPECT_EQ(RowHash{}(wide_a), RowHash{}(wide_b));

  // Assignment into a spilled row from an inline one and back.
  wide_a = a;
  EXPECT_EQ(wide_a, a);
  a = Row{9, 9, 9, 9, 9, 9, 9};
  EXPECT_EQ(a.size(), 7u);
}

TEST(SmallRow, ProjectedHashAndEqualityMatchMaterializedKey) {
  Row row{10, 20, 30, 40, 50};
  std::vector<int> cols{3, 1};
  Row key = project(row, cols);
  EXPECT_EQ(key, (Row{40, 20}));
  EXPECT_EQ(hash_projected(row, cols), RowHash{}(key));
  EXPECT_TRUE(equals_projected(row, cols, key));
  EXPECT_FALSE(equals_projected(row, cols, Row{40, 21}));
  EXPECT_FALSE(equals_projected(row, cols, Row{40}));
}

TEST(Row, ConsolidateSumsAndDropsZeros) {
  DeltaVec deltas = {{{1, 2}, +1}, {{1, 2}, +2}, {{3}, +1}, {{3}, -1}};
  DeltaVec out = consolidate(deltas);
  Multiset m = to_multiset(out);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ((m[{1, 2}]), 3);
}

TEST(Graph, MapAppliesFunction) {
  Graph g;
  auto in = g.add_input("in");
  auto doubled = g.add_map("double", in, [](const Row& r) {
    return Row{r[0] * 2};
  });
  auto out = g.add_output("out", doubled);
  g.push(in, {{{21}, +1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({42})), 1);
}

TEST(Graph, FilterKeepsMatching) {
  Graph g;
  auto in = g.add_input("in");
  auto evens =
      g.add_filter("evens", in, [](const Row& r) { return r[0] % 2 == 0; });
  auto out = g.add_output("out", evens);
  g.push(in, {{{1}, +1}, {{2}, +1}, {{4}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 2u);
  EXPECT_TRUE(g.output(out).state().count({2}));
  EXPECT_TRUE(g.output(out).state().count({4}));
}

TEST(Graph, FlatMapExpands) {
  Graph g;
  auto in = g.add_input("in");
  auto expanded = g.add_flat_map("expand", in, [](const Row& r) {
    return std::vector<Row>{{r[0]}, {r[0] + 100}};
  });
  auto out = g.add_output("out", expanded);
  g.push(in, {{{1}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 2u);
}

TEST(Graph, DistinctCollapsesMultiplicities) {
  Graph g;
  auto in = g.add_input("in");
  auto d = g.add_distinct("distinct", in);
  auto out = g.add_output("out", d);
  g.push(in, {{{7}, +3}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({7})), 1);
  // Removing two copies keeps the row present; removing the last drops it.
  g.push(in, {{{7}, -2}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({7})), 1);
  g.push(in, {{{7}, -1}});
  g.step();
  EXPECT_TRUE(g.output(out).state().empty());
}

TEST(Graph, JoinProducesPairsIncrementally) {
  Graph g;
  auto left = g.add_input("left");    // (k, a)
  auto right = g.add_input("right");  // (k, b)
  auto joined = g.add_join(
      "join", left, {0}, right, {0},
      [](const Row& l, const Row& r) { return Row{l[0], l[1], r[1]}; });
  auto out = g.add_output("out", joined);

  g.push(left, {{{1, 10}, +1}});
  g.push(right, {{{1, 20}, +1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({1, 10, 20})), 1);

  // Adding a second right value yields exactly one new pair.
  g.clear_output_deltas();
  g.push(right, {{{1, 21}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).last_deltas().size(), 1u);
  EXPECT_EQ(g.output(out).state().size(), 2u);

  // Retracting the left row retracts both pairs.
  g.push(left, {{{1, 10}, -1}});
  g.step();
  EXPECT_TRUE(g.output(out).state().empty());
}

TEST(Graph, AntiJoinFlipsWithRightPresence) {
  Graph g;
  auto left = g.add_input("left");
  auto right = g.add_input("right");
  auto anti = g.add_antijoin("anti", left, {0}, right, {0});
  auto out = g.add_output("out", anti);

  g.push(left, {{{1, 100}, +1}, {{2, 200}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 2u);

  g.push(right, {{{1}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 1u);
  EXPECT_TRUE(g.output(out).state().count({2, 200}));

  g.push(right, {{{1}, -1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 2u);
}

TEST(Graph, ReduceMaintainsAggregates) {
  Graph g;
  auto in = g.add_input("in");  // (k, v)
  auto sums = g.add_reduce("sum", in, {0}, agg_sum(1));
  auto out = g.add_output("out", sums);

  g.push(in, {{{1, 10}, +1}, {{1, 5}, +1}, {{2, 7}, +1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({1, 15})), 1);
  EXPECT_EQ((g.output(out).state().at({2, 7})), 1);

  g.push(in, {{{1, 10}, -1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({1, 5})), 1);
  EXPECT_FALSE(g.output(out).state().count({1, 15}));

  // Emptying a group removes its aggregate row entirely.
  g.push(in, {{{2, 7}, -1}});
  g.step();
  EXPECT_FALSE(g.output(out).state().count({2, 7}));
}

TEST(Graph, ReduceMinMaxCount) {
  Graph g;
  auto in = g.add_input("in");
  auto mins = g.add_reduce("min", in, {0}, agg_min(1));
  auto maxs = g.add_reduce("max", in, {0}, agg_max(1));
  auto counts = g.add_reduce("count", in, {0}, agg_count());
  auto omin = g.add_output("omin", mins);
  auto omax = g.add_output("omax", maxs);
  auto ocnt = g.add_output("ocnt", counts);
  g.push(in, {{{1, 5}, +1}, {{1, 9}, +1}, {{1, 2}, +1}});
  g.step();
  EXPECT_EQ((g.output(omin).state().at({1, 2})), 1);
  EXPECT_EQ((g.output(omax).state().at({1, 9})), 1);
  EXPECT_EQ((g.output(ocnt).state().at({1, 3})), 1);
}

TEST(Graph, UnionSumsMultiplicities) {
  Graph g;
  auto a = g.add_input("a");
  auto b = g.add_input("b");
  auto u = g.add_union("union", {a, b});
  auto out = g.add_output("out", u);
  g.push(a, {{{1}, +1}});
  g.push(b, {{{1}, +1}, {{2}, +1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({1})), 2);
  EXPECT_EQ((g.output(out).state().at({2})), 1);
}

// ---------------------------------------------------------------------------
// Property test: a multi-operator pipeline maintained incrementally over
// random edits must equal the same pipeline evaluated from scratch.
// Pipeline: edges(k,v) JOIN labels(k,l) -> distinct(v,l) -> count per v.
// ---------------------------------------------------------------------------

struct Reference {
  std::map<Row, int64_t> edges, labels;

  Multiset expected_counts() const {
    std::map<Row, int64_t> distinct;  // (v, l) -> 1
    for (const auto& [e, em] : edges) {
      for (const auto& [l, lm] : labels) {
        if (e[0] == l[0] && em > 0 && lm > 0) distinct[{e[1], l[1]}] = 1;
      }
    }
    std::map<int64_t, int64_t> counts;
    for (const auto& [row, one] : distinct) {
      (void)one;
      counts[row[0]] += 1;
    }
    Multiset out;
    for (const auto& [v, c] : counts) out[{v, c}] = 1;
    return out;
  }
};

TEST(GraphProperty, PipelineMatchesRecomputeUnderChurn) {
  Graph g;
  auto edges = g.add_input("edges");
  auto labels = g.add_input("labels");
  auto joined = g.add_join(
      "join", edges, {0}, labels, {0},
      [](const Row& e, const Row& l) { return Row{e[1], l[1]}; });
  auto dis = g.add_distinct("distinct", joined);
  auto counts = g.add_reduce("count", dis, {0}, agg_count());
  auto out = g.add_output("out", counts);

  Reference ref;
  Rng rng(0xDF01);
  for (int step = 0; step < 300; ++step) {
    const bool is_edge = rng.chance(0.5);
    Row row = is_edge ? Row{static_cast<int64_t>(rng.below(5)),
                            static_cast<int64_t>(rng.below(8))}
                      : Row{static_cast<int64_t>(rng.below(5)),
                            static_cast<int64_t>(rng.below(3))};
    auto& side = is_edge ? ref.edges : ref.labels;
    int64_t mult;
    if (side.count(row) && rng.chance(0.4)) {
      mult = -1;  // retract an existing row
    } else {
      mult = +1;
    }
    side[row] += mult;
    if (side[row] == 0) side.erase(row);
    g.push(is_edge ? edges : labels, {{row, mult}});
    g.step();

    ASSERT_EQ(g.output(out).state(), ref.expected_counts())
        << "diverged at step " << step;
  }
}

// ---------------------------------------------------------------------------
// Old-vs-new equivalence: the flat representation must consolidate random
// delta batches to exactly the multiset the seed's std::unordered_map-based
// consolidate produced, for inline-arity rows and spilled rows alike.
// ---------------------------------------------------------------------------

using LegacyRow = std::vector<int64_t>;

struct LegacyRowHash {
  size_t operator()(const LegacyRow& row) const noexcept {
    size_t h = hash_u64(row.size());
    for (int64_t v : row) {
      h = hash_combine(h, hash_u64(static_cast<uint64_t>(v)));
    }
    return h;
  }
};

// The pre-change consolidate, verbatim modulo types.
std::unordered_map<LegacyRow, int64_t, LegacyRowHash> legacy_consolidate(
    const std::vector<std::pair<LegacyRow, int64_t>>& deltas) {
  std::unordered_map<LegacyRow, int64_t, LegacyRowHash> sums;
  for (const auto& [row, mult] : deltas) {
    if (mult == 0) continue;
    auto [it, inserted] = sums.try_emplace(row, mult);
    if (!inserted) {
      it->second += mult;
      if (it->second == 0) sums.erase(it);
    }
  }
  return sums;
}

TEST(RowProperty, ConsolidateMatchesLegacyRepresentation) {
  Rng rng(0xC0DE);
  for (int round = 0; round < 50; ++round) {
    // Mixed batch: arities 1..7 (spill boundary is 4), small value range so
    // rows repeat and multiplicities cancel.
    const size_t arity = 1 + rng.below(7);
    DeltaVec batch;
    std::vector<std::pair<LegacyRow, int64_t>> legacy_batch;
    const size_t n = 1 + rng.below(200);
    for (size_t i = 0; i < n; ++i) {
      LegacyRow legacy_row;
      Row row;
      for (size_t c = 0; c < arity; ++c) {
        const int64_t v = static_cast<int64_t>(rng.below(4));
        legacy_row.push_back(v);
        row.push_back(v);
      }
      const int64_t mult = rng.chance(0.5) ? +1 : -1;
      batch.push_back({std::move(row), mult});
      legacy_batch.push_back({std::move(legacy_row), mult});
    }

    auto legacy = legacy_consolidate(legacy_batch);
    DeltaVec flat = consolidate(batch);

    ASSERT_EQ(flat.size(), legacy.size()) << "round " << round;
    for (const Delta& d : flat) {
      LegacyRow as_legacy(d.row.begin(), d.row.end());
      auto it = legacy.find(as_legacy);
      ASSERT_NE(it, legacy.end()) << "round " << round;
      EXPECT_EQ(it->second, d.mult) << "round " << round;
    }
    // Canonical: a reshuffled batch consolidates to the identical sequence.
    DeltaVec shuffled = batch;
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    }
    DeltaVec flat2 = consolidate(shuffled);
    ASSERT_EQ(flat.size(), flat2.size()) << "round " << round;
    for (size_t i = 0; i < flat.size(); ++i) {
      EXPECT_TRUE(flat[i] == flat2[i]) << "round " << round << " pos " << i;
    }
  }
}

// The full pipeline property again, but with rows wide enough to spill to
// heap storage — the join carries arity-6 rows, the reduce emits arity 5.
TEST(GraphProperty, SpilledRowsPipelineMatchesRecomputeUnderChurn) {
  Graph g;
  auto edges = g.add_input("edges");    // (k, a, b, c, d) — arity 5, spilled
  auto labels = g.add_input("labels");  // (k, l)
  auto joined = g.add_join(
      "join", edges, {0}, labels, {0}, [](const Row& e, const Row& l) {
        return Row{e[1], e[2], e[3], e[4], l[1], e[1] + l[1]};  // arity 6
      });
  auto dis = g.add_distinct("distinct", joined);
  auto counts = g.add_reduce("count", dis, {0, 1, 2, 3}, agg_count());
  auto out = g.add_output("out", counts);

  std::map<Row, int64_t> ref_edges, ref_labels;
  auto expected = [&]() {
    std::map<Row, int64_t> distinct;
    for (const auto& [e, em] : ref_edges) {
      for (const auto& [l, lm] : ref_labels) {
        if (e[0] == l[0] && em > 0 && lm > 0) {
          distinct[{e[1], e[2], e[3], e[4], l[1], e[1] + l[1]}] = 1;
        }
      }
    }
    std::map<Row, int64_t> counts_by_key;
    for (const auto& [row, one] : distinct) {
      (void)one;
      counts_by_key[{row[0], row[1], row[2], row[3]}] += 1;
    }
    Multiset want;
    for (const auto& [key, c] : counts_by_key) {
      Row r = key;
      r.push_back(c);
      want[r] = 1;
    }
    return want;
  };

  Rng rng(0x51DE);
  for (int step = 0; step < 200; ++step) {
    const bool is_edge = rng.chance(0.5);
    Row row;
    if (is_edge) {
      row = Row{static_cast<int64_t>(rng.below(4)),
                static_cast<int64_t>(rng.below(3)),
                static_cast<int64_t>(rng.below(3)),
                static_cast<int64_t>(rng.below(2)),
                static_cast<int64_t>(rng.below(2))};
    } else {
      row = Row{static_cast<int64_t>(rng.below(4)),
                static_cast<int64_t>(rng.below(3))};
    }
    auto& side = is_edge ? ref_edges : ref_labels;
    std::map<Row, int64_t>::iterator sit = side.find(row);
    int64_t mult = (sit != side.end() && rng.chance(0.4)) ? -1 : +1;
    side[row] += mult;
    if (side[row] == 0) side.erase(row);
    g.push(is_edge ? edges : labels, {{row, mult}});
    g.step();

    ASSERT_EQ(g.output(out).state(), expected()) << "diverged at step " << step;
  }
}

// ---------------------------------------------------------------------------
// Regression: operator state must drain back to baseline under
// insert+retract churn — a long-lived service session must not accumulate
// dead keys in join sides, reduce groups, or distinct counts.
// ---------------------------------------------------------------------------

TEST(GraphState, DrainsToBaselineUnderChurn) {
  Graph g;
  auto left = g.add_input("left");
  auto right = g.add_input("right");
  auto joined = g.add_join(
      "join", left, {0}, right, {0},
      [](const Row& l, const Row& r) { return Row{l[0], l[1], r[1]}; });
  auto dis = g.add_distinct("distinct", joined);
  auto sums = g.add_reduce("sum", dis, {0}, agg_sum(2));
  auto anti = g.add_antijoin("anti", joined, {0}, right, {0});
  auto out = g.add_output("out", sums);
  auto out2 = g.add_output("out2", anti);

  // Baseline: a little resident state.
  g.push(left, {{{1, 10}, +1}});
  g.push(right, {{{1, 20}, +1}});
  g.step();
  const size_t base_join = g.state_size(joined);
  const size_t base_dis = g.state_size(dis);
  const size_t base_sum = g.state_size(sums);
  const size_t base_anti = g.state_size(anti);
  const size_t base_out = g.state_size(out);
  const size_t base_out2 = g.state_size(out2);
  EXPECT_GT(base_join, 0u);

  // Churn: insert a batch of fresh keys and rows, then retract them all.
  Rng rng(0xD2A1);
  for (int round = 0; round < 5; ++round) {
    DeltaVec added_left, added_right;
    for (int i = 0; i < 200; ++i) {
      const int64_t k = 100 + static_cast<int64_t>(rng.below(50));
      if (rng.chance(0.5)) {
        added_left.push_back({{k, static_cast<int64_t>(rng.below(8))}, +1});
      } else {
        added_right.push_back({{k, static_cast<int64_t>(rng.below(8))}, +1});
      }
    }
    DeltaVec retract_left = added_left, retract_right = added_right;
    for (Delta& d : retract_left) d.mult = -1;
    for (Delta& d : retract_right) d.mult = -1;

    g.push(left, added_left);
    g.push(right, added_right);
    g.step();
    g.push(left, retract_left);
    g.push(right, retract_right);
    g.step();

    ASSERT_EQ(g.state_size(joined), base_join) << "round " << round;
    ASSERT_EQ(g.state_size(dis), base_dis) << "round " << round;
    ASSERT_EQ(g.state_size(sums), base_sum) << "round " << round;
    ASSERT_EQ(g.state_size(anti), base_anti) << "round " << round;
    ASSERT_EQ(g.state_size(out), base_out) << "round " << round;
    ASSERT_EQ(g.state_size(out2), base_out2) << "round " << round;
  }
}

}  // namespace
}  // namespace dna::dataflow
