// Tests for the differential dataflow engine: every operator is checked
// both on hand-written cases and with a randomized property test comparing
// incremental state against a from-scratch recomputation.
#include <gtest/gtest.h>

#include <map>

#include "dataflow/graph.h"
#include "util/rng.h"

namespace dna::dataflow {
namespace {

Multiset to_multiset(const DeltaVec& deltas) {
  Multiset m;
  for (const Delta& d : deltas) {
    m[d.row] += d.mult;
    if (m[d.row] == 0) m.erase(d.row);
  }
  return m;
}

TEST(Row, ConsolidateSumsAndDropsZeros) {
  DeltaVec deltas = {{{1, 2}, +1}, {{1, 2}, +2}, {{3}, +1}, {{3}, -1}};
  DeltaVec out = consolidate(deltas);
  Multiset m = to_multiset(out);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ((m[{1, 2}]), 3);
}

TEST(Graph, MapAppliesFunction) {
  Graph g;
  auto in = g.add_input("in");
  auto doubled = g.add_map("double", in, [](const Row& r) {
    return Row{r[0] * 2};
  });
  auto out = g.add_output("out", doubled);
  g.push(in, {{{21}, +1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({42})), 1);
}

TEST(Graph, FilterKeepsMatching) {
  Graph g;
  auto in = g.add_input("in");
  auto evens =
      g.add_filter("evens", in, [](const Row& r) { return r[0] % 2 == 0; });
  auto out = g.add_output("out", evens);
  g.push(in, {{{1}, +1}, {{2}, +1}, {{4}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 2u);
  EXPECT_TRUE(g.output(out).state().count({2}));
  EXPECT_TRUE(g.output(out).state().count({4}));
}

TEST(Graph, FlatMapExpands) {
  Graph g;
  auto in = g.add_input("in");
  auto expanded = g.add_flat_map("expand", in, [](const Row& r) {
    return std::vector<Row>{{r[0]}, {r[0] + 100}};
  });
  auto out = g.add_output("out", expanded);
  g.push(in, {{{1}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 2u);
}

TEST(Graph, DistinctCollapsesMultiplicities) {
  Graph g;
  auto in = g.add_input("in");
  auto d = g.add_distinct("distinct", in);
  auto out = g.add_output("out", d);
  g.push(in, {{{7}, +3}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({7})), 1);
  // Removing two copies keeps the row present; removing the last drops it.
  g.push(in, {{{7}, -2}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({7})), 1);
  g.push(in, {{{7}, -1}});
  g.step();
  EXPECT_TRUE(g.output(out).state().empty());
}

TEST(Graph, JoinProducesPairsIncrementally) {
  Graph g;
  auto left = g.add_input("left");    // (k, a)
  auto right = g.add_input("right");  // (k, b)
  auto joined = g.add_join(
      "join", left, {0}, right, {0},
      [](const Row& l, const Row& r) { return Row{l[0], l[1], r[1]}; });
  auto out = g.add_output("out", joined);

  g.push(left, {{{1, 10}, +1}});
  g.push(right, {{{1, 20}, +1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({1, 10, 20})), 1);

  // Adding a second right value yields exactly one new pair.
  g.clear_output_deltas();
  g.push(right, {{{1, 21}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).last_deltas().size(), 1u);
  EXPECT_EQ(g.output(out).state().size(), 2u);

  // Retracting the left row retracts both pairs.
  g.push(left, {{{1, 10}, -1}});
  g.step();
  EXPECT_TRUE(g.output(out).state().empty());
}

TEST(Graph, AntiJoinFlipsWithRightPresence) {
  Graph g;
  auto left = g.add_input("left");
  auto right = g.add_input("right");
  auto anti = g.add_antijoin("anti", left, {0}, right, {0});
  auto out = g.add_output("out", anti);

  g.push(left, {{{1, 100}, +1}, {{2, 200}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 2u);

  g.push(right, {{{1}, +1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 1u);
  EXPECT_TRUE(g.output(out).state().count({2, 200}));

  g.push(right, {{{1}, -1}});
  g.step();
  EXPECT_EQ(g.output(out).state().size(), 2u);
}

TEST(Graph, ReduceMaintainsAggregates) {
  Graph g;
  auto in = g.add_input("in");  // (k, v)
  auto sums = g.add_reduce("sum", in, {0}, agg_sum(1));
  auto out = g.add_output("out", sums);

  g.push(in, {{{1, 10}, +1}, {{1, 5}, +1}, {{2, 7}, +1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({1, 15})), 1);
  EXPECT_EQ((g.output(out).state().at({2, 7})), 1);

  g.push(in, {{{1, 10}, -1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({1, 5})), 1);
  EXPECT_FALSE(g.output(out).state().count({1, 15}));

  // Emptying a group removes its aggregate row entirely.
  g.push(in, {{{2, 7}, -1}});
  g.step();
  EXPECT_FALSE(g.output(out).state().count({2, 7}));
}

TEST(Graph, ReduceMinMaxCount) {
  Graph g;
  auto in = g.add_input("in");
  auto mins = g.add_reduce("min", in, {0}, agg_min(1));
  auto maxs = g.add_reduce("max", in, {0}, agg_max(1));
  auto counts = g.add_reduce("count", in, {0}, agg_count());
  auto omin = g.add_output("omin", mins);
  auto omax = g.add_output("omax", maxs);
  auto ocnt = g.add_output("ocnt", counts);
  g.push(in, {{{1, 5}, +1}, {{1, 9}, +1}, {{1, 2}, +1}});
  g.step();
  EXPECT_EQ((g.output(omin).state().at({1, 2})), 1);
  EXPECT_EQ((g.output(omax).state().at({1, 9})), 1);
  EXPECT_EQ((g.output(ocnt).state().at({1, 3})), 1);
}

TEST(Graph, UnionSumsMultiplicities) {
  Graph g;
  auto a = g.add_input("a");
  auto b = g.add_input("b");
  auto u = g.add_union("union", {a, b});
  auto out = g.add_output("out", u);
  g.push(a, {{{1}, +1}});
  g.push(b, {{{1}, +1}, {{2}, +1}});
  g.step();
  EXPECT_EQ((g.output(out).state().at({1})), 2);
  EXPECT_EQ((g.output(out).state().at({2})), 1);
}

// ---------------------------------------------------------------------------
// Property test: a multi-operator pipeline maintained incrementally over
// random edits must equal the same pipeline evaluated from scratch.
// Pipeline: edges(k,v) JOIN labels(k,l) -> distinct(v,l) -> count per v.
// ---------------------------------------------------------------------------

struct Reference {
  std::map<Row, int64_t> edges, labels;

  Multiset expected_counts() const {
    std::map<Row, int64_t> distinct;  // (v, l) -> 1
    for (const auto& [e, em] : edges) {
      for (const auto& [l, lm] : labels) {
        if (e[0] == l[0] && em > 0 && lm > 0) distinct[{e[1], l[1]}] = 1;
      }
    }
    std::map<int64_t, int64_t> counts;
    for (const auto& [row, one] : distinct) {
      (void)one;
      counts[row[0]] += 1;
    }
    Multiset out;
    for (const auto& [v, c] : counts) out[{v, c}] = 1;
    return out;
  }
};

TEST(GraphProperty, PipelineMatchesRecomputeUnderChurn) {
  Graph g;
  auto edges = g.add_input("edges");
  auto labels = g.add_input("labels");
  auto joined = g.add_join(
      "join", edges, {0}, labels, {0},
      [](const Row& e, const Row& l) { return Row{e[1], l[1]}; });
  auto dis = g.add_distinct("distinct", joined);
  auto counts = g.add_reduce("count", dis, {0}, agg_count());
  auto out = g.add_output("out", counts);

  Reference ref;
  Rng rng(0xDF01);
  for (int step = 0; step < 300; ++step) {
    const bool is_edge = rng.chance(0.5);
    Row row = is_edge ? Row{static_cast<int64_t>(rng.below(5)),
                            static_cast<int64_t>(rng.below(8))}
                      : Row{static_cast<int64_t>(rng.below(5)),
                            static_cast<int64_t>(rng.below(3))};
    auto& side = is_edge ? ref.edges : ref.labels;
    int64_t mult;
    if (side.count(row) && rng.chance(0.4)) {
      mult = -1;  // retract an existing row
    } else {
      mult = +1;
    }
    side[row] += mult;
    if (side[row] == 0) side.erase(row);
    g.push(is_edge ? edges : labels, {{row, mult}});
    g.step();

    ASSERT_EQ(g.output(out).state(), ref.expected_counts())
        << "diverged at step " << step;
  }
}

}  // namespace
}  // namespace dna::dataflow
