// Shortest paths: Dijkstra against Bellman-Ford, and the dynamic SSSP
// (incremental SPF) against full recomputation under random arc events.
#include <gtest/gtest.h>

#include "controlplane/incremental_spf.h"
#include "util/rng.h"

namespace dna::cp {
namespace {

std::vector<int> bellman_ford(const WeightedDigraph& graph,
                              topo::NodeId source) {
  std::vector<int> dist(graph.num_nodes(), kInfDist);
  dist[source] = 0;
  for (size_t round = 0; round + 1 < graph.num_nodes() + 1; ++round) {
    bool changed = false;
    for (topo::NodeId u = 0; u < graph.num_nodes(); ++u) {
      if (dist[u] >= kInfDist) continue;
      for (const Arc& arc : graph.out[u]) {
        if (dist[u] + arc.weight < dist[arc.to]) {
          dist[arc.to] = dist[u] + arc.weight;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return dist;
}

WeightedDigraph random_graph(int n, int arcs, Rng& rng, int max_w = 10) {
  WeightedDigraph graph;
  graph.resize(static_cast<size_t>(n));
  for (int i = 0; i < arcs; ++i) {
    auto u = static_cast<topo::NodeId>(rng.below(static_cast<uint64_t>(n)));
    auto v = static_cast<topo::NodeId>(rng.below(static_cast<uint64_t>(n)));
    if (u == v) continue;
    graph.add_arc(u, v, static_cast<int>(rng.range(1, max_w)),
                  static_cast<uint32_t>(i));
  }
  return graph;
}

TEST(Dijkstra, MatchesBellmanFordOnRandomGraphs) {
  Rng rng(0x5bf);
  for (int trial = 0; trial < 20; ++trial) {
    WeightedDigraph graph = random_graph(12, 30, rng);
    for (topo::NodeId src = 0; src < graph.num_nodes(); ++src) {
      EXPECT_EQ(dijkstra(graph, src), bellman_ford(graph, src));
    }
  }
}

TEST(Dijkstra, DisconnectedNodesAreInfinite) {
  WeightedDigraph graph;
  graph.resize(3);
  graph.add_arc(0, 1, 5, 0);
  auto dist = dijkstra(graph, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 5);
  EXPECT_EQ(dist[2], kInfDist);
}

TEST(DynamicSssp, DecreaseImprovesAndReportsChanged) {
  WeightedDigraph graph;
  graph.resize(4);
  graph.add_arc(0, 1, 10, 0);
  graph.add_arc(1, 2, 10, 1);
  graph.add_arc(0, 3, 1, 2);
  graph.add_arc(3, 2, 100, 3);
  DynamicSssp sssp(&graph, 0);
  EXPECT_EQ(sssp.dist_to(2), 20);

  // Improve 3->2 from 100 to 2: path via 3 becomes best for node 2.
  graph.out[3][0].weight = 2;
  graph.in[2][1].weight = 2;
  auto changed = sssp.arc_updated(3, 2, 100, 2);
  EXPECT_EQ(sssp.dist_to(2), 3);
  EXPECT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], 2u);
}

TEST(DynamicSssp, IncreaseOrphansAndRepairs) {
  WeightedDigraph graph;
  graph.resize(4);
  graph.add_arc(0, 1, 1, 0);
  graph.add_arc(1, 2, 1, 1);
  graph.add_arc(2, 3, 1, 2);
  graph.add_arc(0, 3, 10, 3);
  DynamicSssp sssp(&graph, 0);
  EXPECT_EQ(sssp.dist_to(3), 3);

  // Break 1->2: 2 becomes unreachable except... no other path to 2.
  graph.out[1].clear();
  graph.in[2].erase(graph.in[2].begin());
  auto changed = sssp.arc_updated(1, 2, 1, kInfDist);
  EXPECT_EQ(sssp.dist_to(2), kInfDist);
  EXPECT_EQ(sssp.dist_to(3), 10);  // repaired through the direct arc
  EXPECT_EQ(changed.size(), 2u);
}

TEST(DynamicSssp, IncreaseWithEqualCostAlternativeChangesNothing) {
  WeightedDigraph graph;
  graph.resize(3);
  graph.add_arc(0, 1, 1, 0);
  graph.add_arc(0, 2, 2, 1);
  graph.add_arc(1, 2, 1, 2);  // two cost-2 paths to node 2
  DynamicSssp sssp(&graph, 0);
  EXPECT_EQ(sssp.dist_to(2), 2);

  graph.out[1][0].weight = 50;
  graph.in[2][1].weight = 50;
  auto changed = sssp.arc_updated(1, 2, 1, 50);
  EXPECT_EQ(sssp.dist_to(2), 2);  // direct arc still gives 2
  EXPECT_TRUE(changed.empty());
}

// ---------------------------------------------------------------------------
// Property: dynamic updates equal recomputation over random event sequences.
// ---------------------------------------------------------------------------

class DynamicSsspChurn : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicSsspChurn, MatchesRecompute) {
  Rng rng(GetParam());
  const int n = 14;
  WeightedDigraph graph = random_graph(n, 40, rng);
  std::vector<DynamicSssp> sssp;
  for (topo::NodeId src = 0; src < static_cast<topo::NodeId>(n); ++src) {
    sssp.emplace_back(&graph, src);
  }

  for (int event = 0; event < 120; ++event) {
    // Pick a random existing arc and mutate its weight (sometimes to/from
    // "absent", modelled as removal/insertion).
    topo::NodeId u = 0;
    int arc_index = -1;
    for (int attempts = 0; attempts < 50 && arc_index < 0; ++attempts) {
      u = static_cast<topo::NodeId>(rng.below(n));
      if (!graph.out[u].empty()) {
        arc_index = static_cast<int>(rng.below(graph.out[u].size()));
      }
    }
    if (arc_index < 0) break;
    Arc& arc = graph.out[u][static_cast<size_t>(arc_index)];
    const topo::NodeId v = arc.to;
    const uint32_t link = arc.link;
    const int old_w = arc.weight;
    int new_w = static_cast<int>(rng.range(1, 10));
    if (new_w == old_w) new_w = old_w + 1;

    arc.weight = new_w;
    for (Arc& in_arc : graph.in[v]) {
      if (in_arc.to == u && in_arc.link == link) in_arc.weight = new_w;
    }

    for (topo::NodeId src = 0; src < static_cast<topo::NodeId>(n); ++src) {
      auto changed = sssp[src].arc_updated(u, v, old_w, new_w);
      std::vector<int> expected = dijkstra(graph, src);
      ASSERT_EQ(sssp[src].dist(), expected)
          << "src=" << src << " event=" << event << " arc " << u << "->" << v
          << " " << old_w << "=>" << new_w;
      // Every reported change must be a real change... verified implicitly:
      // recompute matches; changed-set soundness checked by spot tests above.
      (void)changed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicSsspChurn,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dna::cp
