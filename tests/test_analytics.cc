// Tests for the risk-analytics tier (analytics/risk.h, differential.h) and
// its service surface (rank/risk/risk diff verbs, RiskStore memoization).
//
// The load-bearing properties: reports are pure functions of (base, sweep,
// invariants) — byte-identical across thread counts and any permutation of
// the scenario order — and the service memo returns byte-identical bodies
// while counting its hits.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "analytics/differential.h"
#include "analytics/risk.h"
#include "core/change.h"
#include "scenario/runner.h"
#include "service/risk_store.h"
#include "service/service.h"
#include "topo/generators.h"
#include "util/error.h"

namespace dna {
namespace {

using analytics::RiskReport;
using analytics::SweepPlan;
using analytics::SweepSpec;

std::vector<core::Invariant> ring_invariants() {
  return {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()},
          {core::Invariant::Kind::kReachable, "r0", "r3", "",
           Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}};
}

/// Runs `sweep` against `base` exactly as the service does: plan, evaluate
/// every scenario, aggregate.
RiskReport sweep_report(const std::string& sweep, const topo::Snapshot& base,
                        size_t num_threads = 1) {
  const SweepPlan plan = analytics::plan_sweep(analytics::parse_sweep(sweep),
                                               base);
  scenario::ScenarioRunner runner(base, ring_invariants());
  scenario::RunnerOptions options;
  options.num_threads = num_threads;
  const scenario::ScenarioReport report = runner.run(plan.specs, options);
  std::vector<std::string> descriptions;
  for (const core::Invariant& invariant : ring_invariants()) {
    descriptions.push_back(invariant.describe());
  }
  return analytics::analyze(plan, report.results, descriptions);
}

TEST(SweepSpec, ParsesAndCanonicalizes) {
  EXPECT_EQ(analytics::parse_sweep("links").str(), "links");
  EXPECT_EQ(analytics::parse_sweep("costs:7").str(), "costs:7");
  EXPECT_EQ(analytics::parse_sweep("node:r0").str(), "node:r0");
  // The canonical random token always carries its seed (default 1), so
  // equivalent spellings share a spec-hash.
  EXPECT_EQ(analytics::parse_sweep("random:5").str(), "random:5:1");
  EXPECT_EQ(analytics::parse_sweep("random:5:9").str(), "random:5:9");
  EXPECT_EQ(analytics::parse_sweep("random:5").hash(),
            analytics::parse_sweep("random:5:1").hash());
  EXPECT_NE(analytics::parse_sweep("links").hash(),
            analytics::parse_sweep("costs:7").hash());

  EXPECT_THROW(analytics::parse_sweep(""), Error);
  EXPECT_THROW(analytics::parse_sweep("costs"), Error);
  EXPECT_THROW(analytics::parse_sweep("costs:x"), Error);
  EXPECT_THROW(analytics::parse_sweep("node:"), Error);
  EXPECT_THROW(analytics::parse_sweep("random:0"), Error);
  EXPECT_THROW(analytics::parse_sweep("bogus"), Error);
}

TEST(SweepPlan, AlignsElementsWithSpecs) {
  const topo::Snapshot base = topo::make_ring(6);
  const SweepPlan links =
      analytics::plan_sweep(analytics::parse_sweep("links"), base);
  ASSERT_EQ(links.specs.size(), links.elements.size());
  EXPECT_EQ(links.specs.size(), 6u);  // a 6-ring has 6 links, all up
  for (const analytics::ElementRef& element : links.elements) {
    EXPECT_FALSE(element.link.empty());
    EXPECT_EQ(element.routers.size(), 2u);
  }

  const SweepPlan node =
      analytics::plan_sweep(analytics::parse_sweep("node:r0"), base);
  ASSERT_EQ(node.specs.size(), node.elements.size());
  EXPECT_GE(node.specs.size(), 1u);
  for (const analytics::ElementRef& element : node.elements) {
    EXPECT_TRUE(element.link.empty() || !element.routers.empty());
  }

  EXPECT_THROW(
      analytics::plan_sweep(analytics::parse_sweep("node:nowhere"), base),
      Error);
}

// Keystone scores are normalized mass fractions, rendered from integer
// micro-units: they sum to ~1.0 and the top element really moves the most.
TEST(RiskReport, KeystoneScoresAreNormalizedAndRanked) {
  const RiskReport report = sweep_report("links", topo::make_ring(6));
  EXPECT_EQ(report.scenarios, 6u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_GT(report.total_mass, 0u);
  ASSERT_FALSE(report.elements.empty());

  uint64_t link_micro_sum = 0;
  uint64_t previous_mass = UINT64_MAX;
  for (const analytics::ElementRisk& element : report.elements) {
    EXPECT_LE(element.mass(), previous_mass);  // ranked by mass descending
    previous_mass = element.mass();
    if (element.kind == "link") link_micro_sum += report.keystone_micro(element);
  }
  // The 6 link elements partition the sweep's mass exactly, so their
  // keystone micro-scores sum to 1.0 within integer-rounding slack.
  EXPECT_NEAR(static_cast<double>(link_micro_sum), 1e6, 6.0);

  // Blast histogram covers every scenario.
  uint64_t blast_total = report.blast.zero;
  for (const uint64_t bucket : report.blast.buckets) blast_total += bucket;
  EXPECT_EQ(blast_total, report.scenarios);

  // Every registered invariant is classified exactly once.
  EXPECT_EQ(report.fragile.size() + report.robust_invariants,
            ring_invariants().size());
}

// The determinism contract: the analysis is invariant to the order scenarios
// were evaluated in. Permute the (spec, element, result) triples with a
// fixed shuffle and the rendered report must be byte-identical.
TEST(RiskReport, PermutationInvariant) {
  const topo::Snapshot base = topo::make_ring(6);
  const SweepPlan plan =
      analytics::plan_sweep(analytics::parse_sweep("links"), base);
  scenario::ScenarioRunner runner(base, ring_invariants());
  scenario::RunnerOptions options;
  options.num_threads = 1;
  const scenario::ScenarioReport run = runner.run(plan.specs, options);
  std::vector<std::string> descriptions;
  for (const core::Invariant& invariant : ring_invariants()) {
    descriptions.push_back(invariant.describe());
  }
  const RiskReport baseline = analytics::analyze(plan, run.results,
                                                 descriptions);

  // A fixed permutation (reverse, then swap the front pair) applied to all
  // three parallel vectors keeps them aligned while scrambling the order.
  std::vector<size_t> order(plan.specs.size());
  std::iota(order.begin(), order.end(), 0);
  std::reverse(order.begin(), order.end());
  std::swap(order.front(), order.back());

  SweepPlan permuted;
  std::vector<scenario::ScenarioResult> results;
  for (const size_t i : order) {
    permuted.specs.push_back(plan.specs[i]);
    permuted.elements.push_back(plan.elements[i]);
    results.push_back(run.results[i]);
  }
  const RiskReport shuffled = analytics::analyze(permuted, results,
                                                 descriptions);

  EXPECT_EQ(baseline.str(), shuffled.str());
  EXPECT_EQ(baseline.to_json(), shuffled.to_json());
  EXPECT_EQ(baseline.to_rank_json(), shuffled.to_rank_json());
}

TEST(RiskReport, ByteIdenticalAcrossThreadCounts) {
  const topo::Snapshot base = topo::make_ring(6);
  const RiskReport one = sweep_report("links", base, 1);
  const RiskReport four = sweep_report("links", base, 4);
  EXPECT_EQ(one.to_json(), four.to_json());
  EXPECT_EQ(one.str(), four.str());
}

// diff_risk classification: an element whose keystone score more than
// doubles is enriched, more than halves is depleted, in between is stable.
TEST(RiskDiff, ClassifiesFoldChanges) {
  RiskReport before, after;
  before.total_mass = 1000;
  after.total_mass = 1000;
  const auto element = [](const std::string& name, uint64_t mass) {
    analytics::ElementRisk e;
    e.element = name;
    e.kind = "link";
    e.scenarios = 1;
    e.fib_changes = mass;  // mass() includes fib churn
    return e;
  };
  before.elements = {element("steady", 500), element("rising", 100),
                     element("falling", 400)};
  after.elements = {element("steady", 510), element("rising", 450),
                    element("falling", 40)};

  const analytics::RiskDiff diff = analytics::diff_risk(before, after);
  EXPECT_EQ(diff.enriched, 1u);
  EXPECT_EQ(diff.depleted, 1u);
  EXPECT_EQ(diff.stable, 1u);
  ASSERT_EQ(diff.elements.size(), 3u);
  // Order: enriched first, then depleted, then stable.
  EXPECT_EQ(diff.elements[0].element, "rising");
  EXPECT_EQ(std::string(diff.elements[0].status_name()), "enriched");
  EXPECT_GT(diff.elements[0].log2_fc_e4, 10000);
  EXPECT_EQ(diff.elements[1].element, "falling");
  EXPECT_EQ(std::string(diff.elements[1].status_name()), "depleted");
  EXPECT_LT(diff.elements[1].log2_fc_e4, -10000);
  EXPECT_EQ(diff.elements[2].element, "steady");
  EXPECT_EQ(std::string(diff.elements[2].status_name()), "stable");

  const std::string json = diff.to_json();
  EXPECT_NE(json.find("\"enriched\":1"), std::string::npos);
  EXPECT_NE(json.find("\"depleted\":1"), std::string::npos);
}

// The outer join: an element present on only one side still classifies.
TEST(RiskDiff, OuterJoinsOneSidedElements) {
  RiskReport before, after;
  before.total_mass = 100;
  after.total_mass = 100;
  analytics::ElementRisk gone;
  gone.element = "link 9";
  gone.kind = "link";
  gone.fib_changes = 50;
  before.elements = {gone};
  analytics::ElementRisk born;
  born.element = "link 10";
  born.kind = "link";
  born.fib_changes = 50;
  after.elements = {born};

  const analytics::RiskDiff diff = analytics::diff_risk(before, after);
  ASSERT_EQ(diff.elements.size(), 2u);
  EXPECT_EQ(diff.enriched, 1u);
  EXPECT_EQ(diff.depleted, 1u);
}

TEST(RiskStore, BoundedLruEvictsOldest) {
  service::RiskStore store(2);
  const auto report = std::make_shared<RiskReport>();
  store.put_report(1, 1, report);
  store.put_report(2, 1, report);
  store.put_report(3, 1, report);  // evicts (1, 1)
  EXPECT_EQ(store.reports_cached(), 2u);
  EXPECT_EQ(store.report(1, 1), nullptr);
  EXPECT_NE(store.report(2, 1), nullptr);

  // A hit refreshes recency: touch (2,1), insert a fourth, and (3,1) — now
  // the least recent — is the one evicted.
  store.put_report(4, 1, report);
  EXPECT_EQ(store.report(3, 1), nullptr);
  EXPECT_NE(store.report(2, 1), nullptr);

  store.put_answer('r', 1, 1, 0, "body");
  store.put_answer('k', 1, 1, 0, "other");
  store.put_answer('d', 1, 1, 2, "diff");
  EXPECT_EQ(store.answers_cached(), 2u);
  EXPECT_FALSE(store.answer('r', 1, 1, 0).has_value());
  ASSERT_TRUE(store.answer('d', 1, 1, 2).has_value());
  EXPECT_EQ(*store.answer('d', 1, 1, 2), "diff");

  service::RiskStore disabled(0);
  disabled.put_answer('r', 1, 1, 0, "body");
  EXPECT_EQ(disabled.answers_cached(), 0u);
}

// ---- The service surface ---------------------------------------------------

TEST(ServiceRisk, RankAndRiskAreServedAndMemoized) {
  service::DnaService service(topo::make_ring(6), ring_invariants(),
                              {.num_threads = 2});

  const service::QueryResult rank = service.query("rank");
  ASSERT_TRUE(rank.ok) << rank.body;
  EXPECT_NE(rank.body.find("\"rank\":"), std::string::npos);
  EXPECT_NE(rank.body.find("\"sweep\":\"links\""), std::string::npos);

  const service::QueryResult risk = service.query("risk links");
  ASSERT_TRUE(risk.ok) << risk.body;
  EXPECT_NE(risk.body.find("\"risk\":"), std::string::npos);
  EXPECT_NE(risk.body.find("\"blast\":"), std::string::npos);
  EXPECT_NE(risk.body.find("\"invariants\":"), std::string::npos);

  // Identical re-asks are memo hits — byte-identical body, counter moves.
  const uint64_t hits_before =
      service.registry().counter("service.risk_cache_hits").value();
  const service::QueryResult rank_again = service.query("rank links");
  ASSERT_TRUE(rank_again.ok);
  EXPECT_EQ(rank_again.body, rank.body);
  const service::QueryResult risk_again = service.query("risk");
  ASSERT_TRUE(risk_again.ok);
  EXPECT_EQ(risk_again.body, risk.body);
  EXPECT_GT(service.registry().counter("service.risk_cache_hits").value(),
            hits_before);
  EXPECT_GE(service.registry().counter("service.risk_sweeps_total").value(),
            1u);
}

TEST(ServiceRisk, BodiesAreDeterministicAcrossServiceThreadCounts) {
  const auto body = [](size_t threads, const std::string& line) {
    service::DnaService service(topo::make_ring(6), ring_invariants(),
                                {.num_threads = threads});
    const service::QueryResult result = service.query(line);
    EXPECT_TRUE(result.ok) << result.body;
    return result.body;
  };
  EXPECT_EQ(body(1, "risk links"), body(4, "risk links"));
  EXPECT_EQ(body(1, "rank node:r0"), body(4, "rank node:r0"));
}

// The acceptance scenario: commit a link-cost change, diff the risk surface
// across the two versions, and at least one element must classify enriched.
// The operator story: link 0 is drained (cost 100, traffic avoids it), then
// a commit restores its cost — the diff flags the link as enriched because
// it went from carrying no failure impact to being load-bearing again.
TEST(ServiceRisk, DiffAcrossACommittedChangeFindsEnrichment) {
  service::ServiceOptions options;
  options.num_threads = 2;
  options.keep_versions = 8;  // diff needs both versions live
  service::DnaService service(topo::make_ring(6), ring_invariants(), options);

  const uint64_t v1 =
      service.commit(core::ChangePlan::link_cost(0, 100)).version;
  const uint64_t v2 = service.commit(core::ChangePlan::link_cost(0, 1)).version;
  ASSERT_NE(v1, v2);

  const service::QueryResult diff = service.query(
      "risk diff " + std::to_string(v1) + " " + std::to_string(v2));
  ASSERT_TRUE(diff.ok) << diff.body;
  EXPECT_NE(diff.body.find("\"risk_diff\":"), std::string::npos);
  // The counters always cover everything, so assert on them, not the
  // (possibly capped) elements array.
  EXPECT_EQ(diff.body.find("\"enriched\":0,"), std::string::npos)
      << diff.body;

  // Re-asking the same diff is an answer-memo hit: byte-identical.
  EXPECT_EQ(service.query("risk diff " + std::to_string(v1) + " " +
                          std::to_string(v2))
                .body,
            diff.body);

  // A retired / never-published version is a typed failure, not a crash.
  const service::QueryResult dead = service.query("risk diff 999 1000");
  EXPECT_FALSE(dead.ok);
  EXPECT_NE(dead.body.find("not live"), std::string::npos);
}

TEST(ServiceRisk, MalformedRiskQueriesAreTypedErrors) {
  service::DnaService service(topo::make_ring(4), ring_invariants(),
                              {.num_threads = 1});
  EXPECT_THROW(service::parse_query("rank links extra"), Error);
  EXPECT_THROW(service::parse_query("risk diff 1"), Error);
  EXPECT_THROW(service::parse_query("risk diff one two"), Error);
  EXPECT_THROW(service::parse_query("rank bogus:sweep"), Error);

  // A sweep that parses but targets an unknown node fails at plan time,
  // as a per-query error — and the service keeps serving afterwards.
  const service::QueryResult unknown = service.query("risk node:nowhere");
  EXPECT_FALSE(unknown.ok);
  EXPECT_TRUE(service.query("version").ok);
  EXPECT_TRUE(service.query("rank").ok);
}

}  // namespace
}  // namespace dna
