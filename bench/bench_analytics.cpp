// Risk-analytics serving cost: a cold keystone sweep versus a memoized
// re-read of the same query against a live DnaService (ROADMAP item 5's
// serving half).
//
// The cold path pays one differential preview per swept link; the re-read
// must be a RiskStore map hit returning the byte-identical body. The bench
// asserts the memo is actually hit (cache-hit counter moves), that the
// bodies are byte-identical, and that the re-read is >= 10x faster than the
// cold sweep — the acceptance bar for serving risk as a dashboard query.
//
// Output: human-readable table plus machine-readable BENCH_analytics.json
// in the same shape as the other bench reports. Flags:
//   --quick                fat-tree k=4 only (CI)
//   --json=PATH            write the JSON report (default BENCH_analytics.json)
//   --check=BASELINE.json  fail (exit 1) if a gated entry regresses >2x
//                          versus the baseline, calibrated by the
//                          monolithic anchor (fixed engine code measured in
//                          this very process)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/service.h"
#include "topo/generators.h"
#include "util/json.h"
#include "util/timer.h"

using namespace dna;

namespace {

bench::BenchReport g_report;
double g_speedup_k4 = 0;

void bench_fattree(int k) {
  service::ServiceOptions options;
  options.num_threads = 2;
  options.keep_versions = 4;
  service::DnaService service(topo::make_fattree(k),
                              {{core::Invariant::Kind::kLoopFree, "", "", "",
                                Ipv4Prefix()}},
                              options);
  const std::string tag = "_k" + std::to_string(k);

  Stopwatch cold_watch;
  const service::QueryResult cold = service.query("risk links");
  const double cold_ms = cold_watch.elapsed_ms();
  if (!cold.ok) {
    std::fprintf(stderr, "FAIL: cold risk query failed: %s\n",
                 cold.body.c_str());
    std::exit(1);
  }
  const size_t scenarios = service.head()->snapshot->topology.num_links();
  g_report.record("risk_cold" + tag, scenarios, cold_ms / 1e3,
                  /*gated=*/true);

  // Memoized re-reads: every one must hit the RiskStore and return the
  // byte-identical body.
  const uint64_t hits_before =
      service.registry().counter("service.risk_cache_hits").value();
  constexpr size_t kReads = 64;
  Stopwatch memo_watch;
  for (size_t i = 0; i < kReads; ++i) {
    const service::QueryResult read = service.query("risk links");
    if (!read.ok || read.body != cold.body) {
      std::fprintf(stderr, "FAIL: memoized read diverged from cold body\n");
      std::exit(1);
    }
  }
  const double memo_ms = memo_watch.elapsed_ms();
  const uint64_t hits =
      service.registry().counter("service.risk_cache_hits").value() -
      hits_before;
  g_report.record("risk_memo" + tag, kReads, memo_ms / 1e3, /*gated=*/true);

  const double per_read_ms = memo_ms / kReads;
  const double speedup = per_read_ms > 0 ? cold_ms / per_read_ms : 0;
  if (k == 4) g_speedup_k4 = speedup;
  std::printf(
      "fat-tree k=%d: %zu scenarios | cold %8.1f ms | memoized read %8.3f ms "
      "| %8.1fx | cache hits %llu\n",
      k, scenarios, cold_ms, per_read_ms, speedup,
      static_cast<unsigned long long>(hits));

  if (hits == 0) {
    std::printf("FAIL: memoized reads never hit the cache\n");
    std::exit(1);
  }
  if (speedup < 10) {
    std::printf("FAIL: memoized read is only %.1fx faster than the cold "
                "sweep (acceptance bar: 10x)\n",
                speedup);
    std::exit(1);
  }
}

/// The calibration anchor: one monolithic advance of a single link failure
/// on the smallest swept fat-tree — fixed engine code measured in this very
/// process, so current/baseline over it isolates machine speed.
void bench_anchor() {
  const topo::Snapshot base = topo::make_fattree(4);
  const topo::Snapshot target = topo::with_link_state(base, 0, /*up=*/false);
  const double ms =
      bench::advance_ms(base, target, core::Mode::kMonolithic, /*reps=*/3);
  g_report.record("anchor_monolithic", 1, ms / 1e3, /*gated=*/false);
}

void write_json(const std::string& path, bool quick) {
  util::JsonWriter json;
  json.begin_object();
  json.key("bench").value("analytics");
  json.key("quick").value(quick);
  g_report.append_json(json);
  json.key("speedups").begin_object();
  json.key("memo_over_cold_k4").value(g_speedup_k4);
  json.end_object();
  json.end_object();

  std::ofstream out(path);
  out << json.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_analytics.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--check=", 0) == 0) {
      baseline_path = arg.substr(8);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  bench_anchor();
  bench_fattree(4);
  if (!quick) bench_fattree(6);
  write_json(json_path, quick);

  if (!baseline_path.empty() &&
      g_report.check_against_baseline(baseline_path, "anchor_monolithic") !=
          0) {
    return 1;
  }
  return 0;
}
