// Experiment F8 — dataflow operator micro-costs, old vs new representation.
//
// Measures ns/delta for the hot-path primitives (consolidate, join
// probe+update, distinct) twice: once over the flat representation
// (SmallRow, FlatMap, run-indexed join sides, in-place sort consolidate)
// and once over a faithful reimplementation of the seed's representation
// (std::vector rows, node-based std::unordered_map everywhere). The legacy
// path is embedded here so the speedup claim stays reproducible after the
// old code is gone.
//
// Output: human-readable table plus machine-readable BENCH_dataflow.json
// (ns/delta per bench, speedups, peak RSS). Flags:
//   --quick                smaller iteration counts (CI)
//   --json=PATH            write the JSON report (default BENCH_dataflow.json)
//   --check=BASELINE.json  fail (exit 1) if any flat-representation bench
//                          regresses >2x in ns/delta versus the baseline;
//                          the comparison is calibrated by the legacy
//                          benches so it ports across machine speeds
//   --require-speedup=X    fail unless flat beats legacy by >= X on the
//                          join and consolidate benches (distinct is
//                          recorded but informational)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "dataflow/graph.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace dna;
using namespace dna::dataflow;

namespace legacy {

// The seed's representation, preserved verbatim modulo naming: heap rows
// keyed into node-based hash maps.
using Row = std::vector<int64_t>;

struct RowHash {
  size_t operator()(const Row& row) const noexcept {
    size_t h = hash_u64(row.size());
    for (int64_t v : row) {
      h = hash_combine(h, hash_u64(static_cast<uint64_t>(v)));
    }
    return h;
  }
};

struct Delta {
  Row row;
  int64_t mult = 0;
};
using DeltaVec = std::vector<Delta>;
using Multiset = std::unordered_map<Row, int64_t, RowHash>;
using Side = std::unordered_map<Row, Multiset, RowHash>;  // key -> rows

Row project(const Row& row, const std::vector<int>& columns) {
  Row out;
  out.reserve(columns.size());
  for (int c : columns) out.push_back(row[static_cast<size_t>(c)]);
  return out;
}

DeltaVec consolidate(const DeltaVec& deltas) {
  Multiset sums;
  for (const Delta& d : deltas) {
    if (d.mult == 0) continue;
    auto [it, inserted] = sums.try_emplace(d.row, d.mult);
    if (!inserted) {
      it->second += d.mult;
      if (it->second == 0) sums.erase(it);
    }
  }
  DeltaVec out;
  out.reserve(sums.size());
  for (auto& [row, mult] : sums) out.push_back({row, mult});
  return out;
}

void update_side(Side& side, const Row& key, const Row& row, int64_t mult) {
  Multiset& rows = side[key];
  auto [it, inserted] = rows.try_emplace(row, 0);
  it->second += mult;
  if (it->second == 0) {
    rows.erase(it);
    if (rows.empty()) side.erase(key);
  }
}

}  // namespace legacy

namespace {

struct BenchResult {
  std::string name;
  size_t deltas = 0;
  double ns_per_delta = 0;
};

std::vector<BenchResult> g_results;

void record(const std::string& name, size_t deltas, double seconds) {
  const double ns = seconds * 1e9 / static_cast<double>(deltas);
  g_results.push_back({name, deltas, ns});
  std::printf("%-24s %12zu deltas %12.1f ns/delta\n", name.c_str(), deltas,
              ns);
}

double ns_of(const std::string& name) {
  for (const BenchResult& r : g_results) {
    if (r.name == name) return r.ns_per_delta;
  }
  return 0;
}

/// Runs `body` `attempts` times and returns the fastest wall time: minima
/// are far more stable than single shots on shared/noisy machines, and CI
/// gates on these numbers.
template <class Fn>
double best_of(int attempts, Fn&& body) {
  double best = 0;
  for (int a = 0; a < attempts; ++a) {
    Stopwatch sw;
    body();
    const double t = sw.elapsed_seconds();
    if (a == 0 || t < best) best = t;
  }
  return best;
}

constexpr int kAttempts = 3;

// ---- consolidate ----------------------------------------------------------
// One epoch's queue-fill + consolidate, as Graph::step performs it: the
// batch is appended onto the (recycled) pending queue, then consolidated.
// Mostly-distinct arity-3 rows with some duplication and cancellation — the
// common epoch shape for network change deltas. The legacy path is the
// seed's: copy into the queue (one heap row per delta), then build a
// temporary unordered_map and dump it.

void bench_consolidate(size_t n, int reps) {
  Rng rng(11);
  DeltaVec flat_batch;
  legacy::DeltaVec legacy_batch;
  for (size_t i = 0; i < n; ++i) {
    const int64_t a = static_cast<int64_t>(rng.below(512));
    const int64_t b = static_cast<int64_t>(rng.below(64));
    const int64_t c = static_cast<int64_t>(rng.below(8));
    const int64_t mult = rng.chance(0.5) ? +1 : -1;
    flat_batch.push_back({{a, b, c}, mult});
    legacy_batch.push_back({{a, b, c}, mult});
  }

  {
    DeltaVec pending;
    const double secs = best_of(kAttempts, [&] {
      for (int r = 0; r < reps; ++r) {
        pending.clear();
        pending.insert(pending.end(), flat_batch.begin(), flat_batch.end());
        consolidate_in_place(pending);
      }
    });
    record("consolidate_flat", n * static_cast<size_t>(reps), secs);
  }
  {
    legacy::DeltaVec pending;
    const double secs = best_of(kAttempts, [&] {
      for (int r = 0; r < reps; ++r) {
        pending.clear();
        pending.insert(pending.end(), legacy_batch.begin(),
                       legacy_batch.end());
        legacy::DeltaVec out = legacy::consolidate(pending);
        (void)out;
      }
    });
    record("consolidate_legacy", n * static_cast<size_t>(reps), secs);
  }
}

// ---- join -----------------------------------------------------------------
// `keys` join keys with 8 rows per key on each side. Per delta: probe the
// other side, emit combined rows, consolidate the emission batch, update own
// side — the exact per-delta work of JoinNode::on_input.

void bench_join(size_t keys, size_t deltas_n) {
  const std::vector<int> key_cols{0};

  // Flat representation: SideIndex + in-place consolidate.
  {
    SideIndex left, right;
    for (size_t k = 0; k < keys; ++k) {
      for (int64_t i = 0; i < 8; ++i) {
        left.update({static_cast<int64_t>(k), i}, key_cols, +1);
        right.update({static_cast<int64_t>(k), 100 + i}, key_cols, +1);
      }
    }
    DeltaVec out;
    const double secs = best_of(kAttempts, [&] {
      Rng rng(22);
      for (size_t i = 0; i < deltas_n; ++i) {
        const Row row{static_cast<int64_t>(rng.below(keys)),
                      static_cast<int64_t>(rng.below(8))};
        const int64_t mult = (i & 1) ? -1 : +1;
        if (const SideIndex::Run* run = right.find(row, key_cols)) {
          for (const Delta& r : *run) {
            out.push_back({{row[0], row[1], r.row[1]}, mult * r.mult});
          }
        }
        left.update(row, key_cols, mult);
        consolidate_in_place(out);
        out.clear();
      }
    });
    record("join_flat", deltas_n, secs);
  }

  // Legacy representation: two-level unordered_map sides, materialized keys.
  {
    legacy::Side left, right;
    for (size_t k = 0; k < keys; ++k) {
      for (int64_t i = 0; i < 8; ++i) {
        legacy::update_side(left, {static_cast<int64_t>(k)},
                            {static_cast<int64_t>(k), i}, +1);
        legacy::update_side(right, {static_cast<int64_t>(k)},
                            {static_cast<int64_t>(k), 100 + i}, +1);
      }
    }
    const double secs = best_of(kAttempts, [&] {
      Rng rng(22);
      for (size_t i = 0; i < deltas_n; ++i) {
        const legacy::Row row{static_cast<int64_t>(rng.below(keys)),
                              static_cast<int64_t>(rng.below(8))};
        const int64_t mult = (i & 1) ? -1 : +1;
        legacy::DeltaVec out;
        legacy::Row key = legacy::project(row, key_cols);
        auto it = right.find(key);
        if (it != right.end()) {
          for (const auto& [rrow, rmult] : it->second) {
            out.push_back({{row[0], row[1], rrow[1]}, mult * rmult});
          }
        }
        legacy::update_side(left, key, row, mult);
        legacy::DeltaVec consolidated = legacy::consolidate(out);
        (void)consolidated;
      }
    });
    record("join_legacy", deltas_n, secs);
  }
}

// ---- distinct -------------------------------------------------------------
// Set-semantics gate over a universe of single-column rows, random toggles —
// the DistinctNode state update.

void bench_distinct(size_t universe, size_t deltas_n) {
  {
    Multiset state;
    // Warm to steady-state occupancy so quick and full runs measure the
    // same thing: updates against a resident table, not table growth.
    for (size_t v = 0; v < universe; v += 2) {
      state.try_emplace(Row{static_cast<int64_t>(v)}, 1);
    }
    const double secs = best_of(kAttempts, [&] {
      Rng rng(33);
      for (size_t i = 0; i < deltas_n; ++i) {
        const Row row{static_cast<int64_t>(rng.below(universe))};
        const int64_t mult = rng.chance(0.5) ? +1 : -1;
        auto [it, inserted] = state.try_emplace(row, 0);
        it->second += mult;
        if (it->second == 0) state.erase(it);
      }
    });
    record("distinct_flat", deltas_n, secs);
  }
  {
    legacy::Multiset state;
    for (size_t v = 0; v < universe; v += 2) {
      state.try_emplace(legacy::Row{static_cast<int64_t>(v)}, 1);
    }
    const double secs = best_of(kAttempts, [&] {
      Rng rng(33);
      for (size_t i = 0; i < deltas_n; ++i) {
        const legacy::Row row{static_cast<int64_t>(rng.below(universe))};
        const int64_t mult = rng.chance(0.5) ? +1 : -1;
        auto [it, inserted] = state.try_emplace(row, 0);
        it->second += mult;
        if (it->second == 0) state.erase(it);
      }
    });
    record("distinct_legacy", deltas_n, secs);
  }
}

// ---- end-to-end graph epochs ----------------------------------------------
// Single-delta epochs through a full Graph with a join — the trajectory
// number that tracks whole-engine overhead, not just the primitives.

void bench_graph_join_epoch(size_t keys, size_t epochs) {
  Graph g;
  auto left = g.add_input("left");
  auto right = g.add_input("right");
  auto joined = g.add_join(
      "join", left, {0}, right, {0},
      [](const Row& l, const Row& r) { return Row{l[0], l[1], r[1]}; });
  auto out = g.add_output("out", joined);
  (void)out;
  DeltaVec init_left, init_right;
  for (size_t k = 0; k < keys; ++k) {
    for (int64_t i = 0; i < 8; ++i) {
      init_left.push_back({{static_cast<int64_t>(k), i}, +1});
      init_right.push_back({{static_cast<int64_t>(k), 100 + i}, +1});
    }
  }
  g.push(left, init_left);
  g.push(right, init_right);
  g.step();

  DeltaVec one(1);
  const double secs = best_of(kAttempts, [&] {
    Rng rng(44);
    for (size_t i = 0; i < epochs; ++i) {
      one[0] = {{static_cast<int64_t>(rng.below(keys)),
                 static_cast<int64_t>(rng.below(8))},
                (i & 1) ? -1 : +1};
      g.push(left, one);
      g.step();
    }
  });
  record("graph_join_epoch", epochs, secs);
}

// ---- report ---------------------------------------------------------------

long peak_rss_kb() {
#ifdef __unix__
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

double speedup(const std::string& flat, const std::string& old) {
  const double f = ns_of(flat);
  const double l = ns_of(old);
  return f > 0 ? l / f : 0;
}

void write_json(const std::string& path, bool quick) {
  util::JsonWriter json;
  json.begin_object();
  json.key("bench").value("dataflow_ops");
  json.key("quick").value(quick);
  json.key("peak_rss_kb").value(static_cast<long long>(peak_rss_kb()));
  json.key("results").begin_array();
  for (const BenchResult& r : g_results) {
    json.begin_object();
    json.key("name").value(r.name);
    json.key("deltas").value(static_cast<unsigned long long>(r.deltas));
    json.key("ns_per_delta").value(r.ns_per_delta);
    json.end_object();
  }
  json.end_array();
  json.key("speedups").begin_object();
  json.key("join").value(speedup("join_flat", "join_legacy"));
  json.key("consolidate")
      .value(speedup("consolidate_flat", "consolidate_legacy"));
  json.key("distinct").value(speedup("distinct_flat", "distinct_legacy"));
  json.end_object();
  json.end_object();

  std::ofstream out(path);
  out << json.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

/// Pulls "ns_per_delta" for `name` out of a report produced by write_json.
/// Minimal scan, not a general JSON parser — fine for our own format.
double baseline_ns(const std::string& text, const std::string& name) {
  const std::string name_token = "\"name\":\"" + name + "\"";
  size_t pos = text.find(name_token);
  if (pos == std::string::npos) return 0;
  const std::string ns_token = "\"ns_per_delta\":";
  pos = text.find(ns_token, pos);
  if (pos == std::string::npos) return 0;
  return std::atof(text.c_str() + pos + ns_token.size());
}

int check_against_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // The baseline was recorded on some other machine (and possibly in full
  // mode); raw ns/delta does not port. The legacy benches are fixed code
  // measured in this very process, so current/baseline over them isolates
  // machine speed. Calibrating by their median ratio makes the >2x gate
  // about representation regressions, not about runner hardware.
  std::vector<double> calib;
  for (const BenchResult& r : g_results) {
    if (r.name.find("_legacy") == std::string::npos) continue;
    const double base = baseline_ns(text, r.name);
    if (base > 0) calib.push_back(r.ns_per_delta / base);
  }
  double machine_scale = 1.0;
  if (!calib.empty()) {
    std::sort(calib.begin(), calib.end());
    machine_scale = calib[calib.size() / 2];
  }
  std::printf("baseline machine-speed calibration: %.2fx\n", machine_scale);

  int failures = 0;
  for (const BenchResult& r : g_results) {
    if (r.name.find("_legacy") != std::string::npos) continue;
    const double base = baseline_ns(text, r.name);
    if (base <= 0) {
      std::printf("baseline: %-24s (no entry, skipped)\n", r.name.c_str());
      continue;
    }
    const double ratio = r.ns_per_delta / (base * machine_scale);
    const bool ok = ratio <= 2.0;
    std::printf("baseline: %-24s %8.1f -> %8.1f ns/delta (%.2fx calibrated) %s\n",
                r.name.c_str(), base, r.ns_per_delta, ratio,
                ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_dataflow.json";
  std::string baseline_path;
  double require_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--check=", 0) == 0) {
      baseline_path = arg.substr(8);
    } else if (arg.rfind("--require-speedup=", 0) == 0) {
      require_speedup = std::atof(arg.c_str() + 18);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  const size_t scale = quick ? 1 : 8;
  bench_consolidate(/*n=*/4096, /*reps=*/static_cast<int>(25 * scale));
  bench_join(/*keys=*/1024, /*deltas_n=*/100000 * scale);
  bench_distinct(/*universe=*/100000, /*deltas_n=*/200000 * scale);
  bench_graph_join_epoch(/*keys=*/1024, /*epochs=*/50000 * scale);

  std::printf("speedup join %.2fx consolidate %.2fx distinct %.2fx\n",
              speedup("join_flat", "join_legacy"),
              speedup("consolidate_flat", "consolidate_legacy"),
              speedup("distinct_flat", "distinct_legacy"));

  write_json(json_path, quick);

  int rc = 0;
  if (require_speedup > 0) {
    // The acceptance-gated pair: join and consolidate are the differential
    // hot path; distinct is recorded but informational.
    for (const char* pair : {"join", "consolidate"}) {
      const std::string flat = std::string(pair) + "_flat";
      const std::string old = std::string(pair) + "_legacy";
      const double s = speedup(flat, old);
      if (s < require_speedup) {
        std::fprintf(stderr, "FAIL: %s speedup %.2fx < required %.2fx\n", pair,
                     s, require_speedup);
        rc = 1;
      }
    }
  }
  if (!baseline_path.empty()) {
    if (check_against_baseline(baseline_path) != 0) rc = 1;
  }
  return rc;
}
