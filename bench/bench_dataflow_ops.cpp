// Experiment F8 — dataflow operator micro-costs.
//
// Per-delta throughput of the core operators as a function of resident
// state size. Expected shape: map/filter are O(1) per delta; join and
// reduce costs track matching-group sizes; distinct is a hash update.
#include <benchmark/benchmark.h>

#include "dataflow/graph.h"
#include "util/rng.h"

using namespace dna;
using namespace dna::dataflow;

namespace {

void BM_MapDelta(benchmark::State& state) {
  Graph g;
  auto in = g.add_input("in");
  auto mapped =
      g.add_map("map", in, [](const Row& r) { return Row{r[0] + 1, r[1]}; });
  auto out = g.add_output("out", mapped);
  (void)out;
  Rng rng(1);
  for (auto _ : state) {
    g.push(in, {{{static_cast<int64_t>(rng.below(1000)),
                  static_cast<int64_t>(rng.below(1000))},
                 +1}});
    g.step();
  }
}

void BM_DistinctDelta(benchmark::State& state) {
  const int64_t universe = state.range(0);
  Graph g;
  auto in = g.add_input("in");
  auto d = g.add_distinct("distinct", in);
  auto out = g.add_output("out", d);
  (void)out;
  Rng rng(2);
  for (auto _ : state) {
    int64_t value = static_cast<int64_t>(rng.below(universe));
    g.push(in, {{{value}, rng.chance(0.5) ? +1 : -1}});
    g.step();
  }
}

void BM_JoinDelta(benchmark::State& state) {
  const int64_t keys = state.range(0);
  Graph g;
  auto left = g.add_input("left");
  auto right = g.add_input("right");
  auto joined = g.add_join(
      "join", left, {0}, right, {0},
      [](const Row& l, const Row& r) { return Row{l[0], l[1], r[1]}; });
  auto out = g.add_output("out", joined);
  (void)out;
  Rng rng(3);
  // Pre-populate both sides: 8 rows per key.
  DeltaVec init_left, init_right;
  for (int64_t k = 0; k < keys; ++k) {
    for (int64_t i = 0; i < 8; ++i) {
      init_left.push_back({{k, i}, +1});
      init_right.push_back({{k, 100 + i}, +1});
    }
  }
  g.push(left, init_left);
  g.push(right, init_right);
  g.step();
  for (auto _ : state) {
    int64_t k = static_cast<int64_t>(rng.below(keys));
    g.push(left, {{{k, static_cast<int64_t>(rng.below(8))},
                   rng.chance(0.5) ? +1 : -1}});
    g.step();
  }
}

void BM_ReduceDelta(benchmark::State& state) {
  const int64_t keys = state.range(0);
  Graph g;
  auto in = g.add_input("in");
  auto sums = g.add_reduce("sum", in, {0}, agg_sum(1));
  auto out = g.add_output("out", sums);
  (void)out;
  Rng rng(4);
  DeltaVec init;
  for (int64_t k = 0; k < keys; ++k) {
    for (int64_t i = 0; i < 16; ++i) init.push_back({{k, i}, +1});
  }
  g.push(in, init);
  g.step();
  for (auto _ : state) {
    int64_t k = static_cast<int64_t>(rng.below(keys));
    g.push(in, {{{k, static_cast<int64_t>(rng.below(16))}, +1}});
    g.step();
  }
}

void BM_AntiJoinDelta(benchmark::State& state) {
  const int64_t keys = state.range(0);
  Graph g;
  auto left = g.add_input("left");
  auto right = g.add_input("right");
  auto anti = g.add_antijoin("anti", left, {0}, right, {0});
  auto out = g.add_output("out", anti);
  (void)out;
  Rng rng(5);
  DeltaVec init;
  for (int64_t k = 0; k < keys; ++k) init.push_back({{k, k}, +1});
  g.push(left, init);
  g.step();
  for (auto _ : state) {
    // Block then unblock a key: two flips of the anti-join output.
    int64_t k = static_cast<int64_t>(rng.below(keys));
    g.push(right, {{{k}, +1}});
    g.step();
    g.push(right, {{{k}, -1}});
    g.step();
  }
}

}  // namespace

BENCHMARK(BM_MapDelta);
BENCHMARK(BM_DistinctDelta)->Arg(1000)->Arg(100000);
BENCHMARK(BM_JoinDelta)->Arg(16)->Arg(1024);
BENCHMARK(BM_ReduceDelta)->Arg(16)->Arg(1024);
BENCHMARK(BM_AntiJoinDelta)->Arg(1024);
