// Experiment F7 — BGP incremental convergence vs full re-convergence.
//
// The BGP simulator runs the same worklist loop in both cases; the metric
// is (node, prefix) decision evaluations plus wall time. Expected shape:
// localized events (one announce/withdraw, one policy edit) re-evaluate a
// small multiple of the affected prefix count, while a full rebuild pays
// for every prefix at every node.
#include <cstdio>

#include "controlplane/bgp.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/timer.h"

using namespace dna;

namespace {

struct Metrics {
  size_t work = 0;
  double ms = 0;
};

Metrics full_build(const topo::Snapshot& snap) {
  cp::BgpSim sim;
  Stopwatch sw;
  sim.build(snap);
  return {sim.last_work_items(), sw.elapsed_ms()};
}

Metrics incremental(const topo::Snapshot& base, const topo::Snapshot& target) {
  cp::BgpSim sim;
  sim.build(base);
  auto changes = config::diff_configs(base.configs, target.configs);
  Stopwatch sw;
  sim.update(target, changes, {});
  return {sim.last_work_items(), sw.elapsed_ms()};
}

void row(const std::string& name, const topo::Snapshot& base,
         const topo::Snapshot& target) {
  Metrics full = full_build(target);
  Metrics inc = incremental(base, target);
  std::printf("%-24s %10zu %10zu %10.2f %10.2f %8.1fx\n", name.c_str(),
              full.work, inc.work, full.ms, inc.ms,
              full.ms / std::max(inc.ms, 1e-6));
}

}  // namespace

int main() {
  std::printf("F7: BGP convergence effort, full rebuild vs incremental\n");
  std::printf("%-24s %10s %10s %10s %10s %8s\n", "event", "full-work",
              "inc-work", "full(ms)", "inc(ms)", "speedup");
  for (int i = 0; i < 70; ++i) std::putchar('-');
  std::putchar('\n');

  for (auto [edges, cores] : {std::pair{8, 3}, std::pair{24, 4}}) {
    topo::Snapshot base = topo::make_two_tier_as(edges, cores);
    std::string tag =
        "as" + std::to_string(edges) + "x" + std::to_string(cores) + ": ";
    row(tag + "announce", base,
        topo::with_bgp_announce(base, "as0",
                                Ipv4Prefix(Ipv4Addr(198, 19, 7, 0), 24)));
    row(tag + "withdraw", base,
        topo::with_bgp_withdraw(base, "as0",
                                Ipv4Prefix(Ipv4Addr(172, 31, 0, 0), 24)));
    row(tag + "local-pref", base,
        topo::with_bgp_local_pref(
            base, "as1", base.config_of("as1").bgp.neighbors[0].peer_ip, 250));
    row(tag + "session-loss", base, topo::with_link_state(base, 0, false));
  }
  return 0;
}
