// Experiment F5 (ablation) — incremental SPF vs full Dijkstra per event.
//
// Measures the per-event cost of maintaining one source's shortest-path
// tree under random weight changes, comparing DynamicSssp against re-running
// Dijkstra. Expected shape: the dynamic algorithm wins by the ratio of
// affected-region size to graph size; on small perturbations that is 10-100x.
#include <benchmark/benchmark.h>

#include "controlplane/incremental_spf.h"
#include "topo/generators.h"
#include "util/rng.h"

using namespace dna;
using namespace dna::cp;

namespace {

WeightedDigraph graph_for(const std::string& kind, int scale, Rng& rng) {
  // Build a snapshot, then lift its adjacency into a plain digraph.
  topo::Snapshot snap;
  if (kind == "ring") snap = topo::make_ring(scale);
  if (kind == "grid") snap = topo::make_grid(scale / 8, 8);
  if (kind == "random") snap = topo::make_random(scale, scale * 3, rng);
  WeightedDigraph graph;
  graph.resize(snap.topology.num_nodes());
  for (uint32_t li = 0; li < snap.topology.num_links(); ++li) {
    const topo::Link& link = snap.topology.link(li);
    const auto* ia = snap.configs[link.a].find_interface(link.a_if);
    const auto* ib = snap.configs[link.b].find_interface(link.b_if);
    graph.add_arc(link.a, link.b, std::max(1, ia->ospf_cost), li);
    graph.add_arc(link.b, link.a, std::max(1, ib->ospf_cost), li);
  }
  return graph;
}

/// A deterministic stream of arc-weight events over a shared graph.
struct EventStream {
  WeightedDigraph graph;
  struct Event {
    topo::NodeId u;
    size_t arc_index;
    int new_w;
  };
  std::vector<Event> events;

  EventStream(const std::string& kind, int scale) {
    Rng rng(0x5bf);
    graph = graph_for(kind, scale, rng);
    for (int i = 0; i < 64; ++i) {
      topo::NodeId u;
      do {
        u = static_cast<topo::NodeId>(rng.below(graph.num_nodes()));
      } while (graph.out[u].empty());
      size_t arc = rng.below(graph.out[u].size());
      events.push_back({u, arc, static_cast<int>(rng.range(1, 30))});
    }
  }

  /// Mutates the graph per event i; returns (u, v, old_w, new_w).
  std::tuple<topo::NodeId, topo::NodeId, int, int> apply(size_t i) {
    const Event& event = events[i % events.size()];
    Arc& arc = graph.out[event.u][event.arc_index];
    const int old_w = arc.weight;
    arc.weight = event.new_w;
    for (Arc& in_arc : graph.in[arc.to]) {
      if (in_arc.to == event.u && in_arc.link == arc.link) {
        in_arc.weight = event.new_w;
      }
    }
    return {event.u, arc.to, old_w, event.new_w};
  }
};

void BM_IncrementalSpf(benchmark::State& state, const std::string& kind,
                       int scale) {
  EventStream stream(kind, scale);
  DynamicSssp sssp(&stream.graph, 0);
  size_t i = 0;
  for (auto _ : state) {
    auto [u, v, old_w, new_w] = stream.apply(i++);
    auto changed = sssp.arc_updated(u, v, old_w, new_w);
    benchmark::DoNotOptimize(changed);
  }
}

void BM_FullDijkstra(benchmark::State& state, const std::string& kind,
                     int scale) {
  EventStream stream(kind, scale);
  size_t i = 0;
  for (auto _ : state) {
    auto event = stream.apply(i++);
    benchmark::DoNotOptimize(event);
    auto dist = dijkstra(stream.graph, 0);
    benchmark::DoNotOptimize(dist);
  }
}

}  // namespace

BENCHMARK_CAPTURE(BM_IncrementalSpf, ring64, "ring", 64);
BENCHMARK_CAPTURE(BM_FullDijkstra, ring64, "ring", 64);
BENCHMARK_CAPTURE(BM_IncrementalSpf, grid128, "grid", 128);
BENCHMARK_CAPTURE(BM_FullDijkstra, grid128, "grid", 128);
BENCHMARK_CAPTURE(BM_IncrementalSpf, random200, "random", 200);
BENCHMARK_CAPTURE(BM_FullDijkstra, random200, "random", 200);
