// Scaling of the batch what-if runner: wall time of a full link-failure
// sweep on generated fat-trees as the thread count grows 1 -> N.
//
// Also the determinism check at bench scale: every thread count must produce
// a byte-identical ranked report (diagnostics like timings are excluded from
// the report text by design — see scenario/report.h).
//
//   $ ./bench_scenario_batch [k ...]      # fat-tree degrees, default 4 6
#include <cstdlib>
#include <iostream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "scenario/runner.h"
#include "util/timer.h"

using namespace dna;

namespace {

void bench_fattree(int k) {
  topo::Snapshot base = topo::make_fattree(k);
  std::vector<scenario::ScenarioSpec> specs =
      scenario::link_failure_sweep(base);
  std::vector<core::Invariant> invariants = {
      {core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()}};
  scenario::ScenarioRunner runner(base, invariants);

  std::printf("fat-tree k=%d: %zu nodes, %zu links, %zu scenarios\n", k,
              base.topology.num_nodes(), base.topology.num_links(),
              specs.size());
  std::printf("%8s %12s %10s %10s\n", "threads", "total ms", "speedup",
              "report");
  bench::print_rule(44);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::string reference_report;
  double t1_ms = 0;
  bool all_identical = true;
  for (size_t threads : thread_counts) {
    scenario::RunnerOptions options;
    options.num_threads = threads;
    Stopwatch stopwatch;
    scenario::ScenarioReport report = runner.run(specs, options);
    const double ms = stopwatch.elapsed_ms();
    const std::string text = report.str();
    if (reference_report.empty()) {
      reference_report = text;
      t1_ms = ms;
    }
    const bool identical = text == reference_report;
    all_identical = all_identical && identical;
    std::printf("%8zu %12.1f %9.2fx %10s\n", threads, ms, t1_ms / ms,
                identical ? "identical" : "DIVERGED");
  }
  std::printf("(%u hardware thread(s) available; speedup saturates there)\n\n",
              hw);
  if (!all_identical) {
    std::printf("FAIL: ranked reports diverged across thread counts\n");
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<int> degrees;
  for (int i = 1; i < argc; ++i) degrees.push_back(std::atoi(argv[i]));
  if (degrees.empty()) degrees = {4, 6};
  for (int k : degrees) bench_fattree(k);
  return 0;
}
