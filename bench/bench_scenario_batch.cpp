// Scaling of the batch what-if runner: wall time of a full link-failure
// sweep on generated fat-trees as the thread count grows 1 -> N.
//
// Also the determinism check at bench scale: every thread count must produce
// a byte-identical ranked report (diagnostics like timings are excluded from
// the report text by design — see scenario/report.h).
//
// Output: human-readable tables plus machine-readable BENCH_scenario.json in
// the same shape as BENCH_dataflow.json / BENCH_service.json (ns-per-op
// results, speedups, peak RSS). Flags:
//   --quick                smallest fat-tree only (CI)
//   --json=PATH            write the JSON report (default BENCH_scenario.json)
//   --check=BASELINE.json  fail (exit 1) if a gated entry regresses >2x
//                          versus the baseline, calibrated by the
//                          monolithic anchor (fixed engine code measured in
//                          this very process) so the gate ports across
//                          machine speeds
//   (positional: fat-tree degrees, default 4 6)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "scenario/runner.h"
#include "util/timer.h"

using namespace dna;

namespace {

bench::BenchReport g_report;

void bench_fattree(int k) {
  topo::Snapshot base = topo::make_fattree(k);
  std::vector<scenario::ScenarioSpec> specs =
      scenario::link_failure_sweep(base);
  std::vector<core::Invariant> invariants = {
      {core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()}};
  scenario::ScenarioRunner runner(base, invariants);

  std::printf("fat-tree k=%d: %zu nodes, %zu links, %zu scenarios\n", k,
              base.topology.num_nodes(), base.topology.num_links(),
              specs.size());
  std::printf("%8s %12s %10s %10s\n", "threads", "total ms", "speedup",
              "report");
  bench::print_rule(44);

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::string reference_report;
  double t1_ms = 0;
  bool all_identical = true;
  for (size_t threads : thread_counts) {
    scenario::RunnerOptions options;
    options.num_threads = threads;
    Stopwatch stopwatch;
    scenario::ScenarioReport report = runner.run(specs, options);
    const double ms = stopwatch.elapsed_ms();
    // Only the single-thread number is portable enough to gate; the
    // scaling entries depend on the runner's core count.
    g_report.record(
        "sweep_t" + std::to_string(threads) + "_k" + std::to_string(k),
        specs.size(), ms / 1e3, /*gated=*/threads == 1);
    const std::string text = report.str();
    if (reference_report.empty()) {
      reference_report = text;
      t1_ms = ms;
    }
    const bool identical = text == reference_report;
    all_identical = all_identical && identical;
    std::printf("%8zu %12.1f %9.2fx %10s\n", threads, ms, t1_ms / ms,
                identical ? "identical" : "DIVERGED");
  }
  std::printf("(%u hardware thread(s) available; speedup saturates there)\n\n",
              hw);
  if (!all_identical) {
    std::printf("FAIL: ranked reports diverged across thread counts\n");
    std::exit(1);
  }
}

/// The calibration anchor: one monolithic advance of a single link failure
/// on the smallest swept fat-tree. Fixed engine code measured in this very
/// process, so current/baseline over it isolates machine speed.
void bench_anchor(int k) {
  const topo::Snapshot base = topo::make_fattree(k);
  const topo::Snapshot target = topo::with_link_state(base, 0, /*up=*/false);
  const double ms =
      bench::advance_ms(base, target, core::Mode::kMonolithic, /*reps=*/3);
  g_report.record("anchor_monolithic", 1, ms / 1e3, /*gated=*/false);
}

void write_json(const std::string& path, bool quick,
                const std::vector<int>& degrees) {
  util::JsonWriter json;
  json.begin_object();
  json.key("bench").value("scenario_batch");
  json.key("quick").value(quick);
  g_report.append_json(json);
  json.key("speedups").begin_object();
  for (const int k : degrees) {
    const double t1 = g_report.ns_of("sweep_t1_k" + std::to_string(k));
    for (const size_t threads : {2u, 4u}) {
      const double tn = g_report.ns_of("sweep_t" + std::to_string(threads) +
                                       "_k" + std::to_string(k));
      json.key("threads_" + std::to_string(threads) + "_k" +
               std::to_string(k))
          .value(tn > 0 ? t1 / tn : 0);
    }
  }
  json.end_object();
  json.end_object();

  std::ofstream out(path);
  out << json.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_scenario.json";
  std::string baseline_path;
  std::vector<int> degrees;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--check=", 0) == 0) {
      baseline_path = arg.substr(8);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      degrees.push_back(std::atoi(arg.c_str()));
    }
  }
  if (degrees.empty()) degrees = quick ? std::vector<int>{4}
                                       : std::vector<int>{4, 6};

  // The anchor is always k=4 regardless of the swept degrees: calibration
  // must compare like with like against the checked-in baseline's anchor.
  bench_anchor(/*k=*/4);
  for (int k : degrees) bench_fattree(k);
  write_json(json_path, quick, degrees);

  if (!baseline_path.empty() &&
      g_report.check_against_baseline(baseline_path, "anchor_monolithic") !=
          0) {
    return 1;
  }
  return 0;
}
