// Experiment T2 — behaviour-delta sizes and cost per change type.
//
// One fat-tree (OSPF) and one two-tier AS fabric (BGP); for each operator
// action, report the config/FIB/reachability delta sizes, the number of
// re-verified ECs, and the latency of both modes.
// Expected shape: ACL edits have zero FIB delta and touch few ECs; link
// failures churn many FIB entries but reachability survives (fat-tree
// redundancy); BGP withdrawals lose reachability everywhere.
#include "bench_common.h"

using namespace dna;
using namespace dna::bench;

namespace {

void run_case(const std::string& name, const topo::Snapshot& base,
              const topo::Snapshot& target) {
  core::NetworkDiff diff =
      advance_once(base, target, core::Mode::kDifferential);
  double mono_ms = advance_ms(base, target, core::Mode::kMonolithic);
  double diff_ms = advance_ms(base, target, core::Mode::kDifferential);
  std::printf("%-22s %6zu %6zu %8zu %9zu/%-6zu %10.3f %10.3f %8.1fx\n",
              name.c_str(), diff.config_changes.size(),
              diff.fib_delta.total_changes(),
              diff.reach_delta.total_changes(), diff.affected_ecs,
              diff.total_ecs, mono_ms, diff_ms,
              mono_ms / std::max(diff_ms, 1e-6));
}

}  // namespace

int main() {
  std::printf("T2: per-change-type deltas and latency\n");
  std::printf("%-22s %6s %6s %8s %16s %10s %10s %8s\n", "change", "cfgΔ",
              "fibΔ", "reachΔ", "ECs affected", "mono(ms)", "diff(ms)",
              "speedup");
  print_rule(100);

  topo::Snapshot ft = topo::make_fattree(6);
  run_case("ft6: link-cost", ft, topo::with_link_cost(ft, 3, 60));
  run_case("ft6: link-failure", ft, topo::with_link_state(ft, 3, false));
  run_case("ft6: acl-block-1net", ft,
           topo::with_acl_block(ft, "sw0",
                                Ipv4Prefix(Ipv4Addr(172, 31, 9, 0), 24)));
  run_case("ft6: acl-block-all", ft,
           topo::with_acl_block(ft, "sw0",
                                Ipv4Prefix(Ipv4Addr(172, 31, 0, 0), 16)));
  {
    const topo::Link& link = ft.topology.link(0);
    Ipv4Addr via = ft.configs[link.b].find_interface(link.b_if)->address;
    run_case("ft6: static-route", ft,
             topo::with_static_route(ft, "sw0",
                                     Ipv4Prefix(Ipv4Addr(198, 18, 0, 0), 24),
                                     via));
  }

  topo::Snapshot as = topo::make_two_tier_as(8, 3);
  run_case("as: announce", as,
           topo::with_bgp_announce(as, "as1",
                                   Ipv4Prefix(Ipv4Addr(198, 19, 1, 0), 24)));
  run_case("as: withdraw", as,
           topo::with_bgp_withdraw(as, "as1",
                                   Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)));
  run_case("as: local-pref", as,
           topo::with_bgp_local_pref(
               as, "as0", as.config_of("as0").bgp.neighbors[0].peer_ip, 250));
  run_case("as: session-loss", as, topo::with_link_state(as, 0, false));
  return 0;
}
