// Experiment F2 — diff latency vs network size, fixed single change.
//
// Two families (fat-trees and rings), one link-cost change each.
// Expected shape: monolithic grows superlinearly with size (more ECs x more
// nodes to re-verify); differential stays near-flat, so speedup grows with
// scale.
#include "bench_common.h"

using namespace dna;
using namespace dna::bench;

namespace {

void row(const std::string& name, const topo::Snapshot& base) {
  // Constant-size change regardless of topology scale: one static /24.
  const topo::Link& link = base.topology.link(0);
  Ipv4Addr via = base.configs[link.b].find_interface(link.b_if)->address;
  topo::Snapshot target = topo::with_static_route(
      base, base.topology.node_name(link.a),
      Ipv4Prefix(Ipv4Addr(198, 18, 0, 0), 24), via);
  double mono_ms = advance_ms(base, target, core::Mode::kMonolithic);
  double diff_ms = advance_ms(base, target, core::Mode::kDifferential);
  std::printf("%-14s %7zu %7zu %12.3f %12.3f %8.1fx\n", name.c_str(),
              base.topology.num_nodes(), base.topology.num_links(), mono_ms,
              diff_ms, mono_ms / std::max(diff_ms, 1e-6));
}

}  // namespace

int main() {
  std::printf("F2: latency vs network size (constant narrow change)\n");
  std::printf("%-14s %7s %7s %12s %12s %8s\n", "topology", "nodes", "links",
              "mono (ms)", "diff (ms)", "speedup");
  print_rule(66);
  for (int k : {4, 6, 8}) {
    row("fattree-k" + std::to_string(k), topo::make_fattree(k));
  }
  for (int n : {16, 32, 64, 128}) {
    row("ring-" + std::to_string(n), topo::make_ring(n));
  }
  return 0;
}
