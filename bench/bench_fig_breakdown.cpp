// Experiment F3 — differential-mode stage breakdown.
//
// Where does the differential pipeline spend its time, per change type?
// Expected shape: routing changes are dominated by incremental SPF + FIB
// rebuild + affected-EC verification; ACL edits skip the control plane
// entirely; BGP events are dominated by the bgp stage.
#include "bench_common.h"

using namespace dna;
using namespace dna::bench;

namespace {

void row(const std::string& name, const topo::Snapshot& base,
         const topo::Snapshot& target) {
  core::DnaEngine engine(base);
  core::NetworkDiff diff = engine.advance(target, core::Mode::kDifferential);
  double config = 0, ospf = 0, bgp = 0, fib = 0, ec = 0, verify = 0;
  for (const auto& entry : diff.stages.entries()) {
    if (entry.stage == "config-diff") config = entry.seconds * 1e3;
    if (entry.stage == "ospf") ospf = entry.seconds * 1e3;
    if (entry.stage == "bgp") bgp = entry.seconds * 1e3;
    if (entry.stage == "fib") fib = entry.seconds * 1e3;
    if (entry.stage == "ec-index") ec = entry.seconds * 1e3;
    if (entry.stage == "verify") verify = entry.seconds * 1e3;
  }
  std::printf("%-24s %9.3f %9.3f %9.3f %9.3f %9.3f %9.3f %10.3f\n",
              name.c_str(), config, ospf, bgp, fib, ec, verify,
              diff.seconds_total * 1e3);
}

}  // namespace

int main() {
  std::printf("F3: differential stage breakdown (ms per stage)\n");
  std::printf("%-24s %9s %9s %9s %9s %9s %9s %10s\n", "change", "cfg-diff",
              "ospf", "bgp", "fib", "ec-index", "verify", "total");
  print_rule(96);

  for (int k : {6, 8}) {
    topo::Snapshot ft = topo::make_fattree(k);
    std::string tag = "ft" + std::to_string(k) + ": ";
    row(tag + "link-cost", ft, topo::with_link_cost(ft, 3, 60));
    row(tag + "link-failure", ft, topo::with_link_state(ft, 3, false));
    row(tag + "acl-block", ft,
        topo::with_acl_block(ft, "sw0",
                             Ipv4Prefix(Ipv4Addr(172, 31, 2, 0), 24)));
  }
  topo::Snapshot as = topo::make_two_tier_as(12, 4);
  row("as: withdraw", as,
      topo::with_bgp_withdraw(as, "as1",
                              Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)));
  row("as: local-pref", as,
      topo::with_bgp_local_pref(
          as, "as0", as.config_of("as0").bgp.neighbors[0].peer_ip, 250));
  return 0;
}
