// Serving-layer benchmarks for the long-lived query service:
//
//  1. Query throughput scaling: a fixed batch of reachability/invariant
//     queries against a resident fat-tree model, as the worker count grows
//     1 -> N. Answers must be identical for every thread count.
//
//  2. Live update latency: committing a change against the running service
//     differentially vs recomputing the same change from scratch
//     (monolithic mode). The differential commit must win strictly — this
//     is the paper's thesis restated at the serving layer, and the bench
//     fails (exit 1) if it ever does not.
//
//   $ ./bench_service_throughput [k] [queries]   # defaults: k=4, 224
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "core/change.h"
#include "scenario/spec.h"
#include "service/service.h"
#include "topo/generators.h"
#include "util/timer.h"

using namespace dna;

namespace {

/// Host-to-host reachability questions derived from the snapshot itself:
/// one "reach <src> <addr-in-dst-host-net>" per ordered owner pair.
std::vector<std::string> make_queries(const topo::Snapshot& base,
                                      size_t count) {
  std::vector<std::string> queries;
  const auto invariants = scenario::host_reachability_invariants(base);
  if (invariants.empty()) {
    std::fprintf(stderr, "no host networks in base snapshot\n");
    std::exit(1);
  }
  while (queries.size() < count) {
    for (const core::Invariant& invariant : invariants) {
      if (queries.size() >= count) break;
      const Ipv4Addr probe(invariant.traffic.first().bits() + 1);
      queries.push_back("reach " + invariant.src + " " + probe.str());
    }
  }
  return queries;
}

void bench_throughput(int k, size_t num_queries) {
  const topo::Snapshot base = topo::make_fattree(k);
  const std::vector<std::string> queries = make_queries(base, num_queries);
  std::printf("fat-tree k=%d: %zu nodes, %zu links, %zu queries per run\n", k,
              base.topology.num_nodes(), base.topology.num_links(),
              queries.size());
  std::printf("%8s %12s %12s %10s %10s\n", "threads", "total ms", "queries/s",
              "speedup", "answers");
  bench::print_rule(58);

  std::vector<std::string> reference;
  double t1_ms = 0;
  bool all_identical = true;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    service::DnaService service(base, {}, {.num_threads = threads});
    // Warm every worker replica (base verification) outside the timing.
    {
      std::vector<std::future<service::QueryResult>> warmup;
      for (size_t i = 0; i < service.num_workers() * 2; ++i) {
        warmup.push_back(service.submit(queries[i % queries.size()]));
      }
      for (auto& future : warmup) future.get();
    }

    Stopwatch stopwatch;
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(queries.size());
    for (const std::string& query : queries) {
      futures.push_back(service.submit(query));
    }
    std::vector<std::string> answers;
    answers.reserve(futures.size());
    for (auto& future : futures) {
      service::QueryResult result = future.get();
      if (!result.ok) {
        std::fprintf(stderr, "FAIL: query error: %s\n", result.body.c_str());
        std::exit(1);
      }
      answers.push_back(std::move(result.body));
    }
    const double ms = stopwatch.elapsed_ms();

    if (reference.empty()) {
      reference = answers;
      t1_ms = ms;
    }
    const bool identical = answers == reference;
    all_identical = all_identical && identical;
    std::printf("%8zu %12.1f %12.0f %9.2fx %10s\n", threads, ms,
                queries.size() / (ms / 1e3), t1_ms / ms,
                identical ? "identical" : "DIVERGED");
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("(%u hardware thread(s) available; speedup saturates there)\n\n",
              hw);
  if (!all_identical) {
    std::printf("FAIL: answers diverged across thread counts\n");
    std::exit(1);
  }
}

void bench_live_commit(int k) {
  const topo::Snapshot base = topo::make_fattree(k);
  service::DnaService service(base, {}, {.num_threads = 2});
  // The service is live: a resident writer engine holds the verified head.
  service.query("reach " + base.topology.node_name(0) + " 172.31.1.1");

  std::printf("live commit, fat-tree k=%d (set one link cost):\n", k);
  std::printf("%16s %12s\n", "mode", "best ms");
  bench::print_rule(30);

  constexpr int kTrials = 3;
  double best_diff = 1e30, best_mono = 1e30;
  int cost = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto diff =
        service.commit(core::ChangePlan::link_cost(0, cost++),
                       core::Mode::kDifferential);
    best_diff = std::min(best_diff, diff.seconds * 1e3);
    const auto mono =
        service.commit(core::ChangePlan::link_cost(0, cost++),
                       core::Mode::kMonolithic);
    best_mono = std::min(best_mono, mono.seconds * 1e3);
  }
  std::printf("%16s %12.2f\n", "differential", best_diff);
  std::printf("%16s %12.2f\n", "monolithic", best_mono);
  std::printf("differential is %.1fx faster\n\n", best_mono / best_diff);
  if (best_diff >= best_mono) {
    std::printf(
        "FAIL: differential commit not strictly faster than monolithic\n");
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 4;
  const size_t num_queries =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 224;
  bench_throughput(k, num_queries);
  bench_live_commit(k);
  return 0;
}
