// Serving-layer benchmarks for the long-lived query service:
//
//  1. Query throughput scaling: a fixed batch of reachability queries
//     against a resident fat-tree model, as the worker count grows 1 -> N.
//     Answers must be identical for every thread count.
//
//  2. Live update latency: committing a change against the running service
//     differentially vs recomputing the same change from scratch
//     (monolithic mode). The differential commit must win strictly — this
//     is the paper's thesis restated at the serving layer, and the bench
//     fails (exit 1) if it ever does not.
//
//  3. Durability cost: the same differential commit with the write-ahead
//     journal off, on without fsync, and on with fsync — what crash
//     durability actually charges per commit.
//
// Output: human-readable tables plus machine-readable BENCH_service.json
// (same shape as BENCH_dataflow.json: ns-per-op results, ratios, peak
// RSS). Flags:
//   --k=N                  fat-tree parameter (default 4)
//   --queries=N            queries per throughput run (default 224)
//   --quick                smaller trial counts (CI)
//   --json=PATH            write the JSON report (default BENCH_service.json)
//   --check=BASELINE.json  fail (exit 1) if a CPU-bound bench regresses >2x
//                          versus the baseline; the comparison is
//                          calibrated by the monolithic commit (fixed
//                          engine code measured in this very process) so it
//                          ports across machine speeds. fsync-bound numbers
//                          are recorded but never gated — they measure the
//                          disk, not the code.
//   (positional: [k] [queries], kept for compatibility)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "bench_common.h"
#include "core/change.h"
#include "scenario/spec.h"
#include "service/service.h"
#include "topo/generators.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace dna;

namespace {

struct BenchResult {
  std::string name;
  size_t ops = 0;
  double ns_per_op = 0;
  bool gated = true;  // false: informational (disk-bound or the anchor)
};

std::vector<BenchResult> g_results;

void record(const std::string& name, size_t ops, double seconds,
            bool gated = true) {
  const double ns = seconds * 1e9 / static_cast<double>(ops);
  g_results.push_back({name, ops, ns, gated});
}

double ns_of(const std::string& name) {
  for (const BenchResult& r : g_results) {
    if (r.name == name) return r.ns_per_op;
  }
  return 0;
}

/// Host-to-host reachability questions derived from the snapshot itself:
/// one "reach <src> <addr-in-dst-host-net>" per ordered owner pair.
std::vector<std::string> make_queries(const topo::Snapshot& base,
                                      size_t count) {
  std::vector<std::string> queries;
  const auto invariants = scenario::host_reachability_invariants(base);
  if (invariants.empty()) {
    std::fprintf(stderr, "no host networks in base snapshot\n");
    std::exit(1);
  }
  while (queries.size() < count) {
    for (const core::Invariant& invariant : invariants) {
      if (queries.size() >= count) break;
      const Ipv4Addr probe(invariant.traffic.first().bits() + 1);
      queries.push_back("reach " + invariant.src + " " + probe.str());
    }
  }
  return queries;
}

void bench_throughput(int k, size_t num_queries) {
  const topo::Snapshot base = topo::make_fattree(k);
  const std::vector<std::string> queries = make_queries(base, num_queries);
  std::printf("fat-tree k=%d: %zu nodes, %zu links, %zu queries per run\n", k,
              base.topology.num_nodes(), base.topology.num_links(),
              queries.size());
  std::printf("%8s %12s %12s %10s %10s\n", "threads", "total ms", "queries/s",
              "speedup", "answers");
  bench::print_rule(58);

  std::vector<std::string> reference;
  double t1_ms = 0;
  bool all_identical = true;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    service::DnaService service(base, {}, {.num_threads = threads});
    // Warm every worker replica (base verification) outside the timing.
    {
      std::vector<std::future<service::QueryResult>> warmup;
      for (size_t i = 0; i < service.num_workers() * 2; ++i) {
        warmup.push_back(service.submit(queries[i % queries.size()]));
      }
      for (auto& future : warmup) future.get();
    }

    Stopwatch stopwatch;
    std::vector<std::future<service::QueryResult>> futures;
    futures.reserve(queries.size());
    for (const std::string& query : queries) {
      futures.push_back(service.submit(query));
    }
    std::vector<std::string> answers;
    answers.reserve(futures.size());
    for (auto& future : futures) {
      service::QueryResult result = future.get();
      if (!result.ok) {
        std::fprintf(stderr, "FAIL: query error: %s\n", result.body.c_str());
        std::exit(1);
      }
      answers.push_back(std::move(result.body));
    }
    const double ms = stopwatch.elapsed_ms();
    // Only the single-thread number is portable enough to gate: the
    // scaling entries depend on the runner's core count and
    // oversubscription behavior, not on the code under test.
    record("query_t" + std::to_string(threads), queries.size(), ms / 1e3,
           /*gated=*/threads == 1);

    if (reference.empty()) {
      reference = answers;
      t1_ms = ms;
    }
    const bool identical = answers == reference;
    all_identical = all_identical && identical;
    std::printf("%8zu %12.1f %12.0f %9.2fx %10s\n", threads, ms,
                queries.size() / (ms / 1e3), t1_ms / ms,
                identical ? "identical" : "DIVERGED");
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("(%u hardware thread(s) available; speedup saturates there)\n\n",
              hw);
  if (!all_identical) {
    std::printf("FAIL: answers diverged across thread counts\n");
    std::exit(1);
  }
}

void bench_live_commit(int k, int trials) {
  const topo::Snapshot base = topo::make_fattree(k);
  service::DnaService service(base, {}, {.num_threads = 2});
  // The service is live: a resident writer engine holds the verified head.
  service.query("reach " + base.topology.node_name(0) + " 172.31.1.1");

  std::printf("live commit, fat-tree k=%d (set one link cost):\n", k);
  std::printf("%24s %12s\n", "mode", "best ms");
  bench::print_rule(38);

  double best_diff = 1e30, best_mono = 1e30;
  int cost = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const auto diff =
        service.commit(core::ChangePlan::link_cost(0, cost++),
                       core::Mode::kDifferential);
    best_diff = std::min(best_diff, diff.seconds);
    const auto mono =
        service.commit(core::ChangePlan::link_cost(0, cost++),
                       core::Mode::kMonolithic);
    best_mono = std::min(best_mono, mono.seconds);
  }
  record("commit_differential", 1, best_diff);
  record("commit_monolithic", 1, best_mono, /*gated=*/false);  // the anchor
  std::printf("%24s %12.2f\n", "differential", best_diff * 1e3);
  std::printf("%24s %12.2f\n", "monolithic", best_mono * 1e3);
  std::printf("differential is %.1fx faster\n\n", best_mono / best_diff);
  if (best_diff >= best_mono) {
    std::printf(
        "FAIL: differential commit not strictly faster than monolithic\n");
    std::exit(1);
  }
}

/// The durability bill: identical differential commits through the
/// write-ahead journal, without and with per-commit fsync.
void bench_journal_commit(int k, int trials) {
  const topo::Snapshot base = topo::make_fattree(k);
  std::printf("journaled commit, fat-tree k=%d (set one link cost):\n", k);
  std::printf("%24s %12s\n", "journal", "best ms");
  bench::print_rule(38);

  const struct {
    const char* name;
    service::FsyncPolicy fsync;
    bool gated;
  } variants[] = {
      {"commit_journal_nofsync", service::FsyncPolicy::kNever, true},
      // fsync latency measures the disk under the CI runner, not the
      // representation; record it, never gate on it.
      {"commit_journal_fsync", service::FsyncPolicy::kAlways, false},
  };
  for (const auto& variant : variants) {
    std::string dir_template =
        (std::filesystem::temp_directory_path() / "dna_bench_XXXXXX");
    const char* dir = ::mkdtemp(dir_template.data());
    if (dir == nullptr) {
      std::fprintf(stderr, "cannot create temp journal dir from %s\n",
                   dir_template.c_str());
      std::exit(1);
    }
    service::ServiceOptions options;
    options.num_threads = 2;
    options.journal_dir = dir;
    options.journal_fsync = variant.fsync;
    double best = 1e30;
    {
      service::DnaService service(base, {}, options);
      int cost = 140;
      for (int trial = 0; trial < trials; ++trial) {
        const auto commit =
            service.commit_text("link_cost 0 " + std::to_string(cost++));
        best = std::min(best, commit.seconds);
      }
    }
    std::filesystem::remove_all(dir);
    record(variant.name, 1, best, variant.gated);
    std::printf("%24s %12.2f\n", variant.name, best * 1e3);
  }
  const double plain = ns_of("commit_differential");
  if (plain > 0) {
    std::printf("journal overhead: %.2fx (no fsync), %.2fx (fsync)\n\n",
                ns_of("commit_journal_nofsync") / plain,
                ns_of("commit_journal_fsync") / plain);
  }
}

// ---- report ---------------------------------------------------------------

long peak_rss_kb() {
#ifdef __unix__
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

void write_json(const std::string& path, bool quick) {
  util::JsonWriter json;
  json.begin_object();
  json.key("bench").value("service_throughput");
  json.key("quick").value(quick);
  json.key("peak_rss_kb").value(static_cast<long long>(peak_rss_kb()));
  json.key("results").begin_array();
  for (const BenchResult& r : g_results) {
    json.begin_object();
    json.key("name").value(r.name);
    json.key("ops").value(static_cast<unsigned long long>(r.ops));
    json.key("ns_per_op").value(r.ns_per_op);
    json.key("gated").value(r.gated);
    json.end_object();
  }
  json.end_array();
  json.key("speedups").begin_object();
  json.key("differential_vs_monolithic")
      .value(ns_of("commit_differential") > 0
                 ? ns_of("commit_monolithic") / ns_of("commit_differential")
                 : 0);
  json.end_object();
  json.key("overheads").begin_object();
  json.key("journal_nofsync")
      .value(ns_of("commit_differential") > 0
                 ? ns_of("commit_journal_nofsync") /
                       ns_of("commit_differential")
                 : 0);
  json.key("journal_fsync")
      .value(ns_of("commit_differential") > 0
                 ? ns_of("commit_journal_fsync") /
                       ns_of("commit_differential")
                 : 0);
  json.end_object();
  json.end_object();

  std::ofstream out(path);
  out << json.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

/// Pulls "ns_per_op" for `name` out of a report produced by write_json.
/// Minimal scan, not a general JSON parser — fine for our own format.
double baseline_ns(const std::string& text, const std::string& name) {
  const std::string name_token = "\"name\":\"" + name + "\"";
  size_t pos = text.find(name_token);
  if (pos == std::string::npos) return 0;
  const std::string ns_token = "\"ns_per_op\":";
  pos = text.find(ns_token, pos);
  if (pos == std::string::npos) return 0;
  return std::atof(text.c_str() + pos + ns_token.size());
}

int check_against_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  // The baseline was recorded on some other machine; raw ns does not port.
  // The monolithic commit is fixed engine code measured in this very
  // process, so current/baseline over it isolates machine speed and makes
  // the >2x gate about serving-layer regressions, not runner hardware.
  double machine_scale = 1.0;
  const double anchor = baseline_ns(text, "commit_monolithic");
  if (anchor > 0 && ns_of("commit_monolithic") > 0) {
    machine_scale = ns_of("commit_monolithic") / anchor;
  }
  std::printf("baseline machine-speed calibration: %.2fx\n", machine_scale);

  int failures = 0;
  for (const BenchResult& r : g_results) {
    if (!r.gated) continue;
    const double base = baseline_ns(text, r.name);
    if (base <= 0) {
      std::printf("baseline: %-24s (no entry, skipped)\n", r.name.c_str());
      continue;
    }
    const double ratio = r.ns_per_op / (base * machine_scale);
    const bool ok = ratio <= 2.0;
    std::printf("baseline: %-24s %10.0f -> %10.0f ns (%.2fx calibrated) %s\n",
                r.name.c_str(), base, r.ns_per_op, ratio,
                ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int k = 4;
  size_t num_queries = 224;
  bool quick = false;
  std::string json_path = "BENCH_service.json";
  std::string baseline_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--k=", 0) == 0) {
      k = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--queries=", 0) == 0) {
      num_queries = static_cast<size_t>(std::atoll(arg.c_str() + 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--check=", 0) == 0) {
      baseline_path = arg.substr(8);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() > 0) k = std::atoi(positional[0].c_str());
  if (positional.size() > 1) {
    num_queries = static_cast<size_t>(std::atoll(positional[1].c_str()));
  }

  const int trials = quick ? 3 : 5;
  bench_throughput(k, num_queries);
  bench_live_commit(k, trials);
  bench_journal_commit(k, trials);
  write_json(json_path, quick);

  if (!baseline_path.empty() && check_against_baseline(baseline_path) != 0) {
    return 1;
  }
  return 0;
}
