// Serving-layer benchmarks for the long-lived query service:
//
//  1. Query throughput scaling: a fixed batch of reachability queries
//     against a resident fat-tree model, as the worker count grows 1 -> N.
//     Answers must be identical for every thread count.
//
//  2. Live update latency: committing a change against the running service
//     differentially vs recomputing the same change from scratch
//     (monolithic mode). The differential commit must win strictly — this
//     is the paper's thesis restated at the serving layer, and the bench
//     fails (exit 1) if it ever does not.
//
//  3. Durability cost: the same differential commit with the write-ahead
//     journal off, on without fsync, and on with fsync — what crash
//     durability actually charges per commit.
//
//  4. Sharded serving: the same query batch pushed through a ShardRouter
//     over 1, 2, and 4 TCP shard processes-worth of DnaServices (in-process
//     hosts on ephemeral ports — the identical serving stack `dna_cli
//     shard-serve`/`route` run). Answers must be identical at every shard
//     count; throughput should scale with the shard count because each
//     shard owns its partition's queries end to end.
//
// Output: human-readable tables plus machine-readable BENCH_service.json
// (same shape as BENCH_dataflow.json: ns-per-op results, ratios, peak
// RSS). Flags:
//   --k=N                  fat-tree parameter (default 4)
//   --queries=N            queries per throughput run (default 224)
//   --quick                smaller trial counts (CI)
//   --json=PATH            write the JSON report (default BENCH_service.json)
//   --check=BASELINE.json  fail (exit 1) if a CPU-bound bench regresses >2x
//                          versus the baseline; the comparison is
//                          calibrated by the monolithic commit (fixed
//                          engine code measured in this very process) so it
//                          ports across machine speeds. fsync-bound numbers
//                          are recorded but never gated — they measure the
//                          disk, not the code.
//   (positional: [k] [queries], kept for compatibility)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "bench_common.h"
#include "core/change.h"
#include "obs/metrics.h"
#include "scenario/spec.h"
#include "service/net/server.h"
#include "service/net/tcp.h"
#include "service/service.h"
#include "service/shard/host.h"
#include "service/shard/router.h"
#include "topo/generators.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace dna;

namespace {

bench::BenchReport g_report;

void record(const std::string& name, size_t ops, double seconds,
            bool gated = true) {
  g_report.record(name, ops, seconds, gated);
}

double ns_of(const std::string& name) { return g_report.ns_of(name); }

/// One throughput run's latency attribution: where each query's wall time
/// went, summed over the batch — the same queue/catchup/eval partition
/// `dna_cli diagnose` reports, here as a function of the thread count.
struct LegRow {
  size_t threads = 0;
  double queue_seconds = 0;
  double fanout_seconds = 0;
  double catchup_seconds = 0;
  double eval_seconds = 0;
  double total_seconds = 0;  // service.query_seconds sum (submit→done)

  double share(double leg) const {
    return total_seconds > 0 ? leg / total_seconds : 0;
  }
};

std::vector<LegRow> g_leg_rows;

/// Host-to-host reachability questions derived from the snapshot itself:
/// one "reach <src> <addr-in-dst-host-net>" per ordered owner pair.
std::vector<std::string> make_queries(const topo::Snapshot& base,
                                      size_t count) {
  std::vector<std::string> queries;
  const auto invariants = scenario::host_reachability_invariants(base);
  if (invariants.empty()) {
    std::fprintf(stderr, "no host networks in base snapshot\n");
    std::exit(1);
  }
  while (queries.size() < count) {
    for (const core::Invariant& invariant : invariants) {
      if (queries.size() >= count) break;
      const Ipv4Addr probe(invariant.traffic.first().bits() + 1);
      queries.push_back("reach " + invariant.src + " " + probe.str());
    }
  }
  return queries;
}

void bench_throughput(int k, size_t num_queries, int trials) {
  const topo::Snapshot base = topo::make_fattree(k);
  const std::vector<std::string> queries = make_queries(base, num_queries);
  std::printf("fat-tree k=%d: %zu nodes, %zu links, %zu queries per run\n", k,
              base.topology.num_nodes(), base.topology.num_links(),
              queries.size());
  std::printf("%8s %12s %12s %10s %10s %8s %8s %8s %7s %7s %7s %7s\n",
              "threads", "total ms", "queries/s", "speedup", "answers",
              "p50 ms", "p95 ms", "p99 ms", "queue%", "fanout%", "catchup%",
              "eval%");
  bench::print_rule(118);

  std::vector<std::string> reference;
  double t1_ms = 0;
  bool all_identical = true;
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    service::DnaService service(base, {}, {.num_threads = threads});
    // Warm every worker replica (base verification) outside the timing.
    // One round is not enough: work stealing lets the first worker awake
    // run a whole round while its siblings are still parked (acute on
    // few-core runners), leaving their replicas cold to be built
    // mid-measurement. Submit rounds until every worker has actually run
    // a query — each worker's first task builds its replica.
    for (int round = 0; round < 64; ++round) {
      std::vector<std::future<service::QueryResult>> warmup;
      for (size_t i = 0; i < service.num_workers() * 2; ++i) {
        warmup.push_back(service.submit(queries[i % queries.size()]));
      }
      for (auto& future : warmup) future.get();
      // Only the pool workers need warming — the trailing row is the
      // dispatcher's inline-serve slot, which small batches warm on
      // their own.
      const auto stats = service.worker_stats();
      const bool all_warm = std::all_of(
          stats.begin(), stats.begin() + service.num_workers(),
          [](const auto& s) { return s.tasks > 0; });
      if (all_warm) break;
    }

    // Best of `trials` floods: one flood lasts well under a scheduler
    // quantum, so a single shot measures the runner's noise floor, not
    // the code. Best-of is the same policy the commit benches use.
    double ms = 1e30;
    std::vector<std::string> answers;
    for (int trial = 0; trial < trials; ++trial) {
      Stopwatch stopwatch;
      std::vector<std::future<service::QueryResult>> futures;
      futures.reserve(queries.size());
      for (const std::string& query : queries) {
        futures.push_back(service.submit(query));
      }
      std::vector<std::string> trial_answers;
      trial_answers.reserve(futures.size());
      for (auto& future : futures) {
        service::QueryResult result = future.get();
        if (!result.ok) {
          std::fprintf(stderr, "FAIL: query error: %s\n", result.body.c_str());
          std::exit(1);
        }
        trial_answers.push_back(std::move(result.body));
      }
      ms = std::min(ms, stopwatch.elapsed_ms());
      if (trial > 0 && trial_answers != answers) {
        std::fprintf(stderr, "FAIL: answers diverged across trials\n");
        std::exit(1);
      }
      answers = std::move(trial_answers);
    }
    // Only the single-thread number is portable enough to gate: the
    // scaling entries depend on the runner's core count and
    // oversubscription behavior, not on the code under test.
    record("query_t" + std::to_string(threads), queries.size(), ms / 1e3,
           /*gated=*/threads == 1);

    // Per-query latency percentiles from the service's own telemetry —
    // the same histogram `dna_cli stats` serves in production. (The warmup
    // queries are included; they are a rounding error of the batch.)
    const obs::Histogram::Snapshot lat =
        service.registry().histogram("service.query_seconds").snapshot();
    const obs::Histogram::Snapshot::Quantiles lat_q = lat.quantiles();
    const std::string prefix = "query_t" + std::to_string(threads);
    // Percentiles depend on queueing under the chosen thread count —
    // recorded for dashboards, never gated.
    record(prefix + "_p50", 1, lat_q.p50 * 1e-9, /*gated=*/false);
    record(prefix + "_p95", 1, lat_q.p95 * 1e-9, /*gated=*/false);
    record(prefix + "_p99", 1, lat_q.p99 * 1e-9, /*gated=*/false);

    // Leg attribution: the queue/catchup/eval histograms partition every
    // query's submit→done time, so their sums over the batch say where
    // this thread count actually spent its latency budget (the warmup
    // queries are in the sums too — same rounding error as above).
    auto hist_sum_seconds = [&service](const char* name) {
      return service.registry().histogram(name).snapshot().sum * 1e-9;
    };
    LegRow legs;
    legs.threads = threads;
    legs.queue_seconds = hist_sum_seconds("service.query_queue_seconds");
    legs.fanout_seconds = hist_sum_seconds("service.query_fanout_seconds");
    legs.catchup_seconds = hist_sum_seconds("service.replica_catchup_seconds");
    legs.eval_seconds = hist_sum_seconds("service.query_eval_seconds");
    legs.total_seconds = lat.sum * 1e-9;
    g_leg_rows.push_back(legs);
    if (lat.count > 0) {
      record(prefix + "_leg_queue", lat.count, legs.queue_seconds,
             /*gated=*/false);
      record(prefix + "_leg_fanout", lat.count, legs.fanout_seconds,
             /*gated=*/false);
      record(prefix + "_leg_catchup", lat.count, legs.catchup_seconds,
             /*gated=*/false);
      record(prefix + "_leg_eval", lat.count, legs.eval_seconds,
             /*gated=*/false);
    }

    if (reference.empty()) {
      reference = answers;
      t1_ms = ms;
    }
    const bool identical = answers == reference;
    all_identical = all_identical && identical;
    std::printf(
        "%8zu %12.1f %12.0f %9.2fx %10s %8.2f %8.2f %8.2f %6.1f%% %6.1f%% "
        "%6.1f%% %6.1f%%\n",
        threads, ms, queries.size() / (ms / 1e3), t1_ms / ms,
        identical ? "identical" : "DIVERGED", lat_q.p50 * 1e-6,
        lat_q.p95 * 1e-6, lat_q.p99 * 1e-6,
        legs.share(legs.queue_seconds) * 100,
        legs.share(legs.fanout_seconds) * 100,
        legs.share(legs.catchup_seconds) * 100,
        legs.share(legs.eval_seconds) * 100);
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("(%u hardware thread(s) available; speedup saturates there)\n\n",
              hw);
  if (!all_identical) {
    std::printf("FAIL: answers diverged across thread counts\n");
    std::exit(1);
  }
}

void bench_live_commit(int k, int trials) {
  const topo::Snapshot base = topo::make_fattree(k);
  service::DnaService service(base, {}, {.num_threads = 2});
  // The service is live: a resident writer engine holds the verified head.
  service.query("reach " + base.topology.node_name(0) + " 172.31.1.1");

  std::printf("live commit, fat-tree k=%d (set one link cost):\n", k);
  std::printf("%24s %12s\n", "mode", "best ms");
  bench::print_rule(38);

  double best_diff = 1e30, best_mono = 1e30;
  int cost = 40;
  for (int trial = 0; trial < trials; ++trial) {
    const auto diff =
        service.commit(core::ChangePlan::link_cost(0, cost++),
                       core::Mode::kDifferential);
    best_diff = std::min(best_diff, diff.seconds);
    const auto mono =
        service.commit(core::ChangePlan::link_cost(0, cost++),
                       core::Mode::kMonolithic);
    best_mono = std::min(best_mono, mono.seconds);
  }
  record("commit_differential", 1, best_diff);
  record("commit_monolithic", 1, best_mono, /*gated=*/false);  // the anchor
  std::printf("%24s %12.2f\n", "differential", best_diff * 1e3);
  std::printf("%24s %12.2f\n", "monolithic", best_mono * 1e3);
  std::printf("differential is %.1fx faster\n\n", best_mono / best_diff);
  if (best_diff >= best_mono) {
    std::printf(
        "FAIL: differential commit not strictly faster than monolithic\n");
    std::exit(1);
  }
}

/// One sharded deployment end to end: N in-process shard hosts on
/// ephemeral TCP ports, a router over them, itself served on TCP, and a
/// pool of client connections pushing `queries` through it. Returns the
/// answer bodies in query order (so callers can assert shard-count
/// invariance) and the wall time via `out_ms`.
std::vector<std::string> run_sharded(const topo::Snapshot& base,
                                     const std::vector<std::string>& queries,
                                     size_t num_shards, size_t num_clients,
                                     double* out_ms) {
  namespace shard = service::shard;
  std::vector<std::unique_ptr<shard::ShardHost>> hosts;
  std::vector<shard::Dialer> dialers;
  for (size_t i = 0; i < num_shards; ++i) {
    shard::ShardHostOptions options;
    options.service.num_threads = 1;
    hosts.push_back(std::make_unique<shard::ShardHost>(
        base, std::vector<core::Invariant>{}, options));
    dialers.push_back(hosts.back()->dialer());
  }
  shard::ShardRouter router(std::move(dialers));
  if (router.connect_all() != num_shards) {
    std::fprintf(stderr, "FAIL: sharded bench could not reach every shard\n");
    std::exit(1);
  }
  service::TcpListener listener(0);
  service::SessionServer server(listener, [&](service::Transport& transport) {
    shard::RouterSession session(router, transport);
    session.run();
    return session.shutdown_requested();
  });
  server.start();

  const std::string host = listener.host();
  const uint16_t port = listener.port();
  std::vector<std::string> answers(queries.size());
  std::atomic<bool> failed{false};
  auto drive = [&](size_t client, bool record) {
    auto transport = service::connect_tcp(host, port);
    service::ServiceClient service_client(*transport);
    for (size_t i = client; i < queries.size(); i += num_clients) {
      const service::QueryResult result = service_client.request(queries[i]);
      if (!result.ok) {
        std::fprintf(stderr, "FAIL: sharded query error: %s\n",
                     result.body.c_str());
        failed.store(true);
        return;
      }
      if (record) answers[i] = std::move(result.body);
    }
    service_client.close();
  };

  auto round = [&](bool record) {
    std::vector<std::thread> clients;
    for (size_t c = 0; c < num_clients; ++c) {
      clients.emplace_back(drive, c, record);
    }
    for (std::thread& thread : clients) thread.join();
  };
  round(/*record=*/false);  // warm every shard's replica (base verification)
  Stopwatch stopwatch;
  round(/*record=*/true);
  *out_ms = stopwatch.elapsed_ms();

  server.stop();
  if (failed.load()) std::exit(1);
  return answers;
}

void bench_sharded(int k, size_t num_queries) {
  const topo::Snapshot base = topo::make_fattree(k);
  const std::vector<std::string> queries = make_queries(base, num_queries);
  std::printf(
      "sharded serving, fat-tree k=%d: %zu queries through a TCP router\n", k,
      queries.size());
  std::printf("%8s %12s %12s %10s %10s\n", "shards", "total ms", "queries/s",
              "speedup", "answers");
  bench::print_rule(58);

  std::vector<std::string> reference;
  double s1_ms = 0;
  bool all_identical = true;
  for (const size_t shards : {1u, 2u, 4u}) {
    double ms = 0;
    const std::vector<std::string> answers =
        run_sharded(base, queries, shards, /*num_clients=*/8, &ms);
    // Machine-dependent (cores, loopback stack) — recorded, never gated.
    record("sharded_s" + std::to_string(shards), queries.size(), ms / 1e3,
           /*gated=*/false);
    if (reference.empty()) {
      reference = answers;
      s1_ms = ms;
    }
    const bool identical = answers == reference;
    all_identical = all_identical && identical;
    std::printf("%8zu %12.1f %12.0f %9.2fx %10s\n", shards, ms,
                queries.size() / (ms / 1e3), s1_ms / ms,
                identical ? "identical" : "DIVERGED");
  }
  std::printf("\n");
  if (!all_identical) {
    std::printf("FAIL: answers diverged across shard counts\n");
    std::exit(1);
  }
}

/// The availability bill: tail latency of a replicated (R=2) two-shard
/// fabric when one shard dies cold mid-stream. A single client streams
/// queries through the router; halfway in, shard 1's host is stopped.
/// Every query must still answer — the router fails the dead replica over
/// to the survivor — and the rows compare the steady-state window's p99
/// with the degraded window's (which includes the kill itself, i.e. the
/// first query that eats the dead-connection error plus the re-dial).
void bench_failover(int k, size_t num_queries) {
  namespace shard = service::shard;
  const topo::Snapshot base = topo::make_fattree(k);
  const std::vector<std::string> queries = make_queries(base, num_queries);
  std::vector<std::unique_ptr<shard::ShardHost>> hosts;
  std::vector<shard::Dialer> dialers;
  for (size_t i = 0; i < 2; ++i) {
    shard::ShardHostOptions options;
    options.service.num_threads = 1;
    hosts.push_back(std::make_unique<shard::ShardHost>(
        base, std::vector<core::Invariant>{}, options));
    dialers.push_back(hosts.back()->dialer());
  }
  shard::ShardRouter router(std::move(dialers), {.replicas = 2});
  if (router.connect_all() != 2) {
    std::fprintf(stderr, "FAIL: failover bench could not reach every shard\n");
    std::exit(1);
  }
  // Warm both replicas (base verification) outside the timing.
  for (const std::string& query : queries) {
    if (!router.handle(query).ok) std::exit(1);
  }

  std::vector<double> steady, degraded;
  const size_t half = queries.size() / 2;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i == half) hosts[1]->stop();  // kill, no drain: sockets die live
    Stopwatch stopwatch;
    const service::QueryResult result = router.handle(queries[i]);
    const double ms = stopwatch.elapsed_ms();
    if (!result.ok) {
      std::fprintf(stderr, "FAIL: query failed during failover: %s\n",
                   result.body.c_str());
      std::exit(1);
    }
    (i < half ? steady : degraded).push_back(ms);
  }

  auto percentile = [](std::vector<double> window, double p) {
    std::sort(window.begin(), window.end());
    const size_t rank = static_cast<size_t>(p * (window.size() - 1) + 0.5);
    return window[std::min(rank, window.size() - 1)];
  };
  const double steady_p99 = percentile(steady, 0.99);
  const double degraded_p99 = percentile(degraded, 0.99);
  const double worst = *std::max_element(degraded.begin(), degraded.end());
  std::printf(
      "failover, fat-tree k=%d: R=2 router, shard 1 stopped mid-stream "
      "(%zu queries, 0 failed)\n",
      k, queries.size());
  std::printf("%24s %10s %10s %10s\n", "window", "p50 ms", "p99 ms",
              "worst ms");
  bench::print_rule(58);
  std::printf("%24s %10.3f %10.3f %10.3f\n", "steady (2/2 up)",
              percentile(steady, 0.50), steady_p99,
              *std::max_element(steady.begin(), steady.end()));
  std::printf("%24s %10.3f %10.3f %10.3f\n", "degraded (1/2 up)",
              percentile(degraded, 0.50), degraded_p99, worst);
  std::printf("first answer after the kill took %.3f ms\n\n", degraded[0]);
  // Wall-clock latencies of a live TCP fabric — recorded, never gated.
  record("failover_p99_steady", 1, steady_p99 * 1e-3, /*gated=*/false);
  record("failover_p99_degraded", 1, degraded_p99 * 1e-3, /*gated=*/false);
  record("failover_first_after_kill", 1, degraded[0] * 1e-3, /*gated=*/false);
}

/// The durability bill: identical differential commits through the
/// write-ahead journal, without and with per-commit fsync.
void bench_journal_commit(int k, int trials) {
  const topo::Snapshot base = topo::make_fattree(k);
  std::printf("journaled commit, fat-tree k=%d (set one link cost):\n", k);
  std::printf("%24s %12s\n", "journal", "best ms");
  bench::print_rule(38);

  const struct {
    const char* name;
    service::FsyncPolicy fsync;
    bool gated;
  } variants[] = {
      {"commit_journal_nofsync", service::FsyncPolicy::kNever, true},
      // fsync latency measures the disk under the CI runner, not the
      // representation; record it, never gate on it.
      {"commit_journal_fsync", service::FsyncPolicy::kAlways, false},
  };
  for (const auto& variant : variants) {
    std::string dir_template =
        (std::filesystem::temp_directory_path() / "dna_bench_XXXXXX");
    const char* dir = ::mkdtemp(dir_template.data());
    if (dir == nullptr) {
      std::fprintf(stderr, "cannot create temp journal dir from %s\n",
                   dir_template.c_str());
      std::exit(1);
    }
    service::ServiceOptions options;
    options.num_threads = 2;
    options.journal_dir = dir;
    options.journal_fsync = variant.fsync;
    double best = 1e30;
    {
      service::DnaService service(base, {}, options);
      int cost = 140;
      for (int trial = 0; trial < trials; ++trial) {
        const auto commit =
            service.commit_text("link_cost 0 " + std::to_string(cost++));
        best = std::min(best, commit.seconds);
      }
    }
    std::filesystem::remove_all(dir);
    record(variant.name, 1, best, variant.gated);
    std::printf("%24s %12.2f\n", variant.name, best * 1e3);
  }
  const double plain = ns_of("commit_differential");
  if (plain > 0) {
    std::printf("journal overhead: %.2fx (no fsync), %.2fx (fsync)\n\n",
                ns_of("commit_journal_nofsync") / plain,
                ns_of("commit_journal_fsync") / plain);
  }
}

/// The anti-collapse gate: thread-scaling floors, enforced on every run
/// (no baseline file needed — t1 is measured in this very process, so the
/// ratio is self-calibrated). A healthy service sits at 0.9–1.0x on a
/// single-core runner (everything serializes; the floor is the hand-off
/// overhead) and above 1x wherever cores can actually overlap. The
/// pre-fix collapse sat at 0.28x (t4) / 0.09x (t8) — multiples below any
/// of these floors, so a regression to the serialized submission path
/// fails the bench loudly instead of shipping.
int check_scaling_floors() {
  const struct {
    const char* name;
    double floor;
  } rows[] = {{"query_t2", 0.75}, {"query_t4", 0.75}, {"query_t8", 0.75}};
  const double t1 = ns_of("query_t1");
  int failures = 0;
  for (const auto& row : rows) {
    const double tn = ns_of(row.name);
    const double speedup = tn > 0 ? t1 / tn : 0;
    if (speedup < row.floor) {
      std::printf(
          "FAIL: %s is %.2fx the single-thread throughput, below the %.2fx "
          "floor — the parallel-scaling collapse is back\n",
          row.name, speedup, row.floor);
      ++failures;
    }
  }
  return failures;
}

// ---- report ---------------------------------------------------------------

void write_json(const std::string& path, bool quick) {
  util::JsonWriter json;
  json.begin_object();
  json.key("bench").value("service_throughput");
  json.key("quick").value(quick);
  g_report.append_json(json);
  // Per-thread-count latency attribution (bench_throughput): how the
  // submit→done budget splits across the queue/fanout/catchup/eval legs —
  // the measured face of the t1→t8 scaling collapse ROADMAP #1 tracks.
  json.key("legs").begin_array();
  for (const LegRow& row : g_leg_rows) {
    json.begin_object();
    json.key("threads").value(static_cast<unsigned long long>(row.threads));
    json.key("queue_seconds").value(row.queue_seconds);
    json.key("fanout_seconds").value(row.fanout_seconds);
    json.key("catchup_seconds").value(row.catchup_seconds);
    json.key("eval_seconds").value(row.eval_seconds);
    json.key("total_seconds").value(row.total_seconds);
    json.key("queue_share").value(row.share(row.queue_seconds));
    json.key("fanout_share").value(row.share(row.fanout_seconds));
    json.key("catchup_share").value(row.share(row.catchup_seconds));
    json.key("eval_share").value(row.share(row.eval_seconds));
    json.end_object();
  }
  json.end_array();
  // The failover row (bench_failover): what a kill -9'd replica costs the
  // tail — degraded-window p99 (including the first query that eats the
  // dead connection) against the steady-state p99.
  json.key("failover").begin_object();
  json.key("p99_steady_ms").value(ns_of("failover_p99_steady") * 1e-6);
  json.key("p99_degraded_ms").value(ns_of("failover_p99_degraded") * 1e-6);
  json.key("first_after_kill_ms")
      .value(ns_of("failover_first_after_kill") * 1e-6);
  json.key("p99_degraded_vs_steady")
      .value(ns_of("failover_p99_steady") > 0
                 ? ns_of("failover_p99_degraded") / ns_of("failover_p99_steady")
                 : 0);
  json.end_object();
  json.key("speedups").begin_object();
  // Thread-scaling rows, self-relative (t1 measured in this very process,
  // so the ratios port across machine speeds). These are the gated face
  // of ROADMAP #1: the pre-fix collapse sat at 0.28x (t4) / 0.09x (t8).
  json.key("threads_2")
      .value(ns_of("query_t2") > 0 ? ns_of("query_t1") / ns_of("query_t2") : 0);
  json.key("threads_4")
      .value(ns_of("query_t4") > 0 ? ns_of("query_t1") / ns_of("query_t4") : 0);
  json.key("threads_8")
      .value(ns_of("query_t8") > 0 ? ns_of("query_t1") / ns_of("query_t8") : 0);
  json.key("differential_vs_monolithic")
      .value(ns_of("commit_differential") > 0
                 ? ns_of("commit_monolithic") / ns_of("commit_differential")
                 : 0);
  json.key("sharded_2_vs_1")
      .value(ns_of("sharded_s2") > 0 ? ns_of("sharded_s1") / ns_of("sharded_s2")
                                     : 0);
  json.key("sharded_4_vs_1")
      .value(ns_of("sharded_s4") > 0 ? ns_of("sharded_s1") / ns_of("sharded_s4")
                                     : 0);
  json.end_object();
  json.key("overheads").begin_object();
  json.key("journal_nofsync")
      .value(ns_of("commit_differential") > 0
                 ? ns_of("commit_journal_nofsync") /
                       ns_of("commit_differential")
                 : 0);
  json.key("journal_fsync")
      .value(ns_of("commit_differential") > 0
                 ? ns_of("commit_journal_fsync") /
                       ns_of("commit_differential")
                 : 0);
  json.end_object();
  json.end_object();

  std::ofstream out(path);
  out << json.str() << "\n";
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  int k = 4;
  size_t num_queries = 224;
  bool quick = false;
  std::string json_path = "BENCH_service.json";
  std::string baseline_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--k=", 0) == 0) {
      k = std::atoi(arg.c_str() + 4);
    } else if (arg.rfind("--queries=", 0) == 0) {
      num_queries = static_cast<size_t>(std::atoll(arg.c_str() + 10));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--check=", 0) == 0) {
      baseline_path = arg.substr(8);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() > 0) k = std::atoi(positional[0].c_str());
  if (positional.size() > 1) {
    num_queries = static_cast<size_t>(std::atoll(positional[1].c_str()));
  }

  const int trials = quick ? 3 : 5;
  // One flood is ~1 ms of work — run plenty and keep the best so the
  // scaling rows measure the code's floor, not a scheduler quantum.
  bench_throughput(k, num_queries, quick ? 16 : 24);
  bench_sharded(k, quick ? num_queries / 2 : num_queries);
  bench_failover(k, quick ? num_queries / 2 : num_queries);
  bench_live_commit(k, trials);
  bench_journal_commit(k, trials);
  write_json(json_path, quick);

  int failures = check_scaling_floors();
  // The monolithic commit is fixed engine code measured in this very
  // process — the calibration anchor that makes the >2x gate about
  // serving-layer regressions, not runner hardware.
  if (!baseline_path.empty()) {
    failures +=
        g_report.check_against_baseline(baseline_path, "commit_monolithic");
  }
  return failures > 0 ? 1 : 0;
}
