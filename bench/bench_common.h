// Shared helpers for the table-style experiment binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#ifdef __unix__
#include <sys/resource.h>
#endif

#include "core/engine.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/json.h"
#include "util/timer.h"

namespace dna::bench {

/// Milliseconds to advance a fresh engine from `base` to `target` in `mode`
/// (median of `reps` runs). Building the base engine is excluded — that
/// state exists in both modes before the change arrives.
inline double advance_ms(const topo::Snapshot& base,
                         const topo::Snapshot& target, core::Mode mode,
                         int reps = 3) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    core::DnaEngine engine(base);
    Stopwatch sw;
    core::NetworkDiff diff = engine.advance(target, mode);
    (void)diff;
    times.push_back(sw.elapsed_ms());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// One advance, returning the diff (for delta-size metrics).
inline core::NetworkDiff advance_once(const topo::Snapshot& base,
                                      const topo::Snapshot& target,
                                      core::Mode mode) {
  core::DnaEngine engine(base);
  return engine.advance(target, mode);
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

// ---- machine-readable reports + baseline gate ------------------------------
//
// Shared by the plain self-timing benches (bench_service_throughput,
// bench_scenario_batch) so their BENCH_*.json files keep one shape and one
// regression-gate policy. A bench records named ns-per-op entries; gated
// entries are compared against a checked-in baseline, calibrated by an
// "anchor" entry — fixed engine code measured in this very process — so
// current/baseline over the anchor isolates machine speed and the >2x gate
// is about the code, not the runner hardware.

struct BenchEntry {
  std::string name;
  size_t ops = 0;
  double ns_per_op = 0;
  bool gated = true;  // false: informational (machine-bound or the anchor)
};

inline long peak_rss_kb() {
#ifdef __unix__
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
#endif
  return 0;
}

class BenchReport {
 public:
  void record(const std::string& name, size_t ops, double seconds,
              bool gated = true) {
    const double ns = seconds * 1e9 / static_cast<double>(ops);
    entries_.push_back({name, ops, ns, gated});
  }

  double ns_of(const std::string& name) const {
    for (const BenchEntry& entry : entries_) {
      if (entry.name == name) return entry.ns_per_op;
    }
    return 0;
  }

  /// Emits the shared "peak_rss_kb" and "results" keys into an open JSON
  /// object (the caller adds its bench-specific keys around them).
  void append_json(util::JsonWriter& json) const {
    json.key("peak_rss_kb").value(static_cast<long long>(peak_rss_kb()));
    json.key("results").begin_array();
    for (const BenchEntry& entry : entries_) {
      json.begin_object();
      json.key("name").value(entry.name);
      json.key("ops").value(static_cast<unsigned long long>(entry.ops));
      json.key("ns_per_op").value(entry.ns_per_op);
      json.key("gated").value(entry.gated);
      json.end_object();
    }
    json.end_array();
  }

  /// Pulls "ns_per_op" for `name` out of a report written by append_json.
  /// Minimal scan, not a general JSON parser — fine for our own format.
  static double baseline_ns(const std::string& text, const std::string& name) {
    const std::string name_token = "\"name\":\"" + name + "\"";
    size_t pos = text.find(name_token);
    if (pos == std::string::npos) return 0;
    const std::string ns_token = "\"ns_per_op\":";
    pos = text.find(ns_token, pos);
    if (pos == std::string::npos) return 0;
    return std::atof(text.c_str() + pos + ns_token.size());
  }

  /// Compares every gated entry against the baseline at `path`, scaled by
  /// the `anchor` entry's current/baseline ratio. Returns 0 when nothing
  /// regressed beyond 2x (calibrated), 1 otherwise.
  int check_against_baseline(const std::string& path,
                             const std::string& anchor) const {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
      return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    double machine_scale = 1.0;
    const double anchor_base = baseline_ns(text, anchor);
    if (anchor_base > 0 && ns_of(anchor) > 0) {
      machine_scale = ns_of(anchor) / anchor_base;
    }
    std::printf("baseline machine-speed calibration: %.2fx\n", machine_scale);

    int failures = 0;
    for (const BenchEntry& entry : entries_) {
      if (!entry.gated) continue;
      const double base = baseline_ns(text, entry.name);
      if (base <= 0) {
        std::printf("baseline: %-24s (no entry, skipped)\n",
                    entry.name.c_str());
        continue;
      }
      const double ratio = entry.ns_per_op / (base * machine_scale);
      const bool ok = ratio <= 2.0;
      std::printf(
          "baseline: %-24s %10.0f -> %10.0f ns (%.2fx calibrated) %s\n",
          entry.name.c_str(), base, entry.ns_per_op, ratio,
          ok ? "ok" : "REGRESSION");
      if (!ok) ++failures;
    }
    return failures == 0 ? 0 : 1;
  }

 private:
  std::vector<BenchEntry> entries_;
};

}  // namespace dna::bench
