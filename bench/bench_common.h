// Shared helpers for the table-style experiment binaries.
#pragma once

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/timer.h"

namespace dna::bench {

/// Milliseconds to advance a fresh engine from `base` to `target` in `mode`
/// (median of `reps` runs). Building the base engine is excluded — that
/// state exists in both modes before the change arrives.
inline double advance_ms(const topo::Snapshot& base,
                         const topo::Snapshot& target, core::Mode mode,
                         int reps = 3) {
  std::vector<double> times;
  for (int r = 0; r < reps; ++r) {
    core::DnaEngine engine(base);
    Stopwatch sw;
    core::NetworkDiff diff = engine.advance(target, mode);
    (void)diff;
    times.push_back(sw.elapsed_ms());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// One advance, returning the diff (for delta-size metrics).
inline core::NetworkDiff advance_once(const topo::Snapshot& base,
                                      const topo::Snapshot& target,
                                      core::Mode mode) {
  core::DnaEngine engine(base);
  return engine.advance(target, mode);
}

inline void print_rule(int width = 100) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace dna::bench
