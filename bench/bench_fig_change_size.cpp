// Experiment F1 — diff latency vs change size (the crossover figure).
//
// Fat-tree k=6; fail 1, 2, 4, ... links simultaneously and time both modes.
// Expected shape: differential cost grows with the change's blast radius
// while monolithic cost stays flat, so the curves converge (and can cross)
// as the change approaches "rebuild everything".
#include "bench_common.h"

using namespace dna;
using namespace dna::bench;

int main() {
  topo::Snapshot base = topo::make_fattree(6);
  const size_t max_links = base.topology.num_links();

  std::printf("F1: latency vs number of simultaneous link failures "
              "(fat-tree k=6, %zu links)\n",
              max_links);
  std::printf("%8s %12s %12s %9s %16s\n", "k-links", "mono (ms)", "diff (ms)",
              "speedup", "affected ECs");
  print_rule(62);

  Rng rng(21);
  std::vector<uint32_t> order;
  for (uint32_t i = 0; i < max_links; ++i) order.push_back(i);
  // Deterministic shuffle.
  for (size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }

  for (size_t k = 1; k <= max_links / 2; k *= 2) {
    topo::Snapshot target = base;
    for (size_t i = 0; i < k; ++i) {
      target = topo::with_link_state(target, order[i], false);
    }
    core::NetworkDiff diff =
        advance_once(base, target, core::Mode::kDifferential);
    double mono_ms = advance_ms(base, target, core::Mode::kMonolithic);
    double diff_ms = advance_ms(base, target, core::Mode::kDifferential);
    std::printf("%8zu %12.3f %12.3f %8.1fx %10zu/%zu\n", k, mono_ms, diff_ms,
                mono_ms / std::max(diff_ms, 1e-6), diff.affected_ecs,
                diff.total_ecs);
  }
  return 0;
}
