// Experiment T1 — end-to-end diff latency, monolithic vs differential.
//
// For each topology in the suite, apply a *narrow* change (one static /24
// toward an existing neighbor: one node's FIB, two atoms) and measure the
// time to produce the full NetworkDiff in both modes. Narrow changes are
// the common case the paper leads with; broader changes (cost churn, link
// failures) are swept in T2 and F1, where the differential win honestly
// shrinks with blast radius.
// Expected shape: differential wins by 1-3 orders of magnitude; the gap
// widens with network size. (See EXPERIMENTS.md.)
#include "bench_common.h"

using namespace dna;
using namespace dna::bench;

namespace {

topo::Snapshot narrow_change(const topo::Snapshot& base) {
  const topo::Link& link = base.topology.link(0);
  Ipv4Addr via = base.configs[link.b].find_interface(link.b_if)->address;
  return topo::with_static_route(base, base.topology.node_name(link.a),
                                 Ipv4Prefix(Ipv4Addr(198, 18, 0, 0), 24),
                                 via);
}

}  // namespace

int main() {
  struct Case {
    std::string name;
    topo::Snapshot snap;
  };
  Rng rng(7);
  std::vector<Case> cases;
  cases.push_back({"fattree-k4", topo::make_fattree(4)});
  cases.push_back({"fattree-k6", topo::make_fattree(6)});
  cases.push_back({"fattree-k8", topo::make_fattree(8)});
  cases.push_back({"ring-32", topo::make_ring(32)});
  cases.push_back({"ring-64", topo::make_ring(64)});
  cases.push_back({"grid-8x8", topo::make_grid(8, 8)});
  cases.push_back({"random-100-300", topo::make_random(100, 300, rng)});
  cases.push_back({"two-tier-16x4", topo::make_two_tier_as(16, 4)});

  std::printf("T1: end-to-end diff latency, narrow change (one static /24)\n");
  std::printf("%-16s %6s %6s %6s %12s %12s %9s\n", "topology", "nodes",
              "links", "ECs", "mono (ms)", "diff (ms)", "speedup");
  print_rule();
  for (const Case& test_case : cases) {
    const topo::Snapshot& base = test_case.snap;
    topo::Snapshot target = narrow_change(base);

    // EC count from a throwaway engine.
    core::DnaEngine probe(base);
    const size_t ecs = probe.verifier().num_ecs();

    double mono = advance_ms(base, target, core::Mode::kMonolithic);
    double diff = advance_ms(base, target, core::Mode::kDifferential);
    std::printf("%-16s %6zu %6zu %6zu %12.3f %12.3f %8.1fx\n",
                test_case.name.c_str(), base.topology.num_nodes(),
                base.topology.num_links(), ecs, mono, diff,
                mono / std::max(diff, 1e-6));
  }
  return 0;
}
