// Experiment F4 — affected equivalence classes per change type.
//
// The data-plane win of the differential engine comes from re-verifying
// only the atoms a change can touch. This figure reports that fraction.
// Expected shape: most change types touch a few percent of atoms; only
// wildcard-ish edits (default-route ACLs) approach 100%.
#include "bench_common.h"

using namespace dna;
using namespace dna::bench;

namespace {

void row(const std::string& name, const topo::Snapshot& base,
         const topo::Snapshot& target) {
  core::NetworkDiff diff =
      advance_once(base, target, core::Mode::kDifferential);
  std::printf("%-26s %10zu %10zu %9.1f%%\n", name.c_str(), diff.affected_ecs,
              diff.total_ecs,
              100.0 * static_cast<double>(diff.affected_ecs) /
                  static_cast<double>(std::max<size_t>(diff.total_ecs, 1)));
}

}  // namespace

int main() {
  std::printf("F4: affected ECs per change type\n");
  std::printf("%-26s %10s %10s %10s\n", "change", "affected", "total",
              "fraction");
  print_rule(60);

  topo::Snapshot ft = topo::make_fattree(6);
  row("ft6: link-cost", ft, topo::with_link_cost(ft, 3, 60));
  row("ft6: link-failure", ft, topo::with_link_state(ft, 3, false));
  row("ft6: acl one /24", ft,
      topo::with_acl_block(ft, "sw0", Ipv4Prefix(Ipv4Addr(172, 31, 9, 0), 24)));
  row("ft6: acl 0.0.0.0/0", ft,
      topo::with_acl_block(ft, "sw0", Ipv4Prefix()));
  {
    const topo::Link& link = ft.topology.link(0);
    Ipv4Addr via = ft.configs[link.b].find_interface(link.b_if)->address;
    row("ft6: static /24", ft,
        topo::with_static_route(
            ft, "sw0", Ipv4Prefix(Ipv4Addr(198, 18, 0, 0), 24), via));
  }

  Rng rng(4);
  topo::Snapshot rnd = topo::make_random(60, 150, rng);
  row("rand60: link-cost", rnd, topo::with_link_cost(rnd, 10, 33));
  row("rand60: link-failure", rnd, topo::with_link_state(rnd, 10, false));
  return 0;
}
