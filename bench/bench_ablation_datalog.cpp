// Experiment F6 (ablation) — incremental datalog maintenance strategies.
//
// Transitive closure over a random digraph under single-edge churn,
// comparing: counting+DRed (default), force-DRed, and full re-evaluation.
// Expected shape: both incremental strategies beat recomputation by orders
// of magnitude on small deltas; counting beats DRed on insert-heavy churn
// of non-recursive programs (also measured), while recursion requires DRed.
#include <benchmark/benchmark.h>

#include "datalog/engine.h"
#include "util/rng.h"

using namespace dna;
using datalog::DatalogEngine;

namespace {

const char* kTcProgram = R"(
  .decl edge(2) input
  .decl reach(2)
  reach(X, Y) :- edge(X, Y).
  reach(X, Z) :- reach(X, Y), edge(Y, Z).
)";

const char* kJoinProgram = R"(
  .decl a(2) input
  .decl b(2) input
  .decl j2(2)
  .decl j3(2)
  j2(X, Z) :- a(X, Y), b(Y, Z).
  j3(X, Z) :- j2(X, Y), a(Y, Z).
)";

/// Loads a random base EDB and returns the engine ready for churn.
void load_base(DatalogEngine& engine, const char* rel, int nodes, int edges,
               Rng& rng) {
  for (int i = 0; i < edges; ++i) {
    engine.insert(rel, {static_cast<int64_t>(rng.below(nodes)),
                        static_cast<int64_t>(rng.below(nodes))});
  }
  engine.flush();
}

void churn_tc(benchmark::State& state, DatalogEngine::Strategy strategy) {
  const int nodes = static_cast<int>(state.range(0));
  DatalogEngine engine(kTcProgram, strategy);
  Rng rng(42);
  load_base(engine, "edge", nodes, nodes * 3, rng);

  for (auto _ : state) {
    int64_t u = static_cast<int64_t>(rng.below(nodes));
    int64_t v = static_cast<int64_t>(rng.below(nodes));
    if (engine.contains("edge", {u, v})) {
      engine.remove("edge", {u, v});
    } else {
      engine.insert("edge", {u, v});
    }
    engine.flush();
    benchmark::DoNotOptimize(engine.size("reach"));
  }
}

void churn_join(benchmark::State& state, DatalogEngine::Strategy strategy) {
  const int nodes = static_cast<int>(state.range(0));
  DatalogEngine engine(kJoinProgram, strategy);
  Rng rng(43);
  load_base(engine, "a", nodes, nodes * 2, rng);
  load_base(engine, "b", nodes, nodes * 2, rng);

  for (auto _ : state) {
    const char* rel = rng.chance(0.5) ? "a" : "b";
    int64_t u = static_cast<int64_t>(rng.below(nodes));
    int64_t v = static_cast<int64_t>(rng.below(nodes));
    if (engine.contains(rel, {u, v})) {
      engine.remove(rel, {u, v});
    } else {
      engine.insert(rel, {u, v});
    }
    engine.flush();
    benchmark::DoNotOptimize(engine.size("j3"));
  }
}

void BM_TcIncremental(benchmark::State& state) {
  churn_tc(state, DatalogEngine::Strategy::kIncremental);
}
void BM_TcForceDRed(benchmark::State& state) {
  churn_tc(state, DatalogEngine::Strategy::kIncrementalForceDRed);
}
void BM_TcRecompute(benchmark::State& state) {
  churn_tc(state, DatalogEngine::Strategy::kRecompute);
}
void BM_JoinCounting(benchmark::State& state) {
  churn_join(state, DatalogEngine::Strategy::kIncremental);
}
void BM_JoinForceDRed(benchmark::State& state) {
  churn_join(state, DatalogEngine::Strategy::kIncrementalForceDRed);
}
void BM_JoinRecompute(benchmark::State& state) {
  churn_join(state, DatalogEngine::Strategy::kRecompute);
}

}  // namespace

BENCHMARK(BM_TcIncremental)->Arg(30)->Arg(60);
BENCHMARK(BM_TcForceDRed)->Arg(30)->Arg(60);
BENCHMARK(BM_TcRecompute)->Arg(30)->Arg(60);
BENCHMARK(BM_JoinCounting)->Arg(40)->Arg(80);
BENCHMARK(BM_JoinForceDRed)->Arg(40)->Arg(80);
BENCHMARK(BM_JoinRecompute)->Arg(40)->Arg(80);
