// What-if sweep: the batch version of maintenance_dryrun.
//
// Instead of advancing one engine through candidate link failures in a loop,
// hand the whole sweep to the scenario runner: it fans the candidates out
// over a thread pool (one cloned engine per worker), evaluates each one
// differentially from the same base, and returns a deterministic report
// ranked by blast radius. Print the top-5 riskiest links to drain.
//
//   $ ./whatif_sweep
#include <iostream>

#include "scenario/runner.h"
#include "topo/generators.h"

using namespace dna;

int main() {
  topo::Snapshot base = topo::make_fattree(4);

  // Intent: every host network stays reachable from every other host-network
  // owner (derived from the snapshot's 172.31/16 interfaces), and the fabric
  // stays loop-free.
  std::vector<core::Invariant> invariants =
      scenario::host_reachability_invariants(base);
  invariants.push_back(
      {core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()});

  std::vector<scenario::ScenarioSpec> specs = scenario::link_failure_sweep(base);
  std::cout << "fat-tree k=4: " << base.topology.num_nodes() << " switches, "
            << base.topology.num_links() << " links\n"
            << "sweeping " << specs.size() << " candidate link failures under "
            << invariants.size() << " invariants...\n\n";

  scenario::ScenarioRunner runner(std::move(base), std::move(invariants));
  scenario::ScenarioReport report = runner.run(specs);

  std::cout << "top-5 riskiest scenarios:\n" << report.str(/*top_k=*/5);

  size_t safe = 0;
  for (const scenario::ScenarioResult& result : report.results) {
    if (result.ok && result.invariants_broken == 0) ++safe;
  }
  std::cout << "\n" << safe << "/" << report.results.size()
            << " links drainable without breaking intent ("
            << report.threads << " threads, " << report.seconds_total
            << " s total)\n";
  return 0;
}
