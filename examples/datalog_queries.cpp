// The differential datalog engine, standalone: define a program, load facts,
// and watch incremental maintenance report exactly what changed per update.
#include <iostream>

#include "datalog/engine.h"

using namespace dna;
using datalog::DatalogEngine;

int main() {
  DatalogEngine engine(R"(
    // A tiny network policy analysis in datalog:
    .decl link(2) input          // (router, router)
    .decl trusted(1) input       // routers in the trusted zone
    .decl reach(2)               // transitive connectivity
    .decl exposure(2)            // trusted router reachable from untrusted
    reach(X, Y) :- link(X, Y).
    reach(X, Z) :- reach(X, Y), link(Y, Z).
    exposure(X, Y) :- reach(X, Y), trusted(Y), !trusted(X).
  )");

  auto print_changes = [&](const char* what) {
    std::cout << what << "\n";
    for (const char* rel : {"reach", "exposure"}) {
      const auto& changes = engine.changes(rel);
      for (const auto& row : changes.added) {
        std::cout << "  + " << rel << "(" << row[0] << ", " << row[1] << ")\n";
      }
      for (const auto& row : changes.removed) {
        std::cout << "  - " << rel << "(" << row[0] << ", " << row[1] << ")\n";
      }
    }
    std::cout << "\n";
  };

  // Build a chain 1 -> 2 -> 3 with 3 trusted.
  engine.insert("link", {1, 2});
  engine.insert("link", {2, 3});
  engine.insert("trusted", {3});
  engine.flush();
  print_changes(">>> initial facts: 1->2->3, trusted={3}");

  // A new shortcut exposes 3 to another untrusted router.
  engine.insert("link", {4, 2});
  engine.flush();
  print_changes(">>> add link 4->2");

  // Cutting 2->3 removes the exposure transitively (DRed at work).
  engine.remove("link", {2, 3});
  engine.flush();
  print_changes(">>> remove link 2->3");

  // Marking 1 trusted changes the negated premise.
  engine.insert("link", {2, 3});
  engine.insert("trusted", {1});
  engine.flush();
  print_changes(">>> restore 2->3 and trust router 1");

  std::cout << "final reach relation (" << engine.size("reach")
            << " tuples):\n";
  for (const auto& row : engine.rows("reach")) {
    std::cout << "  reach(" << row[0] << ", " << row[1] << ")\n";
  }
  return 0;
}
