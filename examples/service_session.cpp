// In-process embedding of the long-lived query service.
//
// The operator story: keep one resident, verified network model; many
// clients ask questions; each accepted change is committed differentially
// and publishes a new immutable version, while readers in flight keep the
// version they started with.
//
// This example drives DnaService directly and then once more through the
// framed wire protocol over the in-memory loopback transport — the exact
// bytes `dna_cli serve` / `dna_cli query` exchange over a unix socket.
#include <iostream>
#include <thread>

#include "core/change.h"
#include "service/service.h"
#include "service/session.h"
#include "service/transport.h"
#include "topo/generators.h"

using namespace dna;

int main() {
  // A 6-node OSPF ring; r0 and r3 own host networks.
  service::DnaService service(
      topo::make_ring(6),
      {{core::Invariant::Kind::kLoopFree, "", "", "", Ipv4Prefix()},
       {core::Invariant::Kind::kReachable, "r0", "r3", "",
        Ipv4Prefix(Ipv4Addr(172, 31, 1, 0), 24)}},
      {.num_threads = 2});

  // --- direct API ----------------------------------------------------------
  std::cout << "== direct API ==\n";
  std::cout << service.query("version").body << "\n";
  std::cout << service.query("reach r0 172.31.1.1").body << "\n";
  std::cout << service.query("paths r0 172.31.1.1").body << "\n";

  // What would failing link 1 do? Evaluated against the head version,
  // never committed.
  std::cout << "whatif: " << service.query("whatif fail_link 1").body << "\n";

  // Commit it for real: the differential engine advances, version 2 is
  // published, and subsequent queries see it.
  const service::CommitResult commit =
      service.commit(core::ChangePlan::link_failure(1));
  std::cout << "committed version " << commit.version << " ("
            << commit.fib_changes << " fib changes, "
            << commit.seconds * 1e3 << " ms)\n";
  std::cout << service.query("reach r0 172.31.1.1").body
            << "  <- the ring re-routed\n";

  // --- the same conversation over the wire protocol ------------------------
  std::cout << "\n== framed protocol over loopback ==\n";
  service::LoopbackChannel channel;
  service::ServerSession session(service, channel.server());
  std::thread server([&session] { session.run(); });

  service::ServiceClient client(channel.client());
  for (const char* request :
       {"version", "reach r0 172.31.1.1", "check reachable r0 r3 172.31.1.0/24",
        "whatif recover_link 1; link_cost 0 20", "metrics"}) {
    const service::QueryResult result = client.request(request);
    std::cout << "> " << request << "\n[v" << result.version << "] "
              << result.body << "\n";
  }
  client.close();
  server.join();

  std::cout << "\n" << service.metrics().str();
  return 0;
}
