// ACL audit: quantify the blast radius of a firewall rule before deploying
// it. ACL edits never touch the control plane, so the differential engine
// re-verifies only the handful of equivalence classes the rule covers —
// this example prints that ratio for progressively broader rules.
#include <iostream>

#include "core/change.h"
#include "core/engine.h"
#include "core/report.h"
#include "topo/generators.h"
#include "util/timer.h"

using namespace dna;

int main() {
  topo::Snapshot base = topo::make_fattree(6);
  core::DnaEngine engine(base);
  std::cout << "fat-tree k=6: " << base.topology.num_nodes() << " switches, "
            << engine.verifier().num_ecs() << " equivalence classes\n\n";

  struct Candidate {
    const char* where;
    const char* what;
  };
  // k=6 fat-tree: edges sw0..sw17 (sw<i> hosts 172.31.<i>.0/24),
  // aggregation sw18..sw35, cores sw36..sw44.
  const Candidate candidates[] = {
      {"sw5", "172.31.5.0/24"},   // fence a host net at its own edge switch
      {"sw22", "172.31.4.0/26"},  // partial block at one pod-1 agg (ECMP
                                  // keeps delivery; blackholes appear)
      {"sw0", "172.31.0.0/16"},   // broad rule at a non-transit edge: no
                                  // traffic crosses sw0, so nothing breaks
      {"sw4", "172.31.0.0/16"},   // broad rule at a transit destination
  };

  for (const Candidate& candidate : candidates) {
    Ipv4Prefix dst = Ipv4Prefix::parse(candidate.what).value();
    core::ChangePlan plan = core::ChangePlan::acl_block(candidate.where, dst);
    std::cout << ">>> proposing: " << plan.description() << "\n";
    Stopwatch sw;
    core::NetworkDiff diff = engine.advance(plan.apply(engine.snapshot()),
                                            core::Mode::kDifferential);
    std::cout << "    " << core::summarize(diff) << "\n"
              << "    control plane untouched: "
              << (diff.fib_delta.empty() ? "yes" : "no") << "\n"
              << "    re-verified " << diff.affected_ecs << " / "
              << diff.total_ecs << " ECs in " << sw.elapsed_ms() << " ms\n";
    size_t flows_lost = diff.reach_delta.lost.size();
    std::cout << "    flows lost: " << flows_lost << "\n\n";
    // Revert before the next candidate.
    engine.advance(base, core::Mode::kDifferential);
  }
  return 0;
}
