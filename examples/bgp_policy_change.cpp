// BGP policy change analysis: an operator of a two-tier eBGP fabric wants
// to steer traffic with local-pref and to withdraw a prefix. DNA shows the
// route-level and reachability-level blast radius of each edit before it
// ships.
#include <iostream>

#include "core/change.h"
#include "core/engine.h"
#include "core/report.h"
#include "topo/generators.h"

using namespace dna;

int main() {
  // 4 edge ASes (as0..as3), 2 cores (as4, as5); each edge originates
  // 172.31.<i>.0/24.
  topo::Snapshot base = topo::make_two_tier_as(4, 2);
  core::DnaEngine engine(base);
  engine.add_invariant({core::Invariant::Kind::kReachable, "as1", "as0", "",
                        Ipv4Prefix::parse("172.31.0.0/24").value()});

  std::cout << "two-tier AS fabric: " << base.topology.num_nodes()
            << " routers, " << base.topology.num_links() << " eBGP links\n\n";

  // Steering: as1 prefers core as5 for everything it learns there.
  const auto& neighbors = base.config_of("as1").bgp.neighbors;
  Ipv4Addr via_core2 = neighbors.back().peer_ip;  // second core's address
  core::ChangePlan steer =
      core::ChangePlan::bgp_local_pref("as1", via_core2, 250);
  std::cout << ">>> proposing: " << steer.description() << "\n";
  core::NetworkDiff diff = engine.advance(steer.apply(engine.snapshot()),
                                          core::Mode::kDifferential);
  std::cout << core::render(diff, engine.snapshot().topology) << "\n";

  // Withdraw: as0 stops announcing its host network. Everyone loses it.
  core::ChangePlan withdraw = core::ChangePlan::withdraw(
      "as0", Ipv4Prefix::parse("172.31.0.0/24").value());
  std::cout << ">>> proposing: " << withdraw.description() << "\n";
  diff = engine.advance(withdraw.apply(engine.snapshot()),
                        core::Mode::kDifferential);
  std::cout << core::render(diff, engine.snapshot().topology) << "\n";

  // Announce it back; the invariant flips back to holding.
  core::ChangePlan announce = core::ChangePlan::announce(
      "as0", Ipv4Prefix::parse("172.31.0.0/24").value());
  std::cout << ">>> proposing: " << announce.description() << "\n";
  diff = engine.advance(announce.apply(engine.snapshot()),
                        core::Mode::kDifferential);
  std::cout << core::render(diff, engine.snapshot().topology) << "\n";
  return 0;
}
