// Quickstart: build a small network, propose two changes, and read the
// semantic diff DNA computes for each.
//
//   $ ./quickstart
//
// Walks through the core API: generators -> DnaEngine -> ChangePlan ->
// NetworkDiff -> rendered report.
#include <iostream>

#include "core/change.h"
#include "core/engine.h"
#include "core/report.h"
#include "topo/generators.h"

using namespace dna;

int main() {
  // A 6-node OSPF ring; r0 and r3 each host a /24 (172.31.0.0/24 and
  // 172.31.1.0/24).
  topo::Snapshot base = topo::make_ring(6);

  core::DnaEngine engine(base);
  engine.add_invariant({core::Invariant::Kind::kReachable, "r0", "r3", "",
                        Ipv4Prefix::parse("172.31.1.0/24").value()});
  engine.add_invariant({core::Invariant::Kind::kLoopFree, "", "", "",
                        Ipv4Prefix()});

  std::cout << "network: " << base.topology.num_nodes() << " nodes, "
            << base.topology.num_links() << " links, "
            << engine.verifier().num_ecs() << " packet equivalence classes\n\n";

  // Change 1: raise a link cost. Traffic reroutes; nothing breaks.
  core::ChangePlan cost_change = core::ChangePlan::link_cost(0, 80);
  std::cout << ">>> proposing: " << cost_change.description() << "\n";
  core::NetworkDiff diff =
      engine.advance(cost_change.apply(engine.snapshot()),
                     core::Mode::kDifferential);
  std::cout << core::render(diff, engine.snapshot().topology) << "\n";

  // Change 2: fail a link outright. The ring heals, reachability survives.
  core::ChangePlan failure = core::ChangePlan::link_failure(2);
  std::cout << ">>> proposing: " << failure.description() << "\n";
  diff = engine.advance(failure.apply(engine.snapshot()),
                        core::Mode::kDifferential);
  std::cout << core::render(diff, engine.snapshot().topology) << "\n";

  // Change 3: fail a second link — now the ring partitions and the
  // reachability invariant breaks. DNA points at exactly what was lost.
  core::ChangePlan second_failure = core::ChangePlan::link_failure(4);
  std::cout << ">>> proposing: " << second_failure.description() << "\n";
  diff = engine.advance(second_failure.apply(engine.snapshot()),
                        core::Mode::kDifferential);
  std::cout << core::render(diff, engine.snapshot().topology) << "\n";

  return 0;
}
