// Maintenance dry-run: before taking links down for maintenance, verify —
// differentially, in milliseconds per candidate — which link can be drained
// without hurting any host-to-host reachability.
//
// This is the workflow the differential engine is built for: one base
// snapshot, many small candidate changes, each needing a fast verdict.
#include <iostream>

#include "core/engine.h"
#include "core/report.h"
#include "topo/generators.h"
#include "topo/mutators.h"
#include "util/timer.h"

using namespace dna;

int main() {
  topo::Snapshot base = topo::make_fattree(4);
  core::DnaEngine engine(base);

  // Intent: every edge switch keeps reaching every host network.
  const int hosts = 8;  // fat-tree k=4: 8 edge switches, one /24 each
  for (int e = 0; e < hosts; ++e) {
    for (int h = 0; h < hosts; ++h) {
      if (e == h) continue;
      engine.add_invariant(
          {core::Invariant::Kind::kReachable, "sw" + std::to_string(e),
           "sw" + std::to_string(h), "",
           Ipv4Prefix(Ipv4Addr(172, 31, static_cast<uint8_t>(h), 0), 24)});
    }
  }

  std::cout << "fat-tree k=4: " << base.topology.num_nodes() << " switches, "
            << base.topology.num_links() << " links\n"
            << "checking which links can be drained safely...\n\n";

  size_t safe = 0, unsafe = 0;
  for (uint32_t link = 0; link < base.topology.num_links(); ++link) {
    Stopwatch sw;
    core::NetworkDiff diff = engine.advance(
        topo::with_link_state(base, link, false), core::Mode::kDifferential);
    const bool ok = diff.invariant_flips.empty();
    const topo::Link& l = base.topology.link(link);
    std::cout << "  link " << link << " ("
              << base.topology.node_name(l.a) << " <-> "
              << base.topology.node_name(l.b) << "): "
              << (ok ? "SAFE  " : "UNSAFE") << "  [" << diff.affected_ecs
              << "/" << diff.total_ecs << " ECs re-verified, "
              << sw.elapsed_ms() << " ms round-trip]\n";
    if (!ok) {
      for (const auto& flip : diff.invariant_flips) {
        std::cout << "      breaks: " << flip.description << "\n";
      }
    }
    ok ? ++safe : ++unsafe;
    // Restore the base snapshot before trying the next candidate.
    engine.advance(base, core::Mode::kDifferential);
  }

  std::cout << "\n" << safe << " links drainable, " << unsafe
            << " links load-bearing\n";
  return 0;
}
