#include "util/bitset.h"

#include <bit>

namespace dna {

size_t DynamicBitset::count() const {
  size_t total = 0;
  for (auto w : words_) total += static_cast<size_t>(std::popcount(w));
  return total;
}

std::vector<uint32_t> DynamicBitset::minus(const DynamicBitset& other) const {
  DNA_CHECK(size_ == other.size_);
  std::vector<uint32_t> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t diff = words_[wi] & ~other.words_[wi];
    while (diff) {
      int bit = std::countr_zero(diff);
      out.push_back(static_cast<uint32_t>(wi * 64 + bit));
      diff &= diff - 1;
    }
  }
  return out;
}

std::vector<uint32_t> DynamicBitset::to_indices() const {
  std::vector<uint32_t> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t word = words_[wi];
    while (word) {
      int bit = std::countr_zero(word);
      out.push_back(static_cast<uint32_t>(wi * 64 + bit));
      word &= word - 1;
    }
  }
  return out;
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  DNA_CHECK(size_ == other.size_);
  for (size_t wi = 0; wi < words_.size(); ++wi) words_[wi] |= other.words_[wi];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  DNA_CHECK(size_ == other.size_);
  for (size_t wi = 0; wi < words_.size(); ++wi) words_[wi] &= other.words_[wi];
  return *this;
}

}  // namespace dna
