#include "util/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.h"

namespace dna::util {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separate() {
  if (after_key_) {
    after_key_ = false;
    return;  // the key already emitted its comma and colon
  }
  if (!has_member_.empty()) {
    if (has_member_.back()) out_ += ',';
    has_member_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separate();
  out_ += '{';
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  DNA_CHECK(!has_member_.empty() && !after_key_);
  has_member_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separate();
  out_ += '[';
  has_member_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  DNA_CHECK(!has_member_.empty() && !after_key_);
  has_member_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  DNA_CHECK(!has_member_.empty() && !after_key_);
  if (has_member_.back()) out_ += ',';
  has_member_.back() = true;
  out_ += '"';
  out_ += json_escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  separate();
  out_ += '"';
  out_ += json_escape(text);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  separate();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long n) {
  separate();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(long long n) {
  separate();
  out_ += std::to_string(n);
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  separate();
  if (!std::isfinite(d)) {  // JSON has no inf/nan; null is the convention
    out_ += "null";
    return *this;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  DNA_CHECK(ec == std::errc());
  out_.append(buf, end);
  return *this;
}

JsonWriter& JsonWriter::null() {
  separate();
  out_ += "null";
  return *this;
}

}  // namespace dna::util
