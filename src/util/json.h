// A minimal streaming JSON writer.
//
// One serialization helper shared by every machine-readable surface (the
// whatif --json report, the query service's wire responses), so the formats
// cannot drift apart. The writer tracks nesting and comma placement; callers
// just emit keys and values in order:
//
//   JsonWriter json;
//   json.begin_object();
//   json.key("name").value("sweep");
//   json.key("results").begin_array();
//   ...
//   json.end_array().end_object();
//   std::string text = json.str();
//
// Output is compact (no whitespace) and deterministic: identical call
// sequences produce identical bytes. Strings are escaped per RFC 8259;
// doubles use shortest round-trip formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dna::util {

/// Escapes `text` for inclusion inside a JSON string literal (quotes not
/// added). Control characters become \uXXXX.
std::string json_escape(std::string_view text);

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; must be inside an object, and must be followed by
  /// exactly one value (or container).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(bool b);
  // One exact overload per standard integer width, so size_t/uint64_t pick
  // a unique best match on every LP64/LLP64 platform (they are different
  // types on some and the same type on others — a single overload is
  // either ambiguous or redundant somewhere).
  JsonWriter& value(unsigned long long n);
  JsonWriter& value(long long n);
  JsonWriter& value(unsigned long n) { return value((unsigned long long)n); }
  JsonWriter& value(long n) { return value((long long)n); }
  JsonWriter& value(unsigned n) { return value((unsigned long long)n); }
  JsonWriter& value(int n) { return value((long long)n); }
  JsonWriter& value(double d);
  JsonWriter& null();

  /// The serialized document. Valid once every container has been closed.
  const std::string& str() const { return out_; }

 private:
  /// Inserts a comma if the current container already holds a member.
  void separate();

  std::string out_;
  /// Per open container: true once the first member has been written.
  std::vector<bool> has_member_;
  bool after_key_ = false;
};

}  // namespace dna::util
