// Wall-clock stopwatch and per-stage timing accumulator for the benches.
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace dna {

/// A simple monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_seconds() * 1e3; }
  double elapsed_us() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named stage timings; used for the breakdown experiments.
class StageTimers {
 public:
  void add(const std::string& stage, double seconds) {
    for (auto& entry : entries_) {
      if (entry.stage == stage) {
        entry.seconds += seconds;
        return;
      }
    }
    entries_.push_back({stage, seconds});
  }

  struct Entry {
    std::string stage;
    double seconds = 0;
  };

  const std::vector<Entry>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  double total() const {
    double sum = 0;
    for (const auto& entry : entries_) sum += entry.seconds;
    return sum;
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace dna
