// Hashing helpers used across dna containers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dna {

/// SplitMix64 finalizer: a fast, well-mixed 64-bit hash.
constexpr uint64_t hash_u64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a new value into a running hash (boost::hash_combine style,
/// strengthened with the 64-bit golden ratio).
constexpr size_t hash_combine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

template <typename T>
size_t hash_value(const T& value) {
  return std::hash<T>{}(value);
}

}  // namespace dna
