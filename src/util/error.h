// Error types and invariant checks shared by all dna subsystems.
#pragma once

#include <stdexcept>
#include <string>

namespace dna {

/// Base class for all errors raised by the dna library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when parsing configuration or datalog text fails.
/// Carries the 1-based line number of the offending input when known.
class ParseError : public Error {
 public:
  ParseError(const std::string& what, int line = 0)
      : Error(line > 0 ? "line " + std::to_string(line) + ": " + what : what),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_ = 0;
};

/// Raised when an internal invariant is violated (a bug in dna itself).
class InternalError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace dna

/// Always-on invariant check; throws dna::InternalError on failure.
/// Used for conditions that indicate a bug rather than bad user input.
#define DNA_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::dna::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                \
  } while (0)

#define DNA_CHECK_MSG(expr, msg)                                     \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::dna::detail::check_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                \
  } while (0)
