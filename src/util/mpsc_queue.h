// Lock-free multi-producer/single-consumer submission machinery.
//
// Two pieces, built for the service's dispatcher hand-off (ROADMAP item 1:
// the mutex+condvar submission path serialized every producer and collapsed
// query scaling):
//
//   * MpscQueue<T> — an unbounded intrusive-node MPSC queue in the style of
//     Vyukov's non-blocking queue. push() is lock-free: one atomic exchange
//     on the tail plus one release store to link the node — producers never
//     take a mutex and never wait on each other beyond that exchange. The
//     single consumer pops in arrival order (FIFO per producer is
//     guaranteed; producers' streams interleave at exchange order).
//
//     Wake-ups are *batched*: the consumer parks only after declaring
//     itself parked and re-checking emptiness (a Dekker-style seq_cst
//     handshake on `size_`/`parked_`), so producers pay a condvar notify
//     only for the push that actually lands on a parked consumer — a flood
//     of submissions costs one wake, not one notify per item.
//
//   * CreditGate — a counting semaphore over the queue's bounded-depth
//     contract. Producers acquire one credit per item (try_acquire on the
//     fast path is one CAS, no mutex); the consumer releases a batch of
//     credits at once when it drains. acquire_for() parks a producer at
//     the bound for at most the caller's deadline — the shed path — and
//     release() takes the wake mutex only when someone is actually parked.
//
// Memory ordering notes live next to each fence; the seq_cst pairs are the
// two sleep/notify handshakes (consumer park vs producer push, producer
// park vs consumer release). Everything else is acquire/release on the
// queue links.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <utility>

namespace dna::util {

template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_ = stub;
    tail_.store(stub, std::memory_order_relaxed);
  }

  ~MpscQueue() {
    // Consumer-side teardown: drain whatever is linked, then free the stub.
    Node* node = head_;
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_acquire);
      delete node;
      node = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Multi-producer, lock-free. Wakes the consumer iff it is parked.
  void push(T value) {
    Node* node = new Node(std::move(value));
    // The exchange makes this node the new tail; linking prev->next hands
    // it to the consumer. Between the two, the chain is momentarily broken
    // at prev — pop() treats that as "not ready yet", and `size_` (bumped
    // only after the link) keeps the consumer from sleeping through it.
    Node* prev = tail_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    size_.fetch_add(1, std::memory_order_seq_cst);
    if (parked_.load(std::memory_order_seq_cst)) {
      // The consumer declared itself parked before our size_ bump landed;
      // claim the wake under the park mutex so racing producers don't
      // stampede notify_one.
      std::lock_guard<std::mutex> lock(park_mutex_);
      if (parked_.load(std::memory_order_relaxed)) {
        parked_.store(false, std::memory_order_relaxed);
        park_cv_.notify_one();
      }
    }
  }

  /// Single consumer. False when the queue is empty *or* a producer is
  /// mid-push (tail exchanged, node not linked yet) — callers loop on
  /// size() if they must distinguish.
  bool try_pop(T& out) {
    Node* head = head_;
    Node* next = head->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    out = std::move(next->value);
    head_ = next;  // `next` becomes the new stub; its value was moved out
    delete head;
    size_.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }

  /// Items fully pushed and not yet popped. Exact for quiescent producers;
  /// momentarily under-counts an in-flight push (never over-counts).
  size_t size() const { return size_.load(std::memory_order_seq_cst); }

  /// Single consumer: parks until a push lands or close() is called.
  /// Returns immediately when items are already visible. Spurious returns
  /// are allowed (callers re-poll) — the guarantee is "never sleeps
  /// through a completed push".
  void wait_nonempty() {
    // Adaptive spin before the park: under an active load the next push
    // lands within microseconds, and a yield round trip costs a fraction
    // of the futex sleep/wake pair (it also keeps `parked_` false, so
    // producers skip their notify branch entirely). An idle consumer
    // burns the bounded spin once, then parks for real.
    for (int spin = 0; spin < 64; ++spin) {
      if (size_.load(std::memory_order_seq_cst) > 0 ||
          closed_.load(std::memory_order_relaxed)) {
        return;
      }
      std::this_thread::yield();
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    parked_.store(true, std::memory_order_seq_cst);
    // Dekker handshake: our parked_ store is ordered before this size_
    // load; a producer orders its size_ bump before its parked_ load. In
    // the seq_cst total order one of the two must observe the other, so
    // either we see the item here or the producer sees us parked and
    // notifies under the mutex we hold.
    if (size_.load(std::memory_order_seq_cst) > 0 ||
        closed_.load(std::memory_order_relaxed)) {
      parked_.store(false, std::memory_order_relaxed);
      return;
    }
    park_cv_.wait(lock, [this] {
      return !parked_.load(std::memory_order_relaxed) ||
             closed_.load(std::memory_order_relaxed);
    });
    parked_.store(false, std::memory_order_relaxed);
  }

  /// Unblocks the consumer permanently (shutdown). Push is still legal
  /// after close — the consumer drains before exiting.
  void close() {
    {
      std::lock_guard<std::mutex> lock(park_mutex_);
      closed_.store(true, std::memory_order_relaxed);
      parked_.store(false, std::memory_order_relaxed);
    }
    park_cv_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_relaxed); }

 private:
  struct Node {
    Node() = default;
    explicit Node(T&& v) : value(std::move(v)) {}
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  std::atomic<Node*> tail_;  // producers exchange here
  Node* head_;               // consumer-owned stub
  std::atomic<size_t> size_{0};

  std::atomic<bool> parked_{false};
  std::atomic<bool> closed_{false};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
};

/// A counting semaphore for bounded-depth backpressure. `credits` of 0
/// means unlimited (every acquire succeeds without touching the counter).
class CreditGate {
 public:
  explicit CreditGate(size_t credits)
      : unlimited_(credits == 0),
        credits_(static_cast<long long>(credits)) {}

  /// One CAS on the fast path; never blocks.
  bool try_acquire() {
    if (unlimited_) return true;
    long long have = credits_.load(std::memory_order_relaxed);
    while (have > 0) {
      if (credits_.compare_exchange_weak(have, have - 1,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  /// try_acquire, then park up to `timeout` for a release. False = shed.
  template <typename Rep, typename Period>
  bool acquire_for(std::chrono::duration<Rep, Period> timeout) {
    if (try_acquire()) return true;
    if (timeout <= timeout.zero()) return false;
    std::unique_lock<std::mutex> lock(mutex_);
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    // Same Dekker shape as the queue park: a releaser orders its credit
    // add before its waiters_ load, we order our waiters_ bump before the
    // predicate's credit read — one side always sees the other.
    const bool ok =
        cv_.wait_for(lock, timeout, [this] { return try_acquire(); });
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return ok;
  }

  /// Returns `n` credits; wakes parked producers only when there are any.
  void release(size_t n) {
    if (unlimited_ || n == 0) return;
    credits_.fetch_add(static_cast<long long>(n), std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) > 0) {
      // Serialize with the waiter's predicate registration, then wake all:
      // n credits may satisfy up to n producers.
      { std::lock_guard<std::mutex> lock(mutex_); }
      cv_.notify_all();
    }
  }

  bool unlimited() const { return unlimited_; }
  /// Credits currently available (unbounded gates report 0).
  long long available() const {
    return unlimited_ ? 0 : credits_.load(std::memory_order_relaxed);
  }

 private:
  const bool unlimited_;
  std::atomic<long long> credits_;
  std::atomic<size_t> waiters_{0};
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace dna::util
