#include "util/threadpool.h"

#include "util/error.h"
#include "util/logging.h"

namespace dna::util {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = std::thread::hardware_concurrency();
  if (num_threads == 0) num_threads = 1;  // a pool must be able to run tasks
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
    if (failure_) {
      DNA_ERROR("ThreadPool destroyed with an uncollected task failure");
      failure_ = nullptr;
    }
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(Task task) {
  DNA_CHECK(task != nullptr);
  {
    // The push must happen under wake_mutex_: a worker that found every
    // queue empty re-checks them while holding wake_mutex_ before sleeping,
    // so it either sees this task during that scan or is already inside
    // wait() when the notify below fires. Pushing outside wake_mutex_ opens
    // a lost-wakeup window between its scan and its wait().
    std::lock_guard<std::mutex> lock(wake_mutex_);
    DNA_CHECK(!stop_);
    const size_t target = next_queue_++ % queues_.size();
    ++pending_;
    std::lock_guard<std::mutex> queue_lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(wake_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  if (failure_) {
    std::exception_ptr failure = nullptr;
    std::swap(failure, failure_);
    lock.unlock();
    std::rethrow_exception(failure);
  }
}

void ThreadPool::parallel_for(
    size_t count, const std::function<void(size_t worker, size_t index)>& fn) {
  for (size_t index = 0; index < count; ++index) {
    submit([&fn, index](size_t worker) { fn(worker, index); });
  }
  wait_idle();
}

void ThreadPool::record_failure(std::exception_ptr failure) {
  std::lock_guard<std::mutex> lock(wake_mutex_);
  // First failure wins; the ones it races are already logged above.
  if (!failure_) failure_ = std::move(failure);
}

ThreadPool::Task ThreadPool::take_task(size_t worker) {
  // Own queue first (front: LIFO locality is irrelevant here, FIFO keeps
  // batch progress roughly in submission order)...
  {
    WorkerQueue& own = *queues_[worker];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      Task task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return task;
    }
  }
  // ... then steal from the back of a sibling's, scanning from the next
  // worker around the ring so victims are spread evenly.
  for (size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(worker + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      Task task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return task;
    }
  }
  return nullptr;
}

void ThreadPool::worker_loop(size_t worker) {
  for (;;) {
    Task task = take_task(worker);
    if (!task) {
      std::unique_lock<std::mutex> lock(wake_mutex_);
      if (stop_) return;
      // Re-check the queues under the wake lock: a submit may have landed
      // between our failed scan and acquiring the lock. pending_ counts
      // queued-or-running tasks, so pending_ > 0 with all queues empty just
      // means tasks are still executing elsewhere — sleep until signalled.
      bool maybe_work = false;
      for (const auto& queue : queues_) {
        std::lock_guard<std::mutex> queue_lock(queue->mutex);
        if (!queue->tasks.empty()) {
          maybe_work = true;
          break;
        }
      }
      if (!maybe_work) {
        wake_cv_.wait(lock);
      }
      continue;
    }
    try {
      task(worker);
    } catch (const std::exception& e) {
      DNA_ERROR("uncaught exception in ThreadPool task (worker " << worker
                                                                 << "): "
                                                                 << e.what());
      record_failure(std::current_exception());
    } catch (...) {
      DNA_ERROR("uncaught non-standard exception in ThreadPool task (worker "
                << worker << ")");
      record_failure(std::current_exception());
    }
    {
      std::lock_guard<std::mutex> lock(wake_mutex_);
      --pending_;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace dna::util
