#include "util/interner.h"

#include "util/error.h"

namespace dna {

Symbol Interner::intern(std::string_view text) {
  auto it = index_.find(std::string(text));
  if (it != index_.end()) return it->second;
  Symbol sym = static_cast<Symbol>(strings_.size());
  strings_.emplace_back(text);
  index_.emplace(strings_.back(), sym);
  return sym;
}

Symbol Interner::find(std::string_view text) const {
  auto it = index_.find(std::string(text));
  return it == index_.end() ? kNoSymbol : it->second;
}

const std::string& Interner::str(Symbol sym) const {
  DNA_CHECK_MSG(sym < strings_.size(), "unknown symbol");
  return strings_[sym];
}

}  // namespace dna
