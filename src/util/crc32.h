// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for on-disk record integrity.
//
// Chosen over the in-process hashes (hash.h) because the checksum is part of
// a persistent format: it must stay stable across builds, platforms, and
// standard-library versions, and CRC's burst-error detection is the right
// tool for catching torn or bit-rotted disk writes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dna::util {

/// CRC-32 of `size` bytes at `data`, continuing from `seed` (pass the
/// previous return value to checksum discontiguous buffers as one stream).
uint32_t crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t crc32(std::string_view text, uint32_t seed = 0) {
  return crc32(text.data(), text.size(), seed);
}

}  // namespace dna::util
