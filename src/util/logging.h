// Minimal leveled logging to stderr.
//
// Logging defaults to Warn so library users see problems but benches stay
// quiet; tests and examples raise the level explicitly when useful.
#pragma once

#include <sstream>
#include <string>

namespace dna {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

namespace detail {
void log_line(LogLevel level, const std::string& message);
}

}  // namespace dna

#define DNA_LOG(level, expr)                                       \
  do {                                                             \
    if (static_cast<int>(level) >=                                 \
        static_cast<int>(::dna::log_level())) {                    \
      std::ostringstream dna_log_stream;                           \
      dna_log_stream << expr;                                      \
      ::dna::detail::log_line(level, dna_log_stream.str());        \
    }                                                              \
  } while (0)

#define DNA_DEBUG(expr) DNA_LOG(::dna::LogLevel::kDebug, expr)
#define DNA_INFO(expr) DNA_LOG(::dna::LogLevel::kInfo, expr)
#define DNA_WARN(expr) DNA_LOG(::dna::LogLevel::kWarn, expr)
#define DNA_ERROR(expr) DNA_LOG(::dna::LogLevel::kError, expr)
