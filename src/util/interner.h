// String interning: maps strings to dense 32-bit symbols and back.
//
// Dataflow rows and datalog tuples store symbols instead of strings so that
// tuples stay fixed-width and hashing/equality are O(1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dna {

using Symbol = uint32_t;

/// A bidirectional string <-> Symbol table. Symbols are dense, starting at 0.
/// Not thread-safe; each engine owns its own interner.
class Interner {
 public:
  /// Returns the symbol for `text`, creating one on first sight.
  Symbol intern(std::string_view text);

  /// Returns the symbol for `text` if already interned, else `kNoSymbol`.
  Symbol find(std::string_view text) const;

  /// The string for a previously returned symbol.
  const std::string& str(Symbol sym) const;

  size_t size() const { return strings_.size(); }

  static constexpr Symbol kNoSymbol = ~Symbol{0};

 private:
  std::unordered_map<std::string, Symbol> index_;
  std::vector<std::string> strings_;
};

}  // namespace dna
