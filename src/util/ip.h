// IPv4 address and prefix value types.
//
// Addresses are host-order 32-bit values wrapped in a strong type; prefixes
// pair a (masked) address with a length. Both are cheap to copy, ordered and
// hashable so they can key standard containers.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/hash.h"

namespace dna {

/// An IPv4 address in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(uint32_t bits) : bits_(bits) {}
  constexpr Ipv4Addr(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : bits_((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
              uint32_t{d}) {}

  constexpr uint32_t bits() const { return bits_; }

  /// Parses dotted-quad notation ("10.0.1.2"); nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(const std::string& text);

  std::string str() const;

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  uint32_t bits_ = 0;
};

/// An IPv4 prefix (CIDR block). The stored address is always masked to the
/// prefix length, so two prefixes covering the same block compare equal.
class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;

  /// Builds the prefix covering `addr` at `len` bits; host bits are cleared.
  constexpr Ipv4Prefix(Ipv4Addr addr, uint8_t len)
      : addr_(addr.bits() & mask_bits(len)), len_(len) {}

  constexpr Ipv4Addr addr() const { return Ipv4Addr(addr_); }
  constexpr uint8_t length() const { return len_; }

  /// The netmask as a 32-bit value (e.g. /24 -> 0xffffff00).
  static constexpr uint32_t mask_bits(uint8_t len) {
    return len == 0 ? 0u : ~uint32_t{0} << (32 - len);
  }

  /// First and last addresses covered by the block.
  constexpr Ipv4Addr first() const { return Ipv4Addr(addr_); }
  constexpr Ipv4Addr last() const {
    return Ipv4Addr(addr_ | ~mask_bits(len_));
  }

  constexpr bool contains(Ipv4Addr a) const {
    return (a.bits() & mask_bits(len_)) == addr_;
  }
  constexpr bool contains(const Ipv4Prefix& other) const {
    return other.len_ >= len_ && contains(other.addr());
  }
  constexpr bool overlaps(const Ipv4Prefix& other) const {
    return contains(other.addr()) || other.contains(Ipv4Addr(addr_));
  }

  /// Parses CIDR notation ("10.0.0.0/8"); nullopt on malformed input.
  static std::optional<Ipv4Prefix> parse(const std::string& text);

  /// The default route 0.0.0.0/0.
  static constexpr Ipv4Prefix default_route() { return Ipv4Prefix(); }

  std::string str() const;

  friend constexpr auto operator<=>(const Ipv4Prefix&,
                                    const Ipv4Prefix&) = default;

 private:
  uint32_t addr_ = 0;  // masked
  uint8_t len_ = 0;
};

}  // namespace dna

template <>
struct std::hash<dna::Ipv4Addr> {
  size_t operator()(dna::Ipv4Addr a) const noexcept {
    return dna::hash_u64(a.bits());
  }
};

template <>
struct std::hash<dna::Ipv4Prefix> {
  size_t operator()(const dna::Ipv4Prefix& p) const noexcept {
    return dna::hash_u64((uint64_t{p.addr().bits()} << 8) | p.length());
  }
};
