#include "util/ip.h"

#include <cstdio>

namespace dna {

std::optional<Ipv4Addr> Ipv4Addr::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  int matched =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    return std::nullopt;
  }
  return Ipv4Addr(static_cast<uint8_t>(a), static_cast<uint8_t>(b),
                  static_cast<uint8_t>(c), static_cast<uint8_t>(d));
}

std::string Ipv4Addr::str() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (bits_ >> 24) & 0xff,
                (bits_ >> 16) & 0xff, (bits_ >> 8) & 0xff, bits_ & 0xff);
  return buf;
}

std::optional<Ipv4Prefix> Ipv4Prefix::parse(const std::string& text) {
  auto slash = text.find('/');
  if (slash == std::string::npos) return std::nullopt;
  auto addr = Ipv4Addr::parse(text.substr(0, slash));
  if (!addr) return std::nullopt;
  const std::string len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 2) return std::nullopt;
  int len = 0;
  for (char ch : len_text) {
    if (ch < '0' || ch > '9') return std::nullopt;
    len = len * 10 + (ch - '0');
  }
  if (len > 32) return std::nullopt;
  return Ipv4Prefix(*addr, static_cast<uint8_t>(len));
}

std::string Ipv4Prefix::str() const {
  return addr().str() + "/" + std::to_string(len_);
}

}  // namespace dna
