// Small string utilities used by the parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dna {

/// Splits on any run of the given separator character; no empty tokens.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on whitespace (spaces and tabs); no empty tokens.
std::vector<std::string> split_ws(std::string_view text);

/// Removes leading and trailing whitespace (spaces, tabs, CR, LF).
std::string_view trim(std::string_view text);

/// Joins the elements with the given separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a non-negative decimal integer; returns -1 on malformed input.
long long parse_int(std::string_view text);

}  // namespace dna
