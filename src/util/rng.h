// Deterministic pseudo-random generation for workloads and property tests.
//
// All workload generators take an explicit Rng so that every experiment and
// every randomized test is reproducible from a printed seed.
#pragma once

#include <cstdint>

#include "util/error.h"

namespace dna {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step to spread the seed across the state.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  uint64_t below(uint64_t bound) {
    DNA_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      uint64_t value = next();
      if (value >= threshold) return value % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t range(int64_t lo, int64_t hi) {
    DNA_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

}  // namespace dna
