#include "util/strings.h"

namespace dna {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(sep, start);
    if (end == std::string_view::npos) end = text.size();
    if (end > start) out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view trim(std::string_view text) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

long long parse_int(std::string_view text) {
  if (text.empty()) return -1;
  long long value = 0;
  for (char ch : text) {
    if (ch < '0' || ch > '9') return -1;
    value = value * 10 + (ch - '0');
    if (value > (1LL << 62)) return -1;
  }
  return value;
}

}  // namespace dna
