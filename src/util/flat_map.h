// Open-addressing hash map with robin-hood probing and backward-shift erase.
//
// Built for the dataflow hot path (Multiset, join/reduce state), where
// node-based std::unordered_map spends most of its time in the allocator and
// chasing bucket pointers. Design points:
//
//   - One flat slot array (hash, key, value); capacity is a power of two.
//     A stored hash of zero marks an empty slot, so probing never touches
//     the key on a miss and rehashing never re-invokes the hash functor.
//   - Robin-hood insertion bounds probe-sequence variance; erase shifts the
//     following cluster back one slot instead of leaving tombstones, so a
//     churned map never degrades (long-lived service sessions depend on it).
//   - Heterogeneous "hashed" entry points (`find_hashed`, `try_emplace_hashed`,
//     `erase_hashed`) take a precomputed hash plus an equality predicate and
//     build the key lazily only when an insert actually happens. The join and
//     reduce operators use these to probe by projected row columns without
//     materializing a key row per delta.
//
// Iterators and entry pointers are invalidated by any insert (rehash or
// robin-hood displacement) and by erase (backward shift). The supported
// pattern is lookup → mutate value → optionally erase, with no interleaved
// map mutation — exactly what the dataflow operators do.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/error.h"
#include "util/hash.h"

namespace dna::util {

template <class Key, class T, class Hash = std::hash<Key>,
          class KeyEqual = std::equal_to<Key>>
class FlatMap {
 public:
  using key_type = Key;
  using mapped_type = T;
  using value_type = std::pair<Key, T>;
  using size_type = size_t;

 private:
  struct Slot {
    size_t hash = 0;  // 0 = empty
    value_type kv{};
  };

  template <bool Const>
  class Iter {
    using SlotPtr = std::conditional_t<Const, const Slot*, Slot*>;

   public:
    using value_type = FlatMap::value_type;
    using reference =
        std::conditional_t<Const, const value_type&, value_type&>;
    using pointer = std::conditional_t<Const, const value_type*, value_type*>;
    using difference_type = ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    Iter() = default;
    Iter(SlotPtr slot, SlotPtr end) : slot_(slot), end_(end) { skip_empty(); }
    // const_iterator from iterator.
    template <bool C = Const, class = std::enable_if_t<C>>
    Iter(const Iter<false>& other) : slot_(other.slot_), end_(other.end_) {}

    reference operator*() const { return slot_->kv; }
    pointer operator->() const { return &slot_->kv; }
    Iter& operator++() {
      ++slot_;
      skip_empty();
      return *this;
    }
    Iter operator++(int) {
      Iter copy = *this;
      ++*this;
      return copy;
    }
    friend bool operator==(const Iter& a, const Iter& b) {
      return a.slot_ == b.slot_;
    }
    friend bool operator!=(const Iter& a, const Iter& b) {
      return a.slot_ != b.slot_;
    }

   private:
    friend class FlatMap;
    void skip_empty() {
      while (slot_ != end_ && slot_->hash == 0) ++slot_;
    }
    SlotPtr slot_ = nullptr;
    SlotPtr end_ = nullptr;
  };

 public:
  using iterator = Iter<false>;
  using const_iterator = Iter<true>;

  FlatMap() = default;

  size_type size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() { return {slots_.data(), slots_end()}; }
  iterator end() { return {slots_end(), slots_end()}; }
  const_iterator begin() const { return {slots_.data(), slots_end()}; }
  const_iterator end() const { return {slots_end(), slots_end()}; }

  void clear() {
    for (Slot& slot : slots_) {
      if (slot.hash != 0) {
        slot.hash = 0;
        slot.kv = value_type{};
      }
    }
    size_ = 0;
  }

  /// Ensures capacity for `n` entries without rehashing.
  void reserve(size_type n) {
    size_type needed = kMinCapacity;
    while (needed * kMaxLoadNum < n * kMaxLoadDen) needed <<= 1;
    if (needed > slots_.size()) rehash(needed);
  }

  // ---- heterogeneous (precomputed-hash) entry points -----------------------

  /// Finds the entry whose stored hash matches `raw_hash` and whose key
  /// satisfies `eq`. The predicate receives `const Key&`.
  template <class Pred>
  iterator find_hashed(size_t raw_hash, Pred&& eq) {
    if (size_ == 0) return end();
    const size_t h = normalize(raw_hash);
    const size_t mask = slots_.size() - 1;
    size_t idx = h & mask;
    size_t dist = 0;
    for (;;) {
      const Slot& slot = slots_[idx];
      if (slot.hash == 0) return end();
      if (slot.hash == h && eq(slot.kv.first)) return at_slot(idx);
      // Robin-hood invariant: anything probing further than the resident
      // entry's displacement cannot be present.
      if (probe_distance(slot.hash, idx, mask) < dist) return end();
      idx = (idx + 1) & mask;
      ++dist;
    }
  }

  template <class Pred>
  const_iterator find_hashed(size_t raw_hash, Pred&& eq) const {
    return const_cast<FlatMap*>(this)->find_hashed(raw_hash,
                                                   std::forward<Pred>(eq));
  }

  /// Lookup-or-insert with a lazily built key: if no entry matches
  /// (`raw_hash`, `eq`), inserts `{make_key(), T(args...)}`.
  template <class Pred, class MakeKey, class... Args>
  std::pair<iterator, bool> try_emplace_hashed(size_t raw_hash, Pred&& eq,
                                               MakeKey&& make_key,
                                               Args&&... args) {
    if (slots_.empty()) rehash(kMinCapacity);
    const size_t h = normalize(raw_hash);
    {
      const size_t mask = slots_.size() - 1;
      size_t idx = h & mask;
      size_t dist = 0;
      for (;;) {
        const Slot& slot = slots_[idx];
        if (slot.hash == 0 || probe_distance(slot.hash, idx, mask) < dist) {
          break;  // not present; fall through to insert
        }
        if (slot.hash == h && eq(slot.kv.first)) return {at_slot(idx), false};
        idx = (idx + 1) & mask;
        ++dist;
      }
    }
    if ((size_ + 1) * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.size() * 2);
    }
    const size_t idx =
        insert_fresh(h, value_type(std::forward<MakeKey>(make_key)(),
                                   T(std::forward<Args>(args)...)));
    ++size_;
    return {at_slot(idx), true};
  }

  /// Erases the entry matching (`raw_hash`, `eq`). Returns entries removed.
  template <class Pred>
  size_type erase_hashed(size_t raw_hash, Pred&& eq) {
    iterator it = find_hashed(raw_hash, std::forward<Pred>(eq));
    if (it == end()) return 0;
    erase(it);
    return 1;
  }

  // ---- std::unordered_map-compatible surface -------------------------------

  iterator find(const Key& key) {
    return find_hashed(Hash{}(key),
                       [&](const Key& k) { return KeyEqual{}(k, key); });
  }
  const_iterator find(const Key& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }
  size_type count(const Key& key) const {
    return find(key) == end() ? 0 : 1;
  }
  bool contains(const Key& key) const { return count(key) != 0; }

  template <class... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    return try_emplace_hashed(
        Hash{}(key), [&](const Key& k) { return KeyEqual{}(k, key); },
        [&]() -> const Key& { return key; }, std::forward<Args>(args)...);
  }
  template <class... Args>
  std::pair<iterator, bool> try_emplace(Key&& key, Args&&... args) {
    return try_emplace_hashed(
        Hash{}(key), [&](const Key& k) { return KeyEqual{}(k, key); },
        [&]() -> Key&& { return std::move(key); },
        std::forward<Args>(args)...);
  }
  std::pair<iterator, bool> insert(value_type kv) {
    auto [it, inserted] = try_emplace(std::move(kv.first));
    if (inserted) it->second = std::move(kv.second);
    return {it, inserted};
  }

  T& operator[](const Key& key) { return try_emplace(key).first->second; }

  T& at(const Key& key) {
    iterator it = find(key);
    DNA_CHECK_MSG(it != end(), "FlatMap::at: key not found");
    return it->second;
  }
  const T& at(const Key& key) const { return const_cast<FlatMap*>(this)->at(key); }

  /// Backward-shift erase: no tombstones, probe sequences stay short.
  iterator erase(iterator pos) {
    const size_t mask = slots_.size() - 1;
    size_t idx = static_cast<size_t>(pos.slot_ - slots_.data());
    for (;;) {
      const size_t next = (idx + 1) & mask;
      Slot& next_slot = slots_[next];
      if (next_slot.hash == 0 ||
          probe_distance(next_slot.hash, next, mask) == 0) {
        break;
      }
      slots_[idx] = std::move(next_slot);
      next_slot.hash = 0;
      next_slot.kv = value_type{};
      idx = next;
    }
    slots_[idx].hash = 0;
    slots_[idx].kv = value_type{};
    --size_;
    // The erased position now holds either a shifted-back successor or is
    // empty; re-normalizing makes `erase(it)` usable in iteration loops.
    return at_slot(static_cast<size_t>(pos.slot_ - slots_.data()));
  }

  size_type erase(const Key& key) {
    iterator it = find(key);
    if (it == end()) return 0;
    erase(it);
    return 1;
  }

  /// Order-independent equality (mirrors std::unordered_map::operator==).
  friend bool operator==(const FlatMap& a, const FlatMap& b) {
    if (a.size_ != b.size_) return false;
    for (const value_type& kv : a) {
      auto it = b.find(kv.first);
      if (it == b.end() || !(it->second == kv.second)) return false;
    }
    return true;
  }
  friend bool operator!=(const FlatMap& a, const FlatMap& b) {
    return !(a == b);
  }

 private:
  static constexpr size_type kMinCapacity = 16;
  // Max load factor 7/8: robin-hood probing keeps clusters short enough to
  // run this dense, halving memory versus a 0.5-load table.
  static constexpr size_type kMaxLoadNum = 7;
  static constexpr size_type kMaxLoadDen = 8;

  static size_t normalize(size_t raw) {
    // Remix so weak hashes (e.g. std::hash<int> identity) still spread over
    // the table, and reserve 0 as the empty-slot sentinel.
    size_t h = hash_u64(raw);
    return h == 0 ? 1 : h;
  }

  static size_t probe_distance(size_t hash, size_t idx, size_t mask) {
    return (idx + mask + 1 - (hash & mask)) & mask;
  }

  Slot* slots_end() { return slots_.data() + slots_.size(); }
  const Slot* slots_end() const { return slots_.data() + slots_.size(); }

  iterator at_slot(size_t idx) { return {slots_.data() + idx, slots_end()}; }

  /// Robin-hood insert of a key known to be absent. Returns the slot index
  /// where `kv` itself landed (displaced residents may move further on).
  size_t insert_fresh(size_t h, value_type kv) {
    const size_t mask = slots_.size() - 1;
    size_t idx = h & mask;
    size_t dist = 0;
    size_t landed = SIZE_MAX;
    for (;;) {
      Slot& slot = slots_[idx];
      if (slot.hash == 0) {
        slot.hash = h;
        slot.kv = std::move(kv);
        return landed == SIZE_MAX ? idx : landed;
      }
      const size_t resident_dist = probe_distance(slot.hash, idx, mask);
      if (resident_dist < dist) {
        // Rob the rich: park the new entry here, keep shifting the resident.
        std::swap(h, slot.hash);
        std::swap(kv, slot.kv);
        if (landed == SIZE_MAX) landed = idx;
        dist = resident_dist;
      }
      idx = (idx + 1) & mask;
      ++dist;
    }
  }

  void rehash(size_type new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.clear();
    slots_.resize(new_capacity);
    for (Slot& slot : old) {
      if (slot.hash != 0) insert_fresh(slot.hash, std::move(slot.kv));
    }
  }

  std::vector<Slot> slots_;  // power-of-two size (or empty before first use)
  size_type size_ = 0;
};

}  // namespace dna::util
