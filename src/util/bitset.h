// A dynamic bitset sized at runtime, used for per-EC reachability sets.
//
// std::vector<bool> lacks word-level operations (union, intersection,
// difference, popcount) that the reachability differ needs, so we keep a
// small purpose-built type.
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.h"
#include "util/hash.h"

namespace dna {

class DynamicBitset {
 public:
  DynamicBitset() = default;
  explicit DynamicBitset(size_t size)
      : size_(size), words_((size + 63) / 64, 0) {}

  size_t size() const { return size_; }

  void set(size_t i) {
    DNA_CHECK(i < size_);
    words_[i >> 6] |= uint64_t{1} << (i & 63);
  }
  void reset(size_t i) {
    DNA_CHECK(i < size_);
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  bool test(size_t i) const {
    DNA_CHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  size_t count() const;

  bool any() const {
    for (auto w : words_)
      if (w) return true;
    return false;
  }

  /// Indices set in *this but not in `other` (sizes must match).
  std::vector<uint32_t> minus(const DynamicBitset& other) const;

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> to_indices() const;

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);

  bool operator==(const DynamicBitset& other) const = default;

  size_t hash() const {
    size_t h = hash_u64(size_);
    for (auto w : words_) h = hash_combine(h, hash_u64(w));
    return h;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dna

template <>
struct std::hash<dna::DynamicBitset> {
  size_t operator()(const dna::DynamicBitset& b) const noexcept {
    return b.hash();
  }
};
