#include "util/error.h"

namespace dna::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::string what = "DNA_CHECK failed: ";
  what += expr;
  what += " at ";
  what += file;
  what += ":";
  what += std::to_string(line);
  if (!msg.empty()) {
    what += " — ";
    what += msg;
  }
  throw InternalError(what);
}

}  // namespace dna::detail
