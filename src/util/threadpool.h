// A work-stealing thread pool for batch workloads.
//
// Each worker owns a deque of tasks; submissions are distributed round-robin,
// workers pop from the front of their own deque and steal from the back of a
// sibling's when theirs runs dry. Tasks receive the index of the executing
// worker, so callers can keep expensive per-worker state (the scenario runner
// keeps one cloned DnaEngine per worker) without any sharing between tasks.
//
// The pool makes no ordering promises: callers needing deterministic output
// must key results by task index, not completion order (see
// scenario/runner.cc for the pattern).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dna::util {

class ThreadPool {
 public:
  /// A task sees the id (0-based, < num_workers()) of the worker running it.
  using Task = std::function<void(size_t worker)>;

  /// Spawns `num_threads` workers (0 = std::thread::hardware_concurrency).
  /// The pool always ends up with at least one worker: a request that
  /// resolves to zero (explicit or because hardware_concurrency() reports
  /// unknown) is clamped to 1 rather than constructing a pool that can
  /// never run anything.
  explicit ThreadPool(size_t num_threads = 0);

  /// Waits for all submitted tasks, then joins the workers. A pending task
  /// failure that no wait_idle() call collected is logged and dropped
  /// (destructors must not throw).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Enqueues one task. Safe to call from any thread, including from inside
  /// a running task. An exception escaping a task does not kill the worker:
  /// the first one is captured and rethrown to the next wait_idle() caller;
  /// later ones (until that rethrow) are logged and dropped.
  void submit(Task task);

  /// Blocks until every submitted task has finished executing, then
  /// rethrows the first exception that escaped a task since the previous
  /// wait_idle(), if any. The pool stays usable after the rethrow.
  void wait_idle();

  /// Submits `count` tasks fn(worker, index) for index in [0, count) and
  /// waits for all of them; rethrows like wait_idle().
  void parallel_for(size_t count,
                    const std::function<void(size_t worker, size_t index)>& fn);

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(size_t worker);
  /// Pops the front of `worker`'s own queue, or steals from the back of
  /// another worker's. Returns an empty function when everything is dry.
  Task take_task(size_t worker);
  /// Keeps the first failure for wait_idle() to rethrow; logs the rest.
  void record_failure(std::exception_ptr failure);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;  // signalled on submit and shutdown
  std::condition_variable idle_cv_;  // signalled when pending_ hits zero
  size_t pending_ = 0;               // submitted but not yet finished
  size_t next_queue_ = 0;            // round-robin submission cursor
  std::exception_ptr failure_;       // first uncollected task failure
  bool stop_ = false;
};

}  // namespace dna::util
