#include "obs/recorder.h"

#include <algorithm>
#include <chrono>

#include "util/json.h"

namespace dna::obs {

namespace {
// Events are rarer and smaller than samples; a fixed bound keeps a
// misbehaving tier (every query slow) from growing the ring unbounded.
constexpr size_t kMaxEvents = 256;
}  // namespace

FlightRecorder::FlightRecorder(const Registry& registry)
    : FlightRecorder(registry, Options{}) {}

FlightRecorder::FlightRecorder(const Registry& registry, Options options)
    : registry_(registry), options_(options) {}

FlightRecorder::~FlightRecorder() { stop(); }

void FlightRecorder::start() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { run(); });
}

void FlightRecorder::stop() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::unique_lock<std::mutex> lock(mutex_);
  running_ = false;
}

void FlightRecorder::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_requested_) {
    sample_locked(lock);
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_requested_; });
  }
}

void FlightRecorder::sample_now() {
  std::unique_lock<std::mutex> lock(mutex_);
  sample_locked(lock);
}

void FlightRecorder::sample_locked(std::unique_lock<std::mutex>& lock) {
  // Registry::sample() takes the registry's own mutex; drop ours while it
  // runs so a slow exposition elsewhere can't stall recorder queries.
  lock.unlock();
  const std::vector<std::pair<std::string, double>> flat = registry_.sample();
  const uint64_t t = now_ns();
  lock.lock();

  Delta delta;
  // Concurrent sample_now()/mark_event() calls race through the unlocked
  // capture above; keep the stored timeline monotone regardless of the
  // order they reacquire the lock.
  delta.t_ns = ring_.empty() ? t : std::max(t, ring_.back().t_ns);
  for (const auto& [name, value] : flat) {
    auto [it, inserted] = name_ids_.emplace(
        name, static_cast<uint32_t>(names_.size()));
    if (inserted) names_.push_back(name);
    const uint32_t id = it->second;
    const auto prev = last_.find(id);
    if (prev == last_.end() || prev->second != value) {
      delta.changed.emplace_back(id, value);
      last_[id] = value;
    }
  }
  ring_.push_back(std::move(delta));
  while (ring_.size() > options_.capacity) {
    // Fold the evicted sample into the base so every retained sample
    // still reconstructs exactly.
    for (const auto& [id, value] : ring_.front().changed) base_[id] = value;
    ring_.pop_front();
  }
}

void FlightRecorder::mark_event(const std::string& kind,
                                const std::string& detail) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    events_.push_back(Event{now_ns(), kind, detail});
    while (events_.size() > kMaxEvents) events_.pop_front();
  }
  sample_now();
}

std::vector<FlightRecorder::Sample> FlightRecorder::window(
    uint64_t start_ns, uint64_t end_ns) const {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<Sample> out;
  std::map<uint32_t, double> state = base_;
  for (const Delta& delta : ring_) {
    for (const auto& [id, value] : delta.changed) state[id] = value;
    if (delta.t_ns < start_ns || delta.t_ns > end_ns) continue;
    Sample sample;
    sample.t_ns = delta.t_ns;
    sample.values.reserve(state.size());
    for (const auto& [id, value] : state) {
      sample.values.emplace_back(names_[id], value);
    }
    // `state` is keyed by intern id (insertion order), not name order;
    // present sorted by name like Registry::sample().
    std::sort(sample.values.begin(), sample.values.end());
    out.push_back(std::move(sample));
  }
  return out;
}

std::vector<FlightRecorder::Event> FlightRecorder::events() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return std::vector<Event>(events_.begin(), events_.end());
}

std::string FlightRecorder::json(uint64_t start_ns, uint64_t end_ns,
                                 size_t max_samples) const {
  std::vector<Sample> samples = window(start_ns, end_ns);
  if (max_samples > 0 && samples.size() > max_samples) {
    samples.erase(samples.begin(),
                  samples.end() - static_cast<ptrdiff_t>(max_samples));
  }
  const std::vector<Event> evs = events();

  util::JsonWriter json;
  json.begin_object();
  json.key("interval_ms")
      .value(static_cast<unsigned long long>(options_.interval_ms));
  json.key("samples").begin_array();
  for (const Sample& sample : samples) {
    json.begin_object();
    json.key("t_ns").value(static_cast<unsigned long long>(sample.t_ns));
    json.key("values").begin_object();
    for (const auto& [name, value] : sample.values) {
      json.key(name).value(value);
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.key("events").begin_array();
  for (const Event& event : evs) {
    if (event.t_ns < start_ns || event.t_ns > end_ns) continue;
    json.begin_object();
    json.key("t_ns").value(static_cast<unsigned long long>(event.t_ns));
    json.key("kind").value(event.kind);
    json.key("detail").value(event.detail);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

size_t FlightRecorder::size() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return ring_.size();
}

}  // namespace dna::obs
