#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace dna::obs {

namespace {

std::string fixed(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string percent(double fraction) { return fixed(fraction * 100.0, 1) + "%"; }

}  // namespace

double amdahl_serial_fraction(size_t threads, double speedup) {
  if (threads <= 1 || speedup <= 0) return 1.0;
  const double n = static_cast<double>(threads);
  const double s = (n / speedup - 1.0) / (n - 1.0);
  if (s < 0) return 0;
  if (s > 1) return 1;
  return s;
}

void finalize_diagnosis(DiagnosisReport& report) {
  report.qps_seq = report.seconds_seq > 0
                       ? static_cast<double>(report.queries_seq) /
                             report.seconds_seq
                       : 0;
  report.qps_flood = report.seconds_flood > 0
                         ? static_cast<double>(report.queries_flood) /
                               report.seconds_flood
                         : 0;
  report.speedup = report.qps_seq > 0 ? report.qps_flood / report.qps_seq : 0;
  report.serial_fraction =
      amdahl_serial_fraction(report.threads, report.speedup);

  double attributed = 0;
  for (DiagnosisReport::Leg& leg : report.legs) {
    leg.share =
        report.wall_seconds > 0 ? leg.seconds / report.wall_seconds : 0;
    attributed += leg.seconds;
  }
  report.coverage =
      report.wall_seconds > 0 ? attributed / report.wall_seconds : 0;
  std::stable_sort(report.legs.begin(), report.legs.end(),
                   [](const DiagnosisReport::Leg& a,
                      const DiagnosisReport::Leg& b) {
                     return a.seconds > b.seconds;
                   });
  report.dominant = report.legs.empty() ? "" : report.legs.front().name;

  std::ostringstream verdict;
  if (report.speedup >= 1.0) {
    verdict << "flooding " << report.threads << " threads gives "
            << fixed(report.speedup, 2)
            << "x sequential throughput (implied serial fraction "
            << fixed(report.serial_fraction, 2) << ")";
  } else {
    verdict << "parallelism HURTS: " << report.threads
            << " concurrent threads reach only " << fixed(report.speedup, 2)
            << "x sequential throughput (implied serial fraction "
            << fixed(report.serial_fraction, 2) << " — the scaling collapse)";
  }
  if (!report.dominant.empty()) {
    verdict << "; dominant leg is '" << report.dominant << "' at "
            << percent(report.legs.front().share)
            << " of per-query wall time";
  }
  if (report.lock_wait_seconds > 0.001) {
    verdict << "; commit-lock wait " << fixed(report.lock_wait_seconds, 3)
            << "s during the load";
  }
  verdict << ".";
  report.verdict = verdict.str();
}

std::string DiagnosisReport::str() const {
  std::ostringstream out;
  out << "diagnose " << component << ": " << threads << " threads, "
      << queries_seq << " sequential + " << queries_flood
      << " flooded queries\n";
  out << "  sequential  " << fixed(qps_seq, 0) << " qps ("
      << fixed(seconds_seq, 3) << "s)\n";
  out << "  flooded     " << fixed(qps_flood, 0) << " qps ("
      << fixed(seconds_flood, 3) << "s)  speedup " << fixed(speedup, 2)
      << "x  serial fraction " << fixed(serial_fraction, 2) << "\n";
  out << "  leg                      seconds    share\n";
  for (const Leg& leg : legs) {
    char line[128];
    std::snprintf(line, sizeof(line), "  %-24s %8.4f  %6s\n",
                  leg.name.c_str(), leg.seconds, percent(leg.share).c_str());
    out << line;
  }
  out << "  coverage " << percent(coverage) << " of "
      << fixed(wall_seconds, 3) << "s measured wall time\n";
  out << "  commit-lock wait " << fixed(lock_wait_seconds, 4)
      << "s; max queue depth " << max_queue_depth << "\n";
  if (batches > 0) {
    out << "  fan-out: " << batches << " batch(es), mean "
        << fixed(mean_batch, 1) << " queries/batch\n";
  }
  out << "  verdict: " << verdict << "\n";
  return out.str();
}

void DiagnosisReport::append_json(util::JsonWriter& json) const {
  json.begin_object();
  json.key("component").value(component);
  json.key("threads").value(static_cast<unsigned long long>(threads));
  json.key("queries_seq").value(static_cast<unsigned long long>(queries_seq));
  json.key("queries_flood")
      .value(static_cast<unsigned long long>(queries_flood));
  json.key("seconds_seq").value(seconds_seq);
  json.key("seconds_flood").value(seconds_flood);
  json.key("qps_seq").value(qps_seq);
  json.key("qps_flood").value(qps_flood);
  json.key("speedup").value(speedup);
  json.key("serial_fraction").value(serial_fraction);
  json.key("wall_seconds").value(wall_seconds);
  json.key("coverage").value(coverage);
  json.key("lock_wait_seconds").value(lock_wait_seconds);
  json.key("max_queue_depth").value(static_cast<long long>(max_queue_depth));
  json.key("batches").value(static_cast<unsigned long long>(batches));
  json.key("mean_batch").value(mean_batch);
  json.key("legs").begin_array();
  for (const Leg& leg : legs) {
    json.begin_object();
    json.key("name").value(leg.name);
    json.key("seconds").value(leg.seconds);
    json.key("share").value(leg.share);
    json.end_object();
  }
  json.end_array();
  json.key("dominant").value(dominant);
  json.key("verdict").value(verdict);
  json.end_object();
}

}  // namespace dna::obs
