// Flight recorder: a bounded, delta-compressed timeline of Registry
// samples.
//
// A background thread snapshots the component's Registry every
// `interval_ms` into a ring of at most `capacity` samples. Consecutive
// samples are stored as deltas against the previous one (metric names
// interned once, only changed values kept), and evicted samples fold
// into a base map, so any retained sample can still be reconstructed
// exactly. That makes "what did the tier look like between t0 and t1" a
// cheap query — the distribution-over-time view the statistical framing
// in PAPERS.md argues for, instead of a single point-in-time scrape.
//
// Besides the steady cadence, components mark notable moments —
// slow-query and shard-death events — via mark_event(), which records
// the event and forces an immediate out-of-cadence sample so the ring
// holds a data point at the instant things went wrong.
//
// All query methods are safe concurrently with the sampler thread; the
// ring is mutex-guarded (cold path — samples are small and seconds
// apart).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace dna::obs {

class FlightRecorder {
 public:
  struct Options {
    uint64_t interval_ms = 250;  // sampling cadence
    size_t capacity = 2048;      // retained samples; ~8.5 min at 250ms
  };

  /// The recorder samples `registry`, which must outlive it. (Two
  /// overloads, not a defaulted Options argument: a nested aggregate's
  /// member initializers are unusable in default arguments while the
  /// enclosing class is still incomplete.)
  explicit FlightRecorder(const Registry& registry);
  FlightRecorder(const Registry& registry, Options options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Starts the background sampler thread (idempotent).
  void start();
  /// Stops and joins the sampler thread (idempotent; also run by the
  /// destructor).
  void stop();

  /// Takes one sample immediately. Used by the sampler thread, by
  /// mark_event(), and directly by tests that want deterministic
  /// timelines without a thread.
  void sample_now();

  /// Records an out-of-band event ("slow_query", "shard_death", ...)
  /// and forces an immediate sample, so the ring holds the tier's exact
  /// state at the moment of the event.
  void mark_event(const std::string& kind, const std::string& detail);

  /// One fully reconstructed sample: every metric's value at t_ns,
  /// sorted by name.
  struct Sample {
    uint64_t t_ns = 0;
    std::vector<std::pair<std::string, double>> values;
  };

  struct Event {
    uint64_t t_ns = 0;
    std::string kind;
    std::string detail;
  };

  /// Reconstructs all retained samples with start_ns <= t_ns <= end_ns,
  /// oldest first. Pass (0, UINT64_MAX) for everything retained.
  std::vector<Sample> window(uint64_t start_ns, uint64_t end_ns) const;

  /// Retained events, oldest first (bounded like the sample ring).
  std::vector<Event> events() const;

  /// The /flight payload: {"interval_ms":..,"samples":[{"t_ns":..,
  /// "values":{..}}..],"events":[..]} for the window, capped to the most
  /// recent `max_samples` samples (0 = no cap).
  std::string json(uint64_t start_ns, uint64_t end_ns,
                   size_t max_samples = 0) const;

  /// Retained sample count.
  size_t size() const;
  uint64_t interval_ms() const { return options_.interval_ms; }

 private:
  /// A stored sample: time plus only the values that changed since the
  /// previous stored sample (interned name id -> new value).
  struct Delta {
    uint64_t t_ns = 0;
    std::vector<std::pair<uint32_t, double>> changed;
  };

  void sample_locked(std::unique_lock<std::mutex>& lock);
  void run();

  const Registry& registry_;
  const Options options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool running_ = false;
  bool stop_requested_ = false;
  std::thread thread_;

  std::vector<std::string> names_;            // intern table, id = index
  std::map<std::string, uint32_t> name_ids_;  // reverse lookup
  std::map<uint32_t, double> base_;  // state just before ring_.front()
  std::map<uint32_t, double> last_;  // state as of ring_.back()
  std::deque<Delta> ring_;
  std::deque<Event> events_;
};

}  // namespace dna::obs
