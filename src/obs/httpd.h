// A small, dependency-free HTTP/1.1 endpoint for the observability plane.
//
// Scrapers (Prometheus, curl, dashboards) speak HTTP, not the framed query
// protocol — so every serving process can open a side port that exposes the
// same telemetry the `stats` / `trace` / `flight` verbs serve:
//
//   HttpServer http(0 /* ephemeral */, make_obs_handler(endpoints));
//   http.start();
//   ... curl http://127.0.0.1:<http.port()>/metrics ...
//
// Scope is deliberately tiny: GET (and HEAD) only, one request per
// connection (Connection: close), no TLS, bound to 127.0.0.1 by default —
// the same "private fabric, never the open internet" stance as the shard
// transport. Request parsing is a pure function (parse_http_request) so the
// grammar corner cases — bad method line, partial reads, oversized
// requests — are unit-testable without sockets.
//
// Layering: obs/ sits below service/, so this server owns its own POSIX
// listening socket instead of reusing service::TcpListener; the service
// layer hands in behaviour via ObsEndpoints callbacks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace dna::obs {

struct HttpRequest {
  std::string method;               // "GET", "POST", ... (uppercase token)
  std::string path;                 // "/metrics" (target before '?')
  std::map<std::string, std::string> query;  // "?n=50&json=1" -> {n:50,...}

  /// The query parameter's value, or `fallback` when absent.
  std::string param(const std::string& name, std::string fallback = "") const {
    const auto it = query.find(name);
    return it == query.end() ? fallback : it->second;
  }
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Outcome of feeding a (possibly partial) receive buffer to the parser.
enum class HttpParse {
  kNeedMore,  // no complete header block yet — keep reading
  kOk,        // request parsed; `consumed` bytes belong to it
  kBad,       // malformed or oversized — answer 400 and close
};

/// Hard cap on a request's header block; beyond it parsing fails kBad.
inline constexpr size_t kMaxHttpRequestBytes = 8192;

/// Parses one request from the front of `data` (everything received so
/// far). On kOk fills `request` and sets `consumed` to the bytes the
/// request occupied. Bodies are not supported (the plane is read-only);
/// a request advertising Content-Length is kBad.
HttpParse parse_http_request(std::string_view data, HttpRequest& request,
                             size_t& consumed);

/// Serializes status line + headers + body (HTTP/1.1, Connection: close).
std::string render_http_response(const HttpResponse& response);

/// A minimal threaded HTTP server: accept loop on a background thread, one
/// short-lived thread per connection, one request per connection.
class HttpServer {
 public:
  /// Must not throw; runs on a per-connection thread.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds and listens (port 0 = ephemeral, read back via port()).
  /// Throws dna::Error on bind failure. Serving starts with start().
  explicit HttpServer(uint16_t port, Handler handler,
                      const std::string& host = "127.0.0.1");
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Starts the accept loop on a background thread (idempotent).
  void start();
  /// Closes the listener, aborts live connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void stop();

  /// The actually bound port.
  uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void serve_connection(Connection* connection);
  void reap(bool all);

  Handler handler_;
  std::string host_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;

  std::mutex mutex_;  // guards connections_ and started_
  std::vector<std::unique_ptr<Connection>> connections_;
  bool started_ = false;
  std::thread accept_thread_;
};

/// The data sources behind the standard endpoints. Each callback is
/// optional; a missing one turns its endpoint into a 404. Callbacks run on
/// connection threads and must be thread-safe.
struct ObsEndpoints {
  /// /metrics — Prometheus 0.0.4 text (Registry::prometheus_text()).
  std::function<std::string()> prometheus;
  /// /stats.json — the full JSON stats document (the `stats json` verb).
  std::function<std::string()> stats_json;
  /// /healthz — liveness verdict: ok=true serves 200, ok=false 503; the
  /// string is the body detail either way.
  std::function<std::pair<bool, std::string>()> health;
  /// /traces?n=N — recent traces as JSON (TraceLog::json(n)).
  std::function<std::string(size_t n)> traces;
  /// /flight?ms=W&max=M — flight-recorder window (FlightRecorder::json),
  /// W milliseconds back from now (0 = everything retained).
  std::function<std::string(uint64_t window_ms, size_t max_samples)> flight;
};

/// Routes /metrics, /stats.json, /healthz, /traces, /flight (plus a "/"
/// index listing them) onto `endpoints`; anything else is 404.
HttpServer::Handler make_obs_handler(ObsEndpoints endpoints);

}  // namespace dna::obs
