// Lock-light telemetry for the serving tier: named counters, gauges, and
// log-bucketed latency histograms behind a Registry.
//
//   obs::Registry registry;
//   obs::Counter& queries = registry.counter("service.queries_total");
//   obs::Histogram& eval =
//       registry.histogram("service.query_eval_seconds");
//   queries.add();
//   eval.observe(elapsed_ns);          // nanoseconds in, seconds out
//   std::cout << registry.str();       // human text
//   std::cout << registry.prometheus_text();  // scrape endpoint payload
//
// Hot-path discipline: a write is one relaxed atomic add on a per-thread
// shard — no mutex, no cache-line ping-pong between writer threads. Reads
// (str(), snapshots, expositions) aggregate the shards; they are exact with
// respect to every write that happened-before the read and O(shards) per
// metric, which only matters on the (cold) exposition path.
//
// Metric handles returned by the Registry are stable for the Registry's
// lifetime: resolve them once (a mutex-guarded name lookup) and cache the
// reference on the hot path.
//
// Naming: dotted lowercase ("service.queries_total"). Histograms that
// observe nanoseconds should end in "_seconds" — expositions convert to
// seconds, matching Prometheus base-unit conventions. Dots become
// underscores and a "dna_" prefix is added in the Prometheus rendering.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/json.h"

namespace dna::obs {

/// Writer-side sharding degree. A power of two; threads hash onto shards,
/// so concurrent writers usually touch distinct cache lines.
inline constexpr size_t kShards = 16;

/// This thread's shard slot (cached per thread).
inline size_t shard_index() {
  static thread_local const size_t index =
      std::hash<std::thread::id>()(std::this_thread::get_id()) % kShards;
  return index;
}

/// Nanoseconds on the steady clock — the time base every latency metric
/// and trace span shares. On x86-64 with an invariant TSC this is a
/// calibrated rdtsc (a few ns per read); elsewhere it is steady_clock.
uint64_t now_ns();

/// end - start, clamped at zero. Use for durations whose endpoints were
/// read on different threads: the TSC fast path can skew a few ns between
/// cores, and an unsigned wrap would record a ~584-year latency.
inline uint64_t elapsed_ns(uint64_t start_ns, uint64_t end_ns) {
  return end_ns > start_ns ? end_ns - start_ns : 0;
}

/// A monotonically increasing sum.
class Counter {
 public:
  void add(uint64_t n = 1) {
    shards_[shard_index()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t sum = 0;
    for (const Shard& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

/// A point-in-time value (set/add/max semantics). Not sharded: gauges are
/// written rarely (peaks, sizes), never per-query in a tight loop.
class Gauge {
 public:
  void set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if it is below it (atomic running maximum).
  void set_max(int64_t v) {
    int64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < v &&
           !value_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A log2-bucketed distribution of non-negative integer observations.
///
/// Bucket b counts values whose bit width is b: 0 lands in bucket 0, and
/// v in [2^(b-1), 2^b) lands in bucket b — so bucket upper bounds run
/// 0, 1, 2, 4, 8, ... 2^63. Geometric buckets keep the array small (64
/// slots) while resolving latencies from nanoseconds to hours with a
/// worst-case quantile error of one octave, which is what a regression
/// gate or a p99 dashboard actually needs.
class Histogram {
 public:
  /// What one observation means; expositions render kNanos as seconds.
  enum class Unit { kNanos, kCount };
  static constexpr size_t kBuckets = 64;

  explicit Histogram(Unit unit = Unit::kNanos) : unit_(unit) {}

  Unit unit() const { return unit_; }

  /// Bucket index for a value (its bit width).
  static size_t bucket_of(uint64_t value) {
    size_t bits = 0;
    while (value != 0) {
      ++bits;
      value >>= 1;
    }
    return bits;
  }
  /// Inclusive upper bound of a bucket: 0 for bucket 0, else 2^b - 1.
  static uint64_t bucket_upper(size_t bucket) {
    if (bucket == 0) return 0;
    if (bucket >= 64) return ~uint64_t{0};
    return (uint64_t{1} << bucket) - 1;
  }

  void observe(uint64_t value) {
    Shard& shard = shards_[shard_index()];
    shard.buckets[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
    shard.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = shard.max.load(std::memory_order_relaxed);
    while (seen < value && !shard.max.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  /// An aggregated point-in-time view; also the merge algebra the
  /// per-thread shards (and any cross-process rollup) reduce under —
  /// merge is commutative and associative with identity Snapshot{}.
  struct Snapshot {
    std::array<uint64_t, kBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;

    void merge(const Snapshot& other) {
      for (size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
      count += other.count;
      sum += other.sum;
      if (other.max > max) max = other.max;
    }
    /// Adds one observation (the single-sample snapshot; tests use this to
    /// state merge laws).
    void add(uint64_t value) {
      buckets[bucket_of(value)] += 1;
      count += 1;
      sum += value;
      if (value > max) max = value;
    }
    /// The q-quantile (q in [0,1]) estimated by linear interpolation
    /// within the covering bucket; 0 when empty. Error is bounded by the
    /// bucket's octave.
    double quantile(double q) const;
    /// The three quantiles every exposition reports, computed in one pass
    /// and clamped so p50 <= p95 <= p99 holds even when concurrent shard
    /// merges or interpolation rounding would let them cross.
    struct Quantiles {
      double p50 = 0;
      double p95 = 0;
      double p99 = 0;
    };
    Quantiles quantiles() const;
    double mean() const { return count == 0 ? 0 : double(sum) / double(count); }
  };

  Snapshot snapshot() const {
    Snapshot out;
    for (const Shard& shard : shards_) {
      for (size_t b = 0; b < kBuckets; ++b) {
        const uint64_t n = shard.buckets[b].load(std::memory_order_relaxed);
        out.buckets[b] += n;
        out.count += n;
      }
      out.sum += shard.sum.load(std::memory_order_relaxed);
      const uint64_t m = shard.max.load(std::memory_order_relaxed);
      if (m > out.max) out.max = m;
    }
    return out;
  }

 private:
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  Unit unit_;
  std::array<Shard, kShards> shards_;
};

/// A named family of metrics with stable handles and three expositions
/// (human text, JSON, Prometheus). One Registry per serving component
/// (DnaService, ShardRouter) keeps in-process deployments — tests run
/// several services side by side — from aliasing each other's counters;
/// Registry::global() exists for process-wide odds and ends.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Finds or creates. The returned reference lives as long as the
  /// Registry; re-requesting a name returns the same object. Requesting an
  /// existing histogram with a different unit keeps the original unit.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name,
                       Histogram::Unit unit = Histogram::Unit::kNanos);

  /// Human-readable listing, sorted by name.
  std::string str() const;
  /// Appends a "stats" object mapping each metric name to its value —
  /// histograms become {count,sum,max,mean,p50,p95,p99,buckets:[[le,n]]}
  /// with second-valued fields for kNanos histograms.
  void append_json(util::JsonWriter& json) const;
  /// Prometheus text exposition (version 0.0.4): one HELP/TYPE block per
  /// family, names prefixed "dna_" with dots flattened to underscores.
  std::string prometheus_text() const;

  /// One flat scalar per metric, sorted by name — the shape the flight
  /// recorder (recorder.h) delta-compresses into its ring. Counters and
  /// gauges appear under their own names; a histogram contributes
  /// "<name>.count" (observations so far) and "<name>.sum" (in exposition
  /// units, i.e. seconds for kNanos), which is what windowed rate and mean
  /// computations over two samples need.
  std::vector<std::pair<std::string, double>> sample() const;

  static Registry& global();

 private:
  mutable std::mutex mutex_;  // guards the maps, not the metric values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dna::obs
