// Contention profiling for the serving tier.
//
// Two pieces:
//
//   * TimedMutex — a std::mutex that accounts how long callers waited to
//     acquire it. The uncontended path is one try_lock (no clock read);
//     only a blocked acquisition pays two now_ns() calls. The service's
//     commit path runs under one of these, which is how `diagnose` can
//     say "writers spent X s waiting on the commit lock" instead of
//     guessing.
//
//   * DiagnosisReport — the Amdahl-style attribution `diagnose` emits
//     after a two-phase self-load (sequential, then flooded at N
//     threads). The measured speedup S inverts to an implied serial
//     fraction s = (N/S - 1)/(N - 1), and the per-leg histogram deltas
//     (queue / catchup / eval for the service; per-shard RTT for the
//     router) attribute the per-query wall time to named legs. The
//     report is the artifact ROADMAP item 1 asks for: it names the
//     dominant serial leg of the t1→t8 scaling collapse.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/json.h"

namespace dna::obs {

/// A BasicLockable std::mutex wrapper that counts acquisitions, contended
/// acquisitions, and total nanoseconds spent blocked in lock(). Readers
/// (stats expositions, diagnose) load the relaxed atomics without taking
/// the lock.
class TimedMutex {
 public:
  void lock() {
    if (mutex_.try_lock()) {
      locks_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const uint64_t start = now_ns();
    mutex_.lock();
    wait_ns_.fetch_add(elapsed_ns(start, now_ns()),
                       std::memory_order_relaxed);
    contended_.fetch_add(1, std::memory_order_relaxed);
    locks_.fetch_add(1, std::memory_order_relaxed);
  }

  void unlock() { mutex_.unlock(); }

  bool try_lock() {
    if (!mutex_.try_lock()) return false;
    locks_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Total acquisitions (contended or not).
  uint64_t locks() const { return locks_.load(std::memory_order_relaxed); }
  /// Acquisitions that blocked.
  uint64_t contended() const {
    return contended_.load(std::memory_order_relaxed);
  }
  /// Total nanoseconds callers spent blocked in lock().
  uint64_t wait_ns() const { return wait_ns_.load(std::memory_order_relaxed); }

 private:
  std::mutex mutex_;
  std::atomic<uint64_t> locks_{0};
  std::atomic<uint64_t> contended_{0};
  std::atomic<uint64_t> wait_ns_{0};
};

/// What `diagnose` measured and concluded. Filled by the component
/// (DnaService / ShardRouter) from its own self-load, finished by
/// finalize_diagnosis().
struct DiagnosisReport {
  /// One attributed slice of per-query wall time.
  struct Leg {
    std::string name;    // "catchup", "queue", "eval", "shard 0 rtt", ...
    double seconds = 0;  // summed across all flood-phase queries
    double share = 0;    // seconds / wall_seconds, filled by finalize
  };

  std::string component;  // "service" or "router"
  size_t threads = 0;     // flood-phase concurrency N

  uint64_t queries_seq = 0;
  uint64_t queries_flood = 0;
  double seconds_seq = 0;    // wall time of the sequential phase
  double seconds_flood = 0;  // wall time of the flooded phase
  double qps_seq = 0;
  double qps_flood = 0;
  double speedup = 0;          // qps_flood / qps_seq
  double serial_fraction = 0;  // Amdahl inversion of speedup at N

  /// Sum over flood-phase queries of per-query submit→done time — the
  /// denominator every leg share is measured against.
  double wall_seconds = 0;
  double coverage = 0;  // sum(leg.seconds) / wall_seconds

  double lock_wait_seconds = 0;  // commit-lock wait during the load
  int64_t max_queue_depth = 0;   // dispatcher backlog peak during the load

  /// Batch fan-out shape during the flood (service only; 0 = not
  /// measured): how many version-coalesced batches the dispatcher formed
  /// and how many queries the mean batch carried — the amortization the
  /// sharded fan-out buys.
  uint64_t batches = 0;
  double mean_batch = 0;

  std::vector<Leg> legs;  // sorted by seconds descending after finalize
  std::string dominant;   // legs.front().name
  std::string verdict;    // one-paragraph human attribution

  /// The human attribution table `dna_cli diagnose` prints.
  std::string str() const;
  /// The same report as a JSON object (appended as an object value; the
  /// caller owns surrounding keys).
  void append_json(util::JsonWriter& json) const;
};

/// Amdahl inversion: measured speedup S at N threads implies serial
/// fraction s solving S = 1/(s + (1-s)/N), i.e. s = (N/S - 1)/(N - 1),
/// clamped to [0,1]. S <= 1 — parallelism not helping or actively
/// hurting, the collapse regime — clamps to 1.
double amdahl_serial_fraction(size_t threads, double speedup);

/// Finishes a report whose counters and legs[].seconds are filled:
/// derives qps/speedup/serial_fraction, computes each leg's share of
/// wall_seconds, sorts legs descending, names the dominant leg, and
/// writes the verdict paragraph.
void finalize_diagnosis(DiagnosisReport& report);

}  // namespace dna::obs
