#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"

namespace dna::obs {

namespace {

bool valid_span_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.';
    if (!ok) return false;
  }
  return true;
}

/// Strict hex parse; returns false on empty/malformed input.
bool parse_hex(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (const char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

/// Strict decimal parse for span offsets/durations.
bool parse_dec(std::string_view text, uint64_t* out) {
  if (text.empty() || text.size() > 20) return false;
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

std::string hex_id(uint64_t id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llx",
                static_cast<unsigned long long>(id));
  return buffer;
}

}  // namespace

std::string Trace::encode() const {
  if (spans_.empty()) return "";
  std::string out = "t=" + hex_id(id_);
  for (const Span& span : spans_) {
    out += ';';
    out += span.name;
    out += ':';
    out += std::to_string(span.start_ns);
    out += ':';
    out += std::to_string(span.dur_ns);
  }
  return out;
}

std::optional<Trace> Trace::decode(std::string_view text) {
  if (text.size() < 3 || text.substr(0, 2) != "t=") return std::nullopt;
  Trace trace;
  size_t pos = 2;
  const size_t id_end = text.find(';', pos);
  uint64_t id = 0;
  if (!parse_hex(text.substr(pos, id_end - pos), &id)) return std::nullopt;
  trace.set_id(id);
  if (id_end == std::string_view::npos) return trace;  // id, no spans
  pos = id_end + 1;
  while (pos <= text.size()) {
    const size_t span_end = std::min(text.find(';', pos), text.size());
    const std::string_view span_text = text.substr(pos, span_end - pos);
    const size_t first = span_text.find(':');
    const size_t second =
        first == std::string_view::npos ? first : span_text.find(':', first + 1);
    if (second == std::string_view::npos) return std::nullopt;
    const std::string_view name = span_text.substr(0, first);
    uint64_t start = 0, dur = 0;
    if (!valid_span_name(name) ||
        !parse_dec(span_text.substr(first + 1, second - first - 1), &start) ||
        !parse_dec(span_text.substr(second + 1), &dur)) {
      return std::nullopt;
    }
    trace.add(std::string(name), start, dur);
    if (span_end == text.size()) break;
    pos = span_end + 1;
  }
  return trace;
}

void Trace::append_json(util::JsonWriter& json) const {
  json.begin_object();
  json.key("id").value(hex_id(id_));
  json.key("total_ns").value(static_cast<unsigned long long>(end_ns()));
  json.key("spans").begin_array();
  for (const Span& span : spans_) {
    json.begin_object();
    json.key("name").value(span.name);
    json.key("start_ns").value(static_cast<unsigned long long>(span.start_ns));
    json.key("dur_ns").value(static_cast<unsigned long long>(span.dur_ns));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string Trace::str() const {
  std::ostringstream out;
  out << "trace " << hex_id(id_) << " total "
      << static_cast<double>(end_ns()) / 1e6 << " ms\n";
  for (const Span& span : spans_) {
    // Indent by the dot depth of the name, so stitched child legs read as
    // a tree even though the storage is flat.
    const size_t depth =
        static_cast<size_t>(std::count(span.name.begin(), span.name.end(), '.'));
    for (size_t i = 0; i < depth + 1; ++i) out << "  ";
    char line[160];
    std::snprintf(line, sizeof(line), "%-28s @%9.3f ms  +%9.3f ms",
                  span.name.c_str(),
                  static_cast<double>(span.start_ns) / 1e6,
                  static_cast<double>(span.dur_ns) / 1e6);
    out << line << "\n";
  }
  return out.str();
}

double covered_fraction(const Trace& trace, std::string_view root) {
  const Span* root_span = nullptr;
  for (const Span& span : trace.spans()) {
    if (span.name == root) root_span = &span;
  }
  if (root_span == nullptr || root_span->dur_ns == 0) return 0;
  const uint64_t lo = root_span->start_ns;
  const uint64_t hi = root_span->start_ns + root_span->dur_ns;

  // Union of the other spans clipped to [lo, hi): collect, sort, sweep.
  std::vector<std::pair<uint64_t, uint64_t>> intervals;
  for (const Span& span : trace.spans()) {
    if (&span == root_span) continue;
    const uint64_t s = std::max(span.start_ns, lo);
    const uint64_t e = std::min(span.start_ns + span.dur_ns, hi);
    if (e > s) intervals.emplace_back(s, e);
  }
  std::sort(intervals.begin(), intervals.end());
  uint64_t covered = 0, cursor = lo;
  for (const auto& [s, e] : intervals) {
    const uint64_t from = std::max(s, cursor);
    if (e > from) {
      covered += e - from;
      cursor = e;
    }
  }
  return static_cast<double>(covered) / static_cast<double>(hi - lo);
}

uint64_t next_trace_id() {
  // Seeded from the steady clock once, then strided by a large odd
  // constant: ids are unique in-process and collide across processes only
  // if two processes land on the same nanosecond tick.
  static std::atomic<uint64_t> next{now_ns() | 1};
  return next.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
}

void TraceLog::record(Trace trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<Trace> TraceLog::last(size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const size_t take = std::min(n, ring_.size());
  return std::vector<Trace>(ring_.end() - static_cast<long>(take),
                            ring_.end());
}

size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

std::string TraceLog::json(size_t n) const {
  util::JsonWriter json;
  json.begin_object();
  json.key("traces").begin_array();
  for (const Trace& trace : last(n)) {
    trace.append_json(json);
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace dna::obs
