#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

#if defined(__x86_64__)
#include <cpuid.h>
#include <x86intrin.h>
#endif

namespace dna::obs {

namespace {

uint64_t steady_now_ns() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__)
// Calibrated TSC clock. now_ns() sits on the query hot path three times
// (submit, dequeue, post-eval), and a clock_gettime round trip costs ~40ns
// here — comparable to all the histogram observes it feeds. On CPUs with an
// invariant TSC (constant rate, never stops; CPUID.80000007H:EDX[8]) a raw
// rdtsc scaled by a once-measured ticks→ns factor gives the same timeline
// for a few ns per read. Anything without the invariance bit falls back to
// steady_clock.
struct TscScale {
  bool usable = false;
  double ns_per_tick = 0.0;
  uint64_t base_ticks = 0;  // rdtsc at calibration end
  uint64_t base_ns = 0;     // steady_clock at the same instant
};

TscScale calibrate_tsc() {
  TscScale scale;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(0x80000007, &eax, &ebx, &ecx, &edx) == 0 ||
      (edx & (1u << 8)) == 0) {
    return scale;  // No invariant TSC — rate may drift with power states.
  }
  // Measure both clocks over a ~2ms window. One-time cost at first use;
  // 2ms keeps the relative error from the two ~40ns endpoint reads and
  // scheduler jitter under ~0.01%.
  const uint64_t ns0 = steady_now_ns();
  const uint64_t ticks0 = __rdtsc();
  while (steady_now_ns() - ns0 < 2'000'000) {
  }
  const uint64_t ns1 = steady_now_ns();
  const uint64_t ticks1 = __rdtsc();
  if (ticks1 <= ticks0 || ns1 <= ns0) return scale;
  scale.ns_per_tick =
      static_cast<double>(ns1 - ns0) / static_cast<double>(ticks1 - ticks0);
  // Sanity: accept only plausible clock rates (100 MHz .. 100 GHz).
  if (scale.ns_per_tick < 0.01 || scale.ns_per_tick > 10.0) {
    return TscScale{};
  }
  scale.base_ticks = ticks1;
  scale.base_ns = ns1;
  scale.usable = true;
  return scale;
}
#endif  // __x86_64__

}  // namespace

uint64_t now_ns() {
#if defined(__x86_64__)
  // Magic static: the first caller pays the 2ms calibration once.
  static const TscScale scale = calibrate_tsc();
  if (scale.usable) {
    const uint64_t ticks = __rdtsc();
    // Signed delta: a reading from another core can trail base_ticks by a
    // few ticks right after calibration; clamp instead of wrapping.
    const int64_t delta =
        static_cast<int64_t>(ticks) - static_cast<int64_t>(scale.base_ticks);
    if (delta >= 0) {
      return scale.base_ns +
             static_cast<uint64_t>(static_cast<double>(delta) *
                                   scale.ns_per_tick);
    }
    return scale.base_ns;
  }
#endif
  return steady_now_ns();
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // The rank we want, 1-based; q=0 maps to the first observation.
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const uint64_t next = cumulative + buckets[b];
    if (static_cast<double>(next) >= rank) {
      // Linear interpolation inside the covering bucket.
      const double lower =
          b == 0 ? 0 : static_cast<double>(uint64_t{1} << (b - 1));
      const double upper = b == 0 ? 0 : static_cast<double>(bucket_upper(b));
      const double within =
          buckets[b] == 0
              ? 0
              : (rank - static_cast<double>(cumulative)) /
                    static_cast<double>(buckets[b]);
      return lower + (upper - lower) * within;
    }
    cumulative = next;
  }
  return static_cast<double>(max);
}

Histogram::Snapshot::Quantiles Histogram::Snapshot::quantiles() const {
  Quantiles q;
  q.p50 = quantile(0.50);
  // Interpolated quantiles are monotone in rank by construction, but clamp
  // anyway: the shards are read without a barrier, so a snapshot taken
  // mid-merge can hold a count/bucket combination no single instant ever
  // had, and the triple the dashboards print must still be ordered.
  q.p95 = std::max(q.p50, quantile(0.95));
  q.p99 = std::max(q.p95, quantile(0.99));
  return q;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, Histogram::Unit unit) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(unit);
  return *slot;
}

namespace {

/// Scale factor from raw observations to exposition units: kNanos
/// histograms render as seconds.
double unit_scale(Histogram::Unit unit) {
  return unit == Histogram::Unit::kNanos ? 1e-9 : 1.0;
}

/// "service.query_eval_seconds" -> "dna_service_query_eval_seconds".
std::string prometheus_name(const std::string& name) {
  std::string out = "dna_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

std::string Registry::str() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    out << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << name << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    const double scale = unit_scale(histogram->unit());
    out << name << " count " << snap.count;
    if (snap.count > 0) {
      const Histogram::Snapshot::Quantiles q = snap.quantiles();
      out << " mean " << format_double(snap.mean() * scale) << " p50 "
          << format_double(q.p50 * scale) << " p95 "
          << format_double(q.p95 * scale) << " p99 "
          << format_double(q.p99 * scale) << " max "
          << format_double(static_cast<double>(snap.max) * scale);
    }
    out << "\n";
  }
  return out.str();
}

void Registry::append_json(util::JsonWriter& json) const {
  std::lock_guard<std::mutex> lock(mutex_);
  json.key("stats").begin_object();
  for (const auto& [name, counter] : counters_) {
    json.key(name).value(static_cast<unsigned long long>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    json.key(name).value(static_cast<long long>(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    const double scale = unit_scale(histogram->unit());
    json.key(name).begin_object();
    json.key("count").value(static_cast<unsigned long long>(snap.count));
    json.key("sum").value(static_cast<double>(snap.sum) * scale);
    json.key("max").value(static_cast<double>(snap.max) * scale);
    json.key("mean").value(snap.mean() * scale);
    const Histogram::Snapshot::Quantiles q = snap.quantiles();
    json.key("p50").value(q.p50 * scale);
    json.key("p95").value(q.p95 * scale);
    json.key("p99").value(q.p99 * scale);
    json.key("buckets").begin_array();
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      json.begin_array();
      json.value(static_cast<double>(Histogram::bucket_upper(b)) * scale);
      json.value(static_cast<unsigned long long>(snap.buckets[b]));
      json.end_array();
    }
    json.end_array();
    json.end_object();
  }
  json.end_object();
}

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    const std::string prom = prometheus_name(name);
    out << "# HELP " << prom << " " << name << "\n";
    out << "# TYPE " << prom << " counter\n";
    out << prom << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = prometheus_name(name);
    out << "# HELP " << prom << " " << name << "\n";
    out << "# TYPE " << prom << " gauge\n";
    out << prom << " " << gauge->value() << "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = prometheus_name(name);
    const Histogram::Snapshot snap = histogram->snapshot();
    const double scale = unit_scale(histogram->unit());
    out << "# HELP " << prom << " " << name << "\n";
    out << "# TYPE " << prom << " histogram\n";
    // Cumulative buckets up to the last non-empty one, then +Inf. An
    // empty histogram is just the +Inf bucket with zero observations.
    size_t highest = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (snap.buckets[b] != 0) highest = b;
    }
    uint64_t cumulative = 0;
    for (size_t b = 0; b <= highest && snap.count > 0; ++b) {
      cumulative += snap.buckets[b];
      out << prom << "_bucket{le=\""
          << format_double(static_cast<double>(Histogram::bucket_upper(b)) *
                           scale)
          << "\"} " << cumulative << "\n";
    }
    out << prom << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
    out << prom << "_sum " << format_double(static_cast<double>(snap.sum) *
                                            scale)
        << "\n";
    out << prom << "_count " << snap.count << "\n";
  }
  return out.str();
}

std::vector<std::pair<std::string, double>> Registry::sample() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size() + 2 * histograms_.size());
  // The maps are std::map, so each family is already name-sorted; families
  // are emitted in a fixed order and the final sort merges them. Sorted
  // output lets the recorder diff consecutive samples with one linear walk.
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, static_cast<double>(counter->value()));
  }
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, static_cast<double>(gauge->value()));
  }
  for (const auto& [name, histogram] : histograms_) {
    const Histogram::Snapshot snap = histogram->snapshot();
    const double scale = unit_scale(histogram->unit());
    out.emplace_back(name + ".count", static_cast<double>(snap.count));
    out.emplace_back(name + ".sum", static_cast<double>(snap.sum) * scale);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Registry& Registry::global() {
  static Registry* instance = new Registry();
  return *instance;
}

}  // namespace dna::obs
