#include "obs/httpd.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

#ifndef _WIN32
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <arpa/inet.h>
#include <netdb.h>
#endif

namespace dna::obs {

namespace {

bool is_token_char(char c) {
  // RFC 7230 tchar, the characters a method may contain.
  if (c >= 'a' && c <= 'z') return true;
  if (c >= 'A' && c <= 'Z') return true;
  if (c >= '0' && c <= '9') return true;
  return std::strchr("!#$%&'*+-.^_`|~", c) != nullptr;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

}  // namespace

HttpParse parse_http_request(std::string_view data, HttpRequest& request,
                             size_t& consumed) {
  const size_t header_end = data.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return data.size() > kMaxHttpRequestBytes ? HttpParse::kBad
                                              : HttpParse::kNeedMore;
  }
  if (header_end + 4 > kMaxHttpRequestBytes) return HttpParse::kBad;
  consumed = header_end + 4;
  const std::string_view head = data.substr(0, header_end);

  // Request line: METHOD SP request-target SP HTTP/1.x
  const size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return HttpParse::kBad;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return HttpParse::kBad;
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  for (const char c : method) {
    if (!is_token_char(c)) return HttpParse::kBad;
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") return HttpParse::kBad;
  if (target.empty() || target[0] != '/') return HttpParse::kBad;

  // The plane is read-only: a request that carries a body is refused
  // outright rather than half-parsed.
  const std::string_view rest = head.substr(line.size());
  for (const std::string_view header_name :
       {"\r\ncontent-length:", "\r\nContent-Length:", "\r\nCONTENT-LENGTH:",
        "\r\nTransfer-Encoding:", "\r\ntransfer-encoding:"}) {
    if (rest.find(header_name) != std::string_view::npos) {
      return HttpParse::kBad;
    }
  }

  request = HttpRequest{};
  request.method = std::string(method);
  const size_t question = target.find('?');
  request.path = std::string(target.substr(0, question));
  if (question != std::string_view::npos) {
    for (const std::string& pair :
         split(target.substr(question + 1), '&')) {
      if (pair.empty()) continue;
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request.query[pair] = "";
      } else {
        request.query[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
    }
  }
  return HttpParse::kOk;
}

std::string render_http_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_reason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

#ifndef _WIN32

HttpServer::HttpServer(uint16_t port, Handler handler, const std::string& host)
    : handler_(std::move(handler)), host_(host) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw Error("httpd: bad listen address: " + host);
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw Error("httpd: socket() failed: " + std::string(strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto fail = [&](const std::string& what) {
    const std::string detail = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("httpd: " + what + "(" + host + ":" + std::to_string(port) +
                ") failed: " + detail);
  };
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    fail("bind");
  }
  if (::listen(listen_fd_, 64) < 0) fail("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

HttpServer::~HttpServer() {
  stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void HttpServer::start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void HttpServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return;
  }
  // Same trick as TcpListener: shutdown() unblocks a parked accept();
  // the fd stays open until destruction so no thread touches a stale fd.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  // Abort connections still mid-request, then join everything.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& connection : connections_) {
      if (!connection->done.load()) ::shutdown(connection->fd, SHUT_RDWR);
    }
  }
  reap(/*all=*/true);
  std::lock_guard<std::mutex> lock(mutex_);
  started_ = false;
}

void HttpServer::accept_loop() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down
    }
    // A scraper that connects and never sends must not pin a thread
    // forever: bound both directions.
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(client, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    auto connection = std::make_unique<Connection>();
    connection->fd = client;
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { serve_connection(raw); });
    reap(/*all=*/false);
  }
}

void HttpServer::serve_connection(Connection* connection) {
  std::string buffer;
  HttpResponse response;
  HttpRequest request;
  bool have_request = false;
  for (;;) {
    char chunk[2048];
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // EOF, timeout, or abort mid-request
    buffer.append(chunk, static_cast<size_t>(n));
    size_t consumed = 0;
    const HttpParse parsed = parse_http_request(buffer, request, consumed);
    if (parsed == HttpParse::kNeedMore) continue;
    if (parsed == HttpParse::kBad) {
      response = HttpResponse{400, "text/plain; charset=utf-8",
                              "bad request\n"};
    } else if (request.method != "GET" && request.method != "HEAD") {
      response = HttpResponse{405, "text/plain; charset=utf-8",
                              "method not allowed\n"};
    } else {
      response = handler_(request);
      if (request.method == "HEAD") response.body.clear();
    }
    have_request = true;
    break;
  }
  if (have_request) {
    const std::string wire = render_http_response(response);
    size_t sent = 0;
    while (sent < wire.size()) {
      const ssize_t n = ::send(connection->fd, wire.data() + sent,
                               wire.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
  }
  ::close(connection->fd);
  connection->fd = -1;
  connection->done.store(true);
}

void HttpServer::reap(bool all) {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < connections_.size();) {
      if (all || connections_[i]->done.load()) {
        finished.push_back(std::move(connections_[i]));
        connections_.erase(connections_.begin() +
                           static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (auto& connection : finished) {
    if (connection->thread.joinable()) connection->thread.join();
  }
}

#else  // _WIN32: mirror net/tcp.cc — socket servers are POSIX-only.

HttpServer::HttpServer(uint16_t, Handler, const std::string&) {
  throw Error("HTTP endpoint is not available on this platform");
}
HttpServer::~HttpServer() = default;
void HttpServer::start() {}
void HttpServer::stop() {}
void HttpServer::accept_loop() {}
void HttpServer::serve_connection(Connection*) {}
void HttpServer::reap(bool) {}

#endif

HttpServer::Handler make_obs_handler(ObsEndpoints endpoints) {
  return [endpoints = std::move(endpoints)](const HttpRequest& request) {
    HttpResponse response;
    auto missing = [&response]() {
      response.status = 404;
      response.body = "not found\n";
      return response;
    };
    if (request.path == "/metrics") {
      if (!endpoints.prometheus) return missing();
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = endpoints.prometheus();
      return response;
    }
    if (request.path == "/stats.json") {
      if (!endpoints.stats_json) return missing();
      response.content_type = "application/json";
      response.body = endpoints.stats_json();
      return response;
    }
    if (request.path == "/healthz") {
      if (!endpoints.health) return missing();
      const auto [ok, detail] = endpoints.health();
      response.status = ok ? 200 : 503;
      response.body = detail + "\n";
      return response;
    }
    if (request.path == "/traces") {
      if (!endpoints.traces) return missing();
      long long n = 50;
      const std::string raw = request.param("n");
      if (!raw.empty()) n = parse_int(raw);
      if (n < 0) {
        response.status = 400;
        response.body = "bad n\n";
        return response;
      }
      response.content_type = "application/json";
      response.body = endpoints.traces(n);
      return response;
    }
    if (request.path == "/flight") {
      if (!endpoints.flight) return missing();
      long long window_ms = 0;
      long long max_samples = 0;
      const std::string ms = request.param("ms");
      if (!ms.empty()) window_ms = parse_int(ms);
      const std::string max = request.param("max");
      if (!max.empty()) max_samples = parse_int(max);
      if (window_ms < 0 || max_samples < 0) {
        response.status = 400;
        response.body = "bad window\n";
        return response;
      }
      response.content_type = "application/json";
      response.body = endpoints.flight(window_ms, max_samples);
      return response;
    }
    if (request.path == "/") {
      response.body =
          "dna observability plane\n"
          "  /metrics     Prometheus 0.0.4 exposition\n"
          "  /stats.json  full stats document\n"
          "  /healthz     liveness (200 ok / 503 unhealthy)\n"
          "  /traces?n=N  recent query traces (JSON)\n"
          "  /flight?ms=W&max=M  flight-recorder window (JSON)\n";
      return response;
    }
    return missing();
  };
}

}  // namespace dna::obs
