// Per-query tracing: named spans on one timeline, stitched across
// processes.
//
// A Trace is a trace id plus a flat list of spans, each a (name, start,
// duration) triple in nanoseconds relative to the trace's own epoch (the
// moment the traced request entered the component). Hierarchy is by name
// ("s1.eval" is the eval leg observed inside shard 1's RTT leg), which
// keeps the encoding trivial and the merge operation a concatenation.
//
// Cross-process propagation rides the existing text protocol:
//
//  * requests: a "trace:<hex-id>" token prefixed to the query line asks the
//    receiver to trace this request under that id ("trace:auto" lets the
//    receiver pick one);
//  * responses: the receiver's spans come back as a compact single-token
//    encoding on the response status line (protocol.h), leaving the answer
//    body byte-identical to an untraced evaluation;
//  * stitching: the caller re-bases the child's spans at the start of its
//    own RTT span for that request (add_child). A child's whole timeline
//    fits inside the RTT that carried it, so nesting holds by construction.
//
// Encoding (one token, no whitespace):  t=<hex-id>;name:start:dur;...
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace dna::obs {

struct Span {
  std::string name;   // [A-Za-z0-9_.]+, dotted for child legs
  uint64_t start_ns = 0;  // offset from the trace epoch
  uint64_t dur_ns = 0;
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(uint64_t id) : id_(id) {}

  uint64_t id() const { return id_; }
  void set_id(uint64_t id) { id_ = id; }

  void add(std::string name, uint64_t start_ns, uint64_t dur_ns) {
    spans_.push_back({std::move(name), start_ns, dur_ns});
  }

  /// Splices a child trace in: every child span appears as
  /// `prefix + name`, shifted by `offset_ns` (the start of the parent leg
  /// that carried the child's request).
  void add_child(const std::string& prefix, uint64_t offset_ns,
                 const Trace& child) {
    for (const Span& span : child.spans_) {
      spans_.push_back({prefix + span.name, span.start_ns + offset_ns,
                        span.dur_ns});
    }
  }

  const std::vector<Span>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  /// End of the latest span — the trace's total timeline length.
  uint64_t end_ns() const {
    uint64_t end = 0;
    for (const Span& span : spans_) {
      if (span.start_ns + span.dur_ns > end) end = span.start_ns + span.dur_ns;
    }
    return end;
  }

  /// Wire form: "t=<hex-id>;name:start:dur;...". Empty string for a trace
  /// with no spans.
  std::string encode() const;
  /// Parses encode()'s output; nullopt on malformed input (a peer that
  /// does not trace simply sends nothing).
  static std::optional<Trace> decode(std::string_view text);

  /// One JSON object: {"id":"<hex>","total_ns":N,"spans":[...]}.
  void append_json(util::JsonWriter& json) const;
  /// Human-readable span table, one line per span, indented by depth.
  std::string str() const;

 private:
  uint64_t id_ = 0;
  std::vector<Span> spans_;
};

/// Fraction of the span named `root` covered by the union of all other
/// spans clipped to it — how much of the measured wall time the trace
/// accounts for. Returns 0 when `root` is missing or empty.
double covered_fraction(const Trace& trace, std::string_view root);

/// A process-local id for a new trace: unique within the process, dense
/// enough to be unique across a deployment for any practical log window.
uint64_t next_trace_id();

/// Fixed-capacity ring of recently completed traces (the `trace last N`
/// verb). Mutex-guarded — it is only touched for traced or slow queries,
/// never on the plain hot path.
class TraceLog {
 public:
  explicit TraceLog(size_t capacity = 128) : capacity_(capacity) {}

  void record(Trace trace);
  /// The most recent min(n, size) traces, oldest first.
  std::vector<Trace> last(size_t n) const;
  size_t size() const;

  /// {"traces":[...]} for the newest `n` traces.
  std::string json(size_t n) const;

 private:
  mutable std::mutex mutex_;
  std::deque<Trace> ring_;
  size_t capacity_;
};

}  // namespace dna::obs
