// Text format for topologies and whole snapshots.
//
//   topology
//     node r0
//     node r1
//     link r0 eth0 r1 eth0
//     link r0 eth1 r1 eth1 down
//
// Node lines are optional when every node appears in a link (they pin node
// id order); `down` marks an operationally failed link. A snapshot is a
// topology text plus a configuration text (config/parser.h); configs are
// matched to nodes by name.
#pragma once

#include <string>

#include "topo/snapshot.h"

namespace dna::topo {

/// Parses the topology format above. Throws dna::ParseError on malformed
/// input.
Topology parse_topology(const std::string& text);

/// Canonical text output; parse_topology(print_topology(t)) == t.
std::string print_topology(const Topology& topology);

/// Assembles and validates a snapshot from topology + configuration text.
/// Every topology node must have a config (by name) and vice versa.
Snapshot load_snapshot(const std::string& topology_text,
                       const std::string& config_text);

/// Serializes a snapshot into the pair of texts accepted by load_snapshot.
struct SnapshotText {
  std::string topology;
  std::string configs;
};
SnapshotText print_snapshot(const Snapshot& snapshot);

}  // namespace dna::topo
