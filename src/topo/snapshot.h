// A snapshot: the complete state dna verifies — topology plus per-node
// configuration. Snapshots are values; mutators (mutators.h) copy and edit
// them, and the core engine diffs them.
#pragma once

#include <string>
#include <vector>

#include "config/model.h"
#include "topo/topology.h"

namespace dna::topo {

struct Snapshot {
  Topology topology;
  /// Indexed by NodeId (same order as topology nodes).
  std::vector<config::NodeConfig> configs;

  config::NodeConfig& config_of(NodeId id) { return configs.at(id); }
  const config::NodeConfig& config_of(NodeId id) const {
    return configs.at(id);
  }
  config::NodeConfig& config_of(const std::string& name) {
    return configs.at(topology.node_id(name));
  }
  const config::NodeConfig& config_of(const std::string& name) const {
    return configs.at(topology.node_id(name));
  }

  /// Consistency checks: configs align with topology, every link endpoint
  /// interface exists, both ends of a link share a subnet.
  /// Throws dna::Error on violations.
  void validate() const;

  bool operator==(const Snapshot&) const = default;
};

/// The node owning `addr` on one of its interfaces, or kNoNode.
NodeId find_address_owner(const Snapshot& snapshot, Ipv4Addr addr);

}  // namespace dna::topo
