// Change workloads: each mutator copies a snapshot and applies one realistic
// operator action. Benches and property tests compose these to generate
// before/after snapshot pairs.
#pragma once

#include <optional>
#include <string>

#include "topo/snapshot.h"
#include "util/rng.h"

namespace dna::topo {

/// Sets the OSPF cost of both interfaces of a link.
Snapshot with_link_cost(Snapshot snapshot, uint32_t link, int cost);

/// Marks a link operationally down / up.
Snapshot with_link_state(Snapshot snapshot, uint32_t link, bool up);

/// Administratively shuts (or re-enables) one interface.
Snapshot with_interface_enabled(Snapshot snapshot, const std::string& node,
                                const std::string& if_name, bool enabled);

/// Adds a static route on a node.
Snapshot with_static_route(Snapshot snapshot, const std::string& node,
                           Ipv4Prefix prefix, Ipv4Addr next_hop);

/// Installs an ACL that denies traffic to `dst` and applies it inbound on
/// every interface of `node` (the "fat-finger firewall rule" workload).
Snapshot with_acl_block(Snapshot snapshot, const std::string& node,
                        Ipv4Prefix dst, const std::string& acl_name = "BLOCK");

/// Adds (or replaces) an import route-map on a BGP session setting
/// local-pref for every route.
Snapshot with_bgp_local_pref(Snapshot snapshot, const std::string& node,
                             Ipv4Addr neighbor, int local_pref);

/// Originates a new prefix from a node's BGP process.
Snapshot with_bgp_announce(Snapshot snapshot, const std::string& node,
                           Ipv4Prefix prefix);

/// Withdraws a previously originated BGP prefix.
Snapshot with_bgp_withdraw(Snapshot snapshot, const std::string& node,
                           Ipv4Prefix prefix);

/// A randomly chosen mutation, for property tests. Returns the mutated
/// snapshot and a human-readable description of what changed.
struct RandomChange {
  Snapshot snapshot;
  std::string description;
};
RandomChange random_change(const Snapshot& snapshot, Rng& rng);

}  // namespace dna::topo
