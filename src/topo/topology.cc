#include "topo/topology.h"

namespace dna::topo {

NodeId Topology::add_node(const std::string& name) {
  DNA_CHECK_MSG(!ids_.count(name), "duplicate node name: " + name);
  NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  incident_.emplace_back();
  return id;
}

NodeId Topology::node_id(const std::string& name) const {
  auto it = ids_.find(name);
  DNA_CHECK_MSG(it != ids_.end(), "unknown node: " + name);
  return it->second;
}

bool Topology::has_node(const std::string& name) const {
  return ids_.count(name) > 0;
}

const std::string& Topology::node_name(NodeId id) const {
  return names_.at(id);
}

uint32_t Topology::add_link(NodeId a, const std::string& a_if, NodeId b,
                            const std::string& b_if) {
  DNA_CHECK(a < names_.size() && b < names_.size() && a != b);
  DNA_CHECK_MSG(link_at(a, a_if) < 0 && link_at(b, b_if) < 0,
                "interface already attached to a link");
  uint32_t index = static_cast<uint32_t>(links_.size());
  links_.push_back({a, a_if, b, b_if, true});
  incident_[a].push_back(index);
  incident_[b].push_back(index);
  return index;
}

const std::vector<uint32_t>& Topology::links_of(NodeId node) const {
  return incident_.at(node);
}

int Topology::link_at(NodeId node, const std::string& if_name) const {
  if (node >= incident_.size()) return -1;
  for (uint32_t index : incident_[node]) {
    const Link& link = links_[index];
    if ((link.a == node && link.a_if == if_name) ||
        (link.b == node && link.b_if == if_name)) {
      return static_cast<int>(index);
    }
  }
  return -1;
}

std::vector<LinkChange> diff_link_states(const Topology& before,
                                         const Topology& after) {
  DNA_CHECK_MSG(before.num_nodes() == after.num_nodes() &&
                    before.num_links() == after.num_links(),
                "topologies differ structurally");
  std::vector<LinkChange> out;
  for (uint32_t i = 0; i < before.num_links(); ++i) {
    const Link& lhs = before.link(i);
    const Link& rhs = after.link(i);
    DNA_CHECK_MSG(lhs.a == rhs.a && lhs.b == rhs.b && lhs.a_if == rhs.a_if &&
                      lhs.b_if == rhs.b_if,
                  "topologies differ structurally");
    if (lhs.up != rhs.up) out.push_back({i, rhs.up});
  }
  return out;
}

}  // namespace dna::topo
