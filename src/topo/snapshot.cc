#include "topo/snapshot.h"

#include "util/error.h"

namespace dna::topo {

void Snapshot::validate() const {
  if (configs.size() != topology.num_nodes()) {
    throw Error("snapshot has " + std::to_string(configs.size()) +
                " configs for " + std::to_string(topology.num_nodes()) +
                " nodes");
  }
  for (NodeId id = 0; id < topology.num_nodes(); ++id) {
    if (configs[id].name != topology.node_name(id)) {
      throw Error("config order does not match topology: expected " +
                  topology.node_name(id) + ", got " + configs[id].name);
    }
  }
  for (const Link& link : topology.links()) {
    const config::InterfaceConfig* ia =
        configs[link.a].find_interface(link.a_if);
    const config::InterfaceConfig* ib =
        configs[link.b].find_interface(link.b_if);
    if (!ia || !ib) {
      throw Error("link endpoint interface missing: " +
                  topology.node_name(link.a) + ":" + link.a_if + " <-> " +
                  topology.node_name(link.b) + ":" + link.b_if);
    }
    if (ia->subnet() != ib->subnet()) {
      throw Error("link endpoints are on different subnets: " +
                  ia->subnet().str() + " vs " + ib->subnet().str());
    }
  }
}

NodeId find_address_owner(const Snapshot& snapshot, Ipv4Addr addr) {
  for (NodeId id = 0; id < snapshot.topology.num_nodes(); ++id) {
    for (const auto& iface : snapshot.configs[id].interfaces) {
      if (iface.address == addr) return id;
    }
  }
  return kNoNode;
}

}  // namespace dna::topo
