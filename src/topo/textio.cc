#include "topo/textio.h"

#include <sstream>

#include "config/parser.h"
#include "config/printer.h"
#include "util/error.h"
#include "util/strings.h"

namespace dna::topo {

Topology parse_topology(const std::string& text) {
  Topology topology;
  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  bool seen_header = false;
  auto ensure_node = [&](const std::string& name) {
    return topology.has_node(name) ? topology.node_id(name)
                                   : topology.add_node(name);
  };
  while (std::getline(stream, raw)) {
    ++line_no;
    std::string_view line = trim(raw);
    if (auto hash = line.find('#'); hash != std::string_view::npos) {
      line = trim(line.substr(0, hash));
    }
    if (line.empty()) continue;
    std::vector<std::string> tok = split_ws(line);
    if (tok[0] == "topology") {
      seen_header = true;
      continue;
    }
    if (!seen_header) {
      throw ParseError("topology text must start with 'topology'", line_no);
    }
    if (tok[0] == "node") {
      if (tok.size() != 2) throw ParseError("expected: node <name>", line_no);
      ensure_node(tok[1]);
      continue;
    }
    if (tok[0] == "link") {
      // link <a> <a-if> <b> <b-if> [down]
      if (tok.size() != 5 && !(tok.size() == 6 && tok[5] == "down")) {
        throw ParseError(
            "expected: link <node> <if> <node> <if> [down]", line_no);
      }
      NodeId a = ensure_node(tok[1]);
      NodeId b = ensure_node(tok[3]);
      uint32_t index;
      try {
        index = topology.add_link(a, tok[2], b, tok[4]);
      } catch (const Error& e) {
        throw ParseError(e.what(), line_no);
      }
      if (tok.size() == 6) topology.set_link_up(index, false);
      continue;
    }
    throw ParseError("unknown topology directive '" + tok[0] + "'", line_no);
  }
  if (!seen_header) throw ParseError("empty topology text", 0);
  return topology;
}

std::string print_topology(const Topology& topology) {
  std::ostringstream out;
  out << "topology\n";
  for (NodeId id = 0; id < topology.num_nodes(); ++id) {
    out << "  node " << topology.node_name(id) << "\n";
  }
  for (const Link& link : topology.links()) {
    out << "  link " << topology.node_name(link.a) << " " << link.a_if << " "
        << topology.node_name(link.b) << " " << link.b_if;
    if (!link.up) out << " down";
    out << "\n";
  }
  return out.str();
}

Snapshot load_snapshot(const std::string& topology_text,
                       const std::string& config_text) {
  Snapshot snap;
  snap.topology = parse_topology(topology_text);
  std::vector<config::NodeConfig> configs = config::parse_configs(config_text);

  snap.configs.resize(snap.topology.num_nodes());
  std::vector<bool> seen(snap.topology.num_nodes(), false);
  for (auto& cfg : configs) {
    if (!snap.topology.has_node(cfg.name)) {
      throw Error("config for unknown node '" + cfg.name + "'");
    }
    const NodeId id = snap.topology.node_id(cfg.name);
    if (seen[id]) throw Error("duplicate config for node '" + cfg.name + "'");
    seen[id] = true;
    snap.configs[id] = std::move(cfg);
  }
  for (NodeId id = 0; id < snap.topology.num_nodes(); ++id) {
    if (!seen[id]) {
      throw Error("missing config for node '" + snap.topology.node_name(id) +
                  "'");
    }
  }
  snap.validate();
  return snap;
}

SnapshotText print_snapshot(const Snapshot& snapshot) {
  return {print_topology(snapshot.topology),
          config::print_configs(snapshot.configs)};
}

}  // namespace dna::topo
