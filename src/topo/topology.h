// Physical topology: nodes and point-to-point links between named interfaces.
//
// Link state (up/down) lives here rather than in configs: an operational
// link failure is an environment change, not a configuration change, and the
// differ reports the two separately.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/error.h"

namespace dna::topo {

using NodeId = uint32_t;
constexpr NodeId kNoNode = ~NodeId{0};

struct Link {
  NodeId a = kNoNode;
  std::string a_if;
  NodeId b = kNoNode;
  std::string b_if;
  bool up = true;

  /// The other endpoint, given one of the two nodes.
  NodeId peer_of(NodeId node) const { return node == a ? b : a; }
  const std::string& if_of(NodeId node) const {
    return node == a ? a_if : b_if;
  }

  bool operator==(const Link&) const = default;
};

class Topology {
 public:
  NodeId add_node(const std::string& name);
  NodeId node_id(const std::string& name) const;  // throws if unknown
  bool has_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;
  size_t num_nodes() const { return names_.size(); }

  /// Adds a link; returns its index. Endpoint interfaces must be distinct
  /// per node across links.
  uint32_t add_link(NodeId a, const std::string& a_if, NodeId b,
                    const std::string& b_if);

  const std::vector<Link>& links() const { return links_; }
  const Link& link(uint32_t index) const { return links_.at(index); }
  size_t num_links() const { return links_.size(); }

  void set_link_up(uint32_t index, bool up) { links_.at(index).up = up; }

  /// Indices of links incident to a node.
  const std::vector<uint32_t>& links_of(NodeId node) const;

  /// The link attached to (node, interface), or -1.
  int link_at(NodeId node, const std::string& if_name) const;

  bool operator==(const Topology&) const = default;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> ids_;
  std::vector<Link> links_;
  std::vector<std::vector<uint32_t>> incident_;  // by node
};

/// An operational (non-config) difference between two topologies.
struct LinkChange {
  uint32_t link = 0;  // index valid in both topologies
  bool now_up = true;

  bool operator==(const LinkChange&) const = default;
};

/// Diffs link states of two structurally identical topologies (same nodes
/// and links, possibly different up/down flags). Throws if structures
/// differ — node/link additions are config-level events handled elsewhere.
std::vector<LinkChange> diff_link_states(const Topology& before,
                                         const Topology& after);

}  // namespace dna::topo
