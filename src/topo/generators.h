// Synthetic topology + configuration generators.
//
// These stand in for the production configurations evaluated by the paper
// (see DESIGN.md, substitutions). Every generator produces a fully valid,
// deterministic snapshot:
//
//  * link subnets are /30s allocated from 10.0.0.0/8 in link-index order,
//  * every node gets a loopback /32 from 172.16.0.0/16 ("lo"),
//  * OSPF topologies run OSPF on all link interfaces and advertise
//    loopbacks plus any host networks,
//  * host networks (172.31.x.0/24) attach to designated nodes as passive
//    interfaces,
//  * the two-tier AS fabric runs eBGP between tiers, each edge node
//    originating its host /24.
#pragma once

#include "topo/snapshot.h"
#include "util/rng.h"

namespace dna::topo {

/// n nodes in a path: r0 - r1 - ... - r(n-1). OSPF everywhere.
Snapshot make_line(int n);

/// n nodes in a cycle. OSPF everywhere.
Snapshot make_ring(int n);

/// rows x cols mesh. OSPF everywhere.
Snapshot make_grid(int rows, int cols);

/// Hub connected to n-1 leaves. OSPF everywhere.
Snapshot make_star(int n);

/// Random connected graph: n nodes, m >= n-1 edges (a random spanning tree
/// plus random extra edges). OSPF everywhere. Deterministic given the rng.
Snapshot make_random(int n, int m, Rng& rng);

/// k-ary fat-tree (k even): k pods of k/2 edge + k/2 aggregation switches,
/// (k/2)^2 cores. Each edge switch hosts a /24. OSPF everywhere.
Snapshot make_fattree(int k);

/// Two-tier eBGP fabric: `cores` core routers (AS 65000) fully meshed with
/// `edges` edge routers (AS 65001 + i), each edge originating a host /24.
/// No IGP: all routing via eBGP. Import/export maps are installed empty-
/// permissive so policy-change workloads can edit them.
Snapshot make_two_tier_as(int edges, int cores);

}  // namespace dna::topo
