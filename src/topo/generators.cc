#include "topo/generators.h"

#include <algorithm>

#include "util/error.h"

namespace dna::topo {

namespace {

/// Shared scaffolding: build a snapshot from an edge list, assigning
/// addresses and (optionally) enabling OSPF on every node.
class Builder {
 public:
  explicit Builder(int n, const std::string& prefix = "r") {
    for (int i = 0; i < n; ++i) {
      NodeId id = snap_.topology.add_node(prefix + std::to_string(i));
      config::NodeConfig cfg;
      cfg.name = prefix + std::to_string(i);
      // Loopback: 172.16.x.y/32.
      config::InterfaceConfig lo;
      lo.name = "lo";
      lo.address = Ipv4Addr(172, 16, static_cast<uint8_t>(id >> 8),
                            static_cast<uint8_t>(id & 0xff));
      lo.prefix_len = 32;
      lo.ospf_passive = true;
      cfg.interfaces.push_back(lo);
      snap_.configs.push_back(std::move(cfg));
    }
  }

  /// Connects a and b with a fresh /30; returns the link index.
  uint32_t connect(NodeId a, NodeId b, int cost = 10) {
    const uint32_t base = 0x0a000000u + 4u * link_count_;  // 10.0.0.0 + 4i
    ++link_count_;
    DNA_CHECK_MSG(link_count_ < (1u << 22), "too many links for 10/8 pool");
    std::string a_if = "eth" + std::to_string(eth_count_[a]++);
    std::string b_if = "eth" + std::to_string(eth_count_[b]++);

    config::InterfaceConfig ia;
    ia.name = a_if;
    ia.address = Ipv4Addr(base + 1);
    ia.prefix_len = 30;
    ia.ospf_cost = cost;
    snap_.configs[a].interfaces.push_back(ia);

    config::InterfaceConfig ib;
    ib.name = b_if;
    ib.address = Ipv4Addr(base + 2);
    ib.prefix_len = 30;
    ib.ospf_cost = cost;
    snap_.configs[b].interfaces.push_back(ib);

    return snap_.topology.add_link(a, a_if, b, b_if);
  }

  /// Attaches a passive host network to a node.
  void add_host_network(NodeId node, Ipv4Prefix prefix) {
    config::InterfaceConfig iface;
    iface.name = "host" + std::to_string(host_count_[node]++);
    iface.address = Ipv4Addr(prefix.addr().bits() + 1);
    iface.prefix_len = prefix.length();
    iface.ospf_passive = true;
    snap_.configs[node].interfaces.push_back(iface);
  }

  /// Runs OSPF on every node over all interfaces.
  void enable_ospf_everywhere() {
    for (auto& cfg : snap_.configs) {
      cfg.ospf.enabled = true;
      cfg.ospf.networks = {Ipv4Prefix(Ipv4Addr(10, 0, 0, 0), 8),
                           Ipv4Prefix(Ipv4Addr(172, 16, 0, 0), 12),
                           Ipv4Prefix(Ipv4Addr(172, 31, 0, 0), 16)};
    }
  }

  Snapshot take() {
    snap_.validate();
    return std::move(snap_);
  }

  Snapshot& snapshot() { return snap_; }

 private:
  Snapshot snap_;
  uint32_t link_count_ = 0;
  std::unordered_map<NodeId, int> eth_count_;
  std::unordered_map<NodeId, int> host_count_;
};

Ipv4Prefix host_prefix(int index) {
  DNA_CHECK_MSG(index < 256, "host network pool (172.31.x.0/24) exhausted");
  return Ipv4Prefix(Ipv4Addr(172, 31, static_cast<uint8_t>(index), 0), 24);
}

}  // namespace

Snapshot make_line(int n) {
  DNA_CHECK(n >= 2);
  Builder builder(n);
  for (int i = 0; i + 1 < n; ++i) {
    builder.connect(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  builder.add_host_network(0, host_prefix(0));
  builder.add_host_network(static_cast<NodeId>(n - 1), host_prefix(1));
  builder.enable_ospf_everywhere();
  return builder.take();
}

Snapshot make_ring(int n) {
  DNA_CHECK(n >= 3);
  Builder builder(n);
  for (int i = 0; i < n; ++i) {
    builder.connect(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  builder.add_host_network(0, host_prefix(0));
  builder.add_host_network(static_cast<NodeId>(n / 2), host_prefix(1));
  builder.enable_ospf_everywhere();
  return builder.take();
}

Snapshot make_grid(int rows, int cols) {
  DNA_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  Builder builder(rows * cols);
  auto id = [cols](int r, int c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) builder.connect(id(r, c), id(r, c + 1));
      if (r + 1 < rows) builder.connect(id(r, c), id(r + 1, c));
    }
  }
  builder.add_host_network(id(0, 0), host_prefix(0));
  builder.add_host_network(id(rows - 1, cols - 1), host_prefix(1));
  builder.enable_ospf_everywhere();
  return builder.take();
}

Snapshot make_star(int n) {
  DNA_CHECK(n >= 2);
  Builder builder(n);
  for (int i = 1; i < n; ++i) {
    builder.connect(0, static_cast<NodeId>(i));
  }
  for (int i = 1; i < n; ++i) {
    builder.add_host_network(static_cast<NodeId>(i), host_prefix(i - 1));
  }
  builder.enable_ospf_everywhere();
  return builder.take();
}

Snapshot make_random(int n, int m, Rng& rng) {
  DNA_CHECK(n >= 2 && m >= n - 1);
  Builder builder(n);
  std::vector<std::pair<NodeId, NodeId>> edges;
  auto has_edge = [&](NodeId a, NodeId b) {
    for (auto& [x, y] : edges) {
      if ((x == a && y == b) || (x == b && y == a)) return true;
    }
    return false;
  };
  // Random spanning tree: attach each node to a random earlier node.
  for (int i = 1; i < n; ++i) {
    NodeId parent = static_cast<NodeId>(rng.below(static_cast<uint64_t>(i)));
    edges.emplace_back(parent, static_cast<NodeId>(i));
  }
  int extra = m - (n - 1);
  int guard = 0;
  while (extra > 0 && guard < 100 * m) {
    ++guard;
    NodeId a = static_cast<NodeId>(rng.below(static_cast<uint64_t>(n)));
    NodeId b = static_cast<NodeId>(rng.below(static_cast<uint64_t>(n)));
    if (a == b || has_edge(a, b)) continue;
    edges.emplace_back(a, b);
    --extra;
  }
  for (auto& [a, b] : edges) {
    builder.connect(a, b, /*cost=*/static_cast<int>(rng.range(1, 20)));
  }
  builder.add_host_network(0, host_prefix(0));
  builder.add_host_network(static_cast<NodeId>(n - 1), host_prefix(1));
  builder.enable_ospf_everywhere();
  return builder.take();
}

Snapshot make_fattree(int k) {
  DNA_CHECK_MSG(k >= 2 && k % 2 == 0, "fat-tree k must be even");
  const int half = k / 2;
  const int num_edge = k * half;
  const int num_agg = k * half;
  const int num_core = half * half;
  Builder builder(num_edge + num_agg + num_core, "sw");

  auto edge_id = [&](int pod, int i) {
    return static_cast<NodeId>(pod * half + i);
  };
  auto agg_id = [&](int pod, int i) {
    return static_cast<NodeId>(num_edge + pod * half + i);
  };
  auto core_id = [&](int i) {
    return static_cast<NodeId>(num_edge + num_agg + i);
  };

  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      for (int a = 0; a < half; ++a) {
        builder.connect(edge_id(pod, e), agg_id(pod, a));
      }
    }
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        builder.connect(agg_id(pod, a), core_id(a * half + c));
      }
    }
  }
  for (int pod = 0; pod < k; ++pod) {
    for (int e = 0; e < half; ++e) {
      builder.add_host_network(edge_id(pod, e),
                               host_prefix(pod * half + e));
    }
  }
  builder.enable_ospf_everywhere();
  return builder.take();
}

Snapshot make_two_tier_as(int edges, int cores) {
  DNA_CHECK(edges >= 1 && cores >= 1);
  Builder builder(edges + cores, "as");
  // Edge i is node i; core j is node edges + j.
  for (int e = 0; e < edges; ++e) {
    for (int c = 0; c < cores; ++c) {
      builder.connect(static_cast<NodeId>(e),
                      static_cast<NodeId>(edges + c));
    }
  }

  Snapshot& snap = builder.snapshot();
  for (int i = 0; i < edges + cores; ++i) {
    config::NodeConfig& cfg = snap.configs[static_cast<size_t>(i)];
    cfg.bgp.enabled = true;
    cfg.bgp.as_number =
        i < edges ? 65001u + static_cast<uint32_t>(i) : 65000u;
    cfg.bgp.router_id = Ipv4Addr(1, 0, static_cast<uint8_t>(i >> 8),
                                 static_cast<uint8_t>(i & 0xff));
  }
  for (int e = 0; e < edges; ++e) {
    builder.add_host_network(static_cast<NodeId>(e), host_prefix(e));
    snap.configs[static_cast<size_t>(e)].bgp.networks.push_back(
        host_prefix(e));
  }
  // Configure both ends of every link as eBGP neighbors.
  for (const Link& link : snap.topology.links()) {
    const auto* ia = snap.configs[link.a].find_interface(link.a_if);
    const auto* ib = snap.configs[link.b].find_interface(link.b_if);
    snap.configs[link.a].bgp.neighbors.push_back(
        {ib->address, snap.configs[link.b].bgp.as_number, "", ""});
    snap.configs[link.b].bgp.neighbors.push_back(
        {ia->address, snap.configs[link.a].bgp.as_number, "", ""});
  }
  return builder.take();
}

}  // namespace dna::topo
