#include "topo/mutators.h"

#include <algorithm>

#include "util/error.h"

namespace dna::topo {

Snapshot with_link_cost(Snapshot snapshot, uint32_t link, int cost) {
  const Link& l = snapshot.topology.link(link);
  auto* ia = snapshot.configs[l.a].find_interface(l.a_if);
  auto* ib = snapshot.configs[l.b].find_interface(l.b_if);
  DNA_CHECK(ia && ib);
  ia->ospf_cost = cost;
  ib->ospf_cost = cost;
  return snapshot;
}

Snapshot with_link_state(Snapshot snapshot, uint32_t link, bool up) {
  snapshot.topology.set_link_up(link, up);
  return snapshot;
}

Snapshot with_interface_enabled(Snapshot snapshot, const std::string& node,
                                const std::string& if_name, bool enabled) {
  auto* iface = snapshot.config_of(node).find_interface(if_name);
  DNA_CHECK_MSG(iface != nullptr, "unknown interface " + node + ":" + if_name);
  iface->enabled = enabled;
  return snapshot;
}

Snapshot with_static_route(Snapshot snapshot, const std::string& node,
                           Ipv4Prefix prefix, Ipv4Addr next_hop) {
  snapshot.config_of(node).static_routes.push_back({prefix, next_hop});
  return snapshot;
}

Snapshot with_acl_block(Snapshot snapshot, const std::string& node,
                        Ipv4Prefix dst, const std::string& acl_name) {
  config::NodeConfig& cfg = snapshot.config_of(node);
  config::AclConfig acl;
  acl.name = acl_name;
  acl.rules.push_back({config::FilterAction::kDeny,
                       Ipv4Prefix(),  // any source
                       dst, -1, -1, -1});
  acl.rules.push_back({config::FilterAction::kPermit, Ipv4Prefix(),
                       Ipv4Prefix(), -1, -1, -1});
  // Replace an existing ACL of the same name, else append.
  bool replaced = false;
  for (auto& existing : cfg.acls) {
    if (existing.name == acl_name) {
      existing = acl;
      replaced = true;
    }
  }
  if (!replaced) cfg.acls.push_back(acl);
  for (auto& iface : cfg.interfaces) {
    iface.acl_in = acl_name;
  }
  return snapshot;
}

Snapshot with_bgp_local_pref(Snapshot snapshot, const std::string& node,
                             Ipv4Addr neighbor, int local_pref) {
  config::NodeConfig& cfg = snapshot.config_of(node);
  const std::string map_name = "LP_" + neighbor.str();
  config::RouteMapConfig map;
  map.name = map_name;
  config::RouteMapClause clause;
  clause.seq = 10;
  clause.action = config::FilterAction::kPermit;
  clause.set_local_pref = local_pref;
  map.clauses.push_back(clause);

  bool replaced = false;
  for (auto& existing : cfg.route_maps) {
    if (existing.name == map_name) {
      existing = map;
      replaced = true;
    }
  }
  if (!replaced) cfg.route_maps.push_back(map);

  bool found = false;
  for (auto& n : cfg.bgp.neighbors) {
    if (n.peer_ip == neighbor) {
      n.import_map = map_name;
      found = true;
    }
  }
  DNA_CHECK_MSG(found, "no BGP neighbor " + neighbor.str() + " on " + node);
  return snapshot;
}

Snapshot with_bgp_announce(Snapshot snapshot, const std::string& node,
                           Ipv4Prefix prefix) {
  auto& networks = snapshot.config_of(node).bgp.networks;
  if (std::find(networks.begin(), networks.end(), prefix) == networks.end()) {
    networks.push_back(prefix);
  }
  return snapshot;
}

Snapshot with_bgp_withdraw(Snapshot snapshot, const std::string& node,
                           Ipv4Prefix prefix) {
  auto& networks = snapshot.config_of(node).bgp.networks;
  networks.erase(std::remove(networks.begin(), networks.end(), prefix),
                 networks.end());
  return snapshot;
}

RandomChange random_change(const Snapshot& snapshot, Rng& rng) {
  const size_t num_links = snapshot.topology.num_links();
  const size_t num_nodes = snapshot.topology.num_nodes();
  DNA_CHECK(num_links > 0 && num_nodes > 0);

  for (int attempt = 0; attempt < 64; ++attempt) {
    switch (rng.below(5)) {
      case 0: {  // link cost change
        uint32_t link = static_cast<uint32_t>(rng.below(num_links));
        int cost = static_cast<int>(rng.range(1, 50));
        return {with_link_cost(snapshot, link, cost),
                "set cost of link " + std::to_string(link) + " to " +
                    std::to_string(cost)};
      }
      case 1: {  // link down (keep at least one up link)
        uint32_t link = static_cast<uint32_t>(rng.below(num_links));
        if (!snapshot.topology.link(link).up) continue;
        return {with_link_state(snapshot, link, false),
                "fail link " + std::to_string(link)};
      }
      case 2: {  // link back up
        uint32_t link = static_cast<uint32_t>(rng.below(num_links));
        if (snapshot.topology.link(link).up) continue;
        return {with_link_state(snapshot, link, true),
                "restore link " + std::to_string(link)};
      }
      case 3: {  // ACL block of some host prefix
        NodeId node = static_cast<NodeId>(rng.below(num_nodes));
        Ipv4Prefix dst(Ipv4Addr(172, 31, static_cast<uint8_t>(rng.below(8)), 0),
                       24);
        return {with_acl_block(snapshot, snapshot.topology.node_name(node),
                               dst),
                "block " + dst.str() + " at " +
                    snapshot.topology.node_name(node)};
      }
      default: {  // static route toward a random neighbor
        uint32_t link = static_cast<uint32_t>(rng.below(num_links));
        const Link& l = snapshot.topology.link(link);
        const auto* peer_if = snapshot.configs[l.b].find_interface(l.b_if);
        Ipv4Prefix prefix(
            Ipv4Addr(192, 168, static_cast<uint8_t>(rng.below(16)), 0), 24);
        return {with_static_route(snapshot, snapshot.topology.node_name(l.a),
                                  prefix, peer_if->address),
                "static " + prefix.str() + " at " +
                    snapshot.topology.node_name(l.a)};
      }
    }
  }
  // Fall back to a cost change, always applicable.
  return {with_link_cost(snapshot, 0, 42), "set cost of link 0 to 42"};
}

}  // namespace dna::topo
