// Risk analytics over what-if sweeps — the differential-network-analysis
// aggregate layer (ROADMAP item 5).
//
// A single what-if answers "what breaks if X happens?". This module answers
// the operator's next question: *which elements matter most?* It consumes a
// fleet of scenario verdicts (one sweep = one family of single-element
// perturbations) and distills them into a risk surface:
//
//   * keystone scores — per link and per router, the fraction of the sweep's
//     total reachability-and-forwarding mass that moves when that element
//     fails, normalized over the sweep. The elements whose loss reshapes the
//     network most are its keystones.
//   * blast-radius histogram — how reachability loss is distributed across
//     the sweep (log2 buckets), separating "most failures are benign" from
//     "every failure is a partition".
//   * invariant fragility — which registered invariants break somewhere in
//     the sweep (and how often) vs hold everywhere.
//
// Determinism contract (mirrors scenario/report.h): every field here is a
// pure function of (base snapshot, sweep spec, invariants). Aggregation is
// keyed by element name and accumulates exact integer mass, so a report is
// byte-identical for any thread count and any permutation of the scenario
// order; scheduling diagnostics never enter. Scores are only rendered from
// integer ratios (micro-units), so even the printed decimals are exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/report.h"
#include "scenario/spec.h"
#include "topo/snapshot.h"
#include "util/json.h"

namespace dna::analytics {

// ---- Sweep specs -----------------------------------------------------------

/// The scenario family a risk query sweeps, as one canonical token of the
/// query mini-language:
///
///   links             every up link failed, one at a time (the default)
///   costs:<C>         every up link's cost set to C
///   node:<NAME>       every enabled non-loopback interface of NAME shut
///   random:<N>[:<S>]  N reproducible random changes (seed S, default 1)
struct SweepSpec {
  enum class Kind { kLinks, kCosts, kNode, kRandom };
  Kind kind = Kind::kLinks;
  int cost = 0;       // kCosts
  std::string node;   // kNode
  int count = 0;      // kRandom
  uint64_t seed = 1;  // kRandom

  /// The canonical token form (what hash() digests and queries carry).
  std::string str() const;
  /// FNV-1a over str(): the spec-hash half of the (spec-hash, version) memo
  /// key. Stable across platforms, like service::snapshot_digest.
  uint64_t hash() const;
};

/// Parses the token form above. Throws dna::Error on malformed input; an
/// unknown node name surfaces later, at plan_sweep() time, because parsing
/// has no snapshot to check against.
SweepSpec parse_sweep(const std::string& text);

/// The network element one scenario perturbs — keystone attribution. A
/// link-centric scenario charges the link and both endpoint routers; a
/// node-centric one charges only routers; a random change charges a
/// synthetic "change" element (its own scenario name).
struct ElementRef {
  std::string link;                  // "" when no single link is at fault
  std::vector<std::string> routers;  // endpoint / drained router names
  std::string change;                // "" unless kind == random
};

/// A sweep lowered against a concrete base: specs[i] perturbs elements[i].
/// The specs are exactly the scenario:: generators' output, so risk sweeps
/// and `whatif --sweep` evaluate the same scenarios.
struct SweepPlan {
  std::vector<scenario::ScenarioSpec> specs;
  std::vector<ElementRef> elements;
};

/// Expands `sweep` against `base`. Throws dna::Error for unknown nodes.
SweepPlan plan_sweep(const SweepSpec& sweep, const topo::Snapshot& base);

// ---- The risk report -------------------------------------------------------

struct ElementRisk {
  std::string element;
  std::string kind;  // "link" | "router" | "change"
  /// Sweep scenarios attributed to this element.
  uint64_t scenarios = 0;
  // Exact integer mass components, summed over attributed scenarios.
  uint64_t reach_lost = 0;
  uint64_t reach_gained = 0;
  uint64_t loops_gained = 0;
  uint64_t blackholes_gained = 0;
  uint64_t invariants_broken = 0;
  uint64_t fib_changes = 0;

  /// Reachability-and-forwarding mass moved when this element fails: lost +
  /// gained reach facts, new loops and blackholes, and FIB churn. The
  /// keystone numerator.
  uint64_t mass() const {
    return reach_lost + reach_gained + loops_gained + blackholes_gained +
           fib_changes;
  }
};

/// Log2-bucketed distribution of per-scenario reachability loss.
struct BlastHistogram {
  uint64_t zero = 0;  // scenarios losing no reach facts at all
  /// buckets[k] counts scenarios with reach_lost in [2^k, 2^{k+1}).
  std::vector<uint64_t> buckets;

  void add(uint64_t reach_lost);
  bool operator==(const BlastHistogram&) const = default;
};

struct InvariantFragility {
  std::string invariant;  // description, as broken_invariants reports it
  uint64_t breaks = 0;    // scenarios that broke it
};

struct RiskReport {
  std::string sweep;     // canonical sweep token
  uint64_t version = 0;  // service version analyzed (0 = unversioned)
  uint64_t scenarios = 0;
  uint64_t failures = 0;    // scenarios that failed to evaluate
  uint64_t total_mass = 0;  // keystone denominator: sum of scenario mass
  /// All attributed elements (links, routers, random changes), ranked by
  /// mass descending; ties break by (kind, element) so the order is total
  /// and deterministic.
  std::vector<ElementRisk> elements;
  BlastHistogram blast;
  /// Registered invariants broken somewhere in the sweep, by breaks
  /// descending then description; invariants that held everywhere are only
  /// counted (robust_invariants) — a host-invariant set is quadratic.
  std::vector<InvariantFragility> fragile;
  uint64_t robust_invariants = 0;

  /// keystone(e) = e.mass() / total_mass in micro-units (0 when the sweep
  /// moved nothing). Integer arithmetic, so rendering is exact.
  uint64_t keystone_micro(const ElementRisk& element) const;

  /// Deterministic ranked table; `top_k` caps element rows (0 = all).
  std::string str(size_t top_k = 0) const;
  /// The same report as one JSON object (compact, deterministic).
  /// `top_k` caps the elements and fragile arrays (0 = all).
  void append_json(util::JsonWriter& json, size_t top_k = 0) const;
  std::string to_json(size_t top_k = 0) const;
  /// The `rank` projection: just the ranked keystone table, no histogram or
  /// invariant classification — the cheap dashboard poll.
  std::string to_rank_json(size_t top_k = 0) const;
};

/// Aggregates a sweep's verdicts into the risk surface. `results` must align
/// with plan.specs by index (scenario::ScenarioRunner and the service's
/// sweep loop both preserve input order). `invariant_descriptions` is the
/// registered invariant set, for the fragile-vs-robust split. Aggregation
/// is keyed by element and sums exact integers, so the output is invariant
/// to any permutation of (specs, elements, results) triples.
RiskReport analyze(const SweepPlan& plan,
                   const std::vector<scenario::ScenarioResult>& results,
                   const std::vector<std::string>& invariant_descriptions);

/// Renders a keystone score in micro-units as a fixed 6-decimal string
/// ("0.041667"); shared by str() and the JSON writers so the two surfaces
/// cannot drift.
std::string format_micro(uint64_t micro);

}  // namespace dna::analytics
