#include "analytics/risk.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "util/error.h"
#include "util/strings.h"

namespace dna::analytics {

namespace {

/// Strict non-negative integer parse for sweep parameters; rejects values
/// that do not fit an int (a truncated cost would sweep a different change
/// than the one requested).
int parse_param(const std::string& text) {
  const long long value = parse_int(text);
  if (value < 0 || value > std::numeric_limits<int>::max()) {
    throw Error("bad sweep parameter: " + text);
  }
  return static_cast<int>(value);
}

std::string link_label(const topo::Topology& topology, uint32_t index) {
  const topo::Link& link = topology.link(index);
  return "link " + std::to_string(index) + " (" + topology.node_name(link.a) +
         " <-> " + topology.node_name(link.b) + ")";
}

}  // namespace

std::string SweepSpec::str() const {
  switch (kind) {
    case Kind::kLinks:
      return "links";
    case Kind::kCosts:
      return "costs:" + std::to_string(cost);
    case Kind::kNode:
      return "node:" + node;
    case Kind::kRandom:
      return "random:" + std::to_string(count) + ":" + std::to_string(seed);
  }
  return "links";
}

uint64_t SweepSpec::hash() const {
  // FNV-1a over the canonical token, like service::snapshot_digest: stable
  // across platforms and standard-library implementations.
  uint64_t digest = 1469598103934665603ULL;
  for (const char c : str()) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 1099511628211ULL;
  }
  return digest;
}

SweepSpec parse_sweep(const std::string& text) {
  const std::string token(trim(text));
  SweepSpec sweep;
  const size_t colon = token.find(':');
  const std::string head = token.substr(0, colon);
  const std::string rest =
      colon == std::string::npos ? "" : token.substr(colon + 1);
  if (head == "links") {
    if (!rest.empty()) throw Error("sweep 'links' takes no parameter");
    sweep.kind = SweepSpec::Kind::kLinks;
  } else if (head == "costs") {
    if (rest.empty()) throw Error("sweep 'costs' needs :<cost>");
    sweep.kind = SweepSpec::Kind::kCosts;
    sweep.cost = parse_param(rest);
  } else if (head == "node") {
    if (rest.empty()) throw Error("sweep 'node' needs :<name>");
    sweep.kind = SweepSpec::Kind::kNode;
    sweep.node = rest;
  } else if (head == "random") {
    sweep.kind = SweepSpec::Kind::kRandom;
    const size_t second = rest.find(':');
    const std::string count_text = rest.substr(0, second);
    if (count_text.empty()) throw Error("sweep 'random' needs :<count>");
    sweep.count = parse_param(count_text);
    if (sweep.count < 1) throw Error("sweep 'random' needs a count >= 1");
    if (second != std::string::npos) {
      sweep.seed =
          static_cast<uint64_t>(parse_param(rest.substr(second + 1)));
    }
  } else {
    throw Error("unknown sweep (want links|costs:<c>|node:<name>|"
                "random:<n>[:<seed>]): " +
                token);
  }
  return sweep;
}

SweepPlan plan_sweep(const SweepSpec& sweep, const topo::Snapshot& base) {
  SweepPlan plan;
  const topo::Topology& topology = base.topology;
  switch (sweep.kind) {
    case SweepSpec::Kind::kLinks:
    case SweepSpec::Kind::kCosts: {
      plan.specs = sweep.kind == SweepSpec::Kind::kLinks
                       ? scenario::link_failure_sweep(base)
                       : scenario::link_cost_sweep(base, sweep.cost);
      // Both generators emit one scenario per *up* link in index order;
      // attribution walks the same order so elements[i] names the link
      // specs[i] perturbs.
      for (uint32_t i = 0; i < topology.num_links(); ++i) {
        const topo::Link& link = topology.link(i);
        if (!link.up) continue;
        ElementRef element;
        element.link = link_label(topology, i);
        element.routers = {topology.node_name(link.a),
                           topology.node_name(link.b)};
        plan.elements.push_back(std::move(element));
      }
      break;
    }
    case SweepSpec::Kind::kNode: {
      plan.specs = scenario::interface_shutdown_sweep(base, sweep.node);
      // Same iteration (and skip rule) as the generator: one scenario per
      // enabled non-loopback interface. Shutting an interface kills its
      // link, so the link and both endpoints take the charge.
      const topo::NodeId id = topology.node_id(sweep.node);
      for (const config::InterfaceConfig& iface :
           base.configs[id].interfaces) {
        if (!iface.enabled || iface.name == "lo") continue;
        ElementRef element;
        element.routers = {sweep.node};
        const int link = topology.link_at(id, iface.name);
        if (link >= 0) {
          element.link = link_label(topology, static_cast<uint32_t>(link));
          const topo::NodeId peer =
              topology.link(static_cast<uint32_t>(link)).peer_of(id);
          if (peer != id) element.routers.push_back(topology.node_name(peer));
        }
        plan.elements.push_back(std::move(element));
      }
      break;
    }
    case SweepSpec::Kind::kRandom: {
      plan.specs = scenario::random_change_sweep(base, sweep.count, sweep.seed);
      for (const scenario::ScenarioSpec& spec : plan.specs) {
        ElementRef element;
        element.change = spec.name;
        plan.elements.push_back(std::move(element));
      }
      break;
    }
  }
  DNA_CHECK(plan.specs.size() == plan.elements.size());
  return plan;
}

void BlastHistogram::add(uint64_t reach_lost) {
  if (reach_lost == 0) {
    ++zero;
    return;
  }
  size_t bucket = 0;
  while ((reach_lost >> (bucket + 1)) != 0) ++bucket;
  if (buckets.size() <= bucket) buckets.resize(bucket + 1, 0);
  ++buckets[bucket];
}

RiskReport analyze(const SweepPlan& plan,
                   const std::vector<scenario::ScenarioResult>& results,
                   const std::vector<std::string>& invariant_descriptions) {
  DNA_CHECK(plan.specs.size() == results.size());
  RiskReport report;
  report.scenarios = results.size();

  // Keyed accumulation: every sum lands on a (kind, element) key, never an
  // index, so any permutation of the scenario order produces the identical
  // report — the permutation-invariance the property test pins down.
  std::map<std::pair<std::string, std::string>, ElementRisk> by_element;
  std::map<std::string, uint64_t> invariant_breaks;
  for (size_t i = 0; i < results.size(); ++i) {
    const scenario::ScenarioResult& result = results[i];
    if (!result.ok) {
      ++report.failures;
      continue;
    }
    const ElementRef& ref = plan.elements[i];
    const uint64_t mass = result.reach_lost + result.reach_gained +
                          result.loops_gained + result.blackholes_gained +
                          result.fib_changes;
    report.total_mass += mass;
    report.blast.add(result.reach_lost);
    for (const std::string& description : result.broken_invariants) {
      ++invariant_breaks[description];
    }

    const auto charge = [&](const std::string& kind,
                            const std::string& element) {
      ElementRisk& risk = by_element[{kind, element}];
      if (risk.element.empty()) {
        risk.element = element;
        risk.kind = kind;
      }
      ++risk.scenarios;
      risk.reach_lost += result.reach_lost;
      risk.reach_gained += result.reach_gained;
      risk.loops_gained += result.loops_gained;
      risk.blackholes_gained += result.blackholes_gained;
      risk.invariants_broken += result.invariants_broken;
      risk.fib_changes += result.fib_changes;
    };
    if (!ref.link.empty()) charge("link", ref.link);
    for (const std::string& router : ref.routers) charge("router", router);
    if (!ref.change.empty()) charge("change", ref.change);
  }

  report.elements.reserve(by_element.size());
  for (auto& [key, risk] : by_element) report.elements.push_back(risk);
  std::sort(report.elements.begin(), report.elements.end(),
            [](const ElementRisk& a, const ElementRisk& b) {
              if (a.mass() != b.mass()) return a.mass() > b.mass();
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.element < b.element;
            });

  // Fragile vs robust over the *registered* set (deduplicated): a broken
  // description always comes from a registered invariant, so the split is
  // exhaustive.
  const std::set<std::string> registered(invariant_descriptions.begin(),
                                         invariant_descriptions.end());
  for (const std::string& description : registered) {
    const auto it = invariant_breaks.find(description);
    if (it == invariant_breaks.end() || it->second == 0) {
      ++report.robust_invariants;
    } else {
      report.fragile.push_back({description, it->second});
    }
  }
  std::sort(report.fragile.begin(), report.fragile.end(),
            [](const InvariantFragility& a, const InvariantFragility& b) {
              if (a.breaks != b.breaks) return a.breaks > b.breaks;
              return a.invariant < b.invariant;
            });
  return report;
}

uint64_t RiskReport::keystone_micro(const ElementRisk& element) const {
  if (total_mass == 0) return 0;
  return (element.mass() * 1000000ULL + total_mass / 2) / total_mass;
}

std::string format_micro(uint64_t micro) {
  char out[32];
  std::snprintf(out, sizeof(out), "%llu.%06llu",
                static_cast<unsigned long long>(micro / 1000000ULL),
                static_cast<unsigned long long>(micro % 1000000ULL));
  return out;
}

std::string RiskReport::str(size_t top_k) const {
  std::ostringstream out;
  out << "risk sweep=" << sweep << " v" << version << ": " << scenarios
      << " scenarios, " << failures << " failed, total mass " << total_mass
      << "\n";
  out << "rank  keystone  mass      lost  broken  kind    element\n";
  const size_t rows =
      top_k == 0 ? elements.size() : std::min(top_k, elements.size());
  for (size_t i = 0; i < rows; ++i) {
    const ElementRisk& element = elements[i];
    char line[160];
    std::snprintf(line, sizeof(line), "%4zu  %8s  %-8llu  %-4llu  %-6llu  %-6s  %s\n",
                  i + 1, format_micro(keystone_micro(element)).c_str(),
                  static_cast<unsigned long long>(element.mass()),
                  static_cast<unsigned long long>(element.reach_lost),
                  static_cast<unsigned long long>(element.invariants_broken),
                  element.kind.c_str(), element.element.c_str());
    out << line;
  }
  if (rows < elements.size()) {
    out << "  ... " << elements.size() - rows << " more elements\n";
  }
  out << "blast radius (reach facts lost per scenario): zero=" << blast.zero;
  for (size_t k = 0; k < blast.buckets.size(); ++k) {
    out << " [" << (1ULL << k) << "," << ((1ULL << (k + 1)) - 1)
        << "]=" << blast.buckets[k];
  }
  out << "\n";
  out << "invariants: " << robust_invariants << " robust, " << fragile.size()
      << " fragile\n";
  const size_t fragile_rows =
      top_k == 0 ? fragile.size() : std::min(top_k, fragile.size());
  for (size_t i = 0; i < fragile_rows; ++i) {
    out << "  " << fragile[i].breaks << " breaks | " << fragile[i].invariant
        << "\n";
  }
  if (fragile_rows < fragile.size()) {
    out << "  ... " << fragile.size() - fragile_rows << " more fragile\n";
  }
  return out.str();
}

void RiskReport::append_json(util::JsonWriter& json, size_t top_k) const {
  json.begin_object();
  json.key("sweep").value(sweep);
  json.key("version").value(static_cast<unsigned long long>(version));
  json.key("scenarios").value(static_cast<unsigned long long>(scenarios));
  json.key("failures").value(static_cast<unsigned long long>(failures));
  json.key("total_mass").value(static_cast<unsigned long long>(total_mass));
  json.key("elements_total")
      .value(static_cast<unsigned long long>(elements.size()));
  json.key("elements").begin_array();
  const size_t rows =
      top_k == 0 ? elements.size() : std::min(top_k, elements.size());
  for (size_t i = 0; i < rows; ++i) {
    const ElementRisk& element = elements[i];
    json.begin_object();
    json.key("element").value(element.element);
    json.key("kind").value(element.kind);
    json.key("scenarios")
        .value(static_cast<unsigned long long>(element.scenarios));
    // Micro-units -> double is exact and identical on every platform, so
    // the shortest-round-trip rendering is deterministic.
    json.key("keystone")
        .value(static_cast<double>(keystone_micro(element)) * 1e-6);
    json.key("mass").value(static_cast<unsigned long long>(element.mass()));
    json.key("reach_lost")
        .value(static_cast<unsigned long long>(element.reach_lost));
    json.key("reach_gained")
        .value(static_cast<unsigned long long>(element.reach_gained));
    json.key("loops_gained")
        .value(static_cast<unsigned long long>(element.loops_gained));
    json.key("blackholes_gained")
        .value(static_cast<unsigned long long>(element.blackholes_gained));
    json.key("invariants_broken")
        .value(static_cast<unsigned long long>(element.invariants_broken));
    json.key("fib_changes")
        .value(static_cast<unsigned long long>(element.fib_changes));
    json.end_object();
  }
  json.end_array();
  json.key("blast").begin_object();
  json.key("zero").value(static_cast<unsigned long long>(blast.zero));
  json.key("buckets").begin_array();
  for (const uint64_t count : blast.buckets) {
    json.value(static_cast<unsigned long long>(count));
  }
  json.end_array();
  json.end_object();
  json.key("invariants").begin_object();
  json.key("robust").value(static_cast<unsigned long long>(robust_invariants));
  json.key("fragile_total")
      .value(static_cast<unsigned long long>(fragile.size()));
  json.key("fragile").begin_array();
  const size_t fragile_rows =
      top_k == 0 ? fragile.size() : std::min(top_k, fragile.size());
  for (size_t i = 0; i < fragile_rows; ++i) {
    json.begin_object();
    json.key("invariant").value(fragile[i].invariant);
    json.key("breaks").value(static_cast<unsigned long long>(fragile[i].breaks));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();
}

std::string RiskReport::to_json(size_t top_k) const {
  util::JsonWriter json;
  json.begin_object();
  json.key("risk");
  append_json(json, top_k);
  json.end_object();
  return json.str();
}

std::string RiskReport::to_rank_json(size_t top_k) const {
  util::JsonWriter json;
  json.begin_object();
  json.key("rank").begin_object();
  json.key("sweep").value(sweep);
  json.key("version").value(static_cast<unsigned long long>(version));
  json.key("scenarios").value(static_cast<unsigned long long>(scenarios));
  json.key("total_mass").value(static_cast<unsigned long long>(total_mass));
  json.key("elements_total")
      .value(static_cast<unsigned long long>(elements.size()));
  json.key("elements").begin_array();
  const size_t rows =
      top_k == 0 ? elements.size() : std::min(top_k, elements.size());
  for (size_t i = 0; i < rows; ++i) {
    const ElementRisk& element = elements[i];
    json.begin_object();
    json.key("element").value(element.element);
    json.key("kind").value(element.kind);
    json.key("scenarios")
        .value(static_cast<unsigned long long>(element.scenarios));
    json.key("keystone")
        .value(static_cast<double>(keystone_micro(element)) * 1e-6);
    json.key("mass").value(static_cast<unsigned long long>(element.mass()));
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();
  return json.str();
}

}  // namespace dna::analytics
