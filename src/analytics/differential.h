// Differential risk: how the risk surface moved between two versions.
//
// The differential-analysis idiom (log2 fold-change over a pseudocount,
// enriched/depleted/stable categorization) applied to keystone scores: the
// same sweep spec is evaluated on two committed snapshots and each element's
// score is compared as
//
//   log2_fc = log2((keystone_after + 1e-6) / (keystone_before + 1e-6))
//
// with |log2_fc| > 1 (a doubling or halving) the enrichment threshold. An
// element that carried no mass before the change and real mass after it is
// strongly enriched — the cost bump or reroute made it load-bearing; the
// reverse is depleted. The outer join keeps elements that exist on only one
// side (a drained link has no scenarios after its failure commits).
//
// Determinism: fold changes are computed once from exact micro-unit scores,
// rounded to 1e-4 for both ordering and rendering, so the report is a pure
// function of the two input reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analytics/risk.h"
#include "util/json.h"

namespace dna::analytics {

struct ElementDelta {
  std::string element;
  std::string kind;
  uint64_t keystone_before_micro = 0;  // 1e-6 units (see RiskReport)
  uint64_t keystone_after_micro = 0;
  uint64_t mass_before = 0;
  uint64_t mass_after = 0;
  /// log2 fold change in 1e-4 units, rounded to nearest — the sort key and
  /// the rendered value, so ordering and printing cannot disagree.
  int64_t log2_fc_e4 = 0;
  enum class Status { kEnriched, kDepleted, kStable };
  Status status = Status::kStable;

  const char* status_name() const;
};

struct RiskDiff {
  std::string sweep;
  uint64_t version_before = 0;
  uint64_t version_after = 0;
  uint64_t enriched = 0;
  uint64_t depleted = 0;
  uint64_t stable = 0;
  /// Ordered: enriched (largest fold-change first), then depleted (most
  /// negative first), then stable (largest |fold-change| first); ties break
  /// by (kind, element) for a total deterministic order.
  std::vector<ElementDelta> elements;

  std::string str(size_t top_k = 0) const;
  /// {"risk_diff": {...}} — the `risk diff` query body. `top_k` caps the
  /// elements array (0 = all); the bucket counters always cover everything.
  std::string to_json(size_t top_k = 0) const;
  void append_json(util::JsonWriter& json, size_t top_k = 0) const;
};

/// Outer-joins the two reports on (kind, element) and classifies every
/// element. The reports should come from the same sweep spec evaluated on
/// two versions' snapshots; sweep/version metadata is copied from them.
RiskDiff diff_risk(const RiskReport& before, const RiskReport& after);

}  // namespace dna::analytics
