#include "analytics/differential.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace dna::analytics {

namespace {

constexpr double kPseudocount = 1e-6;

/// log2 fold change of two micro-unit keystone scores, rounded to 1e-4.
/// The pseudocount keeps zero scores finite (a 0 -> x move shows up as a
/// large, not infinite, enrichment) — the standard differential-analysis
/// guard. One libm call per element; everything downstream is integer.
int64_t fold_change_e4(uint64_t before_micro, uint64_t after_micro) {
  const double before = static_cast<double>(before_micro) * 1e-6 + kPseudocount;
  const double after = static_cast<double>(after_micro) * 1e-6 + kPseudocount;
  return std::llround(std::log2(after / before) * 1e4);
}

int status_order(ElementDelta::Status status) {
  switch (status) {
    case ElementDelta::Status::kEnriched:
      return 0;
    case ElementDelta::Status::kDepleted:
      return 1;
    case ElementDelta::Status::kStable:
      return 2;
  }
  return 2;
}

std::string format_fc_e4(int64_t fc_e4) {
  const char* sign = fc_e4 < 0 ? "-" : "";
  const uint64_t magnitude =
      fc_e4 < 0 ? static_cast<uint64_t>(-fc_e4) : static_cast<uint64_t>(fc_e4);
  char out[40];
  std::snprintf(out, sizeof(out), "%s%llu.%04llu", sign,
                static_cast<unsigned long long>(magnitude / 10000ULL),
                static_cast<unsigned long long>(magnitude % 10000ULL));
  return out;
}

uint64_t magnitude_of(int64_t fc_e4) {
  return fc_e4 < 0 ? static_cast<uint64_t>(-fc_e4)
                   : static_cast<uint64_t>(fc_e4);
}

}  // namespace

const char* ElementDelta::status_name() const {
  switch (status) {
    case Status::kEnriched:
      return "enriched";
    case Status::kDepleted:
      return "depleted";
    case Status::kStable:
      return "stable";
  }
  return "stable";
}

RiskDiff diff_risk(const RiskReport& before, const RiskReport& after) {
  RiskDiff diff;
  diff.sweep = after.sweep.empty() ? before.sweep : after.sweep;
  diff.version_before = before.version;
  diff.version_after = after.version;

  // Outer join on (kind, element): an element present on one side only
  // joins against a zero score (plus the pseudocount).
  std::map<std::pair<std::string, std::string>,
           std::pair<const ElementRisk*, const ElementRisk*>>
      joined;
  for (const ElementRisk& element : before.elements) {
    joined[{element.kind, element.element}].first = &element;
  }
  for (const ElementRisk& element : after.elements) {
    joined[{element.kind, element.element}].second = &element;
  }

  // A doubling (or halving) of the keystone score is the enrichment
  // threshold — |log2 fc| > 1, in 1e-4 units.
  constexpr int64_t kThresholdE4 = 10000;
  diff.elements.reserve(joined.size());
  for (const auto& [key, sides] : joined) {
    ElementDelta delta;
    delta.kind = key.first;
    delta.element = key.second;
    if (sides.first != nullptr) {
      delta.keystone_before_micro = before.keystone_micro(*sides.first);
      delta.mass_before = sides.first->mass();
    }
    if (sides.second != nullptr) {
      delta.keystone_after_micro = after.keystone_micro(*sides.second);
      delta.mass_after = sides.second->mass();
    }
    delta.log2_fc_e4 =
        fold_change_e4(delta.keystone_before_micro, delta.keystone_after_micro);
    if (delta.log2_fc_e4 > kThresholdE4) {
      delta.status = ElementDelta::Status::kEnriched;
      ++diff.enriched;
    } else if (delta.log2_fc_e4 < -kThresholdE4) {
      delta.status = ElementDelta::Status::kDepleted;
      ++diff.depleted;
    } else {
      delta.status = ElementDelta::Status::kStable;
      ++diff.stable;
    }
    diff.elements.push_back(std::move(delta));
  }

  std::sort(diff.elements.begin(), diff.elements.end(),
            [](const ElementDelta& a, const ElementDelta& b) {
              const int sa = status_order(a.status);
              const int sb = status_order(b.status);
              if (sa != sb) return sa < sb;
              const uint64_t ma = magnitude_of(a.log2_fc_e4);
              const uint64_t mb = magnitude_of(b.log2_fc_e4);
              if (ma != mb) return ma > mb;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.element < b.element;
            });
  return diff;
}

std::string RiskDiff::str(size_t top_k) const {
  std::ostringstream out;
  out << "risk diff sweep=" << sweep << " v" << version_before << " -> v"
      << version_after << ": " << enriched << " enriched, " << depleted
      << " depleted, " << stable << " stable\n";
  out << "status    log2fc    before    after     kind    element\n";
  const size_t rows =
      top_k == 0 ? elements.size() : std::min(top_k, elements.size());
  for (size_t i = 0; i < rows; ++i) {
    const ElementDelta& delta = elements[i];
    char line[192];
    std::snprintf(line, sizeof(line), "%-8s  %8s  %8s  %8s  %-6s  %s\n",
                  delta.status_name(),
                  format_fc_e4(delta.log2_fc_e4).c_str(),
                  format_micro(delta.keystone_before_micro).c_str(),
                  format_micro(delta.keystone_after_micro).c_str(),
                  delta.kind.c_str(), delta.element.c_str());
    out << line;
  }
  if (rows < elements.size()) {
    out << "  ... " << elements.size() - rows << " more elements\n";
  }
  return out.str();
}

void RiskDiff::append_json(util::JsonWriter& json, size_t top_k) const {
  json.begin_object();
  json.key("sweep").value(sweep);
  json.key("before").value(static_cast<unsigned long long>(version_before));
  json.key("after").value(static_cast<unsigned long long>(version_after));
  json.key("enriched").value(static_cast<unsigned long long>(enriched));
  json.key("depleted").value(static_cast<unsigned long long>(depleted));
  json.key("stable").value(static_cast<unsigned long long>(stable));
  json.key("elements_total")
      .value(static_cast<unsigned long long>(elements.size()));
  json.key("elements").begin_array();
  const size_t rows =
      top_k == 0 ? elements.size() : std::min(top_k, elements.size());
  for (size_t i = 0; i < rows; ++i) {
    const ElementDelta& delta = elements[i];
    json.begin_object();
    json.key("element").value(delta.element);
    json.key("kind").value(delta.kind);
    json.key("status").value(delta.status_name());
    // Exact integer -> double conversions; rendering is deterministic.
    json.key("log2_fc")
        .value(static_cast<double>(delta.log2_fc_e4) * 1e-4);
    json.key("keystone_before")
        .value(static_cast<double>(delta.keystone_before_micro) * 1e-6);
    json.key("keystone_after")
        .value(static_cast<double>(delta.keystone_after_micro) * 1e-6);
    json.key("mass_before")
        .value(static_cast<unsigned long long>(delta.mass_before));
    json.key("mass_after")
        .value(static_cast<unsigned long long>(delta.mass_after));
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

std::string RiskDiff::to_json(size_t top_k) const {
  util::JsonWriter json;
  json.begin_object();
  json.key("risk_diff");
  append_json(json, top_k);
  json.end_object();
  return json.str();
}

}  // namespace dna::analytics
