#include "config/parser.h"

#include <sstream>

#include "util/error.h"
#include "util/strings.h"

namespace dna::config {

namespace {

/// Tracks which nested block subsequent lines belong to.
enum class Context {
  kTop,
  kNode,
  kInterface,
  kOspf,
  kBgp,
  kNeighbor,
  kAcl,
  kPrefixList,
  kRouteMap,
  kClause,
};

class ConfigParser {
 public:
  explicit ConfigParser(const std::string& text) : text_(text) {}

  std::vector<NodeConfig> parse() {
    std::istringstream stream(text_);
    std::string raw;
    while (std::getline(stream, raw)) {
      ++line_;
      std::string_view line = trim(raw);
      if (auto hash = line.find('#'); hash != std::string_view::npos) {
        line = trim(line.substr(0, hash));
      }
      if (auto slashes = line.find("//"); slashes != std::string_view::npos) {
        line = trim(line.substr(0, slashes));
      }
      if (line.empty()) continue;
      handle(split_ws(line));
    }
    return std::move(nodes_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    throw ParseError(message, line_);
  }

  Ipv4Addr addr_arg(const std::string& text) {
    auto addr = Ipv4Addr::parse(text);
    if (!addr) fail("bad IPv4 address: " + text);
    return *addr;
  }

  Ipv4Prefix prefix_arg(const std::string& text) {
    auto prefix = Ipv4Prefix::parse(text);
    if (!prefix) fail("bad IPv4 prefix: " + text);
    return *prefix;
  }

  int int_arg(const std::string& text) {
    long long value = parse_int(text);
    if (value < 0) fail("bad integer: " + text);
    return static_cast<int>(value);
  }

  NodeConfig& node() {
    if (nodes_.empty() || context_ == Context::kTop) fail("expected 'node'");
    return nodes_.back();
  }

  void handle(const std::vector<std::string>& tok) {
    const std::string& kw = tok[0];

    if (kw == "node") {
      require_args(tok, 2);
      nodes_.push_back({});
      nodes_.back().name = tok[1];
      context_ = Context::kNode;
      return;
    }
    if (nodes_.empty()) fail("configuration must start with 'node'");

    // Node-level block openers reset the context regardless of nesting.
    if (kw == "interface") {
      require_args(tok, 2);
      node().interfaces.push_back({});
      node().interfaces.back().name = tok[1];
      context_ = Context::kInterface;
      return;
    }
    if (kw == "static") {
      // static <prefix> via <next-hop>
      if (tok.size() != 4 || tok[2] != "via") {
        fail("expected: static <prefix> via <next-hop>");
      }
      node().static_routes.push_back(
          {prefix_arg(tok[1]), addr_arg(tok[3])});
      context_ = Context::kNode;
      return;
    }
    if (kw == "ospf") {
      require_args(tok, 1);
      node().ospf.enabled = true;
      context_ = Context::kOspf;
      return;
    }
    if (kw == "bgp") {
      require_args(tok, 2);
      node().bgp.enabled = true;
      node().bgp.as_number = static_cast<uint32_t>(int_arg(tok[1]));
      context_ = Context::kBgp;
      return;
    }
    if (kw == "acl") {
      require_args(tok, 2);
      node().acls.push_back({tok[1], {}});
      context_ = Context::kAcl;
      return;
    }
    if (kw == "prefix-list") {
      require_args(tok, 2);
      node().prefix_lists.push_back({tok[1], {}});
      context_ = Context::kPrefixList;
      return;
    }
    if (kw == "route-map") {
      require_args(tok, 2);
      node().route_maps.push_back({tok[1], {}});
      context_ = Context::kRouteMap;
      return;
    }

    switch (context_) {
      case Context::kInterface:
        handle_interface(tok);
        return;
      case Context::kOspf:
        handle_ospf(tok);
        return;
      case Context::kBgp:
      case Context::kNeighbor:
        handle_bgp(tok);
        return;
      case Context::kAcl:
        handle_acl(tok);
        return;
      case Context::kPrefixList:
        handle_prefix_list(tok);
        return;
      case Context::kRouteMap:
      case Context::kClause:
        handle_route_map(tok);
        return;
      default:
        fail("unexpected directive '" + kw + "'");
    }
  }

  void require_args(const std::vector<std::string>& tok, size_t n) {
    if (tok.size() != n) {
      fail("directive '" + tok[0] + "' expects " + std::to_string(n - 1) +
           " argument(s)");
    }
  }

  void handle_interface(const std::vector<std::string>& tok) {
    InterfaceConfig& iface = node().interfaces.back();
    const std::string& kw = tok[0];
    if (kw == "address") {
      require_args(tok, 2);
      Ipv4Prefix with_len = prefix_arg(tok[1]);
      // The address keeps its host bits; the prefix length sets the subnet.
      auto slash = tok[1].find('/');
      iface.address = addr_arg(tok[1].substr(0, slash));
      iface.prefix_len = with_len.length();
    } else if (kw == "cost") {
      require_args(tok, 2);
      iface.ospf_cost = int_arg(tok[1]);
    } else if (kw == "shutdown") {
      iface.enabled = false;
    } else if (kw == "passive") {
      iface.ospf_passive = true;
    } else if (kw == "acl-in") {
      require_args(tok, 2);
      iface.acl_in = tok[1];
    } else if (kw == "acl-out") {
      require_args(tok, 2);
      iface.acl_out = tok[1];
    } else {
      fail("unknown interface directive '" + kw + "'");
    }
  }

  void handle_ospf(const std::vector<std::string>& tok) {
    const std::string& kw = tok[0];
    if (kw == "network") {
      require_args(tok, 2);
      node().ospf.networks.push_back(prefix_arg(tok[1]));
    } else if (kw == "redistribute") {
      require_args(tok, 2);
      if (tok[1] == "connected") {
        node().ospf.redistribute_connected = true;
      } else if (tok[1] == "static") {
        node().ospf.redistribute_static = true;
      } else {
        fail("ospf cannot redistribute '" + tok[1] + "'");
      }
    } else {
      fail("unknown ospf directive '" + kw + "'");
    }
  }

  void handle_bgp(const std::vector<std::string>& tok) {
    BgpConfig& bgp = node().bgp;
    const std::string& kw = tok[0];
    if (kw == "neighbor") {
      // neighbor <ip> remote-as <asn>
      if (tok.size() != 4 || tok[2] != "remote-as") {
        fail("expected: neighbor <ip> remote-as <asn>");
      }
      bgp.neighbors.push_back(
          {addr_arg(tok[1]), static_cast<uint32_t>(int_arg(tok[3])), "", ""});
      context_ = Context::kNeighbor;
      return;
    }
    if (context_ == Context::kNeighbor) {
      if (kw == "import-map") {
        require_args(tok, 2);
        bgp.neighbors.back().import_map = tok[1];
        return;
      }
      if (kw == "export-map") {
        require_args(tok, 2);
        bgp.neighbors.back().export_map = tok[1];
        return;
      }
    }
    if (kw == "router-id") {
      require_args(tok, 2);
      bgp.router_id = addr_arg(tok[1]);
    } else if (kw == "network") {
      require_args(tok, 2);
      bgp.networks.push_back(prefix_arg(tok[1]));
    } else if (kw == "redistribute") {
      require_args(tok, 2);
      if (tok[1] == "connected") {
        bgp.redistribute_connected = true;
      } else if (tok[1] == "static") {
        bgp.redistribute_static = true;
      } else if (tok[1] == "ospf") {
        bgp.redistribute_ospf = true;
      } else {
        fail("bgp cannot redistribute '" + tok[1] + "'");
      }
    } else {
      fail("unknown bgp directive '" + kw + "'");
    }
    context_ = Context::kBgp;
  }

  void handle_acl(const std::vector<std::string>& tok) {
    // (permit|deny) src <prefix> dst <prefix> [proto <n>] [port <lo> <hi>]
    FilterAction action;
    if (tok[0] == "permit") {
      action = FilterAction::kPermit;
    } else if (tok[0] == "deny") {
      action = FilterAction::kDeny;
    } else {
      fail("acl rules start with permit/deny");
    }
    AclRule rule;
    rule.action = action;
    size_t i = 1;
    while (i < tok.size()) {
      if (tok[i] == "src" && i + 1 < tok.size()) {
        rule.src = prefix_arg(tok[i + 1]);
        i += 2;
      } else if (tok[i] == "dst" && i + 1 < tok.size()) {
        rule.dst = prefix_arg(tok[i + 1]);
        i += 2;
      } else if (tok[i] == "proto" && i + 1 < tok.size()) {
        rule.proto = int_arg(tok[i + 1]);
        i += 2;
      } else if (tok[i] == "port" && i + 2 < tok.size()) {
        rule.dst_port_lo = int_arg(tok[i + 1]);
        rule.dst_port_hi = int_arg(tok[i + 2]);
        i += 3;
      } else {
        fail("bad acl rule token '" + tok[i] + "'");
      }
    }
    node().acls.back().rules.push_back(rule);
  }

  void handle_prefix_list(const std::vector<std::string>& tok) {
    // (permit|deny) <prefix> [ge <n>] [le <n>]
    FilterAction action;
    if (tok[0] == "permit") {
      action = FilterAction::kPermit;
    } else if (tok[0] == "deny") {
      action = FilterAction::kDeny;
    } else {
      fail("prefix-list entries start with permit/deny");
    }
    if (tok.size() < 2) fail("prefix-list entry needs a prefix");
    PrefixListEntry entry;
    entry.action = action;
    entry.prefix = prefix_arg(tok[1]);
    size_t i = 2;
    while (i < tok.size()) {
      if (tok[i] == "ge" && i + 1 < tok.size()) {
        entry.ge = int_arg(tok[i + 1]);
        i += 2;
      } else if (tok[i] == "le" && i + 1 < tok.size()) {
        entry.le = int_arg(tok[i + 1]);
        i += 2;
      } else {
        fail("bad prefix-list token '" + tok[i] + "'");
      }
    }
    node().prefix_lists.back().entries.push_back(entry);
  }

  void handle_route_map(const std::vector<std::string>& tok) {
    const std::string& kw = tok[0];
    RouteMapConfig& map = node().route_maps.back();
    if (kw == "clause") {
      // clause <seq> (permit|deny)
      require_args(tok, 3);
      RouteMapClause clause;
      clause.seq = int_arg(tok[1]);
      if (tok[2] == "permit") {
        clause.action = FilterAction::kPermit;
      } else if (tok[2] == "deny") {
        clause.action = FilterAction::kDeny;
      } else {
        fail("clause action must be permit or deny");
      }
      map.clauses.push_back(clause);
      context_ = Context::kClause;
      return;
    }
    if (context_ != Context::kClause || map.clauses.empty()) {
      fail("'" + kw + "' must appear inside a route-map clause");
    }
    RouteMapClause& clause = map.clauses.back();
    if (kw == "match") {
      if (tok.size() == 3 && tok[1] == "prefix-list") {
        clause.match_prefix_list = tok[2];
      } else if (tok.size() == 3 && tok[1] == "community") {
        clause.match_community = static_cast<uint32_t>(int_arg(tok[2]));
      } else {
        fail("expected: match prefix-list <name> | match community <n>");
      }
    } else if (kw == "set") {
      if (tok.size() == 3 && tok[1] == "local-pref") {
        clause.set_local_pref = int_arg(tok[2]);
      } else if (tok.size() == 3 && tok[1] == "med") {
        clause.set_med = int_arg(tok[2]);
      } else if (tok.size() >= 3 && tok[1] == "community") {
        clause.set_communities.clear();
        for (size_t i = 2; i < tok.size(); ++i) {
          clause.set_communities.push_back(
              static_cast<uint32_t>(int_arg(tok[i])));
        }
      } else {
        fail("expected: set local-pref <n> | set med <n> | set community ...");
      }
    } else if (kw == "prepend") {
      require_args(tok, 2);
      clause.prepend_count = int_arg(tok[1]);
    } else {
      fail("unknown route-map directive '" + kw + "'");
    }
  }

  const std::string& text_;
  int line_ = 0;
  std::vector<NodeConfig> nodes_;
  Context context_ = Context::kTop;
};

}  // namespace

std::vector<NodeConfig> parse_configs(const std::string& text) {
  return ConfigParser(text).parse();
}

}  // namespace dna::config
