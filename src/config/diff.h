// Structural diff of configurations: emits typed change events.
//
// The differential engine consumes these events to decide which simulation
// layers to dirty: an ACL edit never touches the control plane, an interface
// cost change dirties only OSPF, a route-map edit dirties only the BGP
// sessions that reference it, and so on.
#pragma once

#include <string>
#include <vector>

#include "config/model.h"

namespace dna::config {

enum class ChangeKind {
  kNodeAdded,
  kNodeRemoved,
  kInterfaceAdded,
  kInterfaceRemoved,
  kInterfaceModified,     // address / cost / shutdown / passive
  kInterfaceAclBinding,   // only the acl-in/acl-out bindings changed
  kStaticRoutesChanged,   // the node's static route set changed
  kOspfChanged,           // process networks / redistribution
  kBgpProcessChanged,     // AS / router-id / networks / redistribution
  kBgpNeighborAdded,
  kBgpNeighborRemoved,
  kBgpNeighborModified,   // remote-as or policy bindings
  kAclChanged,            // added, removed, or rules modified
  kPrefixListChanged,
  kRouteMapChanged,
};

const char* change_kind_name(ChangeKind kind);

struct ConfigChange {
  ChangeKind kind;
  std::string node;
  /// Interface name, neighbor IP, or ACL / prefix-list / route-map name,
  /// depending on the kind. Empty for whole-node or process-level changes.
  std::string detail;

  std::string str() const;
  bool operator==(const ConfigChange&) const = default;
};

/// Diffs two config sets matched by node name. Emits events in a stable
/// order (node name, then kind). An unchanged node emits nothing.
std::vector<ConfigChange> diff_configs(const std::vector<NodeConfig>& before,
                                       const std::vector<NodeConfig>& after);

}  // namespace dna::config
