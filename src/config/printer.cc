#include "config/printer.h"

#include <sstream>

namespace dna::config {

namespace {

const char* action_text(FilterAction action) {
  return action == FilterAction::kPermit ? "permit" : "deny";
}

void print_interface(std::ostringstream& out, const InterfaceConfig& iface) {
  out << "  interface " << iface.name << "\n";
  out << "    address " << iface.address.str() << "/"
      << static_cast<int>(iface.prefix_len) << "\n";
  if (iface.ospf_cost != 10) out << "    cost " << iface.ospf_cost << "\n";
  if (!iface.enabled) out << "    shutdown\n";
  if (iface.ospf_passive) out << "    passive\n";
  if (!iface.acl_in.empty()) out << "    acl-in " << iface.acl_in << "\n";
  if (!iface.acl_out.empty()) out << "    acl-out " << iface.acl_out << "\n";
}

void print_ospf(std::ostringstream& out, const OspfConfig& ospf) {
  if (!ospf.enabled) return;
  out << "  ospf\n";
  for (const auto& network : ospf.networks) {
    out << "    network " << network.str() << "\n";
  }
  if (ospf.redistribute_connected) out << "    redistribute connected\n";
  if (ospf.redistribute_static) out << "    redistribute static\n";
}

void print_bgp(std::ostringstream& out, const BgpConfig& bgp) {
  if (!bgp.enabled) return;
  out << "  bgp " << bgp.as_number << "\n";
  if (bgp.router_id != Ipv4Addr()) {
    out << "    router-id " << bgp.router_id.str() << "\n";
  }
  for (const auto& network : bgp.networks) {
    out << "    network " << network.str() << "\n";
  }
  if (bgp.redistribute_connected) out << "    redistribute connected\n";
  if (bgp.redistribute_static) out << "    redistribute static\n";
  if (bgp.redistribute_ospf) out << "    redistribute ospf\n";
  for (const auto& neighbor : bgp.neighbors) {
    out << "    neighbor " << neighbor.peer_ip.str() << " remote-as "
        << neighbor.remote_as << "\n";
    if (!neighbor.import_map.empty()) {
      out << "      import-map " << neighbor.import_map << "\n";
    }
    if (!neighbor.export_map.empty()) {
      out << "      export-map " << neighbor.export_map << "\n";
    }
  }
}

void print_acl(std::ostringstream& out, const AclConfig& acl) {
  out << "  acl " << acl.name << "\n";
  for (const AclRule& rule : acl.rules) {
    out << "    " << action_text(rule.action) << " src " << rule.src.str()
        << " dst " << rule.dst.str();
    if (rule.proto >= 0) out << " proto " << rule.proto;
    if (rule.dst_port_lo >= 0) {
      out << " port " << rule.dst_port_lo << " " << rule.dst_port_hi;
    }
    out << "\n";
  }
}

void print_prefix_list(std::ostringstream& out, const PrefixListConfig& list) {
  out << "  prefix-list " << list.name << "\n";
  for (const PrefixListEntry& entry : list.entries) {
    out << "    " << action_text(entry.action) << " " << entry.prefix.str();
    if (entry.ge >= 0) out << " ge " << entry.ge;
    if (entry.le >= 0) out << " le " << entry.le;
    out << "\n";
  }
}

void print_route_map(std::ostringstream& out, const RouteMapConfig& map) {
  out << "  route-map " << map.name << "\n";
  for (const RouteMapClause& clause : map.clauses) {
    out << "    clause " << clause.seq << " " << action_text(clause.action)
        << "\n";
    if (!clause.match_prefix_list.empty()) {
      out << "      match prefix-list " << clause.match_prefix_list << "\n";
    }
    if (clause.match_community) {
      out << "      match community " << *clause.match_community << "\n";
    }
    if (clause.set_local_pref) {
      out << "      set local-pref " << *clause.set_local_pref << "\n";
    }
    if (clause.set_med) out << "      set med " << *clause.set_med << "\n";
    if (!clause.set_communities.empty()) {
      out << "      set community";
      for (uint32_t c : clause.set_communities) out << " " << c;
      out << "\n";
    }
    if (clause.prepend_count > 0) {
      out << "      prepend " << clause.prepend_count << "\n";
    }
  }
}

}  // namespace

std::string print_config(const NodeConfig& node) {
  std::ostringstream out;
  out << "node " << node.name << "\n";
  for (const auto& iface : node.interfaces) print_interface(out, iface);
  for (const auto& route : node.static_routes) {
    out << "  static " << route.prefix.str() << " via " << route.next_hop.str()
        << "\n";
  }
  print_ospf(out, node.ospf);
  print_bgp(out, node.bgp);
  for (const auto& acl : node.acls) print_acl(out, acl);
  for (const auto& list : node.prefix_lists) print_prefix_list(out, list);
  for (const auto& map : node.route_maps) print_route_map(out, map);
  return out.str();
}

std::string print_configs(const std::vector<NodeConfig>& nodes) {
  std::string out;
  for (const auto& node : nodes) out += print_config(node);
  return out;
}

}  // namespace dna::config
