#include "config/model.h"

namespace dna::config {

bool PrefixListEntry::matches(const Ipv4Prefix& candidate) const {
  if (!prefix.contains(candidate)) return false;
  const int len = candidate.length();
  const int lo = ge >= 0 ? ge : prefix.length();
  const int hi = le >= 0 ? le : (ge >= 0 ? 32 : prefix.length());
  return len >= lo && len <= hi;
}

const InterfaceConfig* NodeConfig::find_interface(
    const std::string& if_name) const {
  for (const auto& iface : interfaces) {
    if (iface.name == if_name) return &iface;
  }
  return nullptr;
}

InterfaceConfig* NodeConfig::find_interface(const std::string& if_name) {
  for (auto& iface : interfaces) {
    if (iface.name == if_name) return &iface;
  }
  return nullptr;
}

const AclConfig* NodeConfig::find_acl(const std::string& acl_name) const {
  for (const auto& acl : acls) {
    if (acl.name == acl_name) return &acl;
  }
  return nullptr;
}

const PrefixListConfig* NodeConfig::find_prefix_list(
    const std::string& list) const {
  for (const auto& pl : prefix_lists) {
    if (pl.name == list) return &pl;
  }
  return nullptr;
}

const RouteMapConfig* NodeConfig::find_route_map(
    const std::string& map) const {
  for (const auto& rm : route_maps) {
    if (rm.name == map) return &rm;
  }
  return nullptr;
}

bool prefix_list_permits(const PrefixListConfig& list,
                         const Ipv4Prefix& prefix) {
  for (const PrefixListEntry& entry : list.entries) {
    if (entry.matches(prefix)) {
      return entry.action == FilterAction::kPermit;
    }
  }
  return false;  // implicit deny
}

}  // namespace dna::config
