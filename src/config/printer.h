// Canonical text output for node configurations.
// parse_configs(print_configs(x)) reproduces x exactly (round-trip tested).
#pragma once

#include <string>
#include <vector>

#include "config/model.h"

namespace dna::config {

std::string print_config(const NodeConfig& node);
std::string print_configs(const std::vector<NodeConfig>& nodes);

}  // namespace dna::config
