// Vendor-neutral router configuration model.
//
// A NodeConfig captures everything dna simulates about one device:
// interfaces, static routes, an OSPF process, a BGP process with per-neighbor
// policies, ACLs, prefix lists and route maps. All types are plain values
// with operator== so snapshots can be diffed structurally (config/diff.h)
// and round-tripped through the text format (config/parser.h, printer.h).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/ip.h"

namespace dna::config {

struct InterfaceConfig {
  std::string name;
  Ipv4Addr address;
  uint8_t prefix_len = 24;
  int ospf_cost = 10;
  bool enabled = true;        // administratively up
  bool ospf_passive = false;  // advertise subnet but form no adjacency
  std::string acl_in;         // ACL filtering traffic entering the node here
  std::string acl_out;        // ACL filtering traffic leaving the node here

  Ipv4Prefix subnet() const { return Ipv4Prefix(address, prefix_len); }

  bool operator==(const InterfaceConfig&) const = default;
};

struct StaticRouteConfig {
  Ipv4Prefix prefix;
  Ipv4Addr next_hop;

  bool operator==(const StaticRouteConfig&) const = default;
};

struct OspfConfig {
  bool enabled = false;
  /// Interface subnets matched by any of these run OSPF.
  std::vector<Ipv4Prefix> networks;
  bool redistribute_connected = false;
  bool redistribute_static = false;

  bool operator==(const OspfConfig&) const = default;
};

enum class FilterAction { kPermit, kDeny };

struct AclRule {
  FilterAction action = FilterAction::kPermit;
  Ipv4Prefix src;            // 0.0.0.0/0 matches any
  Ipv4Prefix dst;            // 0.0.0.0/0 matches any
  int proto = -1;            // -1 any, else IP protocol number (6 tcp, 17 udp)
  int dst_port_lo = -1;      // -1 = any port
  int dst_port_hi = -1;

  bool operator==(const AclRule&) const = default;
};

/// First-match ACL with implicit deny when no rule matches.
struct AclConfig {
  std::string name;
  std::vector<AclRule> rules;

  bool operator==(const AclConfig&) const = default;
};

struct PrefixListEntry {
  FilterAction action = FilterAction::kPermit;
  Ipv4Prefix prefix;
  int ge = -1;  // minimum matched length (-1: exactly prefix length)
  int le = -1;  // maximum matched length

  /// First-match semantics; matches the entry against a concrete prefix.
  bool matches(const Ipv4Prefix& candidate) const;

  bool operator==(const PrefixListEntry&) const = default;
};

/// First-match prefix list with implicit deny.
struct PrefixListConfig {
  std::string name;
  std::vector<PrefixListEntry> entries;

  bool operator==(const PrefixListConfig&) const = default;
};

/// One clause of a route map: match conditions plus attribute actions.
struct RouteMapClause {
  int seq = 10;
  FilterAction action = FilterAction::kPermit;
  std::string match_prefix_list;            // "" = match everything
  std::optional<uint32_t> match_community;  // route must carry it
  std::optional<int> set_local_pref;
  std::optional<int> set_med;
  std::vector<uint32_t> set_communities;    // replaces the community set
  int prepend_count = 0;                    // prepend own AS this many times

  bool operator==(const RouteMapClause&) const = default;
};

/// First-match route map with implicit deny when no clause matches.
struct RouteMapConfig {
  std::string name;
  std::vector<RouteMapClause> clauses;

  bool operator==(const RouteMapConfig&) const = default;
};

struct BgpNeighborConfig {
  Ipv4Addr peer_ip;
  uint32_t remote_as = 0;
  std::string import_map;  // applied to routes learned from this neighbor
  std::string export_map;  // applied to routes advertised to this neighbor

  bool operator==(const BgpNeighborConfig&) const = default;
};

struct BgpConfig {
  bool enabled = false;
  uint32_t as_number = 0;
  Ipv4Addr router_id;                  // 0.0.0.0: derived from node name
  std::vector<Ipv4Prefix> networks;    // locally originated prefixes
  std::vector<BgpNeighborConfig> neighbors;
  bool redistribute_connected = false;
  bool redistribute_static = false;
  bool redistribute_ospf = false;

  bool operator==(const BgpConfig&) const = default;
};

struct NodeConfig {
  std::string name;
  std::vector<InterfaceConfig> interfaces;
  std::vector<StaticRouteConfig> static_routes;
  OspfConfig ospf;
  BgpConfig bgp;
  std::vector<AclConfig> acls;
  std::vector<PrefixListConfig> prefix_lists;
  std::vector<RouteMapConfig> route_maps;

  const InterfaceConfig* find_interface(const std::string& if_name) const;
  InterfaceConfig* find_interface(const std::string& if_name);
  const AclConfig* find_acl(const std::string& acl_name) const;
  const PrefixListConfig* find_prefix_list(const std::string& list) const;
  const RouteMapConfig* find_route_map(const std::string& map) const;

  bool operator==(const NodeConfig&) const = default;
};

/// Evaluates a prefix list (first match, implicit deny).
bool prefix_list_permits(const PrefixListConfig& list,
                         const Ipv4Prefix& prefix);

}  // namespace dna::config
