#include "config/diff.h"

#include <algorithm>
#include <map>

namespace dna::config {

const char* change_kind_name(ChangeKind kind) {
  switch (kind) {
    case ChangeKind::kNodeAdded:
      return "node-added";
    case ChangeKind::kNodeRemoved:
      return "node-removed";
    case ChangeKind::kInterfaceAdded:
      return "interface-added";
    case ChangeKind::kInterfaceRemoved:
      return "interface-removed";
    case ChangeKind::kInterfaceModified:
      return "interface-modified";
    case ChangeKind::kInterfaceAclBinding:
      return "interface-acl-binding";
    case ChangeKind::kStaticRoutesChanged:
      return "static-routes-changed";
    case ChangeKind::kOspfChanged:
      return "ospf-changed";
    case ChangeKind::kBgpProcessChanged:
      return "bgp-process-changed";
    case ChangeKind::kBgpNeighborAdded:
      return "bgp-neighbor-added";
    case ChangeKind::kBgpNeighborRemoved:
      return "bgp-neighbor-removed";
    case ChangeKind::kBgpNeighborModified:
      return "bgp-neighbor-modified";
    case ChangeKind::kAclChanged:
      return "acl-changed";
    case ChangeKind::kPrefixListChanged:
      return "prefix-list-changed";
    case ChangeKind::kRouteMapChanged:
      return "route-map-changed";
  }
  return "?";
}

std::string ConfigChange::str() const {
  std::string out = node;
  out += ": ";
  out += change_kind_name(kind);
  if (!detail.empty()) {
    out += " (";
    out += detail;
    out += ")";
  }
  return out;
}

namespace {

void diff_node(const NodeConfig& before, const NodeConfig& after,
               std::vector<ConfigChange>& out) {
  const std::string& node = after.name;

  // Interfaces, matched by name.
  for (const auto& iface : before.interfaces) {
    const InterfaceConfig* now = after.find_interface(iface.name);
    if (!now) {
      out.push_back({ChangeKind::kInterfaceRemoved, node, iface.name});
    } else if (!(*now == iface)) {
      // Distinguish pure ACL re-binding: it affects only the data plane.
      InterfaceConfig unbound_before = iface;
      InterfaceConfig unbound_now = *now;
      unbound_before.acl_in.clear();
      unbound_before.acl_out.clear();
      unbound_now.acl_in.clear();
      unbound_now.acl_out.clear();
      out.push_back({unbound_before == unbound_now
                         ? ChangeKind::kInterfaceAclBinding
                         : ChangeKind::kInterfaceModified,
                     node, iface.name});
    }
  }
  for (const auto& iface : after.interfaces) {
    if (!before.find_interface(iface.name)) {
      out.push_back({ChangeKind::kInterfaceAdded, node, iface.name});
    }
  }

  if (before.static_routes != after.static_routes) {
    out.push_back({ChangeKind::kStaticRoutesChanged, node, ""});
  }
  if (!(before.ospf == after.ospf)) {
    out.push_back({ChangeKind::kOspfChanged, node, ""});
  }

  // BGP: process-level fields vs per-neighbor granularity.
  {
    BgpConfig b = before.bgp;
    BgpConfig a = after.bgp;
    auto by_ip = [](const BgpNeighborConfig& x, const BgpNeighborConfig& y) {
      return x.peer_ip < y.peer_ip;
    };
    std::sort(b.neighbors.begin(), b.neighbors.end(), by_ip);
    std::sort(a.neighbors.begin(), a.neighbors.end(), by_ip);
    std::map<Ipv4Addr, const BgpNeighborConfig*> before_by_ip, after_by_ip;
    for (const auto& n : b.neighbors) before_by_ip[n.peer_ip] = &n;
    for (const auto& n : a.neighbors) after_by_ip[n.peer_ip] = &n;
    for (const auto& [ip, n] : before_by_ip) {
      auto it = after_by_ip.find(ip);
      if (it == after_by_ip.end()) {
        out.push_back({ChangeKind::kBgpNeighborRemoved, node, ip.str()});
      } else if (!(*it->second == *n)) {
        out.push_back({ChangeKind::kBgpNeighborModified, node, ip.str()});
      }
    }
    for (const auto& [ip, n] : after_by_ip) {
      (void)n;
      if (!before_by_ip.count(ip)) {
        out.push_back({ChangeKind::kBgpNeighborAdded, node, ip.str()});
      }
    }
    b.neighbors.clear();
    a.neighbors.clear();
    if (!(b == a)) {
      out.push_back({ChangeKind::kBgpProcessChanged, node, ""});
    }
  }

  // Named filter objects, matched by name.
  auto diff_named = [&](const auto& before_items, const auto& after_items,
                        ChangeKind kind, auto name_of) {
    for (const auto& item : before_items) {
      bool found = false;
      for (const auto& other : after_items) {
        if (name_of(other) == name_of(item)) {
          found = true;
          if (!(other == item)) {
            out.push_back({kind, node, name_of(item)});
          }
          break;
        }
      }
      if (!found) out.push_back({kind, node, name_of(item)});
    }
    for (const auto& item : after_items) {
      bool found = false;
      for (const auto& other : before_items) {
        if (name_of(other) == name_of(item)) {
          found = true;
          break;
        }
      }
      if (!found) out.push_back({kind, node, name_of(item)});
    }
  };

  diff_named(before.acls, after.acls, ChangeKind::kAclChanged,
             [](const AclConfig& a) { return a.name; });
  diff_named(before.prefix_lists, after.prefix_lists,
             ChangeKind::kPrefixListChanged,
             [](const PrefixListConfig& p) { return p.name; });
  diff_named(before.route_maps, after.route_maps, ChangeKind::kRouteMapChanged,
             [](const RouteMapConfig& r) { return r.name; });
}

}  // namespace

std::vector<ConfigChange> diff_configs(const std::vector<NodeConfig>& before,
                                       const std::vector<NodeConfig>& after) {
  std::vector<ConfigChange> out;
  std::map<std::string, const NodeConfig*> before_by_name, after_by_name;
  for (const auto& node : before) before_by_name[node.name] = &node;
  for (const auto& node : after) after_by_name[node.name] = &node;

  for (const auto& [name, node] : before_by_name) {
    auto it = after_by_name.find(name);
    if (it == after_by_name.end()) {
      out.push_back({ChangeKind::kNodeRemoved, name, ""});
    } else if (!(*it->second == *node)) {
      diff_node(*node, *it->second, out);
    }
  }
  for (const auto& [name, node] : after_by_name) {
    (void)node;
    if (!before_by_name.count(name)) {
      out.push_back({ChangeKind::kNodeAdded, name, ""});
    }
  }
  return out;
}

}  // namespace dna::config
