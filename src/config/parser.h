// Text format for node configurations.
//
//   node r1
//     interface eth0
//       address 10.0.1.1/24
//       cost 5
//     static 0.0.0.0/0 via 10.0.1.2
//     ospf
//       network 10.0.0.0/16
//     bgp 65001
//       network 172.16.1.0/24
//       neighbor 10.0.1.2 remote-as 65002
//         import-map IMP
//     acl BLOCK
//       deny src 10.9.0.0/16 dst 0.0.0.0/0
//       permit src 0.0.0.0/0 dst 0.0.0.0/0
//     prefix-list PL
//       permit 172.16.0.0/16 le 24
//     route-map IMP
//       clause 10 permit
//         match prefix-list PL
//         set local-pref 200
//
// Indentation is ignored; nesting is inferred from keywords. `#` and `//`
// start comments. One text may define many nodes. printer.h emits the
// canonical form; parse(print(configs)) == configs.
#pragma once

#include <string>
#include <vector>

#include "config/model.h"

namespace dna::config {

/// Parses one or more node configurations.
/// Throws dna::ParseError with a line number on malformed input.
std::vector<NodeConfig> parse_configs(const std::string& text);

}  // namespace dna::config
