#include "service/transport.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <mutex>

#include "util/error.h"

#ifndef _WIN32
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

namespace dna::service {

// ---- loopback --------------------------------------------------------------

/// One direction of the loopback pair: a bounded-by-nothing byte buffer
/// with blocking reads and a closed flag.
class LoopbackChannel::ByteQueue {
 public:
  void write(std::string_view bytes) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) throw Error("loopback peer closed");
      data_.append(bytes);
    }
    cv_.notify_all();
  }

  size_t read(char* buffer, size_t max) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return !data_.empty() || closed_; });
    if (data_.empty()) return 0;  // closed and drained
    const size_t count = std::min(max, data_.size());
    std::memcpy(buffer, data_.data(), count);
    data_.erase(0, count);
    return count;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::string data_;
  bool closed_ = false;
};

class LoopbackChannel::Endpoint : public Transport {
 public:
  Endpoint(std::shared_ptr<ByteQueue> out, std::shared_ptr<ByteQueue> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  void send(std::string_view bytes) override { out_->write(bytes); }
  size_t recv(char* buffer, size_t max) override {
    return in_->read(buffer, max);
  }
  void close_send() override { out_->close(); }
  void abort() override {
    out_->close();
    in_->close();
  }

 private:
  std::shared_ptr<ByteQueue> out_;
  std::shared_ptr<ByteQueue> in_;
};

LoopbackChannel::LoopbackChannel()
    : to_server_(std::make_shared<ByteQueue>()),
      to_client_(std::make_shared<ByteQueue>()) {
  client_ = std::make_unique<Endpoint>(to_server_, to_client_);
  server_ = std::make_unique<Endpoint>(to_client_, to_server_);
}

LoopbackChannel::~LoopbackChannel() {
  // Unblock any reader still parked on either direction.
  to_server_->close();
  to_client_->close();
}

// ---- socket transports -----------------------------------------------------

#ifndef _WIN32

namespace {

/// A Transport over a connected socket fd; owns and closes it.
class FdTransport : public Transport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}
  ~FdTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(std::string_view bytes) override {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw Error("socket send failed: " + std::string(strerror(errno)));
      }
      sent += static_cast<size_t>(n);
    }
  }

  size_t recv(char* buffer, size_t max) override {
    for (;;) {
      const ssize_t n = ::recv(fd_, buffer, max, 0);
      if (n >= 0) return static_cast<size_t>(n);
      if (errno == EINTR) continue;
      throw Error("socket recv failed: " + std::string(strerror(errno)));
    }
  }

  void close_send() override { ::shutdown(fd_, SHUT_WR); }
  void abort() override { ::shutdown(fd_, SHUT_RDWR); }

 private:
  int fd_;
};

sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw Error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

std::unique_ptr<Transport> make_fd_transport(int fd) {
  return std::make_unique<FdTransport>(fd);
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  const sockaddr_un addr = make_addr(path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("socket() failed: " + std::string(strerror(errno)));
  ::unlink(path.c_str());  // replace a stale socket from a previous run
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string detail = strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("bind(" + path + ") failed: " + detail);
  }
  if (::listen(fd_, 64) < 0) {
    const std::string detail = strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("listen(" + path + ") failed: " + detail);
  }
}

UnixListener::~UnixListener() {
  close();
  if (fd_ >= 0) ::close(fd_);
  ::unlink(path_.c_str());
}

std::unique_ptr<Transport> UnixListener::accept() {
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return std::make_unique<FdTransport>(client);
    if (errno == EINTR) continue;
    return nullptr;  // listener shut down (or broken): stop serving
  }
}

void UnixListener::close() {
  if (fd_ >= 0) {
    // shutdown() unblocks a thread parked in accept(); the fd itself stays
    // valid until destruction so no racing accept() touches a stale fd.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

std::unique_ptr<Transport> connect_unix(const std::string& path) {
  const sockaddr_un addr = make_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw Error("socket() failed: " + std::string(strerror(errno)));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string detail = strerror(errno);
    ::close(fd);
    throw Error("connect(" + path + ") failed: " + detail);
  }
  return std::make_unique<FdTransport>(fd);
}

#else  // _WIN32: the cross-process transport is POSIX-only; loopback remains.

std::unique_ptr<Transport> make_fd_transport(int) {
  throw Error("socket transports are not available on this platform");
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  throw Error("unix-domain sockets are not available on this platform");
}
UnixListener::~UnixListener() = default;
std::unique_ptr<Transport> UnixListener::accept() { return nullptr; }
void UnixListener::close() {}
std::unique_ptr<Transport> connect_unix(const std::string&) {
  throw Error("unix-domain sockets are not available on this platform");
}

#endif

}  // namespace dna::service
