#include "service/version.h"

#include <utility>

#include "util/error.h"

namespace dna::service {

SnapshotStore::SnapshotStore(topo::Snapshot base, uint64_t base_id)
    : next_id_(base_id), retired_(std::make_shared<std::atomic<size_t>>(0)) {
  base.validate();
  Version provenance;
  provenance.change_description = "base";
  head_ = make_version(next_id_++, std::move(base), provenance);
  live_[head_->id] = head_;
}

VersionHandle SnapshotStore::head() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return head_;
}

VersionHandle SnapshotStore::find(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = live_.find(id);
  if (it == live_.end()) return nullptr;
  VersionHandle handle = it->second.lock();
  if (!handle) live_.erase(it);  // retired since registration
  return handle;
}

void SnapshotStore::keep_history(size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  history_depth_ = depth;
  // Seed with the current head: the ring is otherwise only fed by
  // publish(), which would leave the base version (born in the
  // constructor) unpinned and immediately retired by the first commit.
  if (history_depth_ > 0 && history_.empty() && head_) {
    history_.push_back(head_);
  }
  while (history_.size() > history_depth_) history_.pop_front();
}

uint64_t SnapshotStore::next_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_id_;
}

VersionHandle SnapshotStore::publish(topo::Snapshot next,
                                     const Version& provenance) {
  // Id allocation and the head swap share one critical section so racing
  // publishers cannot install heads out of order (the head id must never
  // regress). Everything inside is cheap — the snapshot is moved, not
  // copied — so readers copying head() are barely delayed.
  std::lock_guard<std::mutex> lock(mutex_);
  return publish_locked(next_id_++, std::move(next), provenance);
}

VersionHandle SnapshotStore::publish_at(uint64_t id, topo::Snapshot next,
                                        const Version& provenance) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id < next_id_) {
    throw Error("publish_at(" + std::to_string(id) +
                ") would regress the head (next id is " +
                std::to_string(next_id_) + ")");
  }
  next_id_ = id + 1;
  return publish_locked(id, std::move(next), provenance);
}

VersionHandle SnapshotStore::publish_locked(uint64_t id, topo::Snapshot next,
                                            const Version& provenance) {
  VersionHandle version = make_version(id, std::move(next), provenance);
  head_ = version;
  live_[version->id] = version;
  // Sweep registry entries whose versions retired — keeps live_ bounded by
  // the live-version count without a hook in the version deleter.
  for (auto it = live_.begin(); it != live_.end();) {
    if (it->second.expired()) {
      it = live_.erase(it);
    } else {
      ++it;
    }
  }
  if (history_depth_ > 0) {
    history_.push_back(version);
    while (history_.size() > history_depth_) history_.pop_front();
  }
  return version;
}

VersionHandle SnapshotStore::make_version(uint64_t id, topo::Snapshot snapshot,
                                          const Version& provenance) {
  auto version = new Version();
  version->id = id;
  version->snapshot =
      std::make_shared<const topo::Snapshot>(std::move(snapshot));
  version->change_description = provenance.change_description;
  version->fib_changes = provenance.fib_changes;
  version->reach_changes = provenance.reach_changes;
  version->semantically_empty = provenance.semantically_empty;
  version->commit_seconds = provenance.commit_seconds;
  published_.fetch_add(1);
  // The deleter runs when the last handle drops — that moment *is* the
  // retirement of the version, wherever it happens (reader thread, store
  // destructor, ...). The counter is co-owned so late retirements after the
  // store itself is gone stay safe.
  std::shared_ptr<std::atomic<size_t>> retired = retired_;
  return VersionHandle(version, [retired](const Version* v) {
    retired->fetch_add(1);
    delete v;
  });
}

}  // namespace dna::service
