// Durable write-ahead commit journal for the query service.
//
// The paper's thesis makes persistence cheap: a published version is a pure
// function of (base model, sequence of change plans), and change plans are
// already textual via the wire mini-language (query.h). So durability is a
// log of those texts, and recovery is replaying them differentially — the
// exact commits the live service ran, at the exact version ids it assigned.
//
// On-disk layout: a directory of segment files, `journal-<seq>.dnaj`, each
//
//   segment := "DNAJSEG1" record*
//   record  := u32 payload_len (LE) | u32 crc32(payload) (LE) | payload
//
// A payload is one of
//
//   commit <version> '\n' <change mini-language text>
//   snapshot <version> <topology_len> '\n' <topology text> <config text>
//
// A snapshot record is a compaction head: it pins the whole model at
// <version>, and everything before it is dead history. compact() writes one
// into a fresh segment and deletes the older segments; the rename-then-
// unlink order keeps every instant crash-consistent.
//
// Recovery semantics (the crash-injection tests in tests/test_journal.cc
// enforce these):
//  * Records are only trusted when the length is plausible, the payload is
//    complete, and the CRC matches. The first bad record in the *last*
//    segment is a torn tail — the journal recovers the clean prefix before
//    it and truncates the garbage so appends continue from a valid file.
//  * A bad record with more journal after it (a non-tail segment) is real
//    corruption, not a crash artifact; the constructor throws rather than
//    silently dropping acknowledged commits.
//
// Durability: append_commit() returns only after the bytes are written —
// and, under FsyncPolicy::kAlways, fsync'd — so a caller that acknowledges
// a commit after appending can never lose it to a crash.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "topo/snapshot.h"

namespace dna::service {

/// Whether journal appends reach stable storage before they return.
/// kAlways is the durable default; kNever trades crash durability (not
/// consistency — recovery still sees a clean prefix) for commit latency.
enum class FsyncPolicy { kAlways, kNever };

/// One replayable journal entry.
struct JournalRecord {
  enum class Kind { kSnapshot, kCommit };
  Kind kind = Kind::kCommit;
  uint64_t version = 0;
  std::string change_text;  // kCommit: the change mini-language line
  topo::Snapshot snapshot;  // kSnapshot: the full model at `version`
};

// ---- payload / frame codecs (exposed for the fault-injection tests) -------

/// Renders a commit payload. `change_text` must be newline-free (the wire
/// mini-language is one line); throws dna::Error otherwise.
std::string encode_commit_record(uint64_t version,
                                 const std::string& change_text);

/// Renders a snapshot payload via topo::print_snapshot.
std::string encode_snapshot_record(uint64_t version,
                                   const topo::Snapshot& snapshot);

/// Parses a payload back into a record. Throws dna::Error on malformed
/// input (recovery treats that the same as a checksum mismatch).
JournalRecord decode_record(const std::string& payload);

/// Wraps a payload in the length+crc frame written to segment files.
std::string encode_record_frame(std::string_view payload);

class Journal {
 public:
  /// Opens (creating the directory if missing) and scans every segment.
  /// After construction recovered() holds the replayable clean prefix, in
  /// order, starting from the newest snapshot record if any. Throws
  /// dna::Error on an unreadable directory or mid-journal corruption.
  Journal(std::string dir, FsyncPolicy fsync_policy);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// The records the opening scan recovered, in replay order. Valid until
  /// release_recovered() or compact(); a recovered snapshot record holds a
  /// full model copy, so consumers free it once replay is done.
  const std::vector<JournalRecord>& recovered() const { return recovered_; }

  /// Drops the recovered records (the scan's one-shot output, dead weight
  /// once replayed). compact() does this implicitly — the records no
  /// longer describe what is on disk after it.
  void release_recovered() { recovered_.clear(); recovered_.shrink_to_fit(); }

  /// True when the scan found (and truncated) a torn tail — the signature
  /// of a crash mid-append.
  bool recovered_torn_tail() const { return torn_tail_; }

  /// Appends one commit record; once this returns the record is durable
  /// under the configured fsync policy. Throws dna::Error on I/O failure.
  void append_commit(uint64_t version, const std::string& change_text);

  /// Fault injection: when set, every append_commit throws as if the disk
  /// failed (before writing anything). Tests use this to flip the
  /// service's health — permission tricks don't work when the suite runs
  /// as root, and a real device error is not reproducible.
  void set_fail_appends(bool fail) { fail_appends_ = fail; }

  /// Observes every append's fsync duration (nanoseconds) into `histogram`
  /// (nullptr detaches). The owning service points this at its registry;
  /// the journal itself stays free of any obs dependency beyond the hook.
  void set_fsync_histogram(obs::Histogram* histogram) {
    fsync_histogram_ = histogram;
  }
  /// Duration of the most recent append's fsync, for the caller's trace
  /// spans. Meaningful only under the caller's own serialization (the
  /// service's commit lock) — the journal does not synchronize appends.
  uint64_t last_fsync_ns() const { return last_fsync_ns_; }

  /// Snapshots `head` at `version` into a fresh segment and deletes all
  /// older segments. Called after startup replay (where it truncates the
  /// replayed history) and harmless on a fresh journal (where it seeds the
  /// base model, making the journal self-contained).
  void compact(uint64_t version, const topo::Snapshot& head);

  const std::string& dir() const { return dir_; }
  size_t segment_count() const { return segments_.size(); }

 private:
  void scan();
  /// Scans one segment's bytes; appends valid records to recovered_ and
  /// returns the byte count of the valid prefix. `last` selects torn-tail
  /// (stop) versus corruption (throw) handling for a bad record.
  size_t scan_segment(const std::string& path, const std::string& bytes,
                      bool last);
  void open_tail_for_append();
  std::string segment_path(uint64_t seq) const;
  void append_frame(std::string_view frame);
  void sync_fd(int fd) const;
  /// sync_fd for the append path: times the fsync, feeding the attached
  /// histogram and last_fsync_ns().
  void timed_sync_fd(int fd);
  void sync_dir() const;

  std::string dir_;
  FsyncPolicy fsync_;
  std::vector<uint64_t> segments_;  // on-disk segment seqs, ascending
  std::vector<JournalRecord> recovered_;
  bool torn_tail_ = false;
  size_t tail_valid_bytes_ = 0;  // clean prefix of the last segment
  int fd_ = -1;                  // tail segment, open for append
  bool fail_appends_ = false;    // fault injection (set_fail_appends)
  obs::Histogram* fsync_histogram_ = nullptr;
  uint64_t last_fsync_ns_ = 0;
};

}  // namespace dna::service
