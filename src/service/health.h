// The liveness verdict shared by every serving role.
//
// One shape for "should a load balancer keep sending here": the service
// (journal alive, dispatcher running), the shard router (every shard
// connected), and the /healthz endpoint + `healthz` verb all speak it.
// ok=false renders as HTTP 503 / "unhealthy: <detail>"; the detail string
// is human-facing either way.
#pragma once

#include <string>

namespace dna::service {

struct Health {
  bool ok = false;
  std::string detail;
};

}  // namespace dna::service
