// Versioned snapshot publication for the long-lived query service.
//
// Every committed change produces a new immutable Version: a monotonically
// increasing id, the snapshot it pins, and the commit's blast-radius
// summary. Publication is epoch-style via shared_ptr: the store holds the
// only long-lived strong reference (the head), readers copy the head handle
// at query-submission time and keep the whole version alive for exactly as
// long as they are using it. Publishing a new head therefore never blocks
// readers, and a superseded version is retired (destroyed) at the instant
// the last reader drops its handle — never earlier, never by the writer.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "topo/snapshot.h"

namespace dna::service {

/// An immutable published network model. The snapshot never changes after
/// publication; queries against a Version are referentially transparent.
struct Version {
  uint64_t id = 0;
  std::shared_ptr<const topo::Snapshot> snapshot;

  // Provenance of this version (how the head got here from id - 1).
  std::string change_description;  // "base" for the initial version
  size_t fib_changes = 0;
  size_t reach_changes = 0;  // reach facts gained + lost
  bool semantically_empty = true;
  double commit_seconds = 0;  // wall time of the commit that produced it
};

/// A reader's lease on a version. Holding one keeps the version (and its
/// snapshot) alive; dropping the last one retires it.
using VersionHandle = std::shared_ptr<const Version>;

class SnapshotStore {
 public:
  /// Publishes `base` as version `base_id` (description: "base"). The
  /// default of 1 is a fresh store; journal recovery seeds a higher id so
  /// replayed versions get exactly the ids the pre-crash service assigned
  /// (readers pinned to "version K" survive a restart unchanged).
  explicit SnapshotStore(topo::Snapshot base, uint64_t base_id = 1);

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// The current head. O(1): a mutex-guarded shared_ptr copy.
  VersionHandle head() const;
  uint64_t head_id() const { return head()->id; }

  /// A handle to live version `id`, or nullptr if no such version is still
  /// alive. Every published version is registered (weakly) here, so any
  /// version some reader still leases — or the keep_history() ring pins —
  /// is findable by id: the lookup behind `@<id>`-pinned queries.
  VersionHandle find(uint64_t id) const;

  /// Keeps strong handles to the most recent `depth` published versions
  /// (the head included), so pinned queries can reach recent history even
  /// with no reader holding it. 0 (the default) pins nothing beyond the
  /// head; shrinking the depth releases the excess oldest entries.
  void keep_history(size_t depth);

  /// The id the next publish() will assign. Writers serialized externally
  /// (the service's commit lock) use this to journal a commit under its
  /// final id *before* publication makes it visible.
  uint64_t next_id() const;

  /// Publishes `next` as the new head and returns its handle. The previous
  /// head is released (it survives only through reader handles). Metadata
  /// fields beyond id/snapshot are taken from `provenance` (its id and
  /// snapshot members are ignored).
  VersionHandle publish(topo::Snapshot next, const Version& provenance);

  /// publish() at an explicit id, jumping the id sequence forward — how a
  /// journal-seeded warm-up installs a snapshot cloned from a peer at the
  /// peer's version id (the ids must line up deployment-wide for catch-up
  /// by version to stay exactly-once). `id` must be greater than every id
  /// published so far; throws dna::Error otherwise (the head never
  /// regresses).
  VersionHandle publish_at(uint64_t id, topo::Snapshot next,
                           const Version& provenance);

  // ---- retirement accounting (for service metrics) ------------------------
  size_t versions_published() const { return published_.load(); }
  size_t versions_retired() const { return retired_->load(); }
  /// Published versions whose storage is still pinned by some handle
  /// (including the head the store itself pins).
  size_t versions_live() const {
    return published_.load() - retired_->load();
  }

 private:
  VersionHandle make_version(uint64_t id, topo::Snapshot snapshot,
                             const Version& provenance);
  /// The shared publish tail (head swap, registry sweep, history ring).
  /// Caller holds mutex_ and has already advanced next_id_ past `id`.
  VersionHandle publish_locked(uint64_t id, topo::Snapshot next,
                               const Version& provenance);

  mutable std::mutex mutex_;
  VersionHandle head_;
  uint64_t next_id_ = 1;
  /// Weak registry of every published version still alive, by id; expired
  /// entries are swept on publish. Never keeps a version alive by itself.
  mutable std::map<uint64_t, std::weak_ptr<const Version>> live_;
  /// Strong ring over the newest versions (see keep_history()).
  size_t history_depth_ = 0;
  std::deque<VersionHandle> history_;
  std::atomic<size_t> published_{0};
  /// Owned by shared_ptr so version deleters can outlive the store.
  std::shared_ptr<std::atomic<size_t>> retired_;
};

}  // namespace dna::service
