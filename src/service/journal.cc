#include "service/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "topo/textio.h"
#include "util/crc32.h"
#include "util/error.h"
#include "util/strings.h"

namespace dna::service {

namespace {

constexpr char kSegmentMagic[] = "DNAJSEG1";
constexpr size_t kMagicSize = 8;
constexpr size_t kFrameHeader = 8;  // u32 length + u32 crc
/// Ceiling on a single record (a snapshot of a very large model); a length
/// field beyond this is treated as corruption, not an allocation request.
constexpr size_t kMaxRecordPayload = size_t{1} << 28;  // 256 MiB

void put_u32(std::string& out, uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

uint32_t get_u32(const char* bytes) {
  return static_cast<uint32_t>(static_cast<unsigned char>(bytes[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(bytes[3])) << 24;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

std::string read_whole_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read journal segment " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Strict u64 parse for record headers (parse_int caps at long long).
uint64_t parse_u64(const std::string& text) {
  if (text.empty()) throw Error("bad journal number: " + text);
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') throw Error("bad journal number: " + text);
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      throw Error("bad journal number: " + text);
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

// ---- payload / frame codecs ------------------------------------------------

std::string encode_commit_record(uint64_t version,
                                 const std::string& change_text) {
  if (change_text.find('\n') != std::string::npos) {
    throw Error("change text must be a single line");
  }
  std::string payload = "commit " + std::to_string(version);
  payload += '\n';
  payload += change_text;
  return payload;
}

std::string encode_snapshot_record(uint64_t version,
                                   const topo::Snapshot& snapshot) {
  const topo::SnapshotText text = topo::print_snapshot(snapshot);
  std::string payload = "snapshot " + std::to_string(version) + " " +
                        std::to_string(text.topology.size());
  payload += '\n';
  payload += text.topology;
  payload += text.configs;
  return payload;
}

JournalRecord decode_record(const std::string& payload) {
  const size_t newline = payload.find('\n');
  if (newline == std::string::npos) throw Error("journal record: no header");
  const std::vector<std::string> tokens =
      split_ws(payload.substr(0, newline));
  JournalRecord record;
  if (tokens.size() == 2 && tokens[0] == "commit") {
    record.kind = JournalRecord::Kind::kCommit;
    record.version = parse_u64(tokens[1]);
    record.change_text = payload.substr(newline + 1);
    return record;
  }
  if (tokens.size() == 3 && tokens[0] == "snapshot") {
    record.kind = JournalRecord::Kind::kSnapshot;
    record.version = parse_u64(tokens[1]);
    const uint64_t topology_len = parse_u64(tokens[2]);
    const std::string body = payload.substr(newline + 1);
    if (topology_len > body.size()) {
      throw Error("journal snapshot record: bad topology length");
    }
    record.snapshot = topo::load_snapshot(body.substr(0, topology_len),
                                          body.substr(topology_len));
    return record;
  }
  throw Error("journal record: unknown header");
}

std::string encode_record_frame(std::string_view payload) {
  DNA_CHECK_MSG(payload.size() <= kMaxRecordPayload,
                "journal record too large");
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  put_u32(frame, static_cast<uint32_t>(payload.size()));
  put_u32(frame, util::crc32(payload));
  frame += payload;
  return frame;
}

// ---- Journal ---------------------------------------------------------------

Journal::Journal(std::string dir, FsyncPolicy fsync_policy)
    : dir_(std::move(dir)), fsync_(fsync_policy) {
  if (::mkdir(dir_.c_str(), 0755) != 0 && errno != EEXIST) {
    throw_errno("cannot create journal directory " + dir_);
  }
  scan();
  open_tail_for_append();
}

Journal::~Journal() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Journal::segment_path(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "journal-%08llu.dnaj",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

void Journal::scan() {
  namespace fs = std::filesystem;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (!starts_with(name, "journal-") || !name.ends_with(".dnaj")) continue;
    const long long seq = parse_int(name.substr(8, name.size() - 8 - 5));
    if (seq <= 0) continue;
    segments_.push_back(static_cast<uint64_t>(seq));
  }
  if (ec) throw Error("cannot list journal directory " + dir_);
  std::sort(segments_.begin(), segments_.end());

  for (size_t i = 0; i < segments_.size(); ++i) {
    const bool last = i + 1 == segments_.size();
    const std::string path = segment_path(segments_[i]);
    const std::string bytes = read_whole_file(path);
    const size_t valid = scan_segment(path, bytes, last);
    if (last) tail_valid_bytes_ = valid;
  }
}

size_t Journal::scan_segment(const std::string& path,
                             const std::string& bytes, bool last) {
  // Reject (or, for the tail, truncate away) everything after the first
  // byte that fails validation: appends are strictly sequential, so a
  // record can only be damaged by the crash that cut the file short —
  // nothing after it was ever acknowledged.
  auto bad = [&](size_t valid_prefix, const char* why) -> size_t {
    if (!last) {
      throw Error("journal corrupted (" + std::string(why) + ") in " + path +
                  " with later segments present");
    }
    torn_tail_ = true;
    (void)why;
    return valid_prefix;
  };

  if (bytes.size() < kMagicSize ||
      std::memcmp(bytes.data(), kSegmentMagic, kMagicSize) != 0) {
    // A short or half-written header: nothing in this segment is usable.
    // (A full header with *wrong* bytes in a non-tail segment throws.)
    return bad(0, "bad segment header");
  }

  size_t offset = kMagicSize;
  while (offset < bytes.size()) {
    if (bytes.size() - offset < kFrameHeader) {
      return bad(offset, "partial record header");
    }
    const size_t length = get_u32(bytes.data() + offset);
    const uint32_t expected_crc = get_u32(bytes.data() + offset + 4);
    if (length > kMaxRecordPayload) {
      return bad(offset, "implausible record length");
    }
    if (bytes.size() - offset - kFrameHeader < length) {
      return bad(offset, "partial record payload");
    }
    const std::string payload =
        bytes.substr(offset + kFrameHeader, length);
    if (util::crc32(payload) != expected_crc) {
      return bad(offset, "checksum mismatch");
    }
    JournalRecord record;
    try {
      record = decode_record(payload);
    } catch (const std::exception&) {
      return bad(offset, "undecodable record");
    }
    if (record.kind == JournalRecord::Kind::kSnapshot) {
      // A compaction head: everything before it is superseded history.
      recovered_.clear();
    }
    recovered_.push_back(std::move(record));
    offset += kFrameHeader + length;
  }
  return offset;
}

void Journal::open_tail_for_append() {
  if (segments_.empty()) {
    const uint64_t seq = 1;
    const std::string path = segment_path(seq);
    fd_ = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd_ < 0) throw_errno("cannot create journal segment " + path);
    append_frame(std::string_view(kSegmentMagic, kMagicSize));
    sync_dir();
    segments_.push_back(seq);
    return;
  }
  const std::string path = segment_path(segments_.back());
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd_ < 0) throw_errno("cannot open journal segment " + path);
  // Drop any torn tail so new appends continue from the clean prefix. A
  // segment whose very header was torn holds nothing valid: restart it
  // from scratch rather than appending after garbage bytes.
  const size_t keep = tail_valid_bytes_ >= kMagicSize ? tail_valid_bytes_ : 0;
  if (::ftruncate(fd_, static_cast<off_t>(keep)) != 0) {
    throw_errno("cannot truncate journal segment " + path);
  }
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    throw_errno("cannot seek journal segment " + path);
  }
  if (keep == 0) {
    append_frame(std::string_view(kSegmentMagic, kMagicSize));
  }
}

void Journal::append_frame(std::string_view frame) {
  DNA_CHECK(fd_ >= 0);
  size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd_, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("journal append failed");
    }
    written += static_cast<size_t>(n);
  }
  timed_sync_fd(fd_);
}

void Journal::append_commit(uint64_t version,
                            const std::string& change_text) {
  if (fail_appends_) {
    throw Error("journal append failed (injected fault)");
  }
  append_frame(encode_record_frame(encode_commit_record(version, change_text)));
}

void Journal::timed_sync_fd(int fd) {
  const uint64_t start = obs::now_ns();
  sync_fd(fd);
  last_fsync_ns_ = obs::now_ns() - start;
  if (fsync_histogram_ != nullptr) fsync_histogram_->observe(last_fsync_ns_);
}

void Journal::compact(uint64_t version, const topo::Snapshot& head) {
  const uint64_t seq = segments_.empty() ? 1 : segments_.back() + 1;
  const std::string path = segment_path(seq);
  const std::string tmp = path + ".tmp";

  std::string bytes(kSegmentMagic, kMagicSize);
  bytes += encode_record_frame(encode_snapshot_record(version, head));
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) throw_errno("cannot create journal segment " + tmp);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw_errno("journal compaction write failed");
    }
    written += static_cast<size_t>(n);
  }
  sync_fd(fd);
  ::close(fd);
  // Publish the new head segment atomically, then retire the history. A
  // crash between the two steps leaves old segments plus the snapshot
  // segment — the scan's "snapshot record supersedes what precedes it"
  // rule makes that window recoverable.
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    throw_errno("cannot publish journal segment " + path);
  }
  sync_dir();
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  for (const uint64_t old : segments_) ::unlink(segment_path(old).c_str());
  sync_dir();
  segments_.assign(1, seq);
  tail_valid_bytes_ = bytes.size();
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND, 0644);
  if (fd_ < 0) throw_errno("cannot reopen journal segment " + path);
  release_recovered();  // the scan's records no longer describe the disk
}

void Journal::sync_fd(int fd) const {
  if (fsync_ == FsyncPolicy::kNever) return;
  if (::fsync(fd) != 0) throw_errno("journal fsync failed");
}

void Journal::sync_dir() const {
  if (fsync_ == FsyncPolicy::kNever) return;
  const int fd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) throw_errno("cannot open journal directory " + dir_);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno("journal directory fsync failed");
}

}  // namespace dna::service
