// The service's wire format: length-prefixed text frames.
//
//   frame    := length '\n' payload
//   length   := ASCII decimal byte count of payload (max 1 MiB)
//
// A request payload is one query/command line (see query.h and session.h);
// a response payload is a status line followed by the body:
//
//   response := ("ok " | "err ") version '\n' body
//
// Framing is transport-independent: the same bytes flow over the in-memory
// loopback channel and a unix-domain socket. The decoder is incremental —
// feed it whatever chunk sizes the transport produces.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "service/query.h"

namespace dna::service {

/// Maximum payload size the decoder will accept. A peer announcing more is
/// a protocol violation, not a large request.
inline constexpr size_t kMaxFramePayload = 1 << 20;

/// Wraps a payload in a frame.
std::string encode_frame(std::string_view payload);

/// Incremental frame parser. Throws dna::Error on malformed input (junk in
/// the length line, oversized frame); a session treats that as fatal.
class FrameDecoder {
 public:
  void feed(std::string_view bytes);

  /// The next complete payload, or nullopt until more bytes arrive.
  std::optional<std::string> next();

  /// Bytes buffered but not yet returned (diagnostics/tests).
  size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Renders a query result as a response payload.
std::string encode_response(const QueryResult& result);

/// Parses a response payload. Throws dna::Error on a malformed status line.
QueryResult decode_response(const std::string& payload);

}  // namespace dna::service
