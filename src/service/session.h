// Request/response sessions over a Transport.
//
// ServerSession pumps one connection: framed request lines in, framed
// responses out. Reader queries go through DnaService::query() (and so
// batch with every other session's queries); session-level commands
// extend the query language:
//
//   commit <change...>   apply the change plan and publish a new version
//                        (a leading `trace:` tag traces the commit's legs)
//   metrics [json]       the service's counters so far (text or JSON)
//   stats [json|prom]    the obs registry: counters, gauges, histograms —
//                        human text, JSON, or Prometheus 0.0.4 exposition
//   trace on|off         trace every query into the server's trace log
//   trace last <n>       the newest n completed traces, as JSON
//   healthz              liveness verdict (ok=false when the journal has
//                        failed or the service is shutting down)
//   diagnose [n] [json]  run the contention self-load (n queries per
//                        phase) and return the Amdahl attribution report
//   flight [ms] [max]    flight-recorder window as JSON: the last `ms`
//                        milliseconds (0/omitted = everything retained),
//                        capped to the newest `max` samples
//   sync                 stream the head model as one journal snapshot
//                        record — the source side of journal-seeded
//                        warm-up (a peer installs it via `seed`)
//   seed <record>        install a snapshot record obtained from a peer's
//                        `sync`, jumping this service to the peer's
//                        version id (idempotent at or behind the head)
//   shutdown             acknowledge, then ask the host to stop serving
//
// ServiceClient is the matching caller: one request() per line, blocking
// until the response frame arrives.
#pragma once

#include <string>

#include "service/protocol.h"
#include "service/service.h"
#include "service/transport.h"

namespace dna::service {

class ServerSession {
 public:
  ServerSession(DnaService& service, Transport& transport)
      : service_(service), transport_(transport) {}

  /// Serves until the peer closes, a protocol violation occurs, or a
  /// `shutdown` request is answered. Never throws.
  void run();

  /// True once the peer asked the whole server (not just this session) to
  /// stop; the host checks this after run() returns.
  bool shutdown_requested() const { return shutdown_requested_; }

 private:
  QueryResult handle(const std::string& request);
  /// The `seed` verb: decode a snapshot record and install it. `payload`
  /// is byte-exact (taken from the untrimmed request).
  QueryResult handle_seed(const std::string& payload);

  DnaService& service_;
  Transport& transport_;
  FrameDecoder decoder_;
  bool shutdown_requested_ = false;
};

class ServiceClient {
 public:
  explicit ServiceClient(Transport& transport) : transport_(transport) {}

  /// Sends one request line and blocks for its response. Throws dna::Error
  /// if the connection drops or the response is malformed.
  QueryResult request(const std::string& line);

  /// Ends the conversation politely (half-close).
  void close() { transport_.close_send(); }

 private:
  Transport& transport_;
  FrameDecoder decoder_;
};

}  // namespace dna::service
