// DnaService: a long-lived, concurrent query service over the DNA engine.
//
//   DnaService service(base_snapshot, invariants);
//   auto verdict = service.query("reach r0 172.31.1.1");   // readers...
//   service.commit(core::ChangePlan::link_failure(2));      // ...and writers
//
// The serving model, mirroring the paper's differential thesis:
//
//  * Writers are serialized. A commit advances the resident writer engine
//    differentially (cost ∝ impact of the change, not network size) and
//    publishes an immutable Version through the SnapshotStore. Publication
//    never blocks readers: in-flight queries keep their version handle.
//
//  * Readers never block writers — or each other. submit() captures the
//    head version and pushes onto a lock-free MPSC injection queue
//    (util::MpscQueue: one atomic exchange per submission, no mutex, and a
//    condvar wake only when the dispatcher is actually parked). The
//    dispatcher drains the injector without a lock round-trip per query,
//    coalesces every pending query that targets the same version into one
//    batch, and fans the batch out over the shared util::ThreadPool in
//    contiguous same-version *runs* — a worker is handed a slice of the
//    batch, not one query, so each chunk pays at most one replica
//    catch-up and one pool hand-off. Each worker owns a DnaEngine replica
//    that it advances differentially from whatever version it last
//    served — the base verification is paid once per worker, then
//    replicas ride the same delta stream the writer does.
//
//  * Backpressure is a credit scheme (util::CreditGate): a submitter
//    acquires one credit per query (a CAS, not a mutex), parks at the
//    bound for at most the submit deadline, and sheds — before ever
//    entering the queue — when no credit frees up. The dispatcher
//    releases a whole batch of credits at once, so a drain wakes parked
//    submitters once, not once per query.
//
//  * Durability is optional and differential too (journal.h): when a
//    journal directory is configured, every commit's textual change plan is
//    appended (and fsync'd) to a write-ahead journal *before* the version
//    publishes, so an acknowledged commit survives kill -9. Construction
//    replays the journal — same plans, same version ids — then compacts it
//    down to one snapshot-plus-nothing segment.
//
// Thread safety: every public method is safe to call from any thread.
// Determinism: a query's answer is a pure function of (query, version) —
// which worker evaluates it and in what batch is invisible.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/invariants.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "analytics/differential.h"
#include "analytics/risk.h"
#include "service/health.h"
#include "service/journal.h"
#include "service/query.h"
#include "service/risk_store.h"
#include "service/version.h"
#include "util/mpsc_queue.h"
#include "util/threadpool.h"

namespace dna::obs {
class FlightRecorder;  // recorder.h; the service only holds a pointer
}  // namespace dna::obs

namespace dna::service {

struct ServiceOptions {
  /// Query worker threads (0 = hardware concurrency).
  size_t num_threads = 0;
  /// Mode used by commit(); kDifferential is the point of the paper,
  /// kMonolithic is kept for cross-checking and benchmarking.
  core::Mode commit_mode = core::Mode::kDifferential;
  /// Directory for the write-ahead commit journal; empty disables
  /// persistence. With a journal, construction recovers: the latest
  /// journaled snapshot (if any) overrides `base`, the logged commits are
  /// replayed differentially at their original version ids, and the
  /// replayed history is compacted into one snapshot segment.
  std::string journal_dir;
  /// Whether every journal append reaches stable storage before the commit
  /// is acknowledged (see journal.h). Ignored without a journal.
  FsyncPolicy journal_fsync = FsyncPolicy::kAlways;
  /// Backpressure: maximum pending (submitted, not yet dispatched) queries;
  /// 0 = unbounded. Enforced by a credit gate: at the bound, submit() waits
  /// up to `submit_deadline` for the dispatcher to release a batch of
  /// credits, then sheds the query (the future resolves ok=false, counted
  /// in queries_shed and *never* in the queue-wait histogram) instead of
  /// growing the queue or blocking forever.
  size_t max_queue_depth = 0;
  std::chrono::milliseconds submit_deadline{100};
  /// Recent versions the store pins beyond the head (SnapshotStore::
  /// keep_history), so `@<id>`-pinned queries can time-travel into recent
  /// history even when no reader leases it. 0 = only reader-leased
  /// versions stay queryable by id.
  size_t keep_versions = 0;
  /// Slow-query log threshold: a query whose submit-to-answer latency
  /// meets or exceeds this many nanoseconds is warned about and its span
  /// breakdown lands in the trace log even when nobody asked to trace it.
  /// 0 disables the slow-query log.
  uint64_t slow_query_ns = 0;
  /// Bounded memo for risk analytics (RiskStore): entries per level
  /// (aggregated reports, rendered answers). 0 disables memoization — every
  /// rank/risk query re-runs its sweep.
  size_t risk_cache_entries = 32;
};

/// What a commit did: the published version and its blast radius.
struct CommitResult {
  uint64_t version = 0;
  std::string description;
  size_t fib_changes = 0;
  size_t reach_changes = 0;
  bool semantically_empty = true;
  double seconds = 0;
};

/// Counters accumulated over the service's lifetime; printed on shutdown.
/// A read-time view assembled from the obs::Registry (per-query counters
/// live there, on per-thread shards) plus the dispatcher's per-batch map —
/// kept as the stable introspection surface for existing callers.
struct ServiceMetrics {
  size_t queries_total = 0;
  size_t queries_failed = 0;
  size_t queries_shed = 0;  // backpressure sheds (counted in total, not failed)
  size_t slow_queries = 0;  // queries at or over ServiceOptions::slow_query_ns
  size_t batches = 0;
  size_t max_batch = 0;
  size_t max_queue_depth = 0;
  size_t commits = 0;
  double commit_seconds_total = 0;
  double commit_seconds_max = 0;
  size_t versions_published = 0;
  size_t versions_retired = 0;
  size_t versions_live = 0;
  /// Queries dispatched per version id (how load spread over history).
  std::map<uint64_t, size_t> queries_per_version;

  std::string str() const;
  /// The same view as one JSON "metrics" object (the `metrics json` verb).
  void append_json(util::JsonWriter& json) const;
};

class DnaService {
 public:
  /// Publishes `base` as version 1 and verifies it once (the writer
  /// engine's base verification). Invariants apply to every version.
  DnaService(topo::Snapshot base, std::vector<core::Invariant> invariants,
             ServiceOptions options = {});

  /// Drains and stops (see shutdown()).
  ~DnaService();

  DnaService(const DnaService&) = delete;
  DnaService& operator=(const DnaService&) = delete;

  // ---- reader API ----------------------------------------------------------

  /// Parses and enqueues one query line against the current head version —
  /// or, for an `@<id>`-pinned line, against that live version (a pin to a
  /// retired or never-published id resolves ok=false without enqueueing).
  /// Never throws: parse failures resolve the future immediately with
  /// ok=false. The future is resolved by a dispatcher batch.
  std::future<QueryResult> submit(const std::string& query_line);

  /// submit() + wait. Safe to call from many threads concurrently; queries
  /// arriving while a batch is in flight coalesce into the next batch.
  QueryResult query(const std::string& query_line);

  // ---- writer API ----------------------------------------------------------

  /// Applies `plan` to the head snapshot, advances the writer engine, and
  /// publishes the result as a new version. Serialized with other commits;
  /// concurrent readers keep serving their captured versions. Throws
  /// dna::Error when the plan fails to apply (no version is published and
  /// the head is unchanged).
  ///
  /// With a journal, the plan's description() is authoritative: it must be
  /// a valid change mini-language line (query.h), it is journaled *before*
  /// publication, and the plan actually applied is the re-parsed text — so
  /// what replay will run is, by construction, exactly what ran live. A
  /// plan whose description does not parse throws without side effects.
  CommitResult commit(const core::ChangePlan& plan);
  CommitResult commit(const core::ChangePlan& plan, core::Mode mode);

  /// commit() for callers holding the textual form (sessions, tools).
  /// With `trace` non-null, the commit's leg spans (apply, journal append,
  /// fsync, publish) are recorded into it, offsets relative to commit start.
  CommitResult commit_text(const std::string& change_text,
                           obs::Trace* trace = nullptr);

  /// Journal-seeded warm-up (the `seed` verb): installs a full model cloned
  /// from a peer as version `version`, jumping the id sequence forward so
  /// this service's ids line up with the deployment's. The snapshot is
  /// compacted into the journal *before* publication (same durability
  /// contract as commits), the writer engine rebuilds (and re-verifies) at
  /// the seeded model, and reader replicas catch up differentially on
  /// their next query. Idempotent: a seed at or behind the current head is
  /// a no-op. Returns the head id after the call. Serialized with commits.
  uint64_t install_snapshot(const topo::Snapshot& snapshot, uint64_t version);

  // ---- introspection -------------------------------------------------------

  VersionHandle head() const { return store_.head(); }
  const std::vector<core::Invariant>& invariants() const {
    return invariants_;
  }
  size_t num_workers() const { return pool_.num_workers(); }
  ServiceMetrics metrics() const;
  /// The service's metric registry (counters/gauges/histograms); one per
  /// service instance so side-by-side deployments do not alias.
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  /// Recently completed traces: every traced query, plus every query the
  /// slow-query log caught.
  obs::TraceLog& trace_log() { return trace_log_; }
  /// When on, every query is traced (spans land in trace_log()) even
  /// without a `trace:` tag — the `trace on|off` verb.
  void set_trace_all(bool on) {
    trace_all_.store(on, std::memory_order_relaxed);
  }
  bool trace_all() const { return trace_all_.load(std::memory_order_relaxed); }
  /// Commits replayed from the journal during construction (0 without one).
  size_t recovered_commits() const { return recovered_commits_; }
  bool journaling() const { return journal_ != nullptr; }
  /// The commit journal (nullptr without one). Exposed for fault-injection
  /// tests (Journal::set_fail_appends) and diagnostics.
  Journal* journal() { return journal_.get(); }
  /// Pending (submitted, not yet dispatched) queries right now.
  size_t queue_depth() const;

  // ---- observability plane -------------------------------------------------

  /// Liveness: ok while the dispatcher accepts queries and the journal (if
  /// configured) has never failed an append. What /healthz serves.
  Health health() const;

  /// Commit-path lock contention (the profiler's writer-side view).
  const obs::TimedMutex& commit_lock() const { return commit_mutex_; }

  /// Per-worker profiler accounting since construction. Busy is the
  /// worker's total task wall time; catch-up and eval partition it. Idle
  /// is uptime minus busy, computed by the caller against uptime_seconds().
  /// Rows 0..num_workers()-1 are the pool workers; the final row is the
  /// dispatcher's own slot, used when it serves a single-chunk batch
  /// inline instead of paying a pool hand-off.
  struct WorkerStats {
    uint64_t tasks = 0;
    double busy_seconds = 0;
    double catchup_seconds = 0;
    double eval_seconds = 0;
  };
  std::vector<WorkerStats> worker_stats() const;
  double uptime_seconds() const;

  /// Attaches a flight recorder (owned by the caller, outliving the
  /// service or detached with nullptr first). The service marks
  /// "slow_query" events into it so the ring auto-dumps a sample at the
  /// moment things degraded.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_.store(recorder, std::memory_order_release);
  }
  obs::FlightRecorder* flight_recorder() const {
    return recorder_.load(std::memory_order_acquire);
  }

  /// Runs a short self-load — `queries_per_phase` probe queries strictly
  /// sequentially, then the same number flooded from num_workers()
  /// submitter threads — and attributes the measured per-query wall time
  /// to the queue/catchup/eval legs from the service's own histograms.
  /// The Amdahl-style verdict names the dominant serial leg of the
  /// scaling collapse (ROADMAP item 1). Safe against a live service;
  /// the probe load is real load.
  obs::DiagnosisReport diagnose(size_t queries_per_phase = 300);

  /// Stops accepting queries, drains the pending queue (every outstanding
  /// future resolves), and joins the dispatcher. Idempotent; called by the
  /// destructor.
  void shutdown();

 private:
  struct Pending {
    Query query;
    VersionHandle version;
    std::promise<QueryResult> promise;
    uint64_t submit_ns = 0;  // trace epoch: when submit() enqueued it
  };
  struct WorkerState {
    std::unique_ptr<core::DnaEngine> engine;
    uint64_t version_id = 0;
    // Profiler accounting (relaxed adds on the worker's own entry; the
    // vector is sized once at construction and never reallocates, so the
    // atomics never move).
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> catchup_ns{0};
    std::atomic<uint64_t> eval_ns{0};
    std::atomic<uint64_t> tasks{0};
  };

  void dispatcher_loop();
  /// Serves one version-coalesced batch: chunked fan-out over the pool,
  /// per-query leg accounting, metrics, and promise resolution.
  void serve_batch(std::vector<Pending> batch);
  /// Evaluates one rank/risk/risk-diff query (service_risk.cc). `engine` is
  /// the worker's replica, already advanced to `version` — the idle-replica
  /// sweeps run right there and memoize into risk_store_; a diff's other
  /// snapshot gets a scratch engine. Mirrors eval_query's dirty protocol:
  /// an exception escaping this call means the replica is mid-advance and
  /// the dispatcher must reset it.
  QueryResult eval_risk(const Query& query, const VersionHandle& version,
                        core::DnaEngine& engine);
  /// The memoized per-(spec-hash, version) aggregation behind eval_risk.
  /// `resident` is a replica already at version->id (or nullptr);
  /// `resident_dirty` is flipped around previews on it.
  std::shared_ptr<const analytics::RiskReport> risk_report_at(
      const analytics::SweepSpec& sweep, uint64_t spec_hash,
      const VersionHandle& version, core::DnaEngine* resident,
      bool* resident_dirty);
  /// The shared commit tail: `effective` is the plan that both applies and
  /// (when journaling) gets logged — callers guarantee its description is
  /// the canonical text when a journal is configured. `trace`, if non-null,
  /// receives the commit's leg spans.
  CommitResult commit_impl(const core::ChangePlan& effective, core::Mode mode,
                           obs::Trace* trace = nullptr);
  /// A fresh engine verified at `snapshot` with the service invariants
  /// registered — how every replica (writer or reader) is born.
  std::unique_ptr<core::DnaEngine> make_engine(
      const topo::Snapshot& snapshot) const;
  /// The worker's engine replica, advanced (differentially) to `version`.
  /// `catchup_ns`, if non-null, receives the time spent building or
  /// advancing the replica (0 when it was already at `version`).
  core::DnaEngine& engine_at(size_t worker, const Version& version,
                             uint64_t* catchup_ns = nullptr);
  /// The recovered journal's snapshot record (the durable state) if one
  /// exists, else the caller-provided base; likewise its version id.
  static topo::Snapshot journaled_base(const Journal* journal,
                                       topo::Snapshot base);
  static uint64_t journaled_base_id(const Journal* journal);
  /// Re-commits every journaled change at its original version id; runs in
  /// the constructor before the dispatcher exists. Throws (and aborts
  /// construction) if the journal cannot be replayed faithfully.
  void replay_journal();

  ServiceOptions options_;
  std::vector<core::Invariant> invariants_;
  std::unique_ptr<Journal> journal_;  // before store_: recovery seeds it
  SnapshotStore store_;
  util::ThreadPool pool_;
  // Indexed by pool worker id; the extra final slot is the dispatcher's,
  // for batches it serves inline.
  std::vector<WorkerState> workers_;
  size_t recovered_commits_ = 0;
  /// Risk analytics memo: (spec-hash, version) reports + rendered answers.
  RiskStore risk_store_;

  // ---- telemetry (obs/). Handles resolved once at construction; the hot
  // path writes through them — relaxed sharded atomics, no mutex.
  obs::Registry registry_;
  obs::Counter& ctr_queries_total_;
  obs::Counter& ctr_queries_failed_;
  obs::Counter& ctr_queries_shed_;
  obs::Counter& ctr_batches_;
  obs::Counter& ctr_commits_;
  obs::Counter& ctr_seeds_;
  obs::Counter& ctr_slow_queries_;
  obs::Counter& ctr_journal_errors_;
  obs::Gauge& gauge_max_batch_;
  obs::Gauge& gauge_max_queue_depth_;
  obs::Gauge& gauge_queue_depth_;
  obs::Histogram& hist_queue_wait_;
  obs::Histogram& hist_fanout_;
  obs::Histogram& hist_catchup_;
  obs::Histogram& hist_eval_;
  obs::Histogram& hist_query_total_;
  obs::Histogram& hist_batch_size_;
  obs::Histogram& hist_commit_;
  obs::Histogram& hist_journal_append_;
  obs::Counter& ctr_risk_sweeps_;
  obs::Counter& ctr_risk_cache_hits_;
  obs::Histogram& hist_risk_sweep_;
  obs::TraceLog trace_log_;
  std::atomic<bool> trace_all_{false};
  std::atomic<obs::FlightRecorder*> recorder_{nullptr};
  std::atomic<bool> journal_failed_{false};
  uint64_t start_ns_ = 0;  // construction instant, for uptime/idle

  // Serializes writers; instrumented so `diagnose` can report how long
  // commits spent waiting on each other (std::lock_guard still works —
  // TimedMutex is BasicLockable).
  obs::TimedMutex commit_mutex_;
  std::unique_ptr<core::DnaEngine> writer_;  // resident engine at head

  // ---- submission path: lock-free MPSC injection + credit backpressure.
  // Producers push with one atomic exchange; the dispatcher drains into a
  // consumer-private backlog and selects version-coalesced batches from
  // it. Credits bound (injector + backlog); the dispatcher releases a
  // batch's worth at once. `submits_inflight_` closes the
  // submit-during-shutdown window: a producer stands up here *before*
  // re-checking `stopping_` (seq_cst on both sides), so the dispatcher's
  // final drain either waits for its push or the producer sees the stop
  // and resolves the future with a typed error — never a hung future.
  util::MpscQueue<Pending> injector_;
  util::CreditGate credit_gate_;
  std::atomic<size_t> pending_count_{0};  // submitted, not yet batched
  std::atomic<uint64_t> submits_inflight_{0};
  std::atomic<bool> stopping_{false};

  // Only the per-version dispatch map still needs a lock; it is touched
  // once per *batch* (dispatcher thread only writes, metrics() reads), so
  // the mutex is off the per-query path entirely.
  mutable std::mutex metrics_mutex_;
  std::map<uint64_t, size_t> queries_per_version_;

  std::mutex shutdown_mutex_;  // makes shutdown() safe to race
  std::thread dispatcher_;  // last member: starts after everything above
};

}  // namespace dna::service
