#include "service/risk_store.h"

namespace dna::service {

RiskStore::RiskStore(size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const analytics::RiskReport> RiskStore::report(
    uint64_t spec_hash, uint64_t version) {
  const Key key{0, spec_hash, version, 0};
  std::lock_guard<std::mutex> lock(mutex_);
  auto* found = reports_.find(key);
  return found != nullptr ? *found : nullptr;
}

void RiskStore::put_report(uint64_t spec_hash, uint64_t version,
                           std::shared_ptr<const analytics::RiskReport> report) {
  const Key key{0, spec_hash, version, 0};
  std::lock_guard<std::mutex> lock(mutex_);
  reports_.put(key, std::move(report), capacity_);
}

std::optional<std::string> RiskStore::answer(char verb, uint64_t spec_hash,
                                             uint64_t version,
                                             uint64_t version2) {
  const Key key{static_cast<uint64_t>(verb), spec_hash, version, version2};
  std::lock_guard<std::mutex> lock(mutex_);
  auto* found = answers_.find(key);
  if (found == nullptr) return std::nullopt;
  return *found;
}

void RiskStore::put_answer(char verb, uint64_t spec_hash, uint64_t version,
                           uint64_t version2, std::string body) {
  const Key key{static_cast<uint64_t>(verb), spec_hash, version, version2};
  std::lock_guard<std::mutex> lock(mutex_);
  answers_.put(key, std::move(body), capacity_);
}

size_t RiskStore::reports_cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reports_.order.size();
}

size_t RiskStore::answers_cached() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return answers_.order.size();
}

}  // namespace dna::service
