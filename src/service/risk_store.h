// RiskStore: the service-side memo for risk analytics.
//
// Risk queries are pure functions of (verb, sweep spec, version(s)) — the
// same referential transparency every query enjoys — but a cold sweep costs
// one preview per scenario, thousands of times a point query. The store
// memoizes at two levels, both bounded LRUs:
//
//   * reports:  (spec-hash, version) -> the aggregated RiskReport. The
//     expensive half; `risk diff` reuses per-version reports across any
//     pair of versions, so diffing v1..vN costs N sweeps, not N^2.
//   * answers:  (verb, spec-hash, version, version) -> the rendered JSON
//     body. Repeated dashboard polls are a map lookup (ROADMAP item 3's
//     first slice).
//
// Memoizing rendered bytes is sound for the same reason queries shard: the
// body is deterministic in the key, so a cache hit is byte-identical to a
// recomputation. Thread safety: one mutex; entries are immutable once
// inserted (reports via shared_ptr-to-const), so hits copy a handle or a
// string and never block on sweep computation.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "analytics/risk.h"

namespace dna::service {

class RiskStore {
 public:
  /// `capacity` bounds each level independently (entries, not bytes);
  /// 0 disables memoization entirely.
  explicit RiskStore(size_t capacity = 32);

  std::shared_ptr<const analytics::RiskReport> report(uint64_t spec_hash,
                                                      uint64_t version);
  void put_report(uint64_t spec_hash, uint64_t version,
                  std::shared_ptr<const analytics::RiskReport> report);

  std::optional<std::string> answer(char verb, uint64_t spec_hash,
                                    uint64_t version, uint64_t version2);
  void put_answer(char verb, uint64_t spec_hash, uint64_t version,
                  uint64_t version2, std::string body);

  size_t reports_cached() const;
  size_t answers_cached() const;

 private:
  using Key = std::array<uint64_t, 4>;

  /// A small LRU: lookups move the entry to the front, inserts evict the
  /// back past `capacity`. All under the store's mutex — the per-entry
  /// work is a splice, never a sweep.
  template <typename Value>
  struct Lru {
    std::list<std::pair<Key, Value>> order;  // front = most recent
    std::map<Key, typename std::list<std::pair<Key, Value>>::iterator> index;

    Value* find(const Key& key) {
      const auto it = index.find(key);
      if (it == index.end()) return nullptr;
      order.splice(order.begin(), order, it->second);
      return &it->second->second;
    }
    void put(const Key& key, Value value, size_t capacity) {
      if (capacity == 0) return;
      if (Value* existing = find(key)) {
        *existing = std::move(value);
        return;
      }
      order.emplace_front(key, std::move(value));
      index[key] = order.begin();
      while (order.size() > capacity) {
        index.erase(order.back().first);
        order.pop_back();
      }
    }
  };

  const size_t capacity_;
  mutable std::mutex mutex_;
  Lru<std::shared_ptr<const analytics::RiskReport>> reports_;
  Lru<std::string> answers_;
};

}  // namespace dna::service
