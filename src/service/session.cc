#include "service/session.h"

#include <sstream>
#include <vector>

#include "obs/recorder.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dna::service {

QueryResult ServerSession::handle(const std::string& request) {
  // `seed <payload>` carries a snapshot record whose bytes are significant
  // to the last newline, so it is matched against the *untrimmed* request
  // (everything below trims); the payload is exactly what a peer's `sync`
  // returned.
  {
    std::string_view raw = request;
    while (!raw.empty() && (raw.front() == ' ' || raw.front() == '\t')) {
      raw.remove_prefix(1);
    }
    if (starts_with(raw, "seed ")) {
      return handle_seed(std::string(raw.substr(5)));
    }
  }
  // Strip a leading trace tag so commands still match behind it; reader
  // queries keep the original line (parse_query strips the tag itself).
  std::string line;
  TraceTag tag;
  try {
    tag = split_trace_tag(std::string(trim(request)), &line);
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    return failed;
  }
  try {
    if (line == "metrics") {
      QueryResult result;
      result.version = service_.head()->id;
      result.body = service_.metrics().str();
      return result;
    }
    if (line == "metrics json") {
      QueryResult result;
      result.version = service_.head()->id;
      util::JsonWriter json;
      json.begin_object();
      service_.metrics().append_json(json);
      json.end_object();
      result.body = json.str();
      return result;
    }
    if (line == "stats" || line == "stats json" || line == "stats prom") {
      QueryResult result;
      result.version = service_.head()->id;
      if (line == "stats prom") {
        result.body = service_.registry().prometheus_text();
      } else if (line == "stats json") {
        util::JsonWriter json;
        json.begin_object();
        service_.registry().append_json(json);
        json.end_object();
        result.body = json.str();
      } else {
        result.body = service_.registry().str();
      }
      return result;
    }
    if (line == "trace on" || line == "trace off") {
      service_.set_trace_all(line == "trace on");
      QueryResult result;
      result.version = service_.head()->id;
      result.body = std::string("tracing ") +
                    (line == "trace on" ? "on" : "off");
      return result;
    }
    if (starts_with(line, "trace last ")) {
      const long long n = parse_int(trim(line.substr(11)));
      if (n < 0) throw Error("trace last: count must be non-negative");
      QueryResult result;
      result.version = service_.head()->id;
      result.body = service_.trace_log().json(static_cast<size_t>(n));
      return result;
    }
    if (line == "healthz") {
      const Health health = service_.health();
      QueryResult result;
      result.ok = health.ok;
      result.version = service_.head()->id;
      result.body = health.detail;
      return result;
    }
    if (line == "diagnose" || starts_with(line, "diagnose ")) {
      std::vector<std::string> args = split_ws(line);
      bool json_output = false;
      size_t queries = 300;
      for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "json") {
          json_output = true;
          continue;
        }
        const long long n = parse_int(args[i]);
        if (n < 0) throw Error("diagnose: bad query count '" + args[i] + "'");
        queries = static_cast<size_t>(n);
      }
      const obs::DiagnosisReport report = service_.diagnose(queries);
      QueryResult result;
      result.version = service_.head()->id;
      if (json_output) {
        util::JsonWriter json;
        report.append_json(json);
        result.body = json.str();
      } else {
        result.body = report.str();
      }
      return result;
    }
    if (line == "flight" || starts_with(line, "flight ")) {
      obs::FlightRecorder* recorder = service_.flight_recorder();
      if (recorder == nullptr) {
        throw Error("no flight recorder attached (serve --flight-ms=N)");
      }
      std::vector<std::string> args = split_ws(line);
      long long window_ms = 0;  // 0 = everything retained
      long long max_samples = 0;
      if (args.size() > 1) window_ms = parse_int(args[1]);
      if (args.size() > 2) max_samples = parse_int(args[2]);
      if (window_ms < 0 || max_samples < 0) {
        throw Error("flight: usage is `flight [window-ms] [max-samples]`");
      }
      const uint64_t now = obs::now_ns();
      const uint64_t span = static_cast<uint64_t>(window_ms) * 1'000'000u;
      const uint64_t start =
          window_ms == 0 ? 0 : (span >= now ? 0 : now - span);
      QueryResult result;
      result.version = service_.head()->id;
      result.body = recorder->json(start, ~uint64_t{0},
                                   static_cast<size_t>(max_samples));
      return result;
    }
    if (line == "sync") {
      // Journal-seeded cloning, source side: stream the whole model at the
      // head version as one snapshot record (the journal's own payload
      // format), so a lagging or brand-new peer can `seed` itself to this
      // service's exact state and version id.
      const VersionHandle head = service_.head();
      QueryResult result;
      result.version = head->id;
      result.body = encode_snapshot_record(head->id, *head->snapshot);
      return result;
    }
    if (line == "shutdown") {
      shutdown_requested_ = true;
      QueryResult result;
      result.version = service_.head()->id;
      result.body = "shutting down";
      return result;
    }
    if (starts_with(line, "commit ") || line == "commit") {
      obs::Trace trace(tag.id != 0 ? tag.id : obs::next_trace_id());
      const CommitResult commit = service_.commit_text(
          line.substr(6), tag.traced ? &trace : nullptr);
      QueryResult result;
      result.version = commit.version;
      std::ostringstream body;
      body << "committed version " << commit.version << " \""
           << commit.description << "\" fib_changes " << commit.fib_changes
           << " reach_changes " << commit.reach_changes
           << (commit.semantically_empty ? " (no semantic effect)" : "");
      result.body = body.str();
      if (tag.traced) {
        result.trace = trace.encode();
        service_.trace_log().record(std::move(trace));
      }
      return result;
    }
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    return failed;
  }
  return service_.query(std::string(trim(request)));
}

QueryResult ServerSession::handle_seed(const std::string& payload) {
  QueryResult result;
  try {
    const JournalRecord record = decode_record(payload);
    if (record.kind != JournalRecord::Kind::kSnapshot) {
      throw Error("seed: payload is not a snapshot record");
    }
    const uint64_t head =
        service_.install_snapshot(record.snapshot, record.version);
    result.version = head;
    result.body = head == record.version
                      ? "seeded at version " + std::to_string(head)
                      : "already at version " + std::to_string(head);
  } catch (const std::exception& e) {
    result.ok = false;
    result.body = e.what();
  }
  return result;
}

void ServerSession::run() {
  char buffer[4096];
  try {
    for (;;) {
      const size_t count = transport_.recv(buffer, sizeof(buffer));
      if (count == 0) break;  // peer closed
      decoder_.feed(std::string_view(buffer, count));
      while (auto request = decoder_.next()) {
        QueryResult result = handle(*request);
        std::string payload = encode_response(result);
        if (payload.size() > kMaxFramePayload) {
          // Degrade to an error for this request rather than letting the
          // frame check below kill the whole session.
          result.ok = false;
          result.body = "response too large (" +
                        std::to_string(payload.size()) + " bytes)";
          payload = encode_response(result);
        }
        transport_.send(encode_frame(payload));
        if (shutdown_requested_) return;
      }
    }
  } catch (const std::exception& e) {
    // Protocol violation or transport failure: drop the session, keep the
    // service (and other sessions) alive.
    DNA_WARN("session terminated: " << e.what());
  }
}

QueryResult ServiceClient::request(const std::string& line) {
  transport_.send(encode_frame(line));
  char buffer[4096];
  for (;;) {
    if (auto payload = decoder_.next()) return decode_response(*payload);
    const size_t count = transport_.recv(buffer, sizeof(buffer));
    if (count == 0) throw Error("connection closed before response");
    decoder_.feed(std::string_view(buffer, count));
  }
}

}  // namespace dna::service
