#include "service/session.h"

#include <sstream>

#include "util/error.h"
#include "util/logging.h"
#include "util/strings.h"

namespace dna::service {

QueryResult ServerSession::handle(const std::string& request) {
  const std::string line(trim(request));
  try {
    if (line == "metrics") {
      QueryResult result;
      result.version = service_.head()->id;
      result.body = service_.metrics().str();
      return result;
    }
    if (line == "shutdown") {
      shutdown_requested_ = true;
      QueryResult result;
      result.version = service_.head()->id;
      result.body = "shutting down";
      return result;
    }
    if (starts_with(line, "commit ") || line == "commit") {
      const CommitResult commit = service_.commit_text(line.substr(6));
      QueryResult result;
      result.version = commit.version;
      std::ostringstream body;
      body << "committed version " << commit.version << " \""
           << commit.description << "\" fib_changes " << commit.fib_changes
           << " reach_changes " << commit.reach_changes
           << (commit.semantically_empty ? " (no semantic effect)" : "");
      result.body = body.str();
      return result;
    }
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    return failed;
  }
  return service_.query(line);
}

void ServerSession::run() {
  char buffer[4096];
  try {
    for (;;) {
      const size_t count = transport_.recv(buffer, sizeof(buffer));
      if (count == 0) break;  // peer closed
      decoder_.feed(std::string_view(buffer, count));
      while (auto request = decoder_.next()) {
        QueryResult result = handle(*request);
        std::string payload = encode_response(result);
        if (payload.size() > kMaxFramePayload) {
          // Degrade to an error for this request rather than letting the
          // frame check below kill the whole session.
          result.ok = false;
          result.body = "response too large (" +
                        std::to_string(payload.size()) + " bytes)";
          payload = encode_response(result);
        }
        transport_.send(encode_frame(payload));
        if (shutdown_requested_) return;
      }
    }
  } catch (const std::exception& e) {
    // Protocol violation or transport failure: drop the session, keep the
    // service (and other sessions) alive.
    DNA_WARN("session terminated: " << e.what());
  }
}

QueryResult ServiceClient::request(const std::string& line) {
  transport_.send(encode_frame(line));
  char buffer[4096];
  for (;;) {
    if (auto payload = decoder_.next()) return decode_response(*payload);
    const size_t count = transport_.recv(buffer, sizeof(buffer));
    if (count == 0) throw Error("connection closed before response");
    decoder_.feed(std::string_view(buffer, count));
  }
}

}  // namespace dna::service
