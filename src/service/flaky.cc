#include "service/flaky.h"

#include <chrono>
#include <thread>

#include "util/error.h"

namespace dna::service {

void FlakyTransport::fail(const char* what) {
  dead_ = true;
  // The peer must see a clean connection loss (like a killed process), not
  // a silent stall: abort tears both directions down, unblocking any
  // reader.
  inner_->abort();
  throw Error(std::string("flaky transport: injected ") + what);
}

void FlakyTransport::maybe_delay() {
  if (options_.delay_us == 0 || !rng_.chance(options_.delay_chance)) return;
  std::this_thread::sleep_for(std::chrono::microseconds(options_.delay_us));
}

void FlakyTransport::send(std::string_view bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_) throw Error("flaky transport: link is down");
    maybe_delay();
    if (options_.fail_after_bytes > 0 &&
        sent_ + bytes.size() > options_.fail_after_bytes) {
      // Deliver the prefix that fits under the threshold, then die: the
      // peer holds a torn frame, exactly as if the process was killed
      // mid-write.
      const size_t prefix = options_.fail_after_bytes - sent_;
      if (prefix > 0) inner_->send(bytes.substr(0, prefix));
      sent_ = options_.fail_after_bytes;
      fail("failure mid-send");
    }
    if (rng_.chance(options_.send_drop_chance)) fail("send drop");
    sent_ += bytes.size();
  }
  inner_->send(bytes);
}

size_t FlakyTransport::recv(char* buffer, size_t max) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (dead_) return 0;  // torn link reads as end-of-stream
    maybe_delay();
    if (rng_.chance(options_.recv_drop_chance)) fail("recv drop");
  }
  return inner_->recv(buffer, max);
}

void FlakyTransport::close_send() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) return;
  inner_->close_send();
}

void FlakyTransport::abort() {
  // No lock: abort must be callable from another thread while send/recv
  // blocks inside the inner transport (the Transport contract).
  inner_->abort();
}

size_t FlakyTransport::bytes_sent() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sent_;
}

bool FlakyTransport::fault_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_;
}

std::unique_ptr<Transport> make_flaky(std::unique_ptr<Transport> inner,
                                      FlakyOptions options) {
  return std::make_unique<FlakyTransport>(std::move(inner), options);
}

}  // namespace dna::service
