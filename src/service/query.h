// The query language of the long-lived service.
//
// Reader queries are single text lines, parsed once at the front door and
// evaluated against one immutable Version on a worker's engine clone:
//
//   version                              current version id + provenance
//   hash                                 deterministic snapshot digest
//   reach <src-node> <dst-ip>            is dst-ip delivered from src?
//   paths <src-node> <dst-ip>            concrete forwarding paths
//   check <invariant...>                 evaluate one invariant, e.g.
//       check reachable r0 r3 172.31.1.0/24
//       check isolated r0 r5 10.0.0.0/8
//       check loopfree [prefix]
//       check blackholefree r0 [prefix]
//       check waypoint r0 r5 fw0 0.0.0.0/0
//   whatif <change...>                   blast radius of a candidate change
//                                        (evaluated, never committed)
//   rank [sweep]                         ranked keystone table over a risk
//                                        sweep (analytics/risk.h) — which
//                                        elements move the most reachability
//   risk [sweep]                         the full risk report: keystones,
//                                        blast-radius histogram, fragile vs
//                                        robust invariants
//   risk diff <v1> <v2> [sweep]          differential risk between two live
//                                        versions: log2 fold-change per
//                                        element, enriched/depleted/stable
//
// The optional [sweep] is one token (default `links`):
//   links | costs:<c> | node:<name> | random:<n>[:<seed>]
// Risk answers are JSON bodies, memoized per (verb, sweep-hash, version) by
// the service's RiskStore; like every query they are pure functions of
// (query, version), so shards and monoliths answer byte-identically.
//
// A query line may be prefixed by modifiers:
//
//   trace:<hex-id>|trace:auto            trace this request: the response
//                                        carries per-leg spans (obs/trace.h)
//                                        on its status line; `auto` lets
//                                        the server pick the id. Must be
//                                        the first token; the router uses
//                                        it to stitch shard spans into one
//                                        deployment-wide trace.
//
// followed by, in any order:
//
//   @<id>                                pin the query to live version <id>
//                                        instead of the head (time-travel
//                                        debugging; the store must still
//                                        hold the version — see version.h)
//   part <i>/<n>                         evaluate as partition i of an
//                                        n-way topology-hash split (see
//                                        shard/partition.h). Scopes
//                                        network-global checks (loopfree)
//                                        to sources owned by partition i;
//                                        the shard router's scatter/gather
//                                        ANDs the per-partition verdicts.
//
// Change mini-language (whatif above, and the session layer's `commit`):
// steps joined by ';', each one of
//
//   fail_link <id> | recover_link <id> | link_cost <id> <cost>
//   acl_block <node> <dst-prefix> | announce <node> <prefix>
//   withdraw <node> <prefix> | static_route <node> <prefix> <next-hop>
#pragma once

#include <cstdint>
#include <string>

#include "core/change.h"
#include "core/engine.h"
#include "core/invariants.h"
#include "service/version.h"
#include "util/rng.h"

namespace dna::service {

enum class QueryKind {
  kVersion,
  kHash,
  kReach,
  kPaths,
  kCheck,
  kWhatIf,
  kRank,
  kRisk,
  kRiskDiff
};

struct Query {
  QueryKind kind = QueryKind::kVersion;
  std::string text;  // the original request line

  std::string src;            // reach / paths
  Ipv4Addr dst;               // reach / paths
  core::Invariant invariant;  // check
  core::ChangePlan plan{""};  // whatif
  /// rank / risk: the canonical sweep token (analytics::parse_sweep's
  /// str()), so equivalent spellings share one memo entry.
  std::string sweep;
  /// risk diff: the two versions compared.
  uint64_t diff_before = 0;
  uint64_t diff_after = 0;

  /// Version pin (`@<id>` modifier); 0 = the head at submission time.
  uint64_t pinned_version = 0;
  /// Partition scope (`part i/n` modifier); count 1 = the whole network.
  uint32_t scope_index = 0;
  uint32_t scope_count = 1;
  /// Tracing (`trace:<id>` modifier); id 0 = let the server pick one.
  bool traced = false;
  uint64_t trace_id = 0;
};

/// The leading `trace:` tag of a request line, split off before command
/// matching: `rest` receives the line with the tag removed (trimmed).
/// Shared by parse_query, the sessions, and the router, so they agree on
/// what counts as a traced request.
struct TraceTag {
  bool traced = false;
  uint64_t id = 0;  // 0 = auto (receiver picks)
};
TraceTag split_trace_tag(const std::string& line, std::string* rest);

/// Parses one request line. Throws dna::Error with a caller-facing message
/// on malformed input.
Query parse_query(const std::string& line);

/// Parses the change mini-language above into an applicable plan.
/// Throws dna::Error on malformed input. The returned plan's description()
/// is the trimmed input text — parse(description()) reproduces the plan,
/// the invariant journal replay rests on.
core::ChangePlan parse_change_plan(const std::string& text);

/// A seeded random change-plan line (1..max_steps steps) valid for `base`:
/// every emitted text parses, applies to `base` without throwing, and
/// round-trips through parse_change_plan unchanged. The workload generator
/// for the journal/replay property tests and the service benches.
std::string random_change_text(const topo::Snapshot& base, Rng& rng,
                               size_t max_steps = 3);

/// A deterministic digest of a snapshot's canonical text form. Two equal
/// snapshots hash equal on every platform — the torn-read detector used by
/// the concurrency tests and the `hash` query.
uint64_t snapshot_digest(const topo::Snapshot& snapshot);

struct QueryResult {
  bool ok = true;
  uint64_t version = 0;  // version the query was evaluated against
  std::string body;      // rendered answer (or error detail when !ok)
  /// Encoded obs::Trace spans for a traced request; empty otherwise.
  /// Rides the response status line, so `body` stays byte-identical to an
  /// untraced evaluation.
  std::string trace;
};

/// Evaluates one parsed query against `version`. `engine` must already be
/// advanced to *version.snapshot (the service's dispatcher guarantees it);
/// it is only mutated by kWhatIf, which previews and rewinds.
QueryResult eval_query(const Query& query, const Version& version,
                       core::DnaEngine& engine);

}  // namespace dna::service
