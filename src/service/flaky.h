// FlakyTransport: a seeded fault-injection decorator over any Transport.
//
// Wraps a real transport and misbehaves on a deterministic schedule —
// drop the link on a send or recv with a configured probability, delay
// operations, or hard-fail after exactly k bytes have been sent (the
// mid-commit torn-connection case). Once any injected fault fires the
// link is dead: the inner transport is aborted (so the peer observes a
// clean connection loss, exactly like a killed process) and every later
// operation throws.
//
// Shared by tests/test_shard.cc and tests/test_net.cc: the router's
// failover must keep answers byte-identical to a monolith, and commits
// must stay exactly-once, no matter where in the byte stream the fault
// lands. Seeded (Rng) so every failure a test finds is replayable.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "service/transport.h"
#include "util/rng.h"

namespace dna::service {

struct FlakyOptions {
  /// Deterministic schedule seed.
  uint64_t seed = 1;
  /// Probability that any given send() tears the link down.
  double send_drop_chance = 0;
  /// Probability that any given recv() tears the link down.
  double recv_drop_chance = 0;
  /// With `delay_chance`, sleep `delay_us` microseconds before an
  /// operation — latency injection without killing the link.
  double delay_chance = 0;
  uint64_t delay_us = 0;
  /// Hard failure once this many cumulative bytes have been sent; the
  /// send that crosses the threshold delivers the prefix up to it and
  /// then fails — a mid-frame torn write. 0 disables.
  size_t fail_after_bytes = 0;
};

class FlakyTransport : public Transport {
 public:
  FlakyTransport(std::unique_ptr<Transport> inner, FlakyOptions options)
      : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

  void send(std::string_view bytes) override;
  size_t recv(char* buffer, size_t max) override;
  void close_send() override;
  void abort() override;

  /// Cumulative bytes handed to the inner send before any fault.
  size_t bytes_sent() const;
  /// True once an injected fault has fired (the link is dead for good).
  bool fault_fired() const;

 private:
  /// Marks the link dead, aborts the inner transport, and throws.
  [[noreturn]] void fail(const char* what);
  void maybe_delay();

  std::unique_ptr<Transport> inner_;
  FlakyOptions options_;
  mutable std::mutex mutex_;  // rng + counters; send/recv race by design
  Rng rng_;
  size_t sent_ = 0;
  bool dead_ = false;
};

/// Convenience factory for dialers: wrap(inner, options).
std::unique_ptr<Transport> make_flaky(std::unique_ptr<Transport> inner,
                                      FlakyOptions options);

}  // namespace dna::service
