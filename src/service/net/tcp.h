// TCP transport for the query service: the scale-out sibling of the
// unix-domain socket path in transport.h.
//
// The wire format is unchanged — the same framed protocol (protocol.h) runs
// over a TcpListener-accepted connection that the loopback and unix-domain
// transports carry, so a TCP deployment answers byte-identically to a local
// one (tests/test_net.cc asserts exactly that).
//
// Listeners bind to one address (default 127.0.0.1 — shard tiers talk over
// the host's loopback or a private fabric, never the open internet by
// default); port 0 asks the kernel for an ephemeral port, resolved via
// port() — how tests and benches run whole shard deployments in-process
// without port coordination.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "service/transport.h"

namespace dna::service {

/// A listening TCP socket. accept() blocks until a client connects or
/// close() is called (from any thread), after which it returns nullptr.
/// Accepted connections have TCP_NODELAY set — the protocol is
/// request/response and a 40 ms Nagle stall would dominate every query.
class TcpListener : public Listener {
 public:
  /// Binds and listens on `host:port`. Port 0 binds an ephemeral port
  /// (read it back with port()). Throws dna::Error on failure.
  explicit TcpListener(uint16_t port, const std::string& host = "127.0.0.1");
  ~TcpListener() override;

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  std::unique_ptr<Transport> accept() override;
  void close() override;

  /// The actually bound port (resolves port 0 to the kernel's choice).
  uint16_t port() const { return port_; }
  const std::string& host() const { return host_; }

 private:
  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;
};

/// Connects to a serving TcpListener (TCP_NODELAY set). Throws dna::Error
/// on resolution or connection failure.
std::unique_ptr<Transport> connect_tcp(const std::string& host, uint16_t port);

/// An endpoint named on the command line: "host:port" (or ":port" / "port",
/// defaulting the host to 127.0.0.1).
struct HostPort {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// Parses "host:port", ":port" or a bare "port". Throws dna::Error on a
/// malformed or out-of-range port.
HostPort parse_hostport(const std::string& text);

}  // namespace dna::service
