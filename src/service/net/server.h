// A transport-agnostic serving loop: accept connections from a Listener,
// pump each one on its own thread, reap finished sessions, and tear
// everything down cleanly when one session requests shutdown (or the host
// calls stop()).
//
// Extracted from the dna_cli serve loop so every process role — monolithic
// server, shard, router — shares one accept/reap/evict implementation:
//
//   TcpListener listener(port);
//   SessionServer server(listener, [&](Transport& t) {
//     ServerSession session(service, t);
//     session.run();
//     return session.shutdown_requested();
//   });
//   server.run();   // blocks until shutdown is requested (or stop())
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/transport.h"

namespace dna::service {

class SessionServer {
 public:
  /// Serves one connection until it ends; returns true to stop the whole
  /// server (a session-level shutdown request). Runs on a per-connection
  /// thread; must not throw.
  using Handler = std::function<bool(Transport&)>;

  SessionServer(Listener& listener, Handler handler);
  /// stop()s and joins; safe when the server never ran.
  ~SessionServer();

  SessionServer(const SessionServer&) = delete;
  SessionServer& operator=(const SessionServer&) = delete;

  /// Accept loop: blocks until the listener closes (via a handler returning
  /// true, or stop()), then evicts still-connected sessions and joins them.
  void run();

  /// run() on a background thread — how in-process shard hosts serve.
  void start();

  /// Joins the background thread (blocks until serving ends) without
  /// closing anything — the "wait for shutdown" primitive.
  void join();

  /// Closes the listener and aborts live sessions; joins the background
  /// thread if start() was used. Idempotent, callable from any thread.
  void stop();

  /// Graceful drain: once the listener closes (a shutdown request, or an
  /// external close such as a SIGTERM handler), run() waits up to this
  /// long for in-flight sessions to finish on their own before aborting
  /// the stragglers. 0 (the default) evicts immediately — the historical
  /// behavior. Callable from any thread; stop() still aborts immediately.
  void set_drain_grace_ms(uint64_t ms) { drain_grace_ms_.store(ms); }

  /// True once some session requested shutdown (vs an external stop()).
  bool shutdown_requested() const { return shutdown_requested_.load(); }

 private:
  struct Connection {
    std::unique_ptr<Transport> transport;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// Joins (and drops) finished connections — all of them when `all`.
  void reap(bool all);

  Listener& listener_;
  Handler handler_;
  std::mutex mutex_;  // guards connections_
  std::vector<std::unique_ptr<Connection>> connections_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<uint64_t> drain_grace_ms_{0};
  std::thread background_;
};

}  // namespace dna::service
