#include "service/net/tcp.h"

#include <cstring>
#include <vector>

#include "util/error.h"
#include "util/strings.h"

#ifndef _WIN32
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace dna::service {

HostPort parse_hostport(const std::string& text) {
  HostPort result;
  const size_t colon = text.rfind(':');
  std::string port_text;
  if (colon == std::string::npos) {
    port_text = text;
  } else {
    if (colon > 0) result.host = text.substr(0, colon);
    port_text = text.substr(colon + 1);
  }
  const long long port = parse_int(port_text);
  if (port < 0 || port > 65535) {
    throw Error("bad port in endpoint: " + text);
  }
  result.port = static_cast<uint16_t>(port);
  return result;
}

#ifndef _WIN32

namespace {

void set_nodelay(int fd) {
  const int one = 1;
  // Best effort: a transport that works without the latency tweak beats an
  // error for an option some stacks reject.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Resolves host:port to IPv4 socket addresses (getaddrinfo handles both
/// dotted quads and names like "localhost").
std::vector<sockaddr_in> resolve(const std::string& host, uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* list = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &list);
  if (rc != 0) {
    throw Error("cannot resolve " + host + ": " + gai_strerror(rc));
  }
  std::vector<sockaddr_in> addrs;
  for (const addrinfo* ai = list; ai != nullptr; ai = ai->ai_next) {
    if (ai->ai_family == AF_INET &&
        ai->ai_addrlen == sizeof(sockaddr_in)) {
      sockaddr_in addr;
      std::memcpy(&addr, ai->ai_addr, sizeof(addr));
      addrs.push_back(addr);
    }
  }
  ::freeaddrinfo(list);
  if (addrs.empty()) throw Error("no IPv4 address for " + host);
  return addrs;
}

}  // namespace

TcpListener::TcpListener(uint16_t port, const std::string& host)
    : host_(host) {
  const sockaddr_in addr = resolve(host, port).front();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw Error("socket() failed: " + std::string(strerror(errno)));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  auto fail = [&](const std::string& what) {
    const std::string detail = strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error(what + "(" + host + ":" + std::to_string(port) +
                ") failed: " + detail);
  };
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    fail("bind");
  }
  if (::listen(fd_, 64) < 0) fail("listen");
  // Read the port back: resolves an ephemeral bind (port 0) to the actual
  // port, the handshake tests and in-process shard hosts depend on.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  close();
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<Transport> TcpListener::accept() {
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      set_nodelay(client);
      return make_fd_transport(client);
    }
    if (errno == EINTR) continue;
    return nullptr;  // listener shut down (or broken): stop serving
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    // shutdown() on a listening TCP socket is how a thread parked in
    // accept() gets unblocked on Linux (mirrors UnixListener::close); the
    // fd stays valid until destruction so no racing accept() touches a
    // stale fd.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

std::unique_ptr<Transport> connect_tcp(const std::string& host,
                                       uint16_t port) {
  std::string detail = "no address";
  for (const sockaddr_in& addr : resolve(host, port)) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw Error("socket() failed: " + std::string(strerror(errno)));
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      set_nodelay(fd);
      return make_fd_transport(fd);
    }
    detail = strerror(errno);
    ::close(fd);
  }
  throw Error("connect(" + host + ":" + std::to_string(port) +
              ") failed: " + detail);
}

#else  // _WIN32: mirror transport.cc — socket transports are POSIX-only.

TcpListener::TcpListener(uint16_t, const std::string&) {
  throw Error("TCP sockets are not available on this platform");
}
TcpListener::~TcpListener() = default;
std::unique_ptr<Transport> TcpListener::accept() { return nullptr; }
void TcpListener::close() {}
std::unique_ptr<Transport> connect_tcp(const std::string&, uint16_t) {
  throw Error("TCP sockets are not available on this platform");
}

#endif

}  // namespace dna::service
