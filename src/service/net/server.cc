#include "service/net/server.h"

#include <chrono>

namespace dna::service {

SessionServer::SessionServer(Listener& listener, Handler handler)
    : listener_(listener), handler_(std::move(handler)) {}

SessionServer::~SessionServer() { stop(); }

void SessionServer::reap(bool all) {
  std::vector<std::unique_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = connections_.begin(); it != connections_.end();) {
      if (all || (*it)->done.load()) {
        finished.push_back(std::move(*it));
        it = connections_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: a session thread may be inside its handler,
  // which could accept-side reap on another thread.
  for (const auto& connection : finished) connection->thread.join();
}

void SessionServer::run() {
  while (auto transport = listener_.accept()) {
    reap(/*all=*/false);
    auto connection = std::make_unique<Connection>();
    connection->transport = std::move(transport);
    Connection* raw = connection.get();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] {
      if (handler_(*raw->transport)) {
        shutdown_requested_.store(true);
        listener_.close();
      }
      raw->done.store(true);
    });
  }
  // Listener closed: drain first — give in-flight requests up to the
  // configured grace to finish on their own — then evict whatever is still
  // connected (an idle client must not be able to hang shutdown), and join
  // everything.
  const uint64_t grace_ms = drain_grace_ms_.load();
  if (grace_ms > 0) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(grace_ms);
    for (;;) {
      bool busy = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto& connection : connections_) {
          if (!connection->done.load()) busy = true;
        }
      }
      if (!busy || std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& connection : connections_) {
      connection->transport->abort();
    }
  }
  reap(/*all=*/true);
}

void SessionServer::start() {
  background_ = std::thread([this] { run(); });
}

void SessionServer::join() {
  if (background_.joinable()) background_.join();
}

void SessionServer::stop() {
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& connection : connections_) {
      connection->transport->abort();
    }
  }
  join();
}

}  // namespace dna::service
