// DnaService's risk-analytics path: sweeps on idle replicas, memoized by
// RiskStore (see risk_store.h for the caching story, analytics/risk.h for
// the aggregation). Split from service.cc because it is a whole query
// family, not a dispatch detail.
#include <memory>
#include <utility>
#include <vector>

#include "analytics/differential.h"
#include "analytics/risk.h"
#include "service/service.h"
#include "util/error.h"

namespace dna::service {

namespace {

/// The memo's verb tag: rank and risk render different bodies from the same
/// report, and diff keys on two versions.
char risk_verb(QueryKind kind) {
  switch (kind) {
    case QueryKind::kRank:
      return 'r';
    case QueryKind::kRiskDiff:
      return 'd';
    default:
      return 'k';
  }
}

/// Caps the rendered element/fragile arrays. Large fabrics have thousands
/// of elements and a quadratic host-invariant set; the counters in the body
/// still cover everything, and the cap keeps every answer well under the
/// framed protocol's payload limit.
constexpr size_t kRiskJsonTopK = 128;

}  // namespace

std::shared_ptr<const analytics::RiskReport> DnaService::risk_report_at(
    const analytics::SweepSpec& sweep, uint64_t spec_hash,
    const VersionHandle& version, core::DnaEngine* resident,
    bool* resident_dirty) {
  if (auto cached = risk_store_.report(spec_hash, version->id)) {
    ctr_risk_cache_hits_.add();
    return cached;
  }

  // Cold: run the sweep. The serving replica is already verified at the
  // right version for the common case; a diff's other side gets a scratch
  // engine (never advance a replica sideways off the version stream).
  const uint64_t start_ns = obs::now_ns();
  const analytics::SweepPlan plan =
      analytics::plan_sweep(sweep, *version->snapshot);
  std::unique_ptr<core::DnaEngine> scratch;
  core::DnaEngine* engine = resident;
  if (engine == nullptr) {
    scratch = make_engine(*version->snapshot);
    engine = scratch.get();
  }

  std::vector<scenario::ScenarioResult> results(plan.specs.size());
  for (size_t i = 0; i < plan.specs.size(); ++i) {
    // Same preview-and-rewind discipline as a what-if: a throw mid-preview
    // leaves the engine mid-advance. On the resident replica that must
    // reach the dispatcher (which resets it); a scratch engine just dies
    // with the exception.
    if (resident_dirty != nullptr && engine == resident) {
      *resident_dirty = true;
    }
    core::NetworkDiff diff = engine->preview(
        plan.specs[i].plan.apply(*version->snapshot), core::Mode::kDifferential);
    if (resident_dirty != nullptr && engine == resident) {
      *resident_dirty = false;
    }
    results[i] = scenario::summarize_diff(diff);
    results[i].index = i;
    results[i].name = plan.specs[i].name;
  }

  std::vector<std::string> descriptions;
  descriptions.reserve(invariants_.size());
  for (const core::Invariant& invariant : invariants_) {
    descriptions.push_back(invariant.describe());
  }
  auto report = std::make_shared<analytics::RiskReport>(
      analytics::analyze(plan, results, descriptions));
  report->sweep = sweep.str();
  report->version = version->id;

  ctr_risk_sweeps_.add();
  hist_risk_sweep_.observe(obs::now_ns() - start_ns);
  risk_store_.put_report(spec_hash, version->id, report);
  return report;
}

QueryResult DnaService::eval_risk(const Query& query,
                                  const VersionHandle& version,
                                  core::DnaEngine& engine) {
  QueryResult result;
  result.version = version->id;

  // query.sweep is already the canonical token (parse_query canonicalizes),
  // so equivalent spellings share a spec-hash — and re-parsing cannot fail.
  const analytics::SweepSpec sweep = analytics::parse_sweep(query.sweep);
  const uint64_t spec_hash = sweep.hash();
  const char verb = risk_verb(query.kind);
  const bool is_diff = query.kind == QueryKind::kRiskDiff;
  const uint64_t key_version = is_diff ? query.diff_before : version->id;
  const uint64_t key_version2 = is_diff ? query.diff_after : 0;

  if (auto hit =
          risk_store_.answer(verb, spec_hash, key_version, key_version2)) {
    ctr_risk_cache_hits_.add();
    result.body = std::move(*hit);
    return result;
  }

  // eval_query's dirty protocol: true only while the *serving replica* may
  // be mid-advance. Failures with the flag false (unknown sweep node, a
  // retired diff version, a scratch-engine throw) fail just this query.
  bool engine_dirty = false;
  try {
    std::string body;
    if (is_diff) {
      const auto resolve = [&](uint64_t id) {
        VersionHandle handle = store_.find(id);
        if (!handle) {
          throw Error("version " + std::to_string(id) +
                      " is not live (never published, or already retired)");
        }
        return handle;
      };
      const VersionHandle before = resolve(query.diff_before);
      const VersionHandle after = resolve(query.diff_after);
      const auto resident = [&](const VersionHandle& target) {
        return target->id == version->id ? &engine : nullptr;
      };
      const auto report_before = risk_report_at(
          sweep, spec_hash, before, resident(before), &engine_dirty);
      const auto report_after = risk_report_at(
          sweep, spec_hash, after, resident(after), &engine_dirty);
      body = analytics::diff_risk(*report_before, *report_after)
                 .to_json(kRiskJsonTopK);
    } else {
      const auto report =
          risk_report_at(sweep, spec_hash, version, &engine, &engine_dirty);
      body = query.kind == QueryKind::kRank
                 ? report->to_rank_json(kRiskJsonTopK)
                 : report->to_json(kRiskJsonTopK);
    }
    risk_store_.put_answer(verb, spec_hash, key_version, key_version2, body);
    result.body = std::move(body);
  } catch (const std::exception& e) {
    if (engine_dirty) throw;
    result.ok = false;
    result.body = e.what();
  }
  return result;
}

}  // namespace dna::service
