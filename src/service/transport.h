// Byte-stream transports for the query service.
//
// A Transport is a blocking, bidirectional byte stream; the session layer
// (session.h) runs the same framed protocol over any of them:
//
//  * LoopbackChannel — an in-memory duplex pair. Zero-dependency, used by
//    tests, benches, and in-process embedding; also the reference
//    implementation the socket transport must be indistinguishable from.
//
//  * UnixListener / connect_unix — unix-domain stream sockets, the
//    cross-process path behind `dna_cli serve` / `dna_cli query`.
//
//  * TcpListener / connect_tcp (net/tcp.h) — TCP sockets, the scale-out
//    path behind `dna_cli shard-serve` / `dna_cli route`. Both socket
//    listeners implement the Listener interface below, so the serving loop
//    (net/server.h) is transport-agnostic.
#pragma once

#include <memory>
#include <string>
#include <string_view>

namespace dna::service {

class Transport {
 public:
  virtual ~Transport() = default;

  /// Writes all of `bytes` (blocking). Throws dna::Error if the peer is
  /// gone.
  virtual void send(std::string_view bytes) = 0;

  /// Blocking read of up to `max` bytes into `buffer`; returns the count,
  /// or 0 once the peer has closed its sending side and the stream is
  /// drained.
  virtual size_t recv(char* buffer, size_t max) = 0;

  /// Signals end-of-stream to the peer. Receiving still works.
  virtual void close_send() = 0;

  /// Tears the stream down in both directions: a blocked recv() (on either
  /// side) unblocks and reports end-of-stream. Safe to call from a thread
  /// other than the one pumping the transport — how a server evicts idle
  /// sessions at shutdown.
  virtual void abort() = 0;
};

/// An in-memory duplex channel: two endpoints, each seeing the bytes the
/// other sends. Both endpoints must outlive any thread using them; the
/// channel owns both.
class LoopbackChannel {
 public:
  LoopbackChannel();
  ~LoopbackChannel();

  Transport& client() { return *client_; }
  Transport& server() { return *server_; }

 private:
  class ByteQueue;
  class Endpoint;
  std::shared_ptr<ByteQueue> to_server_;
  std::shared_ptr<ByteQueue> to_client_;
  std::unique_ptr<Transport> client_;
  std::unique_ptr<Transport> server_;
};

/// Something that accepts Transport connections. accept() blocks until a
/// client connects or close() is called (from any thread), after which it
/// returns nullptr — the serving loop's stop signal.
class Listener {
 public:
  virtual ~Listener() = default;
  virtual std::unique_ptr<Transport> accept() = 0;
  virtual void close() = 0;
};

/// Wraps a connected stream-socket fd in a Transport (takes ownership of
/// the fd). Shared by the unix-domain and TCP transports.
std::unique_ptr<Transport> make_fd_transport(int fd);

/// A listening unix-domain socket.
class UnixListener : public Listener {
 public:
  /// Binds and listens on `path`, replacing a stale socket file if one
  /// exists. Throws dna::Error on failure.
  explicit UnixListener(const std::string& path);
  ~UnixListener();

  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  std::unique_ptr<Transport> accept() override;
  void close() override;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
};

/// Connects to a serving UnixListener. Throws dna::Error on failure.
std::unique_ptr<Transport> connect_unix(const std::string& path);

}  // namespace dna::service
