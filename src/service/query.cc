#include "service/query.h"

#include <cstdio>
#include <limits>
#include <sstream>

#include "analytics/risk.h"
#include "core/paths.h"
#include "dataplane/properties.h"
#include "scenario/report.h"
#include "service/shard/partition.h"
#include "topo/textio.h"
#include "util/error.h"
#include "util/strings.h"

namespace dna::service {

namespace {

Ipv4Addr parse_addr(const std::string& text) {
  auto addr = Ipv4Addr::parse(text);
  if (!addr) throw Error("bad address: " + text);
  return *addr;
}

Ipv4Prefix parse_prefix(const std::string& text) {
  auto prefix = Ipv4Prefix::parse(text);
  if (!prefix) throw Error("bad prefix: " + text);
  return *prefix;
}

/// Strict non-negative integer parse for link indices and costs. Rejects
/// values that do not fit an int — truncating one would silently commit a
/// different change than the one requested.
int parse_count(const std::string& text) {
  const long long value = parse_int(text);
  if (value < 0 || value > std::numeric_limits<int>::max()) {
    throw Error("bad number: " + text);
  }
  return static_cast<int>(value);
}

core::Invariant parse_invariant(const std::vector<std::string>& tokens) {
  if (tokens.empty()) throw Error("check needs an invariant kind");
  core::Invariant invariant;
  const std::string& kind = tokens[0];
  // Each arm consumes its named operands; a trailing prefix is optional and
  // defaults to all traffic (0.0.0.0/0).
  auto want = [&](size_t required, size_t with_prefix) {
    if (tokens.size() != required && tokens.size() != with_prefix) {
      throw Error("bad check " + kind + " arity");
    }
  };
  if (kind == "reachable" || kind == "isolated") {
    want(3, 4);
    invariant.kind = kind == "reachable" ? core::Invariant::Kind::kReachable
                                         : core::Invariant::Kind::kIsolated;
    invariant.src = tokens[1];
    invariant.dst = tokens[2];
    if (tokens.size() == 4) invariant.traffic = parse_prefix(tokens[3]);
  } else if (kind == "loopfree") {
    want(1, 2);
    invariant.kind = core::Invariant::Kind::kLoopFree;
    if (tokens.size() == 2) invariant.traffic = parse_prefix(tokens[1]);
  } else if (kind == "blackholefree") {
    want(2, 3);
    invariant.kind = core::Invariant::Kind::kBlackholeFree;
    invariant.src = tokens[1];
    if (tokens.size() == 3) invariant.traffic = parse_prefix(tokens[2]);
  } else if (kind == "waypoint") {
    want(4, 5);
    invariant.kind = core::Invariant::Kind::kWaypoint;
    invariant.src = tokens[1];
    invariant.dst = tokens[2];
    invariant.waypoint = tokens[3];
    if (tokens.size() == 5) invariant.traffic = parse_prefix(tokens[4]);
  } else {
    throw Error("unknown invariant kind: " + kind);
  }
  return invariant;
}

}  // namespace

core::ChangePlan parse_change_plan(const std::string& text) {
  core::ChangePlan plan(std::string(trim(text)));
  size_t steps = 0;
  for (const std::string& step_text : split(text, ';')) {
    const std::vector<std::string> tokens = split_ws(step_text);
    if (tokens.empty()) continue;
    const std::string& op = tokens[0];
    auto want = [&](size_t arity) {
      if (tokens.size() != arity + 1) {
        throw Error("bad change step arity: " + std::string(trim(step_text)));
      }
    };
    core::ChangePlan step("");
    if (op == "fail_link") {
      want(1);
      step = core::ChangePlan::link_failure(parse_count(tokens[1]));
    } else if (op == "recover_link") {
      want(1);
      step = core::ChangePlan::link_recovery(parse_count(tokens[1]));
    } else if (op == "link_cost") {
      want(2);
      step = core::ChangePlan::link_cost(parse_count(tokens[1]),
                                         parse_count(tokens[2]));
    } else if (op == "acl_block") {
      want(2);
      step = core::ChangePlan::acl_block(tokens[1], parse_prefix(tokens[2]));
    } else if (op == "announce") {
      want(2);
      step = core::ChangePlan::announce(tokens[1], parse_prefix(tokens[2]));
    } else if (op == "withdraw") {
      want(2);
      step = core::ChangePlan::withdraw(tokens[1], parse_prefix(tokens[2]));
    } else if (op == "static_route") {
      want(3);
      step = core::ChangePlan::static_route(tokens[1], parse_prefix(tokens[2]),
                                            parse_addr(tokens[3]));
    } else {
      throw Error("unknown change step: " + op);
    }
    plan.add([step](topo::Snapshot snapshot) {
      return step.apply(std::move(snapshot));
    });
    ++steps;
  }
  if (steps == 0) throw Error("empty change plan");
  return plan;
}

std::string random_change_text(const topo::Snapshot& base, Rng& rng,
                               size_t max_steps) {
  const size_t num_links = base.topology.num_links();
  const size_t num_nodes = base.topology.num_nodes();
  DNA_CHECK(num_links > 0 && num_nodes > 0 && max_steps > 0);
  auto link = [&] { return std::to_string(rng.below(num_links)); };
  auto node = [&] {
    return base.topology.node_name(
        static_cast<topo::NodeId>(rng.below(num_nodes)));
  };
  // Drawn from a small pool so announce/withdraw pairs and repeated ACLs
  // collide often enough to exercise cancellation and no-op commits.
  auto prefix = [&] {
    return "203.0." + std::to_string(100 + rng.below(8)) + ".0/24";
  };
  std::vector<std::string> steps;
  const size_t count = 1 + rng.below(max_steps);
  for (size_t i = 0; i < count; ++i) {
    switch (rng.below(7)) {
      case 0:
        steps.push_back("fail_link " + link());
        break;
      case 1:
        steps.push_back("recover_link " + link());
        break;
      case 2:
        steps.push_back("link_cost " + link() + " " +
                        std::to_string(1 + rng.below(100)));
        break;
      case 3:
        steps.push_back("acl_block " + node() + " " + prefix());
        break;
      case 4:
        steps.push_back("announce " + node() + " " + prefix());
        break;
      case 5:
        steps.push_back("withdraw " + node() + " " + prefix());
        break;
      default:
        steps.push_back("static_route " + node() + " " + prefix() + " 10." +
                        std::to_string(rng.below(256)) + "." +
                        std::to_string(rng.below(256)) + ".1");
        break;
    }
  }
  return join(steps, "; ");
}

TraceTag split_trace_tag(const std::string& line, std::string* rest) {
  TraceTag tag;
  const std::string_view trimmed = trim(line);
  constexpr std::string_view kPrefix = "trace:";
  if (trimmed.substr(0, kPrefix.size()) == kPrefix) {
    const size_t end = trimmed.find_first_of(" \t");
    const std::string_view id_text =
        trimmed.substr(kPrefix.size(),
                       (end == std::string_view::npos ? trimmed.size() : end) -
                           kPrefix.size());
    tag.traced = true;
    if (!id_text.empty() && id_text != "auto") {
      // Hex trace id; malformed ids fail the whole line loudly rather
      // than silently starting an unrelated trace.
      uint64_t id = 0;
      for (const char c : id_text) {
        int digit;
        if (c >= '0' && c <= '9') {
          digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
          digit = c - 'a' + 10;
        } else if (c >= 'A' && c <= 'F') {
          digit = c - 'A' + 10;
        } else {
          throw Error("bad trace id: " + std::string(id_text));
        }
        id = (id << 4) | static_cast<uint64_t>(digit);
      }
      tag.id = id;
    }
    *rest = std::string(
        trim(end == std::string_view::npos ? "" : trimmed.substr(end)));
  } else {
    *rest = std::string(trimmed);
  }
  return tag;
}

Query parse_query(const std::string& raw_line) {
  std::string line;
  const TraceTag tag = split_trace_tag(raw_line, &line);
  const std::vector<std::string> tokens = split_ws(line);
  Query query;
  query.text = std::string(trim(line));
  query.traced = tag.traced;
  query.trace_id = tag.id;

  // Leading modifiers (any order, each at most meaningful once): `@<id>`
  // pins the version, `part <i>/<n>` scopes the evaluation to one
  // partition of the topology-hash split.
  size_t pos = 0;
  while (pos < tokens.size()) {
    const std::string& token = tokens[pos];
    if (token.size() > 1 && token[0] == '@') {
      const long long id = parse_int(token.substr(1));
      if (id <= 0) throw Error("bad version pin: " + token);
      query.pinned_version = static_cast<uint64_t>(id);
      ++pos;
      continue;
    }
    if (token == "part") {
      if (pos + 1 >= tokens.size()) throw Error("part needs <i>/<n>");
      const std::string& spec = tokens[pos + 1];
      const size_t slash = spec.find('/');
      if (slash == std::string::npos) {
        throw Error("bad partition scope: " + spec);
      }
      const long long index = parse_int(spec.substr(0, slash));
      const long long count = parse_int(spec.substr(slash + 1));
      if (count < 1 || index < 0 || index >= count ||
          count > std::numeric_limits<uint32_t>::max()) {
        throw Error("bad partition scope: " + spec);
      }
      query.scope_index = static_cast<uint32_t>(index);
      query.scope_count = static_cast<uint32_t>(count);
      pos += 2;
      continue;
    }
    break;
  }

  if (pos >= tokens.size()) throw Error("empty query");
  const std::string& verb = tokens[pos];
  const size_t arity = tokens.size() - pos;  // verb + operands
  if (verb == "version" && arity == 1) {
    query.kind = QueryKind::kVersion;
  } else if (verb == "hash" && arity == 1) {
    query.kind = QueryKind::kHash;
  } else if (verb == "reach" && arity == 3) {
    query.kind = QueryKind::kReach;
    query.src = tokens[pos + 1];
    query.dst = parse_addr(tokens[pos + 2]);
  } else if (verb == "paths" && arity == 3) {
    query.kind = QueryKind::kPaths;
    query.src = tokens[pos + 1];
    query.dst = parse_addr(tokens[pos + 2]);
  } else if (verb == "check") {
    query.kind = QueryKind::kCheck;
    query.invariant = parse_invariant(
        std::vector<std::string>(tokens.begin() + static_cast<long>(pos) + 1,
                                 tokens.end()));
  } else if (verb == "whatif") {
    query.kind = QueryKind::kWhatIf;
    const size_t at = line.find("whatif");
    query.plan = parse_change_plan(line.substr(at + 6));
  } else if (verb == "rank" && (arity == 1 || arity == 2)) {
    query.kind = QueryKind::kRank;
    query.sweep =
        analytics::parse_sweep(arity == 2 ? tokens[pos + 1] : "links").str();
  } else if (verb == "risk") {
    if (arity >= 2 && tokens[pos + 1] == "diff") {
      if (arity != 4 && arity != 5) {
        throw Error("risk diff needs <before> <after> [sweep]");
      }
      query.kind = QueryKind::kRiskDiff;
      const long long before = parse_int(tokens[pos + 2]);
      const long long after = parse_int(tokens[pos + 3]);
      if (before <= 0 || after <= 0) {
        throw Error("bad risk diff versions: " + tokens[pos + 2] + " " +
                    tokens[pos + 3]);
      }
      query.diff_before = static_cast<uint64_t>(before);
      query.diff_after = static_cast<uint64_t>(after);
      query.sweep =
          analytics::parse_sweep(arity == 5 ? tokens[pos + 4] : "links").str();
    } else if (arity == 1 || arity == 2) {
      query.kind = QueryKind::kRisk;
      query.sweep =
          analytics::parse_sweep(arity == 2 ? tokens[pos + 1] : "links").str();
    } else {
      throw Error("risk takes [sweep] or diff <before> <after> [sweep]");
    }
  } else {
    throw Error("bad query: " + query.text);
  }
  return query;
}

uint64_t snapshot_digest(const topo::Snapshot& snapshot) {
  // FNV-1a over the canonical text form: stable across platforms and
  // standard-library implementations, unlike std::hash.
  const topo::SnapshotText text = topo::print_snapshot(snapshot);
  uint64_t digest = 1469598103934665603ULL;
  for (const std::string* part : {&text.topology, &text.configs}) {
    for (const char c : *part) {
      digest ^= static_cast<unsigned char>(c);
      digest *= 1099511628211ULL;
    }
  }
  return digest;
}

QueryResult eval_query(const Query& query, const Version& version,
                       core::DnaEngine& engine) {
  QueryResult result;
  result.version = version.id;
  std::ostringstream body;
  // True while `engine` may be mid-advance: a failure then cannot be
  // absorbed here — it must reach the dispatcher, which discards the
  // replica. Failures with the flag false leave the engine untouched.
  bool engine_dirty = false;
  try {
    switch (query.kind) {
      case QueryKind::kVersion: {
        body << "version " << version.id << " change \""
             << version.change_description << "\" fib_changes "
             << version.fib_changes << " reach_changes "
             << version.reach_changes;
        break;
      }
      case QueryKind::kHash: {
        char hex[32];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      static_cast<unsigned long long>(
                          snapshot_digest(*version.snapshot)));
        body << "hash " << hex;
        break;
      }
      case QueryKind::kReach: {
        const topo::Snapshot& snapshot = engine.snapshot();
        const topo::NodeId src = snapshot.topology.node_id(query.src);
        const topo::NodeId owner = topo::find_address_owner(snapshot, query.dst);
        if (owner == topo::kNoNode) {
          body << "reachable false (no node owns " << query.dst.str() << ")";
        } else {
          const bool reachable = dp::any_reach(engine.verifier(), src, owner,
                                               Ipv4Prefix(query.dst, 32));
          body << "reachable " << (reachable ? "true" : "false") << " owner "
               << snapshot.topology.node_name(owner);
        }
        break;
      }
      case QueryKind::kPaths: {
        const topo::Snapshot& snapshot = engine.snapshot();
        const topo::NodeId src = snapshot.topology.node_id(query.src);
        const auto paths =
            core::forwarding_paths(engine.verifier(), snapshot, src, query.dst);
        if (paths.empty()) {
          body << "no forwarding paths";
        } else {
          for (size_t i = 0; i < paths.size(); ++i) {
            if (i) body << "\n";
            body << paths[i].str(snapshot.topology);
          }
        }
        break;
      }
      case QueryKind::kCheck: {
        bool holds;
        if (query.scope_count > 1 &&
            query.invariant.kind == core::Invariant::Kind::kLoopFree) {
          // Partition-scoped loop freedom: vouch only for ingress at nodes
          // this partition owns. The rendered body is identical to the
          // unscoped form, so a scatter/gather merge of all partitions is
          // byte-identical to one monolithic evaluation.
          const shard::PartitionMap partition(query.scope_count);
          holds = dp::loop_free_from(
              engine.verifier(),
              partition.owned_nodes(engine.snapshot().topology,
                                    query.scope_index),
              query.invariant.traffic);
        } else {
          holds = core::eval_invariant(query.invariant, engine.snapshot(),
                                       engine.verifier());
        }
        body << "holds " << (holds ? "true" : "false") << " | "
             << query.invariant.describe();
        break;
      }
      case QueryKind::kRank:
      case QueryKind::kRisk:
      case QueryKind::kRiskDiff: {
        // Risk analytics run sweeps and memoize per (spec-hash, version) —
        // state only DnaService holds (RiskStore, the version store for
        // diff's second snapshot). serve_batch intercepts these kinds
        // before eval_query; reaching this arm means a caller evaluated a
        // risk query against a bare engine.
        result.ok = false;
        result.body = "risk analytics are served by DnaService (RiskStore)";
        return result;
      }
      case QueryKind::kWhatIf: {
        topo::Snapshot target = query.plan.apply(engine.snapshot());
        engine_dirty = true;
        core::NetworkDiff diff =
            engine.preview(std::move(target), core::Mode::kDifferential);
        engine_dirty = false;
        scenario::ScenarioResult scenario = scenario::summarize_diff(diff);
        scenario.name = query.plan.description();
        util::JsonWriter json;
        scenario::append_json(json, scenario);
        body << json.str();
        break;
      }
    }
  } catch (const std::exception& e) {
    if (engine_dirty) throw;
    result.ok = false;
    result.body = e.what();
    return result;
  }
  result.body = body.str();
  return result;
}

}  // namespace dna::service
