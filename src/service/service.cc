#include "service/service.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/recorder.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dna::service {

DnaService::DnaService(topo::Snapshot base,
                       std::vector<core::Invariant> invariants,
                       ServiceOptions options)
    : options_(std::move(options)),
      invariants_(std::move(invariants)),
      journal_(options_.journal_dir.empty()
                   ? nullptr
                   : std::make_unique<Journal>(options_.journal_dir,
                                               options_.journal_fsync)),
      store_(journaled_base(journal_.get(), std::move(base)),
             journaled_base_id(journal_.get())),
      pool_(options_.num_threads),
      // One replica slot per pool worker plus one the dispatcher uses to
      // serve single-chunk batches inline.
      workers_(pool_.num_workers() + 1),
      risk_store_(options_.risk_cache_entries),
      ctr_queries_total_(registry_.counter("service.queries_total")),
      ctr_queries_failed_(registry_.counter("service.queries_failed")),
      ctr_queries_shed_(registry_.counter("service.queries_shed")),
      ctr_batches_(registry_.counter("service.batches")),
      ctr_commits_(registry_.counter("service.commits")),
      ctr_seeds_(registry_.counter("service.snapshot_seeds")),
      ctr_slow_queries_(registry_.counter("service.slow_queries")),
      ctr_journal_errors_(registry_.counter("service.journal_errors")),
      gauge_max_batch_(registry_.gauge("service.max_batch")),
      gauge_max_queue_depth_(registry_.gauge("service.max_queue_depth")),
      gauge_queue_depth_(registry_.gauge("service.queue_depth")),
      hist_queue_wait_(registry_.histogram("service.query_queue_seconds")),
      hist_fanout_(registry_.histogram("service.query_fanout_seconds")),
      hist_catchup_(registry_.histogram("service.replica_catchup_seconds")),
      hist_eval_(registry_.histogram("service.query_eval_seconds")),
      hist_query_total_(registry_.histogram("service.query_seconds")),
      hist_batch_size_(registry_.histogram("service.batch_size",
                                           obs::Histogram::Unit::kCount)),
      hist_commit_(registry_.histogram("service.commit_seconds")),
      hist_journal_append_(
          registry_.histogram("service.journal_append_seconds")),
      ctr_risk_sweeps_(registry_.counter("service.risk_sweeps_total")),
      ctr_risk_cache_hits_(registry_.counter("service.risk_cache_hits")),
      hist_risk_sweep_(registry_.histogram("service.risk_sweep_seconds")),
      credit_gate_(options_.max_queue_depth) {
  store_.keep_history(options_.keep_versions);
  if (journal_) {
    journal_->set_fsync_histogram(
        &registry_.histogram("service.journal_fsync_seconds"));
  }
  writer_ = make_engine(*store_.head()->snapshot);
  if (journal_) {
    replay_journal();
    // Fold the replayed history (or, on a fresh journal, the base model)
    // into one snapshot segment: recovery cost stays proportional to the
    // commits since the last restart, not the service's lifetime. A
    // journal that is already exactly one clean snapshot segment has
    // nothing to fold — skip the full-model rewrite that restart would
    // otherwise pay every time.
    const bool already_compact =
        recovered_commits_ == 0 && !journal_->recovered_torn_tail() &&
        journal_->recovered().size() == 1 && journal_->segment_count() == 1;
    if (already_compact) {
      journal_->release_recovered();  // compact() would have; free the copy
    } else {
      journal_->compact(store_.head_id(), *store_.head()->snapshot);
    }
  }
  start_ns_ = obs::now_ns();
  dispatcher_ = std::thread(&DnaService::dispatcher_loop, this);
}

topo::Snapshot DnaService::journaled_base(const Journal* journal,
                                          topo::Snapshot base) {
  if (journal && !journal->recovered().empty() &&
      journal->recovered().front().kind == JournalRecord::Kind::kSnapshot) {
    // The journal's snapshot record *is* the durable state; the caller's
    // base only seeds a journal that has never held one.
    return journal->recovered().front().snapshot;
  }
  return base;
}

uint64_t DnaService::journaled_base_id(const Journal* journal) {
  if (journal && !journal->recovered().empty() &&
      journal->recovered().front().kind == JournalRecord::Kind::kSnapshot) {
    return journal->recovered().front().version;
  }
  return 1;
}

void DnaService::replay_journal() {
  for (const JournalRecord& record : journal_->recovered()) {
    if (record.kind != JournalRecord::Kind::kCommit) continue;
    const core::ChangePlan plan = parse_change_plan(record.change_text);
    if (store_.next_id() != record.version) {
      throw Error("journal replay id mismatch: expected version " +
                  std::to_string(record.version) + ", store is at " +
                  std::to_string(store_.next_id()));
    }
    const core::NetworkDiff diff = writer_->advance(
        plan.apply(writer_->snapshot()), options_.commit_mode);
    Version provenance;
    provenance.change_description = plan.description();
    provenance.fib_changes = diff.fib_delta.total_changes();
    provenance.reach_changes =
        diff.reach_delta.lost.size() + diff.reach_delta.gained.size();
    provenance.semantically_empty = diff.semantically_empty();
    store_.publish(writer_->snapshot(), provenance);
    ++recovered_commits_;
  }
}

DnaService::~DnaService() { shutdown(); }

std::unique_ptr<core::DnaEngine> DnaService::make_engine(
    const topo::Snapshot& snapshot) const {
  auto engine = std::make_unique<core::DnaEngine>(snapshot);
  for (const core::Invariant& invariant : invariants_) {
    engine->add_invariant(invariant);
  }
  return engine;
}

std::future<QueryResult> DnaService::submit(const std::string& query_line) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();

  Query query;
  try {
    query = parse_query(query_line);
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    ctr_queries_total_.add();
    ctr_queries_failed_.add();
    promise.set_value(std::move(failed));
    return future;
  }

  // Capture the head *before* taking the queue lock: a commit racing this
  // submit may publish in between, which only means the query was serviced
  // against the version that was current when it arrived — exactly the
  // read-your-submission-time semantics a versioned store promises. A
  // pinned query instead resolves its named version, which the handle then
  // keeps alive until the batch evaluates it.
  VersionHandle version = query.pinned_version == 0
                              ? store_.head()
                              : store_.find(query.pinned_version);
  if (!version) {
    QueryResult failed;
    failed.ok = false;
    failed.body = "version " + std::to_string(query.pinned_version) +
                  " is not live (never published, or already retired)";
    ctr_queries_total_.add();
    ctr_queries_failed_.add();
    promise.set_value(std::move(failed));
    return future;
  }
  // Fast-fail a submit that can already see the stop — the in-flight
  // handshake below catches the race, this just answers promptly.
  if (stopping_.load(std::memory_order_acquire)) {
    QueryResult failed;
    failed.ok = false;
    failed.body = "service is shutting down";
    promise.set_value(std::move(failed));
    return future;
  }

  // Backpressure: one credit per pending query. The fast path is a CAS;
  // at the bound the submitter parks for at most one deadline, waiting
  // for the dispatcher to release a batch of credits, then sheds. A shed
  // query never enters the queue, so it can never also land in the
  // queue-wait histogram — shed-vs-served accounting is exact.
  if (!credit_gate_.acquire_for(options_.submit_deadline)) {
    QueryResult shed;
    shed.ok = false;
    shed.version = version->id;
    shed.body = "queue saturated: shed after " +
                std::to_string(options_.submit_deadline.count()) +
                " ms at depth " +
                std::to_string(pending_count_.load(std::memory_order_relaxed));
    ctr_queries_total_.add();
    ctr_queries_shed_.add();
    promise.set_value(std::move(shed));
    return future;
  }

  // Shutdown handshake (Dekker, both sides seq_cst): stand up as an
  // in-flight submitter *before* re-checking the stop flag. Either the
  // dispatcher's final drain sees our count and waits for the push, or we
  // see `stopping_` here and resolve with a typed error instead of
  // pushing into a queue nobody will ever drain.
  submits_inflight_.fetch_add(1, std::memory_order_seq_cst);
  if (stopping_.load(std::memory_order_seq_cst)) {
    submits_inflight_.fetch_sub(1, std::memory_order_seq_cst);
    credit_gate_.release(1);
    QueryResult failed;
    failed.ok = false;
    failed.body = "service is shutting down";
    promise.set_value(std::move(failed));
    return future;
  }

  const uint64_t submit_ns = obs::now_ns();
  injector_.push(Pending{std::move(query), std::move(version),
                         std::move(promise), submit_ns});
  const int64_t depth = static_cast<int64_t>(
      pending_count_.fetch_add(1, std::memory_order_relaxed) + 1);
  gauge_max_queue_depth_.set_max(depth);
  gauge_queue_depth_.set(depth);
  submits_inflight_.fetch_sub(1, std::memory_order_seq_cst);
  return future;
}

size_t DnaService::queue_depth() const {
  return pending_count_.load(std::memory_order_relaxed);
}

QueryResult DnaService::query(const std::string& query_line) {
  return submit(query_line).get();
}

CommitResult DnaService::commit(const core::ChangePlan& plan) {
  return commit(plan, options_.commit_mode);
}

CommitResult DnaService::commit_text(const std::string& change_text,
                                     obs::Trace* trace) {
  // One parse: the parsed plan's description *is* the trimmed text (the
  // round-trip identity), so it is already journal-authoritative.
  return commit_impl(parse_change_plan(change_text), options_.commit_mode,
                     trace);
}

CommitResult DnaService::commit(const core::ChangePlan& plan,
                                core::Mode mode) {
  // With a journal the textual form is authoritative: re-parse the
  // description and apply *that* plan, so the journaled line and the
  // committed change cannot diverge (replay runs exactly what ran live).
  // Rejecting unjournalable plans happens here, before any side effect.
  if (journal_) {
    std::optional<core::ChangePlan> reparsed;
    try {
      reparsed = parse_change_plan(plan.description());
    } catch (const std::exception& e) {
      throw Error("plan is not journalable (description must be a change "
                  "mini-language line): " +
                  std::string(e.what()));
    }
    return commit_impl(*reparsed, mode);
  }
  return commit_impl(plan, mode);
}

uint64_t DnaService::install_snapshot(const topo::Snapshot& snapshot,
                                      uint64_t version) {
  std::lock_guard<obs::TimedMutex> lock(commit_mutex_);
  const uint64_t head_id = store_.head_id();
  // Exactly-once by version id: a seed the service already reached (its
  // own journal recovery, an earlier seed, or commits that passed it)
  // changes nothing.
  if (version <= head_id) return head_id;

  // The seed replaces all history, so durability is a compaction: one
  // snapshot segment pinning the model at `version`, written (and synced)
  // before any reader can observe the jumped head — the commit path's
  // journal-before-publish contract.
  if (journal_) {
    try {
      journal_->compact(version, snapshot);
    } catch (...) {
      journal_failed_.store(true, std::memory_order_relaxed);
      ctr_journal_errors_.add();
      throw;
    }
  }

  // Rebuild (and re-verify) the writer at the seeded model; a snapshot
  // that fails base verification throws here, before publication, leaving
  // the old head serving. Reader replicas advance differentially to the
  // new head on their next query.
  writer_ = make_engine(snapshot);
  Version provenance;
  provenance.change_description =
      "seed (snapshot clone at v" + std::to_string(version) + ")";
  provenance.semantically_empty = false;
  store_.publish_at(version, writer_->snapshot(), provenance);
  ctr_seeds_.add();
  return version;
}

CommitResult DnaService::commit_impl(const core::ChangePlan& effective,
                                     core::Mode mode, obs::Trace* trace) {
  std::lock_guard<obs::TimedMutex> lock(commit_mutex_);
  Stopwatch stopwatch;
  const uint64_t epoch_ns = obs::now_ns();
  core::NetworkDiff diff;
  try {
    diff = writer_->advance(effective.apply(writer_->snapshot()), mode);
  } catch (...) {
    // The writer may be mid-advance; rebuild it at the (unchanged) head so
    // the next commit starts clean.
    writer_ = make_engine(*store_.head()->snapshot);
    throw;
  }
  const uint64_t advanced_ns = obs::now_ns();
  if (trace != nullptr) trace->add("apply", 0, advanced_ns - epoch_ns);

  if (journal_) {
    // Journal-before-publish: the record must be durable before any reader
    // can observe (and any client can be told about) the new version. A
    // failed append publishes nothing; the writer rebuilds at the
    // unchanged head exactly as for a failed advance.
    try {
      journal_->append_commit(store_.next_id(), effective.description());
    } catch (...) {
      // Durability is gone: flip health so load balancers stop sending
      // writes here, and rebuild the writer at the unchanged head.
      journal_failed_.store(true, std::memory_order_relaxed);
      ctr_journal_errors_.add();
      writer_ = make_engine(*store_.head()->snapshot);
      throw;
    }
    const uint64_t appended_ns = obs::now_ns();
    hist_journal_append_.observe(appended_ns - advanced_ns);
    if (trace != nullptr) {
      // The fsync is the tail of the append; report both legs so a slow
      // disk is distinguishable from a slow record encode/write.
      const uint64_t fsync_ns =
          std::min(journal_->last_fsync_ns(), appended_ns - advanced_ns);
      trace->add("journal", advanced_ns - epoch_ns,
                 appended_ns - advanced_ns - fsync_ns);
      trace->add("fsync", appended_ns - epoch_ns - fsync_ns, fsync_ns);
    }
  }

  Version provenance;
  provenance.change_description = effective.description();
  provenance.fib_changes = diff.fib_delta.total_changes();
  provenance.reach_changes =
      diff.reach_delta.lost.size() + diff.reach_delta.gained.size();
  provenance.semantically_empty = diff.semantically_empty();
  provenance.commit_seconds = stopwatch.elapsed_seconds();
  VersionHandle version = store_.publish(writer_->snapshot(), provenance);

  ctr_commits_.add();
  const uint64_t done_ns = obs::now_ns();
  hist_commit_.observe(done_ns - epoch_ns);
  if (trace != nullptr) {
    const uint64_t journaled_ns =
        trace->empty() ? advanced_ns : epoch_ns + trace->end_ns();
    trace->add("publish", journaled_ns - epoch_ns, done_ns - journaled_ns);
  }

  CommitResult result;
  result.version = version->id;
  result.description = version->change_description;
  result.fib_changes = version->fib_changes;
  result.reach_changes = version->reach_changes;
  result.semantically_empty = version->semantically_empty;
  result.seconds = version->commit_seconds;
  return result;
}

core::DnaEngine& DnaService::engine_at(size_t worker, const Version& version,
                                       uint64_t* catchup_ns) {
  WorkerState& state = workers_[worker];
  if (catchup_ns != nullptr) *catchup_ns = 0;
  if (state.engine && state.version_id == version.id) return *state.engine;

  const uint64_t start_ns = obs::now_ns();
  if (!state.engine) {
    // First query this worker serves: pay the base verification here, in
    // parallel with the other workers' first queries.
    state.engine = make_engine(*version.snapshot);
  } else {
    // Catch up differentially from whatever this replica last served.
    state.engine->advance(*version.snapshot, core::Mode::kDifferential);
  }
  state.version_id = version.id;
  // Only actual work lands in the histogram — the common already-caught-up
  // case above returns without touching the clock.
  const uint64_t elapsed = obs::now_ns() - start_ns;
  hist_catchup_.observe(elapsed);
  if (catchup_ns != nullptr) *catchup_ns = elapsed;
  return *state.engine;
}

void DnaService::dispatcher_loop() {
  // Consumer-private backlog: the injector is drained into it without a
  // lock, and version-coalesced batches are carved out of it. Entries the
  // current batch leaves behind (newer versions) wait here, still counted
  // by `pending_count_` and still holding their credits.
  std::deque<Pending> backlog;
  for (;;) {
    Pending incoming;
    while (injector_.try_pop(incoming)) backlog.push_back(std::move(incoming));
    if (backlog.empty()) {
      if (stopping_.load(std::memory_order_seq_cst)) {
        // Late submitters may be past their stop check (they stood up in
        // submits_inflight_ first): wait them out and take their pushes;
        // exit only when nothing can arrive anymore. Every future that
        // made it into the queue resolves with a real answer.
        if (submits_inflight_.load(std::memory_order_seq_cst) == 0 &&
            injector_.size() == 0) {
          if (!injector_.try_pop(incoming)) return;
          backlog.push_back(std::move(incoming));
        } else {
          std::this_thread::yield();
          continue;
        }
      } else {
        // Batched wake-ups: park; only the push that lands on a parked
        // dispatcher pays a notify. A flood costs one wake total.
        injector_.wait_nonempty();
        continue;
      }
    }
    // Coalesce every pending query that targets the lowest version id
    // still queued, so each batch needs at most one engine advance per
    // worker and replicas move (almost always) forward. Submitters
    // capture the head before pushing, so entries are not strictly
    // ordered by version — taking the minimum, not the front, keeps a
    // freshly-enqueued newer version from forcing a backward advance
    // ahead of older pending work.
    uint64_t version_id = backlog.front().version->id;
    for (const Pending& pending : backlog) {
      version_id = std::min(version_id, pending.version->id);
    }
    std::vector<Pending> batch;
    batch.reserve(backlog.size());
    for (auto it = backlog.begin(); it != backlog.end();) {
      if (it->version->id == version_id) {
        batch.push_back(std::move(*it));
        it = backlog.erase(it);
      } else {
        ++it;
      }
    }
    // The batch left the pending set: return its credits in one release
    // (one wake for all parked submitters, not one per query) and drop
    // the depth gauge before the slow part — fan-out — begins.
    pending_count_.fetch_sub(batch.size(), std::memory_order_relaxed);
    gauge_queue_depth_.set(
        static_cast<int64_t>(pending_count_.load(std::memory_order_relaxed)));
    credit_gate_.release(batch.size());
    serve_batch(std::move(batch));
  }
}

void DnaService::serve_batch(std::vector<Pending> batch) {
  const VersionHandle version = batch.front().version;
  const bool trace_all = trace_all_.load(std::memory_order_relaxed);
  const uint64_t batch_ns = obs::now_ns();  // fan-out epoch for the legs
  std::vector<QueryResult> results(batch.size());

  // Sharded fan-out: hand each worker a contiguous *run* of same-version
  // queries, not one query per pool task. A chunk pays one pool hand-off
  // and (at most) one replica catch-up for its whole run; two chunks per
  // worker keep the tail balanced through work stealing without
  // shrinking runs toward one. Two caps keep the hand-offs worth their
  // cost: workers past the hardware's concurrency can only interleave,
  // never overlap, so chunking past it buys no parallelism and pays a
  // wake each (an oversubscribed pool behaves like a right-sized one);
  // and a chunk must carry enough eval work to be worth one hand-off
  // (and, for a cold worker, one replica build).
  constexpr size_t kMinChunk = 8;
  static const size_t hardware =
      std::max(1u, std::thread::hardware_concurrency());
  const size_t overlap = std::min(pool_.num_workers(), hardware);
  const size_t max_chunks = std::min(batch.size(), overlap * 2);
  const size_t chunk_len = std::max(
      kMinChunk, (batch.size() + max_chunks - 1) / max_chunks);
  const size_t num_chunks = (batch.size() + chunk_len - 1) / chunk_len;
  const auto run_chunk = [&](size_t worker, size_t chunk) {
    const size_t begin = chunk * chunk_len;
    const size_t end = std::min(begin + chunk_len, batch.size());
    for (size_t index = begin; index < end; ++index) {
      Pending& pending = batch[index];
      QueryResult& result = results[index];
      const uint64_t start_ns = obs::now_ns();
      uint64_t catchup_ns = 0;
      try {
        // Only the chunk's first query (or the one after a failure reset)
        // actually advances the replica; the rest hit the version match
        // and pay one branch.
        core::DnaEngine& engine = engine_at(worker, *version, &catchup_ns);
        const QueryKind kind = pending.query.kind;
        result = (kind == QueryKind::kRank || kind == QueryKind::kRisk ||
                  kind == QueryKind::kRiskDiff)
                     ? eval_risk(pending.query, version, engine)
                     : eval_query(pending.query, *version, engine);
      } catch (const std::exception& e) {
        // The replica may be mid-advance (engine_at or a what-if preview
        // threw): drop it so the worker rebuilds a clean one, and fail
        // only this query.
        workers_[worker].engine.reset();
        result.ok = false;
        result.version = version->id;
        result.body = e.what();
      } catch (...) {
        workers_[worker].engine.reset();
        result.ok = false;
        result.version = version->id;
        result.body = "query evaluation failed";
      }
      const uint64_t done_ns = obs::now_ns();
      // Per-leg accounting: queue covers submit -> the dispatcher carving
      // this query's batch (injection + coalescing wait); fanout covers
      // batch -> this worker reaching the query (pool hand-off plus its
      // position in the chunk); catch-up and eval partition the rest.
      // The four legs tile submit -> done exactly. Sharded relaxed adds —
      // no lock on this path.
      const uint64_t queue_ns = obs::elapsed_ns(pending.submit_ns, batch_ns);
      const uint64_t fanout_ns = obs::elapsed_ns(batch_ns, start_ns);
      const uint64_t eval_ns = done_ns - start_ns - catchup_ns;
      const uint64_t total_ns = obs::elapsed_ns(pending.submit_ns, done_ns);
      hist_queue_wait_.observe(queue_ns);
      hist_fanout_.observe(fanout_ns);
      hist_eval_.observe(eval_ns);
      hist_query_total_.observe(total_ns);
      // Profiler accounting: the worker's own slot, relaxed adds only.
      WorkerState& worker_state = workers_[worker];
      worker_state.tasks.fetch_add(1, std::memory_order_relaxed);
      worker_state.busy_ns.fetch_add(obs::elapsed_ns(start_ns, done_ns),
                                     std::memory_order_relaxed);
      worker_state.catchup_ns.fetch_add(catchup_ns,
                                        std::memory_order_relaxed);
      worker_state.eval_ns.fetch_add(eval_ns, std::memory_order_relaxed);

      const bool slow =
          options_.slow_query_ns > 0 && total_ns >= options_.slow_query_ns;
      if (pending.query.traced || trace_all || slow) {
        obs::Trace trace(pending.query.trace_id != 0 ? pending.query.trace_id
                                                     : obs::next_trace_id());
        trace.add("queue", 0, queue_ns);
        if (fanout_ns != 0) trace.add("fanout", queue_ns, fanout_ns);
        if (catchup_ns != 0) {
          trace.add("catchup", queue_ns + fanout_ns, catchup_ns);
        }
        trace.add("eval", queue_ns + fanout_ns + catchup_ns, eval_ns);
        if (pending.query.traced) result.trace = trace.encode();
        if (slow) {
          ctr_slow_queries_.add();
          DNA_WARN("slow query (" << total_ns / 1000000.0 << " ms >= "
                                  << options_.slow_query_ns / 1000000.0
                                  << " ms): " << pending.query.text);
          if (obs::FlightRecorder* recorder = flight_recorder()) {
            // Auto-dump: force an out-of-cadence sample so the ring holds
            // the tier's state at the moment the query degraded.
            recorder->mark_event("slow_query", pending.query.text);
          }
        }
        trace_log_.record(std::move(trace));
      }
    }
  };
  if (num_chunks == 1) {
    // A single chunk cannot overlap with anything: serve it on the
    // dispatcher thread itself. Skipping the pool spares two context
    // switches per batch — for the small batches a synchronous load
    // produces, that hand-off would cost more than the evaluation. The
    // dispatcher owns the extra replica slot past the pool workers'.
    run_chunk(workers_.size() - 1, 0);
  } else {
    pool_.parallel_for(num_chunks, run_chunk);
  }

  // Account the batch before resolving its futures, so a caller that
  // waits on a query and then reads metrics() always sees it counted.
  ctr_batches_.add();
  ctr_queries_total_.add(batch.size());
  gauge_max_batch_.set_max(static_cast<int64_t>(batch.size()));
  hist_batch_size_.observe(batch.size());
  for (const QueryResult& result : results) {
    if (!result.ok) ctr_queries_failed_.add();
  }
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    queries_per_version_[version->id] += batch.size();
  }
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].promise.set_value(std::move(results[i]));
  }
}

ServiceMetrics DnaService::metrics() const {
  // Assemble the legacy view from the registry (the authoritative per-query
  // counters) plus the dispatcher's per-version map.
  ServiceMetrics copy;
  copy.queries_total = ctr_queries_total_.value();
  copy.queries_failed = ctr_queries_failed_.value();
  copy.queries_shed = ctr_queries_shed_.value();
  copy.slow_queries = ctr_slow_queries_.value();
  copy.batches = ctr_batches_.value();
  copy.max_batch = static_cast<size_t>(gauge_max_batch_.value());
  copy.max_queue_depth = static_cast<size_t>(gauge_max_queue_depth_.value());
  copy.commits = ctr_commits_.value();
  const obs::Histogram::Snapshot commit_snap = hist_commit_.snapshot();
  copy.commit_seconds_total = static_cast<double>(commit_snap.sum) * 1e-9;
  copy.commit_seconds_max = static_cast<double>(commit_snap.max) * 1e-9;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    copy.queries_per_version = queries_per_version_;
  }
  copy.versions_published = store_.versions_published();
  copy.versions_retired = store_.versions_retired();
  copy.versions_live = store_.versions_live();
  return copy;
}

Health DnaService::health() const {
  Health health;
  const bool accepting = !stopping_.load(std::memory_order_acquire);
  const size_t depth = queue_depth();
  const bool journal_ok = !journal_failed_.load(std::memory_order_relaxed);
  health.ok = accepting && journal_ok;
  std::ostringstream detail;
  if (!journal_ok) {
    detail << "unhealthy: journal append failed ("
           << ctr_journal_errors_.value()
           << " errors) — commits are no longer durable";
  } else if (!accepting) {
    detail << "unhealthy: service is shutting down";
  } else {
    detail << "ok: head v" << store_.head()->id << ", " << pool_.num_workers()
           << " workers, queue depth " << depth;
    if (journal_) detail << ", journal at segment " << journal_->segment_count();
  }
  health.detail = detail.str();
  return health;
}

std::vector<DnaService::WorkerStats> DnaService::worker_stats() const {
  std::vector<WorkerStats> out;
  out.reserve(workers_.size());
  for (const WorkerState& state : workers_) {
    WorkerStats stats;
    stats.tasks = state.tasks.load(std::memory_order_relaxed);
    stats.busy_seconds =
        static_cast<double>(state.busy_ns.load(std::memory_order_relaxed)) *
        1e-9;
    stats.catchup_seconds =
        static_cast<double>(state.catchup_ns.load(std::memory_order_relaxed)) *
        1e-9;
    stats.eval_seconds =
        static_cast<double>(state.eval_ns.load(std::memory_order_relaxed)) *
        1e-9;
    out.push_back(stats);
  }
  return out;
}

double DnaService::uptime_seconds() const {
  return static_cast<double>(obs::elapsed_ns(start_ns_, obs::now_ns())) * 1e-9;
}

obs::DiagnosisReport DnaService::diagnose(size_t queries_per_phase) {
  obs::DiagnosisReport report;
  report.component = "service";
  const size_t threads = std::max<size_t>(2, pool_.num_workers());
  report.threads = threads;
  // A network-wide check: topology-independent (always parses, always
  // applies) and heavy enough that evaluation, catch-up, and queueing all
  // show up — the same shape the t1→t8 bench collapse was measured on.
  const std::string probe = "check loopfree";

  const auto hist_sum_seconds = [](const obs::Histogram& histogram) {
    return static_cast<double>(histogram.snapshot().sum) * 1e-9;
  };

  // Phase 1 — strictly sequential: one query in flight at a time. This is
  // the single-thread baseline the flood phase's speedup is measured
  // against.
  const uint64_t seq_start_ns = obs::now_ns();
  for (size_t i = 0; i < queries_per_phase; ++i) query(probe);
  report.queries_seq = queries_per_phase;
  report.seconds_seq =
      static_cast<double>(obs::elapsed_ns(seq_start_ns, obs::now_ns())) * 1e-9;

  // Leg baselines: deltas across the flood phase attribute only what the
  // flood did, even on a service that has been serving for hours.
  const double queue0 = hist_sum_seconds(hist_queue_wait_);
  const double fanout0 = hist_sum_seconds(hist_fanout_);
  const double catchup0 = hist_sum_seconds(hist_catchup_);
  const double eval0 = hist_sum_seconds(hist_eval_);
  const double total0 = hist_sum_seconds(hist_query_total_);
  const uint64_t lock_wait0 = commit_mutex_.wait_ns();
  const uint64_t batches0 = ctr_batches_.value();
  const uint64_t flood_queries0 = ctr_queries_total_.value();

  // Phase 2 — flooded: `threads` submitters drive the same number of
  // queries concurrently, the worst case the t8 bench row measures.
  std::atomic<long long> remaining{
      static_cast<long long>(queries_per_phase)};
  const uint64_t flood_start_ns = obs::now_ns();
  std::vector<std::thread> submitters;
  submitters.reserve(threads);
  for (size_t t = 0; t < threads; ++t) {
    submitters.emplace_back([this, &probe, &remaining] {
      for (;;) {
        if (remaining.fetch_sub(1, std::memory_order_relaxed) <= 0) return;
        query(probe);
      }
    });
  }
  for (std::thread& submitter : submitters) submitter.join();
  report.queries_flood = queries_per_phase;
  report.seconds_flood =
      static_cast<double>(obs::elapsed_ns(flood_start_ns, obs::now_ns())) *
      1e-9;

  // Attribution: queue + fanout + catchup + eval partition each query's
  // submit→done time exactly (serve_batch's accounting), so the legs
  // cover the measured wall time by construction.
  report.wall_seconds = hist_sum_seconds(hist_query_total_) - total0;
  report.legs.push_back(
      {"queue (dispatch wait)", hist_sum_seconds(hist_queue_wait_) - queue0, 0});
  report.legs.push_back(
      {"fanout (batch hand-off)", hist_sum_seconds(hist_fanout_) - fanout0, 0});
  report.legs.push_back(
      {"catchup (replica advance)", hist_sum_seconds(hist_catchup_) - catchup0,
       0});
  report.legs.push_back(
      {"eval (query execution)", hist_sum_seconds(hist_eval_) - eval0, 0});
  report.lock_wait_seconds =
      static_cast<double>(commit_mutex_.wait_ns() - lock_wait0) * 1e-9;
  report.max_queue_depth = gauge_max_queue_depth_.value();
  report.batches = ctr_batches_.value() - batches0;
  const uint64_t flood_served = ctr_queries_total_.value() - flood_queries0;
  report.mean_batch =
      report.batches > 0
          ? static_cast<double>(flood_served) / static_cast<double>(report.batches)
          : 0;
  obs::finalize_diagnosis(report);
  return report;
}

void DnaService::shutdown() {
  // The old path published `stopping_` and then fired two notifies before
  // joining — a submitter that had already passed its stop check could
  // enqueue into a queue nobody would ever drain again, leaving its future
  // hung. Now: `stopping_` (seq_cst) pairs with the submit-side
  // `submits_inflight_` handshake, and the dispatcher drains until no
  // submitter can still be mid-push, so every future that entered the
  // queue resolves and every later submit gets the typed error.
  std::lock_guard<std::mutex> join_lock(shutdown_mutex_);
  stopping_.store(true, std::memory_order_seq_cst);
  injector_.close();  // unparks the dispatcher for its final drain
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::string ServiceMetrics::str() const {
  std::ostringstream out;
  out << "service metrics:\n";
  out << "  queries: " << queries_total << " total, " << queries_failed
      << " failed, " << queries_shed << " shed, " << slow_queries
      << " slow\n";
  out << "  batches: " << batches << " (max batch " << max_batch
      << ", max queue depth " << max_queue_depth << ")\n";
  out << "  commits: " << commits;
  if (commits > 0) {
    out << " (mean " << commit_seconds_total / commits * 1e3 << " ms, max "
        << commit_seconds_max * 1e3 << " ms)";
  }
  out << "\n";
  out << "  versions: " << versions_published << " published, "
      << versions_retired << " retired, " << versions_live << " live\n";
  out << "  queries per version:";
  for (const auto& [version, count] : queries_per_version) {
    out << " v" << version << ":" << count;
  }
  if (queries_per_version.empty()) out << " (none dispatched)";
  out << "\n";
  return out.str();
}

void ServiceMetrics::append_json(util::JsonWriter& json) const {
  json.key("metrics").begin_object();
  json.key("queries_total").value(static_cast<unsigned long long>(
      queries_total));
  json.key("queries_failed").value(static_cast<unsigned long long>(
      queries_failed));
  json.key("queries_shed").value(static_cast<unsigned long long>(
      queries_shed));
  json.key("slow_queries").value(static_cast<unsigned long long>(
      slow_queries));
  json.key("batches").value(static_cast<unsigned long long>(batches));
  json.key("max_batch").value(static_cast<unsigned long long>(max_batch));
  json.key("max_queue_depth").value(static_cast<unsigned long long>(
      max_queue_depth));
  json.key("commits").value(static_cast<unsigned long long>(commits));
  json.key("commit_seconds_total").value(commit_seconds_total);
  json.key("commit_seconds_max").value(commit_seconds_max);
  json.key("versions_published").value(static_cast<unsigned long long>(
      versions_published));
  json.key("versions_retired").value(static_cast<unsigned long long>(
      versions_retired));
  json.key("versions_live").value(static_cast<unsigned long long>(
      versions_live));
  json.key("queries_per_version").begin_object();
  for (const auto& [version, count] : queries_per_version) {
    json.key("v" + std::to_string(version))
        .value(static_cast<unsigned long long>(count));
  }
  json.end_object();
  json.end_object();
}

}  // namespace dna::service
