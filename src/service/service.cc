#include "service/service.h"

#include <algorithm>
#include <atomic>
#include <optional>
#include <sstream>
#include <utility>

#include "util/error.h"
#include "util/timer.h"

namespace dna::service {

DnaService::DnaService(topo::Snapshot base,
                       std::vector<core::Invariant> invariants,
                       ServiceOptions options)
    : options_(std::move(options)),
      invariants_(std::move(invariants)),
      journal_(options_.journal_dir.empty()
                   ? nullptr
                   : std::make_unique<Journal>(options_.journal_dir,
                                               options_.journal_fsync)),
      store_(journaled_base(journal_.get(), std::move(base)),
             journaled_base_id(journal_.get())),
      pool_(options_.num_threads),
      workers_(pool_.num_workers()) {
  store_.keep_history(options_.keep_versions);
  writer_ = make_engine(*store_.head()->snapshot);
  if (journal_) {
    replay_journal();
    // Fold the replayed history (or, on a fresh journal, the base model)
    // into one snapshot segment: recovery cost stays proportional to the
    // commits since the last restart, not the service's lifetime. A
    // journal that is already exactly one clean snapshot segment has
    // nothing to fold — skip the full-model rewrite that restart would
    // otherwise pay every time.
    const bool already_compact =
        recovered_commits_ == 0 && !journal_->recovered_torn_tail() &&
        journal_->recovered().size() == 1 && journal_->segment_count() == 1;
    if (already_compact) {
      journal_->release_recovered();  // compact() would have; free the copy
    } else {
      journal_->compact(store_.head_id(), *store_.head()->snapshot);
    }
  }
  dispatcher_ = std::thread(&DnaService::dispatcher_loop, this);
}

topo::Snapshot DnaService::journaled_base(const Journal* journal,
                                          topo::Snapshot base) {
  if (journal && !journal->recovered().empty() &&
      journal->recovered().front().kind == JournalRecord::Kind::kSnapshot) {
    // The journal's snapshot record *is* the durable state; the caller's
    // base only seeds a journal that has never held one.
    return journal->recovered().front().snapshot;
  }
  return base;
}

uint64_t DnaService::journaled_base_id(const Journal* journal) {
  if (journal && !journal->recovered().empty() &&
      journal->recovered().front().kind == JournalRecord::Kind::kSnapshot) {
    return journal->recovered().front().version;
  }
  return 1;
}

void DnaService::replay_journal() {
  for (const JournalRecord& record : journal_->recovered()) {
    if (record.kind != JournalRecord::Kind::kCommit) continue;
    const core::ChangePlan plan = parse_change_plan(record.change_text);
    if (store_.next_id() != record.version) {
      throw Error("journal replay id mismatch: expected version " +
                  std::to_string(record.version) + ", store is at " +
                  std::to_string(store_.next_id()));
    }
    const core::NetworkDiff diff = writer_->advance(
        plan.apply(writer_->snapshot()), options_.commit_mode);
    Version provenance;
    provenance.change_description = plan.description();
    provenance.fib_changes = diff.fib_delta.total_changes();
    provenance.reach_changes =
        diff.reach_delta.lost.size() + diff.reach_delta.gained.size();
    provenance.semantically_empty = diff.semantically_empty();
    store_.publish(writer_->snapshot(), provenance);
    ++recovered_commits_;
  }
}

DnaService::~DnaService() { shutdown(); }

std::unique_ptr<core::DnaEngine> DnaService::make_engine(
    const topo::Snapshot& snapshot) const {
  auto engine = std::make_unique<core::DnaEngine>(snapshot);
  for (const core::Invariant& invariant : invariants_) {
    engine->add_invariant(invariant);
  }
  return engine;
}

std::future<QueryResult> DnaService::submit(const std::string& query_line) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();

  Query query;
  try {
    query = parse_query(query_line);
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.queries_total;
      ++metrics_.queries_failed;
    }
    promise.set_value(std::move(failed));
    return future;
  }

  // Capture the head *before* taking the queue lock: a commit racing this
  // submit may publish in between, which only means the query was serviced
  // against the version that was current when it arrived — exactly the
  // read-your-submission-time semantics a versioned store promises. A
  // pinned query instead resolves its named version, which the handle then
  // keeps alive until the batch evaluates it.
  VersionHandle version = query.pinned_version == 0
                              ? store_.head()
                              : store_.find(query.pinned_version);
  if (!version) {
    QueryResult failed;
    failed.ok = false;
    failed.body = "version " + std::to_string(query.pinned_version) +
                  " is not live (never published, or already retired)";
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.queries_total;
      ++metrics_.queries_failed;
    }
    promise.set_value(std::move(failed));
    return future;
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    // Backpressure: at the configured bound, give the dispatcher one
    // deadline's worth of time to drain, then shed rather than letting the
    // queue (and every submitter's latency) grow without limit.
    if (options_.max_queue_depth > 0 && !stopping_ &&
        queue_.size() >= options_.max_queue_depth) {
      space_cv_.wait_for(lock, options_.submit_deadline, [this] {
        return stopping_ || queue_.size() < options_.max_queue_depth;
      });
    }
    if (stopping_) {
      QueryResult failed;
      failed.ok = false;
      failed.body = "service is shutting down";
      promise.set_value(std::move(failed));
      return future;
    }
    if (options_.max_queue_depth > 0 &&
        queue_.size() >= options_.max_queue_depth) {
      QueryResult shed;
      shed.ok = false;
      shed.version = version->id;
      shed.body = "queue saturated: shed after " +
                  std::to_string(options_.submit_deadline.count()) +
                  " ms at depth " + std::to_string(queue_.size());
      {
        std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
        ++metrics_.queries_total;
        ++metrics_.queries_shed;
      }
      promise.set_value(std::move(shed));
      return future;
    }
    queue_.push_back(
        Pending{std::move(query), std::move(version), std::move(promise)});
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    metrics_.max_queue_depth =
        std::max(metrics_.max_queue_depth, queue_.size());
  }
  queue_cv_.notify_one();
  return future;
}

size_t DnaService::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

QueryResult DnaService::query(const std::string& query_line) {
  return submit(query_line).get();
}

CommitResult DnaService::commit(const core::ChangePlan& plan) {
  return commit(plan, options_.commit_mode);
}

CommitResult DnaService::commit_text(const std::string& change_text) {
  // One parse: the parsed plan's description *is* the trimmed text (the
  // round-trip identity), so it is already journal-authoritative.
  return commit_impl(parse_change_plan(change_text), options_.commit_mode);
}

CommitResult DnaService::commit(const core::ChangePlan& plan,
                                core::Mode mode) {
  // With a journal the textual form is authoritative: re-parse the
  // description and apply *that* plan, so the journaled line and the
  // committed change cannot diverge (replay runs exactly what ran live).
  // Rejecting unjournalable plans happens here, before any side effect.
  if (journal_) {
    std::optional<core::ChangePlan> reparsed;
    try {
      reparsed = parse_change_plan(plan.description());
    } catch (const std::exception& e) {
      throw Error("plan is not journalable (description must be a change "
                  "mini-language line): " +
                  std::string(e.what()));
    }
    return commit_impl(*reparsed, mode);
  }
  return commit_impl(plan, mode);
}

CommitResult DnaService::commit_impl(const core::ChangePlan& effective,
                                     core::Mode mode) {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  Stopwatch stopwatch;
  core::NetworkDiff diff;
  try {
    diff = writer_->advance(effective.apply(writer_->snapshot()), mode);
  } catch (...) {
    // The writer may be mid-advance; rebuild it at the (unchanged) head so
    // the next commit starts clean.
    writer_ = make_engine(*store_.head()->snapshot);
    throw;
  }

  if (journal_) {
    // Journal-before-publish: the record must be durable before any reader
    // can observe (and any client can be told about) the new version. A
    // failed append publishes nothing; the writer rebuilds at the
    // unchanged head exactly as for a failed advance.
    try {
      journal_->append_commit(store_.next_id(), effective.description());
    } catch (...) {
      writer_ = make_engine(*store_.head()->snapshot);
      throw;
    }
  }

  Version provenance;
  provenance.change_description = effective.description();
  provenance.fib_changes = diff.fib_delta.total_changes();
  provenance.reach_changes =
      diff.reach_delta.lost.size() + diff.reach_delta.gained.size();
  provenance.semantically_empty = diff.semantically_empty();
  provenance.commit_seconds = stopwatch.elapsed_seconds();
  VersionHandle version = store_.publish(writer_->snapshot(), provenance);

  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    ++metrics_.commits;
    metrics_.commit_seconds_total += provenance.commit_seconds;
    metrics_.commit_seconds_max =
        std::max(metrics_.commit_seconds_max, provenance.commit_seconds);
  }

  CommitResult result;
  result.version = version->id;
  result.description = version->change_description;
  result.fib_changes = version->fib_changes;
  result.reach_changes = version->reach_changes;
  result.semantically_empty = version->semantically_empty;
  result.seconds = version->commit_seconds;
  return result;
}

core::DnaEngine& DnaService::engine_at(size_t worker,
                                       const Version& version) {
  WorkerState& state = workers_[worker];
  if (!state.engine) {
    // First query this worker serves: pay the base verification here, in
    // parallel with the other workers' first queries.
    state.engine = make_engine(*version.snapshot);
    state.version_id = version.id;
  } else if (state.version_id != version.id) {
    // Catch up differentially from whatever this replica last served.
    state.engine->advance(*version.snapshot, core::Mode::kDifferential);
    state.version_id = version.id;
  }
  return *state.engine;
}

void DnaService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      // Coalesce every pending query that targets the lowest version id
      // still queued, so each batch needs at most one engine advance per
      // worker and replicas move (almost always) forward. Submitters
      // capture the head outside the queue lock, so entries are not
      // strictly ordered by version — taking the minimum, not the front,
      // keeps a freshly-enqueued newer version from forcing a backward
      // advance ahead of older pending work.
      uint64_t version_id = queue_.front().version->id;
      for (const Pending& pending : queue_) {
        version_id = std::min(version_id, pending.version->id);
      }
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->version->id == version_id) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }
    // The batch freed queue slots; wake submitters parked at the bound.
    space_cv_.notify_all();

    const VersionHandle version = batch.front().version;
    std::vector<QueryResult> results(batch.size());
    pool_.parallel_for(batch.size(), [&](size_t worker, size_t index) {
      QueryResult& result = results[index];
      try {
        core::DnaEngine& engine = engine_at(worker, *version);
        result = eval_query(batch[index].query, *version, engine);
      } catch (const std::exception& e) {
        // The replica may be mid-advance (engine_at or a what-if preview
        // threw): drop it so the worker rebuilds a clean one, and fail
        // only this query.
        workers_[worker].engine.reset();
        result.ok = false;
        result.version = version->id;
        result.body = e.what();
      } catch (...) {
        workers_[worker].engine.reset();
        result.ok = false;
        result.version = version->id;
        result.body = "query evaluation failed";
      }
    });

    // Account the batch before resolving its futures, so a caller that
    // waits on a query and then reads metrics() always sees it counted.
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.batches;
      metrics_.max_batch = std::max(metrics_.max_batch, batch.size());
      metrics_.queries_total += batch.size();
      for (const QueryResult& result : results) {
        if (!result.ok) ++metrics_.queries_failed;
      }
      metrics_.queries_per_version[version->id] += batch.size();
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

ServiceMetrics DnaService::metrics() const {
  ServiceMetrics copy;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    copy = metrics_;
  }
  copy.versions_published = store_.versions_published();
  copy.versions_retired = store_.versions_retired();
  copy.versions_live = store_.versions_live();
  return copy;
}

void DnaService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  space_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(shutdown_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::string ServiceMetrics::str() const {
  std::ostringstream out;
  out << "service metrics:\n";
  out << "  queries: " << queries_total << " total, " << queries_failed
      << " failed, " << queries_shed << " shed\n";
  out << "  batches: " << batches << " (max batch " << max_batch
      << ", max queue depth " << max_queue_depth << ")\n";
  out << "  commits: " << commits;
  if (commits > 0) {
    out << " (mean " << commit_seconds_total / commits * 1e3 << " ms, max "
        << commit_seconds_max * 1e3 << " ms)";
  }
  out << "\n";
  out << "  versions: " << versions_published << " published, "
      << versions_retired << " retired, " << versions_live << " live\n";
  out << "  queries per version:";
  for (const auto& [version, count] : queries_per_version) {
    out << " v" << version << ":" << count;
  }
  if (queries_per_version.empty()) out << " (none dispatched)";
  out << "\n";
  return out.str();
}

}  // namespace dna::service
