#include "service/service.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <utility>

#include "util/timer.h"

namespace dna::service {

DnaService::DnaService(topo::Snapshot base,
                       std::vector<core::Invariant> invariants,
                       ServiceOptions options)
    : options_(options),
      invariants_(std::move(invariants)),
      store_(std::move(base)),
      pool_(options.num_threads),
      workers_(pool_.num_workers()) {
  writer_ = make_engine(*store_.head()->snapshot);
  dispatcher_ = std::thread(&DnaService::dispatcher_loop, this);
}

DnaService::~DnaService() { shutdown(); }

std::unique_ptr<core::DnaEngine> DnaService::make_engine(
    const topo::Snapshot& snapshot) const {
  auto engine = std::make_unique<core::DnaEngine>(snapshot);
  for (const core::Invariant& invariant : invariants_) {
    engine->add_invariant(invariant);
  }
  return engine;
}

std::future<QueryResult> DnaService::submit(const std::string& query_line) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();

  Query query;
  try {
    query = parse_query(query_line);
  } catch (const std::exception& e) {
    QueryResult failed;
    failed.ok = false;
    failed.body = e.what();
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.queries_total;
      ++metrics_.queries_failed;
    }
    promise.set_value(std::move(failed));
    return future;
  }

  // Capture the head *before* taking the queue lock: a commit racing this
  // submit may publish in between, which only means the query was serviced
  // against the version that was current when it arrived — exactly the
  // read-your-submission-time semantics a versioned store promises.
  VersionHandle version = store_.head();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_) {
      QueryResult failed;
      failed.ok = false;
      failed.body = "service is shutting down";
      promise.set_value(std::move(failed));
      return future;
    }
    queue_.push_back(
        Pending{std::move(query), std::move(version), std::move(promise)});
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    metrics_.max_queue_depth =
        std::max(metrics_.max_queue_depth, queue_.size());
  }
  queue_cv_.notify_one();
  return future;
}

QueryResult DnaService::query(const std::string& query_line) {
  return submit(query_line).get();
}

CommitResult DnaService::commit(const core::ChangePlan& plan) {
  return commit(plan, options_.commit_mode);
}

CommitResult DnaService::commit(const core::ChangePlan& plan,
                                core::Mode mode) {
  std::lock_guard<std::mutex> lock(commit_mutex_);
  Stopwatch stopwatch;
  core::NetworkDiff diff;
  try {
    diff = writer_->advance(plan.apply(writer_->snapshot()), mode);
  } catch (...) {
    // The writer may be mid-advance; rebuild it at the (unchanged) head so
    // the next commit starts clean.
    writer_ = make_engine(*store_.head()->snapshot);
    throw;
  }

  Version provenance;
  provenance.change_description = plan.description();
  provenance.fib_changes = diff.fib_delta.total_changes();
  provenance.reach_changes =
      diff.reach_delta.lost.size() + diff.reach_delta.gained.size();
  provenance.semantically_empty = diff.semantically_empty();
  provenance.commit_seconds = stopwatch.elapsed_seconds();
  VersionHandle version = store_.publish(writer_->snapshot(), provenance);

  {
    std::lock_guard<std::mutex> metrics_lock(metrics_mutex_);
    ++metrics_.commits;
    metrics_.commit_seconds_total += provenance.commit_seconds;
    metrics_.commit_seconds_max =
        std::max(metrics_.commit_seconds_max, provenance.commit_seconds);
  }

  CommitResult result;
  result.version = version->id;
  result.description = version->change_description;
  result.fib_changes = version->fib_changes;
  result.reach_changes = version->reach_changes;
  result.semantically_empty = version->semantically_empty;
  result.seconds = version->commit_seconds;
  return result;
}

core::DnaEngine& DnaService::engine_at(size_t worker,
                                       const Version& version) {
  WorkerState& state = workers_[worker];
  if (!state.engine) {
    // First query this worker serves: pay the base verification here, in
    // parallel with the other workers' first queries.
    state.engine = make_engine(*version.snapshot);
    state.version_id = version.id;
  } else if (state.version_id != version.id) {
    // Catch up differentially from whatever this replica last served.
    state.engine->advance(*version.snapshot, core::Mode::kDifferential);
    state.version_id = version.id;
  }
  return *state.engine;
}

void DnaService::dispatcher_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and fully drained
      // Coalesce every pending query that targets the lowest version id
      // still queued, so each batch needs at most one engine advance per
      // worker and replicas move (almost always) forward. Submitters
      // capture the head outside the queue lock, so entries are not
      // strictly ordered by version — taking the minimum, not the front,
      // keeps a freshly-enqueued newer version from forcing a backward
      // advance ahead of older pending work.
      uint64_t version_id = queue_.front().version->id;
      for (const Pending& pending : queue_) {
        version_id = std::min(version_id, pending.version->id);
      }
      for (auto it = queue_.begin(); it != queue_.end();) {
        if (it->version->id == version_id) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
    }

    const VersionHandle version = batch.front().version;
    std::vector<QueryResult> results(batch.size());
    pool_.parallel_for(batch.size(), [&](size_t worker, size_t index) {
      QueryResult& result = results[index];
      try {
        core::DnaEngine& engine = engine_at(worker, *version);
        result = eval_query(batch[index].query, *version, engine);
      } catch (const std::exception& e) {
        // The replica may be mid-advance (engine_at or a what-if preview
        // threw): drop it so the worker rebuilds a clean one, and fail
        // only this query.
        workers_[worker].engine.reset();
        result.ok = false;
        result.version = version->id;
        result.body = e.what();
      } catch (...) {
        workers_[worker].engine.reset();
        result.ok = false;
        result.version = version->id;
        result.body = "query evaluation failed";
      }
    });

    // Account the batch before resolving its futures, so a caller that
    // waits on a query and then reads metrics() always sees it counted.
    {
      std::lock_guard<std::mutex> lock(metrics_mutex_);
      ++metrics_.batches;
      metrics_.max_batch = std::max(metrics_.max_batch, batch.size());
      metrics_.queries_total += batch.size();
      for (const QueryResult& result : results) {
        if (!result.ok) ++metrics_.queries_failed;
      }
      metrics_.queries_per_version[version->id] += batch.size();
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

ServiceMetrics DnaService::metrics() const {
  ServiceMetrics copy;
  {
    std::lock_guard<std::mutex> lock(metrics_mutex_);
    copy = metrics_;
  }
  copy.versions_published = store_.versions_published();
  copy.versions_retired = store_.versions_retired();
  copy.versions_live = store_.versions_live();
  return copy;
}

void DnaService::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(shutdown_mutex_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

std::string ServiceMetrics::str() const {
  std::ostringstream out;
  out << "service metrics:\n";
  out << "  queries: " << queries_total << " total, " << queries_failed
      << " failed\n";
  out << "  batches: " << batches << " (max batch " << max_batch
      << ", max queue depth " << max_queue_depth << ")\n";
  out << "  commits: " << commits;
  if (commits > 0) {
    out << " (mean " << commit_seconds_total / commits * 1e3 << " ms, max "
        << commit_seconds_max * 1e3 << " ms)";
  }
  out << "\n";
  out << "  versions: " << versions_published << " published, "
      << versions_retired << " retired, " << versions_live << " live\n";
  out << "  queries per version:";
  for (const auto& [version, count] : queries_per_version) {
    out << " v" << version << ":" << count;
  }
  if (queries_per_version.empty()) out << " (none dispatched)";
  out << "\n";
  return out.str();
}

}  // namespace dna::service
