#include "service/shard/host.h"

#include <thread>

#include "service/session.h"

namespace dna::service::shard {

ShardHost::ShardHost(topo::Snapshot base,
                     std::vector<core::Invariant> invariants,
                     ShardHostOptions options)
    : service_(std::move(base), std::move(invariants), options.service),
      listener_(options.port, options.host),
      server_(listener_, [this](Transport& transport) {
        ServerSession session(service_, transport);
        session.run();
        return session.shutdown_requested();
      }) {
  server_.start();
}

ShardHost::~ShardHost() { stop(); }

Dialer ShardHost::dialer() const {
  const std::string host = listener_.host();
  const uint16_t port = listener_.port();
  return [host, port] { return connect_tcp(host, port); };
}

void ShardHost::wait() { server_.join(); }

void ShardHost::stop() { server_.stop(); }

namespace {

/// The client end of a LoopbackChannel, bundled with the channel itself
/// and the thread pumping a ServerSession on the other end.
class LoopbackClientTransport : public Transport {
 public:
  explicit LoopbackClientTransport(DnaService& service)
      : channel_(std::make_unique<LoopbackChannel>()) {
    session_ = std::thread([this, &service] {
      ServerSession session(service, channel_->server());
      session.run();
    });
  }

  ~LoopbackClientTransport() override {
    // Aborting the client end closes both directions; the session's recv
    // unblocks with end-of-stream and the thread exits.
    channel_->client().abort();
    session_.join();
  }

  void send(std::string_view bytes) override {
    channel_->client().send(bytes);
  }
  size_t recv(char* buffer, size_t max) override {
    return channel_->client().recv(buffer, max);
  }
  void close_send() override { channel_->client().close_send(); }
  void abort() override { channel_->client().abort(); }

 private:
  std::unique_ptr<LoopbackChannel> channel_;
  std::thread session_;
};

}  // namespace

Dialer loopback_dial(DnaService& service) {
  return [&service]() -> std::unique_ptr<Transport> {
    return std::make_unique<LoopbackClientTransport>(service);
  };
}

}  // namespace dna::service::shard
