#include "service/shard/partition.h"

#include "util/error.h"

namespace dna::service::shard {

uint64_t stable_name_hash(std::string_view name) {
  uint64_t digest = 1469598103934665603ULL;
  for (const char c : name) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 1099511628211ULL;
  }
  return digest;
}

uint32_t shard_of(std::string_view node_name, uint32_t count) {
  DNA_CHECK_MSG(count >= 1, "partition count must be >= 1");
  return static_cast<uint32_t>(stable_name_hash(node_name) % count);
}

PartitionMap::PartitionMap(uint32_t count) : count_(count) {
  DNA_CHECK_MSG(count >= 1, "partition count must be >= 1");
}

std::vector<bool> PartitionMap::owned_nodes(const topo::Topology& topology,
                                            uint32_t index) const {
  std::vector<bool> owned(topology.num_nodes(), false);
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    owned[node] = owns(index, topology.node_name(node));
  }
  return owned;
}

std::vector<size_t> PartitionMap::histogram(
    const topo::Topology& topology) const {
  std::vector<size_t> counts(count_, 0);
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    ++counts[owner_of(topology.node_name(node))];
  }
  return counts;
}

}  // namespace dna::service::shard
