#include "service/shard/partition.h"

#include <algorithm>

#include "util/error.h"

namespace dna::service::shard {

uint64_t stable_name_hash(std::string_view name) {
  uint64_t digest = 1469598103934665603ULL;
  for (const char c : name) {
    digest ^= static_cast<unsigned char>(c);
    digest *= 1099511628211ULL;
  }
  return digest;
}

uint32_t shard_of(std::string_view node_name, uint32_t count) {
  return PartitionMap(count).owner_of(node_name);
}

namespace {

/// Finalizer applied to every hash before it lands on the ring (vnode
/// points and name lookups alike). FNV-1a is stable but weakly mixed for
/// the short, similar strings we feed it ("shard-3#17", "node-42"): whole
/// families land in correlated regions of the 64-bit space, which skews
/// both balance and the ~1/(N+1) growth-remap bound. The splitmix64
/// finalizer scrambles those correlations away; being a fixed bijection it
/// keeps the map deterministic and a pure function of the shard count.
uint64_t ring_point(uint64_t digest) {
  digest ^= digest >> 30;
  digest *= 0xbf58476d1ce4e5b9ULL;
  digest ^= digest >> 27;
  digest *= 0x94d049bb133111ebULL;
  digest ^= digest >> 31;
  return digest;
}

}  // namespace

PartitionMap::PartitionMap(uint32_t count, uint32_t replicas)
    : count_(count), replicas_(std::max<uint32_t>(1, replicas)) {
  DNA_CHECK_MSG(count >= 1, "partition count must be >= 1");
  if (replicas_ > count_) replicas_ = count_;
  ring_.reserve(static_cast<size_t>(count_) * kVirtualNodes);
  for (uint32_t shard = 0; shard < count_; ++shard) {
    for (uint32_t vnode = 0; vnode < kVirtualNodes; ++vnode) {
      // The vnode label is derived from the shard *index*, never the shard
      // count, so growing the deployment adds points without moving any
      // existing one — the consistent-hashing property.
      const std::string label =
          "shard-" + std::to_string(shard) + "#" + std::to_string(vnode);
      ring_.push_back({ring_point(stable_name_hash(label)), shard});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const VNode& a, const VNode& b) {
    // Ties broken by shard index so the ring order is total and identical
    // everywhere (FNV collisions are unlikely but must not be ambiguous).
    return a.point != b.point ? a.point < b.point : a.shard < b.shard;
  });
}

size_t PartitionMap::ring_lower_bound(uint64_t point) const {
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VNode& vnode, uint64_t p) { return vnode.point < p; });
  return it == ring_.end() ? 0 : static_cast<size_t>(it - ring_.begin());
}

uint32_t PartitionMap::owner_of(std::string_view node_name) const {
  return ring_[ring_lower_bound(ring_point(stable_name_hash(node_name)))].shard;
}

std::vector<uint32_t> PartitionMap::replicas_of(
    std::string_view node_name) const {
  std::vector<uint32_t> shards;
  shards.reserve(replicas_);
  size_t cursor = ring_lower_bound(ring_point(stable_name_hash(node_name)));
  for (size_t step = 0; step < ring_.size() && shards.size() < replicas_;
       ++step) {
    const uint32_t shard = ring_[cursor].shard;
    if (std::find(shards.begin(), shards.end(), shard) == shards.end()) {
      shards.push_back(shard);
    }
    cursor = cursor + 1 == ring_.size() ? 0 : cursor + 1;
  }
  return shards;
}

std::vector<bool> PartitionMap::owned_nodes(const topo::Topology& topology,
                                            uint32_t index) const {
  std::vector<bool> owned(topology.num_nodes(), false);
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    owned[node] = owns(index, topology.node_name(node));
  }
  return owned;
}

std::vector<size_t> PartitionMap::histogram(
    const topo::Topology& topology) const {
  std::vector<size_t> counts(count_, 0);
  for (topo::NodeId node = 0; node < topology.num_nodes(); ++node) {
    ++counts[owner_of(topology.node_name(node))];
  }
  return counts;
}

}  // namespace dna::service::shard
