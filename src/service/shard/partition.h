// The shard tier's partition map: which shard owns which network region.
//
// Ownership is by topology hash — a stable FNV-1a over the node *name*, mod
// the shard count. Hashing names (not ids) makes the map a pure function of
// the topology and the shard count: every process that knows N computes the
// identical map with no coordination, it survives router and shard restarts,
// and it is independent of node-id numbering. The analyses the service runs
// decompose per source region (the differential-network-analysis literature
// leans on the same decomposition), so:
//
//  * single-source queries (reach/paths, src-ful checks) route to the one
//    shard owning the source node, and
//  * network-global checks (loopfree) scatter as per-partition scopes
//    ("part i/n <query>", query.h) whose verdicts AND together — each shard
//    vouches for ingress in its own region, and the union of regions is the
//    whole network.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "topo/topology.h"

namespace dna::service::shard {

/// The stable name hash behind the partition map (FNV-1a, fixed across
/// platforms and standard-library implementations).
uint64_t stable_name_hash(std::string_view name);

/// The shard (in 0..count-1) owning `node_name` in a `count`-way partition.
/// count must be >= 1.
uint32_t shard_of(std::string_view node_name, uint32_t count);

/// A fixed `count`-way partition of node ownership.
class PartitionMap {
 public:
  explicit PartitionMap(uint32_t count);

  uint32_t count() const { return count_; }
  uint32_t owner_of(std::string_view node_name) const {
    return shard_of(node_name, count_);
  }
  bool owns(uint32_t index, std::string_view node_name) const {
    return owner_of(node_name) == index;
  }

  /// Per-node ownership flags for partition `index` of `topology` — the
  /// source filter a scoped (part i/n) check evaluates under.
  std::vector<bool> owned_nodes(const topo::Topology& topology,
                                uint32_t index) const;

  /// Nodes per shard for `topology` — the balance diagnostic printed by
  /// `dna_cli route`.
  std::vector<size_t> histogram(const topo::Topology& topology) const;

 private:
  uint32_t count_;
};

}  // namespace dna::service::shard
