// The shard tier's partition map: which shards own which network region.
//
// Ownership is by consistent hashing — a fixed ring of virtual nodes, 64
// per shard, placed at stable points (FNV-1a through a splitmix64
// finalizer, see partition.cc) derived from the shard index;
// a node name hashes onto the ring and is owned by the first vnodes
// clockwise from its point. Hashing names (not ids) and deriving vnode
// points from shard indices makes the map a pure function of the topology
// and the shard count: every process that knows N computes the identical
// map with no coordination, it survives router and shard restarts, and it
// is independent of node-id numbering. The ring buys two properties the
// old hash-mod-N map lacked:
//
//  * R replicas per partition: replicas_of() walks the ring clockwise and
//    collects the first R *distinct* shards — a deterministic preference
//    list the router fails over along when the primary is unreachable.
//  * Minimal re-mapping: growing the deployment from N to N+1 shards only
//    moves the ring arcs the new shard's vnodes claim (~1/(N+1) of all
//    nodes); every other node keeps its owner.
//
// The analyses the service runs decompose per source region (the
// differential-network-analysis literature leans on the same
// decomposition), so:
//
//  * single-source queries (reach/paths, src-ful checks) route to the
//    shards replicating the source node, primary first, and
//  * network-global checks (loopfree) scatter as per-partition scopes
//    ("part i/n <query>", query.h) whose verdicts AND together — each
//    shard vouches for ingress in its own region, and the union of regions
//    is the whole network. Scope i's *primary* evaluator is shard i, but
//    any replica can evaluate it: the scope names a source filter
//    (owned_nodes), not a data placement.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "topo/topology.h"

namespace dna::service::shard {

/// The stable name hash behind the partition map (FNV-1a, fixed across
/// platforms and standard-library implementations).
uint64_t stable_name_hash(std::string_view name);

/// The shard (in 0..count-1) owning `node_name` in a `count`-way partition
/// — the ring walk, as a free function for one-off lookups. count must be
/// >= 1. Builds the ring per call; hold a PartitionMap for repeated use.
uint32_t shard_of(std::string_view node_name, uint32_t count);

/// A fixed `count`-way consistent-hash partition of node ownership, with
/// `replicas` preferred shards per node (clamped to count).
class PartitionMap {
 public:
  /// Virtual nodes per shard. Fixed forever: changing it re-maps every
  /// deployment's ownership, which is exactly what the ring exists to
  /// avoid.
  static constexpr uint32_t kVirtualNodes = 64;

  /// The ring is a function of `count` alone — `replicas` only sizes the
  /// preference lists — so a PartitionMap(n) on a shard agrees with a
  /// PartitionMap(n, R) on the router about who owns what.
  explicit PartitionMap(uint32_t count, uint32_t replicas = 1);

  uint32_t count() const { return count_; }
  /// Effective replication factor: min(requested, count).
  uint32_t replicas() const { return replicas_; }

  /// The primary owner: first distinct shard clockwise from the node's
  /// ring point.
  uint32_t owner_of(std::string_view node_name) const;
  /// The full preference list: replicas() distinct shards in ring order,
  /// primary first. The router tries them in order on failover.
  std::vector<uint32_t> replicas_of(std::string_view node_name) const;
  /// Primary ownership (what scoped checks evaluate under).
  bool owns(uint32_t index, std::string_view node_name) const {
    return owner_of(node_name) == index;
  }

  /// Per-node primary-ownership flags for partition `index` of `topology`
  /// — the source filter a scoped (part i/n) check evaluates under.
  std::vector<bool> owned_nodes(const topo::Topology& topology,
                                uint32_t index) const;

  /// Primary nodes per shard for `topology` — the balance diagnostic
  /// printed by `dna_cli route`.
  std::vector<size_t> histogram(const topo::Topology& topology) const;

 private:
  /// Index into ring_ of the first vnode at or clockwise after `point`.
  size_t ring_lower_bound(uint64_t point) const;

  struct VNode {
    uint64_t point = 0;
    uint32_t shard = 0;
  };
  std::vector<VNode> ring_;  // sorted by (point, shard)
  uint32_t count_;
  uint32_t replicas_;
};

}  // namespace dna::service::shard
