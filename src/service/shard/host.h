// ShardHost: one shard of a sharded DNA deployment, embeddable anywhere.
//
// A shard is just a full DnaService (optionally journaled) served over a
// Listener by a SessionServer. `dna_cli shard-serve` wraps one in a
// process; tests and benches run several in-process on ephemeral TCP ports
// — same code path either way, so the multi-process smoke and the in-
// process equivalence tests exercise the identical serving stack.
//
// loopback_dial() is the zero-socket Dialer for router tests: each dial
// spins up a LoopbackChannel with a ServerSession pumping its server end,
// and hands back the client end as a self-contained Transport.
#pragma once

#include <memory>
#include <string>

#include "service/net/server.h"
#include "service/net/tcp.h"
#include "service/service.h"
#include "service/shard/router.h"

namespace dna::service::shard {

struct ShardHostOptions {
  ServiceOptions service;
  /// TCP bind address; port 0 picks an ephemeral port (see port()).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

class ShardHost {
 public:
  /// Builds the shard's DnaService (journal recovery and all) and starts
  /// serving sessions in the background. Throws dna::Error when the port
  /// cannot be bound or recovery fails.
  ShardHost(topo::Snapshot base, std::vector<core::Invariant> invariants,
            ShardHostOptions options = {});
  /// stop()s and joins.
  ~ShardHost();

  ShardHost(const ShardHost&) = delete;
  ShardHost& operator=(const ShardHost&) = delete;

  DnaService& service() { return service_; }
  uint16_t port() const { return listener_.port(); }
  const std::string& host() const { return listener_.host(); }

  /// A Dialer connecting to this host over TCP — the router-side handle.
  Dialer dialer() const;

  /// Blocks until serving ends (a session-requested shutdown or stop()).
  void wait();
  /// True once some session asked this shard to shut down.
  bool shutdown_requested() const { return server_.shutdown_requested(); }
  /// Stops serving: closes the listener and evicts live sessions. The
  /// DnaService stays queryable in-process until destruction.
  void stop();

 private:
  DnaService service_;
  TcpListener listener_;
  SessionServer server_;
};

/// A Dialer over `service` that needs no sockets: every dial creates an
/// in-memory duplex channel served by a dedicated session thread, torn
/// down when the returned Transport is destroyed.
Dialer loopback_dial(DnaService& service);

}  // namespace dna::service::shard
