// ShardRouter: the front-end of a replicated, self-healing DNA deployment.
//
// A deployment is N shard processes — each a full DnaService behind
// `dna_cli shard-serve`, with its own journal directory — plus one router
// owning the consistent-hash partition map (partition.h, R replicas per
// partition). Clients speak the ordinary framed protocol to the router;
// the router:
//
//  * routes single-source queries (reach/paths, src-ful checks, whatif) to
//    the source region's replica set — primary first, failing over in
//    deterministic preference order to any healthy replica (the zebra
//    FIB/ECMP model: many candidate next-hops, deterministic selection,
//    failover on withdrawal),
//  * scatters network-global checks (loopfree) as per-partition scopes
//    ("part i/n <query>") — scope i preferring shard i, failing over to
//    (i+1)%n, ... — and gathers the verdicts, ANDed, with bodies rendered
//    identically to one monolithic evaluation,
//  * fans every commit out to all shards and succeeds once a configurable
//    *quorum* acks the same version id; lagging/dead shards are marked
//    stale (disconnected) and caught up exactly-once by version id from
//    the in-memory commit history before they regain query eligibility,
//  * guards each shard with a circuit breaker: failures open it under
//    bounded exponential backoff with deterministic jitter, so a dead
//    shard costs one failed dial per backoff window, not one per request
//    (a last-resort attempt still fires when no other candidate answered,
//    so backoff can never block recovery), and
//  * warms up a restarted or brand-new shard by journal-seeded cloning:
//    when the shard is behind the commit history's reach, the router
//    streams a peer's compacted snapshot into it (`sync` on the donor,
//    `seed` on the joiner — journal payload format over the framed
//    protocol), then replays the history tail. Scale-out therefore
//    re-maps only ~1/N of the ring and new capacity self-provisions.
//
// Consistency model: shards are full replicas kept in lock-step by the
// commit fan-out; the partition map decides *responsibility* (where
// queries go, how global checks decompose), which is what spreads query
// load over processes. Boundary correctness is by construction — a path
// crossing from shard i's region into shard j's is evaluated on a replica
// of its source, which holds the whole model. A commit that reached a
// quorum but not every shard is *degraded*: the stragglers are stale until
// catch-up, and health() says so.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "service/health.h"
#include "service/protocol.h"
#include "service/session.h"
#include "service/shard/partition.h"
#include "service/transport.h"
#include "util/rng.h"

namespace dna::obs {
class FlightRecorder;  // recorder.h; the router only holds a pointer
}  // namespace dna::obs

namespace dna::service::shard {

/// How the router reaches one shard: a factory for fresh connections, so
/// tests dial in-memory loopback channels and production dials TCP.
using Dialer = std::function<std::unique_ptr<Transport>()>;

/// Replication and fault-tolerance knobs (`dna_cli route --replicas/--quorum`).
struct RouterOptions {
  /// Replicas per partition (clamped to the shard count). Queries fail
  /// over along the first `replicas` candidates; 1 restores single-owner
  /// routing.
  uint32_t replicas = 2;
  /// Commit acks required for success (clamped to [1, shard count]). A
  /// commit acked by at least `quorum` shards succeeds; stragglers are
  /// marked stale and caught up exactly-once from the commit history.
  uint32_t quorum = 1;
  /// Circuit breaker: the first failure opens the shard's breaker for
  /// `backoff_initial_ms` (plus jitter in [0, 50%]), doubling per
  /// consecutive failure up to `backoff_max_ms`.
  uint64_t backoff_initial_ms = 50;
  uint64_t backoff_max_ms = 2000;
  /// Seed for the deterministic backoff jitter.
  uint64_t jitter_seed = 0x5eed;
};

/// Counters accumulated over the router's lifetime (the `metrics` command).
/// Assembled on read from the router's obs::Registry plus per-shard state.
struct RouterMetrics {
  size_t queries_routed = 0;    // single-shard requests forwarded
  size_t scatters = 0;          // scatter/gather evaluations
  size_t commits = 0;           // commits recorded (>= quorum acks)
  size_t degraded_commits = 0;  // commits that left some shard stale
  size_t shard_errors = 0;      // failed attempts on an unreachable shard
  size_t failovers = 0;         // requests answered by a non-primary replica
  size_t reconnects = 0;        // successful re-dials after a failure
  size_t replayed_commits = 0;  // catch-up commits replayed into shards
  size_t syncs = 0;             // journal-seeded warm-ups (sync+seed)
  size_t breaker_opens = 0;     // closed->open breaker transitions
  uint64_t head_version = 0;    // deployment head the router believes in
  uint32_t replicas = 0;        // configured R (clamped)
  uint32_t quorum = 0;          // configured quorum (clamped)
  std::vector<bool> shard_connected;     // by shard index
  std::vector<uint64_t> shard_versions;  // last acked version, by index
  std::vector<bool> shard_breaker_open;  // breaker currently open, by index

  std::string str() const;
  /// The same view as one JSON "metrics" object (the `metrics json` verb).
  void append_json(util::JsonWriter& json) const;
};

class ShardRouter {
 public:
  /// One dialer per shard, in partition order (shard i of n). Connections
  /// are opened lazily per request; use connect_all() to fail fast.
  explicit ShardRouter(std::vector<Dialer> dialers, RouterOptions options = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const PartitionMap& partition() const { return partition_; }
  const RouterOptions& options() const { return options_; }

  /// Dials every shard now; returns the number reachable. A shard behind
  /// the deployment head is healed on the spot (history replay, or a
  /// journal-seeded sync from a head-version peer); irreparable divergence
  /// — conflicting acked versions — throws dna::Error rather than serving
  /// a split-brain tier.
  size_t connect_all();

  /// Handles one request line — the full query language plus the session
  /// commands (commit/metrics [json]/stats [json|prom]/trace .../shutdown).
  /// A leading `trace:` tag yields a deployment-wide stitched trace: the
  /// router's "total" span, one "s<i>" RTT span per shard touched, and the
  /// shard's own legs nested as "s<i>.<leg>". Thread-safe; never throws
  /// (shard failures come back as ok=false typed errors).
  QueryResult handle(const std::string& line);

  /// True once a client asked the deployment to stop: the router has
  /// broadcast `shutdown` to the shards and its host should stop serving.
  bool shutdown_requested() const;

  RouterMetrics metrics() const;
  /// The router's metric registry: counters plus one RTT histogram per
  /// shard ("router.s<i>.rtt_seconds").
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  /// Recently completed router-level (stitched) traces.
  obs::TraceLog& trace_log() { return trace_log_; }
  /// When on, every request is traced into trace_log() — `trace on|off`.
  void set_trace_all(bool on) {
    trace_all_.store(on, std::memory_order_relaxed);
  }
  bool trace_all() const { return trace_all_.load(std::memory_order_relaxed); }

  // ---- observability plane -------------------------------------------------

  /// Replica-aware liveness. ok while every partition still has a live
  /// candidate — i.e. at most R-1 shards are down. All shards connected is
  /// "ok"; some down but covered is "degraded" (still ok=true, so /healthz
  /// stays 200 through a single-shard kill with R=2); more down than the
  /// replica sets tolerate is unhealthy.
  Health health() const;

  /// Attaches a flight recorder (caller-owned); the router marks
  /// "shard_death" events into it when an attempt fails on an unreachable
  /// shard and "failover" events when a replica covers for one.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_.store(recorder, std::memory_order_release);
  }
  obs::FlightRecorder* flight_recorder() const {
    return recorder_.load(std::memory_order_acquire);
  }

  /// The router-tier twin of DnaService::diagnose(): drives
  /// `queries_per_phase` network-global checks sequentially, then the same
  /// number flooded, and attributes each request's wall time to per-shard
  /// RTT legs plus the router's own routing/merge work. Names which shard
  /// (or the router itself) the scatter pipeline serializes on.
  obs::DiagnosisReport diagnose(size_t queries_per_phase = 60);

 private:
  struct Shard {
    Dialer dial;
    std::mutex mutex;  // serializes use of this shard's connection
    std::unique_ptr<Transport> transport;
    std::unique_ptr<ServiceClient> client;
    uint64_t version = 0;  // last version id this shard acked
    bool ever_connected = false;
    // Circuit breaker (guarded by mutex): consecutive failures and the
    // deadline before which dial attempts are skipped.
    uint32_t breaker_failures = 0;
    uint64_t breaker_open_until_ns = 0;
    Rng jitter;  // deterministic backoff jitter, seeded per shard
  };

  /// A router-level trace under construction: the stitched trace, the
  /// steady-clock instant its timeline is relative to, and a cursor at the
  /// end of the last recorded leg — so the router's own work between legs
  /// ("route" before each dispatch, "reply" after the last) is charged
  /// explicitly and the stitched timeline is contiguous.
  struct TraceCtx {
    obs::Trace trace;
    uint64_t epoch_ns = 0;
    uint64_t cursor_ns = 0;
  };

  /// One attempt against one shard, with connection management: dial (or
  /// reuse), catch up, send. With `retry_once`, a failure on an existing
  /// (possibly stale) connection re-dials and retries a single time — how
  /// a query lands on a shard that restarted between requests. Updates the
  /// breaker on both outcomes. Throws dna::Error ("shard <i> unavailable:
  /// ...") when the shard cannot be reached.
  QueryResult request_on(size_t index, const std::string& line,
                         bool retry_once);
  /// request_on plus telemetry: the shard's RTT lands in its histogram,
  /// and with `ctx` the request is forwarded under the trace id, its RTT
  /// becomes span "s<i>", and the shard's own spans are stitched in as
  /// "s<i>.<leg>" children re-based at the RTT start.
  QueryResult request_observed(size_t index, const std::string& line,
                               bool retry_once, TraceCtx* ctx);
  /// Failover: tries `candidates` in preference order, skipping shards
  /// whose breaker is open, then — if nothing answered — retries the
  /// skipped ones as a last resort (backoff must never block the only
  /// remaining replica). Throws dna::Error when every candidate fails.
  QueryResult request_failover(const std::vector<size_t>& candidates,
                               const std::string& line, TraceCtx* ctx);
  QueryResult request_locked(Shard& shard, size_t index,
                             const std::string& line);
  /// Dials (if needed) and brings the shard to the deployment head:
  /// replaying missed commits from history_ when it covers the gap, else
  /// journal-seeded cloning from a head-version peer (sync_from_peer).
  /// Caller holds shard.mutex.
  void ensure_connected(Shard& shard, size_t index);
  /// Fetches a `sync` snapshot payload from any *other* connected shard at
  /// head version `head` (try-lock only — never blocks while the caller
  /// holds a shard mutex). Empty when no donor is available.
  std::string fetch_sync_payload(size_t lagging_index, uint64_t head);
  void disconnect(Shard& shard);
  /// Breaker bookkeeping, caller holds shard.mutex.
  bool breaker_open(const Shard& shard) const;
  void breaker_success(Shard& shard);
  void breaker_failure(Shard& shard);
  /// Scope i's candidate evaluators: (i, i+1, ..., i+R-1) mod n.
  std::vector<size_t> scope_candidates(size_t primary) const;
  /// replicas_of() as size_t indices.
  std::vector<size_t> node_candidates(std::string_view name) const;

  /// handle() minus the whole-request timing: trace-tag stripping and the
  /// stitched-trace lifecycle.
  QueryResult handle_request(const std::string& request);
  /// handle() after trace-tag stripping: command matching, routing, and
  /// the telemetry hooks. `ctx` is non-null for a traced request.
  QueryResult handle_line(const std::string& line, TraceCtx* ctx);
  QueryResult handle_commit(const std::string& line, TraceCtx* ctx);
  QueryResult handle_scatter(const std::string& line, TraceCtx* ctx,
                             bool retried = false);
  QueryResult handle_shutdown();

  RouterOptions options_;
  PartitionMap partition_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Commits acked by the deployment since this router started, in version
  /// order — what catch-up replays into a restarted shard. head_version_
  /// is the latest id any shard acked. Guarded by history_mutex_ (always
  /// taken after a shard mutex, never before).
  mutable std::mutex history_mutex_;
  struct HistoryEntry {
    uint64_t version = 0;
    std::string change_text;
  };
  std::vector<HistoryEntry> history_;
  uint64_t head_version_ = 0;

  // Serializes commits (and scatters) router-wide; instrumented so
  // `diagnose` can report how long requests waited on it.
  obs::TimedMutex commit_mutex_;
  bool shutdown_requested_ = false;  // guarded by history_mutex_

  // ---- telemetry (obs/): handles resolved at construction, written with
  // relaxed sharded atomics — the old metrics mutex is gone entirely.
  obs::Registry registry_;
  obs::Counter& ctr_queries_routed_;
  obs::Counter& ctr_scatters_;
  obs::Counter& ctr_commits_;
  obs::Counter& ctr_degraded_commits_;
  obs::Counter& ctr_shard_errors_;
  obs::Counter& ctr_failovers_;
  obs::Counter& ctr_reconnects_;
  obs::Counter& ctr_replayed_commits_;
  obs::Counter& ctr_syncs_;
  obs::Counter& ctr_breaker_opens_;
  obs::Histogram& hist_request_;  // whole-request wall time (handle())
  std::vector<obs::Histogram*> hist_shard_rtt_;  // by shard index
  obs::TraceLog trace_log_;
  std::atomic<bool> trace_all_{false};
  std::atomic<obs::FlightRecorder*> recorder_{nullptr};
};

/// Pumps one client connection against a ShardRouter: framed request lines
/// in, framed responses out — the router-side twin of ServerSession.
class RouterSession {
 public:
  RouterSession(ShardRouter& router, Transport& transport)
      : router_(router), transport_(transport) {}

  /// Serves until the peer closes, a protocol violation occurs, or a
  /// `shutdown` request is answered. Never throws.
  void run();

  bool shutdown_requested() const { return shutdown_requested_; }

 private:
  ShardRouter& router_;
  Transport& transport_;
  FrameDecoder decoder_;
  bool shutdown_requested_ = false;
};

}  // namespace dna::service::shard
