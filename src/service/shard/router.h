// ShardRouter: the front-end of a sharded DNA deployment.
//
// A deployment is N shard processes — each a full DnaService behind
// `dna_cli shard-serve`, with its own journal directory — plus one router
// owning the topology-hash partition map (partition.h). Clients speak the
// ordinary framed protocol to the router; the router:
//
//  * routes single-source queries (reach/paths, src-ful checks, whatif) to
//    the one shard owning the source region,
//  * scatters network-global checks (loopfree) as per-partition scopes
//    ("part i/n <query>") and gathers the verdicts — ANDed, with bodies
//    rendered identically to one monolithic evaluation,
//  * fans every commit out to all shards (each applies it differentially;
//    all must ack the same version id) and appends it to an in-memory
//    commit history, and
//  * tracks shard health: a dead connection fails the in-flight request
//    with a clean typed error ("shard i unavailable: ..."), and the next
//    request re-dials and *replays* the commits the shard missed while it
//    was down — a restarted shard first recovers its own journal, then the
//    router's catch-up brings it to the deployment head.
//
// Consistency model: shards are full replicas kept in lock-step by the
// commit fan-out, so any shard answers any query correctly; the partition
// map decides *responsibility* (where queries go, how global checks
// decompose), which is what spreads query load over processes. Boundary
// correctness is by construction — a path crossing from shard i's region
// into shard j's is evaluated on the owner of its source, which holds the
// whole model. Re-partitioning on shard count changes is just a different
// hash mod; rebalancing live state is future work (ROADMAP).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "service/session.h"
#include "service/shard/partition.h"
#include "service/transport.h"

namespace dna::service::shard {

/// How the router reaches one shard: a factory for fresh connections, so
/// tests dial in-memory loopback channels and production dials TCP.
using Dialer = std::function<std::unique_ptr<Transport>()>;

/// Counters accumulated over the router's lifetime (the `metrics` command).
struct RouterMetrics {
  size_t queries_routed = 0;    // single-shard requests forwarded
  size_t scatters = 0;          // scatter/gather evaluations
  size_t commits = 0;           // commits broadcast and recorded
  size_t shard_errors = 0;      // requests failed on an unreachable shard
  size_t reconnects = 0;        // successful re-dials after a failure
  size_t replayed_commits = 0;  // catch-up commits replayed into shards
  uint64_t head_version = 0;    // deployment head the router believes in
  std::vector<bool> shard_connected;     // by shard index
  std::vector<uint64_t> shard_versions;  // last acked version, by index

  std::string str() const;
};

class ShardRouter {
 public:
  /// One dialer per shard, in partition order (shard i of n). Connections
  /// are opened lazily per request; use connect_all() to fail fast.
  explicit ShardRouter(std::vector<Dialer> dialers);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const PartitionMap& partition() const { return partition_; }

  /// Dials every shard now; returns the number reachable. Reachable shards
  /// must agree on the head version (throws dna::Error on divergence).
  size_t connect_all();

  /// Handles one request line — the full query language plus the session
  /// commands commit/metrics/shutdown. Thread-safe; never throws (shard
  /// failures come back as ok=false typed errors).
  QueryResult handle(const std::string& line);

  /// True once a client asked the deployment to stop: the router has
  /// broadcast `shutdown` to the shards and its host should stop serving.
  bool shutdown_requested() const;

  RouterMetrics metrics() const;

 private:
  struct Shard {
    Dialer dial;
    std::mutex mutex;  // serializes use of this shard's connection
    std::unique_ptr<Transport> transport;
    std::unique_ptr<ServiceClient> client;
    uint64_t version = 0;  // last version id this shard acked
    bool ever_connected = false;
  };

  /// Routed request with connection management. With `retry_once`, a
  /// failure on an existing (possibly stale) connection re-dials and
  /// retries a single time — how a query lands after a shard restart.
  /// Throws dna::Error ("shard <i> unavailable: ...") when the shard
  /// cannot be reached.
  QueryResult request_on(size_t index, const std::string& line,
                         bool retry_once);
  QueryResult request_locked(Shard& shard, size_t index,
                             const std::string& line);
  /// Dials (if needed) and brings the shard to the deployment head by
  /// replaying missed commits from history_. Caller holds shard.mutex.
  void ensure_connected(Shard& shard, size_t index);
  void disconnect(Shard& shard);

  QueryResult handle_commit(const std::string& line);
  QueryResult handle_scatter(const std::string& line);
  QueryResult handle_shutdown();

  PartitionMap partition_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Commits acked by the deployment since this router started, in version
  /// order — what catch-up replays into a restarted shard. head_version_
  /// is the latest id any shard acked. Guarded by history_mutex_ (always
  /// taken after a shard mutex, never before).
  mutable std::mutex history_mutex_;
  struct HistoryEntry {
    uint64_t version = 0;
    std::string change_text;
  };
  std::vector<HistoryEntry> history_;
  uint64_t head_version_ = 0;

  std::mutex commit_mutex_;  // serializes commits (and scatters) router-wide
  bool shutdown_requested_ = false;  // guarded by history_mutex_

  mutable std::mutex metrics_mutex_;
  RouterMetrics metrics_;
};

/// Pumps one client connection against a ShardRouter: framed request lines
/// in, framed responses out — the router-side twin of ServerSession.
class RouterSession {
 public:
  RouterSession(ShardRouter& router, Transport& transport)
      : router_(router), transport_(transport) {}

  /// Serves until the peer closes, a protocol violation occurs, or a
  /// `shutdown` request is answered. Never throws.
  void run();

  bool shutdown_requested() const { return shutdown_requested_; }

 private:
  ShardRouter& router_;
  Transport& transport_;
  FrameDecoder decoder_;
  bool shutdown_requested_ = false;
};

}  // namespace dna::service::shard
