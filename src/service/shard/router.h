// ShardRouter: the front-end of a sharded DNA deployment.
//
// A deployment is N shard processes — each a full DnaService behind
// `dna_cli shard-serve`, with its own journal directory — plus one router
// owning the topology-hash partition map (partition.h). Clients speak the
// ordinary framed protocol to the router; the router:
//
//  * routes single-source queries (reach/paths, src-ful checks, whatif) to
//    the one shard owning the source region,
//  * scatters network-global checks (loopfree) as per-partition scopes
//    ("part i/n <query>") and gathers the verdicts — ANDed, with bodies
//    rendered identically to one monolithic evaluation,
//  * fans every commit out to all shards (each applies it differentially;
//    all must ack the same version id) and appends it to an in-memory
//    commit history, and
//  * tracks shard health: a dead connection fails the in-flight request
//    with a clean typed error ("shard i unavailable: ..."), and the next
//    request re-dials and *replays* the commits the shard missed while it
//    was down — a restarted shard first recovers its own journal, then the
//    router's catch-up brings it to the deployment head.
//
// Consistency model: shards are full replicas kept in lock-step by the
// commit fan-out, so any shard answers any query correctly; the partition
// map decides *responsibility* (where queries go, how global checks
// decompose), which is what spreads query load over processes. Boundary
// correctness is by construction — a path crossing from shard i's region
// into shard j's is evaluated on the owner of its source, which holds the
// whole model. Re-partitioning on shard count changes is just a different
// hash mod; rebalancing live state is future work (ROADMAP).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "service/health.h"
#include "service/protocol.h"
#include "service/session.h"
#include "service/shard/partition.h"
#include "service/transport.h"

namespace dna::obs {
class FlightRecorder;  // recorder.h; the router only holds a pointer
}  // namespace dna::obs

namespace dna::service::shard {

/// How the router reaches one shard: a factory for fresh connections, so
/// tests dial in-memory loopback channels and production dials TCP.
using Dialer = std::function<std::unique_ptr<Transport>()>;

/// Counters accumulated over the router's lifetime (the `metrics` command).
/// Assembled on read from the router's obs::Registry plus per-shard state.
struct RouterMetrics {
  size_t queries_routed = 0;    // single-shard requests forwarded
  size_t scatters = 0;          // scatter/gather evaluations
  size_t commits = 0;           // commits broadcast and recorded
  size_t shard_errors = 0;      // requests failed on an unreachable shard
  size_t reconnects = 0;        // successful re-dials after a failure
  size_t replayed_commits = 0;  // catch-up commits replayed into shards
  uint64_t head_version = 0;    // deployment head the router believes in
  std::vector<bool> shard_connected;     // by shard index
  std::vector<uint64_t> shard_versions;  // last acked version, by index

  std::string str() const;
  /// The same view as one JSON "metrics" object (the `metrics json` verb).
  void append_json(util::JsonWriter& json) const;
};

class ShardRouter {
 public:
  /// One dialer per shard, in partition order (shard i of n). Connections
  /// are opened lazily per request; use connect_all() to fail fast.
  explicit ShardRouter(std::vector<Dialer> dialers);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  size_t num_shards() const { return shards_.size(); }
  const PartitionMap& partition() const { return partition_; }

  /// Dials every shard now; returns the number reachable. Reachable shards
  /// must agree on the head version (throws dna::Error on divergence).
  size_t connect_all();

  /// Handles one request line — the full query language plus the session
  /// commands (commit/metrics [json]/stats [json|prom]/trace .../shutdown).
  /// A leading `trace:` tag yields a deployment-wide stitched trace: the
  /// router's "total" span, one "s<i>" RTT span per shard touched, and the
  /// shard's own legs nested as "s<i>.<leg>". Thread-safe; never throws
  /// (shard failures come back as ok=false typed errors).
  QueryResult handle(const std::string& line);

  /// True once a client asked the deployment to stop: the router has
  /// broadcast `shutdown` to the shards and its host should stop serving.
  bool shutdown_requested() const;

  RouterMetrics metrics() const;
  /// The router's metric registry: counters plus one RTT histogram per
  /// shard ("router.s<i>.rtt_seconds").
  obs::Registry& registry() { return registry_; }
  const obs::Registry& registry() const { return registry_; }
  /// Recently completed router-level (stitched) traces.
  obs::TraceLog& trace_log() { return trace_log_; }
  /// When on, every request is traced into trace_log() — `trace on|off`.
  void set_trace_all(bool on) {
    trace_all_.store(on, std::memory_order_relaxed);
  }
  bool trace_all() const { return trace_all_.load(std::memory_order_relaxed); }

  // ---- observability plane -------------------------------------------------

  /// Liveness: ok while every shard holds a live connection. A shard that
  /// failed a request drops its connection, flipping this to unhealthy
  /// until the next successful use re-dials it. What /healthz serves.
  Health health() const;

  /// Attaches a flight recorder (caller-owned); the router marks
  /// "shard_death" events into it when a request fails on an unreachable
  /// shard.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_.store(recorder, std::memory_order_release);
  }
  obs::FlightRecorder* flight_recorder() const {
    return recorder_.load(std::memory_order_acquire);
  }

  /// The router-tier twin of DnaService::diagnose(): drives
  /// `queries_per_phase` network-global checks sequentially, then the same
  /// number flooded, and attributes each request's wall time to per-shard
  /// RTT legs plus the router's own routing/merge work. Names which shard
  /// (or the router itself) the scatter pipeline serializes on.
  obs::DiagnosisReport diagnose(size_t queries_per_phase = 60);

 private:
  struct Shard {
    Dialer dial;
    std::mutex mutex;  // serializes use of this shard's connection
    std::unique_ptr<Transport> transport;
    std::unique_ptr<ServiceClient> client;
    uint64_t version = 0;  // last version id this shard acked
    bool ever_connected = false;
  };

  /// A router-level trace under construction: the stitched trace, the
  /// steady-clock instant its timeline is relative to, and a cursor at the
  /// end of the last recorded leg — so the router's own work between legs
  /// ("route" before each dispatch, "reply" after the last) is charged
  /// explicitly and the stitched timeline is contiguous.
  struct TraceCtx {
    obs::Trace trace;
    uint64_t epoch_ns = 0;
    uint64_t cursor_ns = 0;
  };

  /// Routed request with connection management. With `retry_once`, a
  /// failure on an existing (possibly stale) connection re-dials and
  /// retries a single time — how a query lands after a shard restart.
  /// Throws dna::Error ("shard <i> unavailable: ...") when the shard
  /// cannot be reached.
  QueryResult request_on(size_t index, const std::string& line,
                         bool retry_once);
  /// request_on plus telemetry: the shard's RTT lands in its histogram,
  /// and with `ctx` the request is forwarded under the trace id, its RTT
  /// becomes span "s<i>", and the shard's own spans are stitched in as
  /// "s<i>.<leg>" children re-based at the RTT start.
  QueryResult request_observed(size_t index, const std::string& line,
                               bool retry_once, TraceCtx* ctx);
  QueryResult request_locked(Shard& shard, size_t index,
                             const std::string& line);
  /// Dials (if needed) and brings the shard to the deployment head by
  /// replaying missed commits from history_. Caller holds shard.mutex.
  void ensure_connected(Shard& shard, size_t index);
  void disconnect(Shard& shard);

  /// handle() minus the whole-request timing: trace-tag stripping and the
  /// stitched-trace lifecycle.
  QueryResult handle_request(const std::string& request);
  /// handle() after trace-tag stripping: command matching, routing, and
  /// the telemetry hooks. `ctx` is non-null for a traced request.
  QueryResult handle_line(const std::string& line, TraceCtx* ctx);
  QueryResult handle_commit(const std::string& line, TraceCtx* ctx);
  QueryResult handle_scatter(const std::string& line, TraceCtx* ctx);
  QueryResult handle_shutdown();

  PartitionMap partition_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Commits acked by the deployment since this router started, in version
  /// order — what catch-up replays into a restarted shard. head_version_
  /// is the latest id any shard acked. Guarded by history_mutex_ (always
  /// taken after a shard mutex, never before).
  mutable std::mutex history_mutex_;
  struct HistoryEntry {
    uint64_t version = 0;
    std::string change_text;
  };
  std::vector<HistoryEntry> history_;
  uint64_t head_version_ = 0;

  // Serializes commits (and scatters) router-wide; instrumented so
  // `diagnose` can report how long requests waited on it.
  obs::TimedMutex commit_mutex_;
  bool shutdown_requested_ = false;  // guarded by history_mutex_

  // ---- telemetry (obs/): handles resolved at construction, written with
  // relaxed sharded atomics — the old metrics mutex is gone entirely.
  obs::Registry registry_;
  obs::Counter& ctr_queries_routed_;
  obs::Counter& ctr_scatters_;
  obs::Counter& ctr_commits_;
  obs::Counter& ctr_shard_errors_;
  obs::Counter& ctr_reconnects_;
  obs::Counter& ctr_replayed_commits_;
  obs::Histogram& hist_request_;  // whole-request wall time (handle())
  std::vector<obs::Histogram*> hist_shard_rtt_;  // by shard index
  obs::TraceLog trace_log_;
  std::atomic<bool> trace_all_{false};
  std::atomic<obs::FlightRecorder*> recorder_{nullptr};
};

/// Pumps one client connection against a ShardRouter: framed request lines
/// in, framed responses out — the router-side twin of ServerSession.
class RouterSession {
 public:
  RouterSession(ShardRouter& router, Transport& transport)
      : router_(router), transport_(transport) {}

  /// Serves until the peer closes, a protocol violation occurs, or a
  /// `shutdown` request is answered. Never throws.
  void run();

  bool shutdown_requested() const { return shutdown_requested_; }

 private:
  ShardRouter& router_;
  Transport& transport_;
  FrameDecoder decoder_;
  bool shutdown_requested_ = false;
};

}  // namespace dna::service::shard
